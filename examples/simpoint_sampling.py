#!/usr/bin/env python3
"""SimPoint-style sampling: simulate less, conclude the same.

The paper uses SimPoint 2.0 to pick representative simulation points.
This example profiles a trace's basic-block vectors, clusters them,
simulates only the representative intervals, and compares the sampled
IPC against the full-trace IPC.

Run:  python examples/simpoint_sampling.py [benchmark] [length]
"""

import sys
import time

from repro.cpu import paper_configurations, simulate
from repro.workloads import generate
from repro.workloads.phases import choose_simpoints, sample_trace


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    length = int(sys.argv[2]) if len(sys.argv) > 2 else 24_000
    interval = 2_000
    config = paper_configurations()["Base"].config

    print(f"profiling {benchmark} ({length} instructions)...")
    trace = generate(benchmark, length=length)
    points = choose_simpoints(trace, interval=interval, max_clusters=4)
    print(f"chose {len(points)} simulation points:")
    for point in points:
        print(f"  interval {point.interval_index:3d} "
              f"(inst {point.start_instruction}), weight {point.weight:.2f}")

    t0 = time.time()
    full = simulate(trace, config, warmup=length // 4)
    full_time = time.time() - t0

    # SimPoint methodology: simulate each representative interval on its
    # own, warmed by the interval that precedes it, then combine the
    # per-point IPCs with the cluster weights.
    from repro.isa.trace import Trace
    from repro.workloads.phases import weighted_metric

    from repro.cpu.pipeline import TimingSimulator

    t0 = time.time()
    point_ipcs = []
    simulated_insts = 0
    for point in points:
        start = max(0, point.start_instruction - interval)
        window = trace.instructions[start:point.start_instruction + interval]
        warmup = point.start_instruction - start
        piece = Trace(name=f"{benchmark}@{point.interval_index}", instructions=window)
        # Functional warming comes from the FULL trace (as SimPoint's
        # checkpointing would provide), then the preceding interval warms
        # the pipeline-visible state.
        simulator = TimingSimulator(config)
        simulator._prewarm(trace)
        result = simulator.run(piece, warmup=warmup, prewarm=False)
        point_ipcs.append(result.ipc)
        simulated_insts += len(window)
    sampled_ipc = weighted_metric(points, point_ipcs)
    sampled_time = time.time() - t0

    print(f"\nfull trace:       IPC {full.ipc:.3f}  ({len(trace)} insts, {full_time:.2f}s)")
    print(f"simpoint estimate: IPC {sampled_ipc:.3f}  ({simulated_insts} insts, {sampled_time:.2f}s)")
    error = abs(sampled_ipc - full.ipc) / full.ipc
    print(f"IPC error {error:.1%} at {simulated_insts / len(trace):.0%} of the "
          f"simulation work")


if __name__ == "__main__":
    main()
