#!/usr/bin/env python3
"""Width and partial-value locality study across the benchmark suite.

Reproduces the observations Section 3 builds on: most integer values are
narrow, load/store upper address bits rarely change (PAM), branch targets
stay near their branches (BTB memoization), and cached values compress
well under the 2-bit upper-bit encoding.

Run:  python examples/width_locality_study.py [length]
"""

import sys

from repro.isa.values import UpperBitsEncoding
from repro.workloads import BENCHMARKS, generate


def main() -> None:
    length = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000

    header = (
        f"{'benchmark':<10s} {'class':<14s} {'low-res':>8s} {'low-op':>7s} "
        f"{'addr-memo':>9s} {'near-tgt':>8s} {'compressible':>12s}"
    )
    print(header)
    print("-" * len(header))
    per_class = {}
    for name, spec in BENCHMARKS.items():
        stats = generate(name, length=length).stats()
        compressible = sum(
            fraction
            for encoding, fraction in stats.dcache_encoding_mix.items()
            if encoding is not UpperBitsEncoding.LITERAL
        )
        print(
            f"{name:<10s} {spec.benchmark_class.value:<14s} "
            f"{stats.low_width_result_fraction:8.1%} "
            f"{stats.low_width_operand_fraction:7.1%} "
            f"{stats.address_upper_match_fraction:9.1%} "
            f"{stats.near_target_fraction:8.1%} "
            f"{compressible:12.1%}"
        )
        per_class.setdefault(spec.benchmark_class.value, []).append(
            stats.low_width_result_fraction
        )

    print("\nmean low-width result fraction per class:")
    for klass, values in per_class.items():
        print(f"  {klass:<14s} {sum(values) / len(values):6.1%}")
    print(
        "\nThe MediaBench/MiBench classes are the narrowest (herding gates the"
        "\nmost activity there); pointer codes carry the most full-width values"
        "\nbut compensate through the SAME_AS_ADDRESS cache encoding."
    )


if __name__ == "__main__":
    main()
