#!/usr/bin/env python3
"""Thermal comparison: planar vs 3D-no-herding vs 3D Thermal Herding.

Runs one application on both cores of the three processors (Figure 10's
d-f scenario), prints total power, peak temperatures, per-die peaks, and
an ASCII thermal map of the hottest die layer.

Run:  python examples/thermal_comparison.py [benchmark]
"""

import sys

import numpy as np

from repro.experiments import ExperimentContext, ExperimentSettings

_SHADES = " .:-=+*#%@"


def ascii_map(grid: np.ndarray, lo: float, hi: float) -> str:
    """Render a temperature grid with ASCII intensity shades."""
    span = max(hi - lo, 1e-9)
    rows = []
    for row in grid[::2]:  # halve vertical resolution for terminal aspect
        chars = []
        for value in row:
            level = int((value - lo) / span * (len(_SHADES) - 1))
            chars.append(_SHADES[max(0, min(level, len(_SHADES) - 1))])
        rows.append("".join(chars))
    return "\n".join(rows)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "mpeg2"
    context = ExperimentContext(ExperimentSettings(
        trace_length=16_000, warmup=5_000, benchmarks=(benchmark,),
        thermal_grid=64,
    ))

    labels = ("Base", "3D-noTH", "3D")
    results = {}
    for label in labels:
        power = context.power(benchmark, label)
        thermal = context.thermal(benchmark, label)
        results[label] = (power, thermal)

    base_peak = results["Base"][1].peak_temperature
    print(f"{benchmark} on both cores:")
    print(f"{'config':<8s} {'chip W':>8s} {'peak K':>8s} {'delta':>7s}  hottest block")
    for label in labels:
        power, thermal = results[label]
        name, die, _ = thermal.hottest_block()
        delta = thermal.peak_temperature - base_peak
        print(
            f"{label:<8s} {2 * power.total_watts:8.1f} {thermal.peak_temperature:8.1f} "
            f"{delta:+7.1f}  {name} (die {die})"
        )

    for label in ("3D-noTH", "3D"):
        thermal = results[label][1]
        print(f"\n{label}: per-die peak temperatures (die 0 = next to heat sink)")
        for die in range(4):
            print(f"  die {die}: {thermal.die_peak(die):6.1f} K")

    # ASCII map of the hottest die of the Thermal Herding processor.
    thermal = results["3D"][1]
    hottest_die = max(range(4), key=thermal.die_peak)
    grid = thermal.layer_temps[thermal.die_layers[hottest_die]]
    lo, hi = float(grid.min()), float(grid.max())
    print(f"\n3D Thermal Herding, die {hottest_die} ({lo:.0f}K..{hi:.0f}K):")
    print(ascii_map(grid, lo, hi))


if __name__ == "__main__":
    main()
