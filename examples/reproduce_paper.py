#!/usr/bin/env python3
"""Reproduce the whole paper in one run.

Executes every table/figure experiment plus the extensions and writes the
markdown report (and optional JSON exports).  Use ``--fast`` for a quick
shape check; the default runs the full 24-benchmark suite and takes a few
minutes.

Run:  python examples/reproduce_paper.py [--fast] [-o report.md]
"""

import argparse
import time

from repro.experiments import ExperimentContext, ExperimentSettings
from repro.experiments.export import (
    figure8_rows,
    figure9_rows,
    figure10_rows,
    table2_rows,
    write_rows,
)
from repro.experiments.report import generate_report

FAST = ExperimentSettings(
    trace_length=8_000,
    warmup=2_500,
    benchmarks=("mpeg2", "mcf", "susan", "yacr2", "swim", "adpcm"),
    thermal_grid=48,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true")
    parser.add_argument("-o", "--output", default="report.md")
    parser.add_argument("--export-prefix",
                        help="also write <prefix>_{table2,figure8,figure9,figure10}.json")
    args = parser.parse_args()

    context = ExperimentContext(FAST if args.fast else ExperimentSettings())
    started = time.time()
    report = generate_report(context)
    elapsed = time.time() - started

    with open(args.output, "w", encoding="utf-8") as stream:
        stream.write(report)
    print(f"wrote {args.output} in {elapsed:.0f}s")

    if args.export_prefix:
        from repro.experiments import (
            run_figure8, run_figure9, run_figure10, run_table2,
        )
        exports = {
            "table2": table2_rows(run_table2()),
            "figure8": figure8_rows(run_figure8(context)),
            "figure9": figure9_rows(run_figure9(context)),
            "figure10": figure10_rows(run_figure10(context)),
        }
        for name, rows in exports.items():
            path = f"{args.export_prefix}_{name}.json"
            write_rows(rows, path)
            print(f"wrote {path}")

    # Show the headline comparison on stdout.
    in_headline = False
    for line in report.splitlines():
        if line.startswith("## Headline"):
            in_headline = True
        elif line.startswith("## ") and in_headline:
            break
        if in_headline:
            print(line)


if __name__ == "__main__":
    main()
