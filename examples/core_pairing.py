#!/usr/bin/env python3
"""Heterogeneous core pairing: scheduling as a thermal knob.

Runs three pairings on the two-core 3D Thermal Herding chip — hot+hot,
hot+cool, cool+cool — and prints throughput, power, peak temperature, and
the asymmetric thermal map of the mixed pairing.

Run:  python examples/core_pairing.py [hot_benchmark] [cool_benchmark]
"""

import sys

from repro.experiments import ExperimentContext, ExperimentSettings
from repro.experiments.pairing import run_pairing
from repro.power.model import StackKind
from repro.thermal.maps import hotspot_table


def main() -> None:
    hot = sys.argv[1] if len(sys.argv) > 1 else "mpeg2"
    cool = sys.argv[2] if len(sys.argv) > 2 else "mcf"
    context = ExperimentContext(ExperimentSettings(
        trace_length=14_000, warmup=4_000, benchmarks=(hot, cool),
        thermal_grid=64,
    ))

    pairs = ((hot, hot), (hot, cool), (cool, cool))
    result = run_pairing(context, pairs=pairs)
    print(result.format())

    # The mixed pairing's asymmetric map: core0 (hot) vs core1 (cool).
    model = context.power_model()
    from repro.cpu.multicore import simulate_dual_core
    run = simulate_dual_core(
        context.trace(hot), context.trace(cool),
        context.configs["3D"], warmup=context.settings.warmup,
    )
    breakdowns = [model.evaluate(r, StackKind.STACKED_3D) for r in run.results]
    thermal = context.thermal_for_breakdowns(breakdowns, StackKind.STACKED_3D)

    print(f"\nmixed pairing ({hot} on core0, {cool} on core1):")
    print(hotspot_table(thermal, top=8))
    core0_peak = max(t for (n, _d), t in thermal.block_peak.items()
                     if n.startswith("core0."))
    core1_peak = max(t for (n, _d), t in thermal.block_peak.items()
                     if n.startswith("core1."))
    print(f"\ncore0 ({hot}) peak: {core0_peak:.1f} K; "
          f"core1 ({cool}) peak: {core1_peak:.1f} K; "
          f"asymmetry {core0_peak - core1_peak:+.1f} K")


if __name__ == "__main__":
    main()
