#!/usr/bin/env python3
"""Design-space exploration of the Thermal Herding mechanisms.

Sweeps three design choices the paper fixes and shows their sensitivity:

1. width predictor table size and counter width (prediction accuracy vs
   unsafe misprediction stalls);
2. scheduler allocation policy (top-die-first vs round-robin) — the
   herding effect on tag broadcast activity;
3. L1D upper-bit encoding (the paper's 2-bit scheme vs a 1-bit
   all-zeros-only memoization) — herded load fraction.

Run:  python examples/design_space.py [benchmark] [length]
"""

import sys
from dataclasses import replace

from repro.core.dcache_encoding import EncodingScheme
from repro.core.scheduler_allocation import AllocationPolicy
from repro.cpu import paper_configurations, simulate
from repro.workloads import generate


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "crafty"
    length = int(sys.argv[2]) if len(sys.argv) > 2 else 16_000
    warmup = length // 3
    trace = generate(benchmark, length=length)
    th_config = paper_configurations()["3D"].config

    print(f"=== width predictor sweep ({benchmark}) ===")
    print(f"{'entries':>8s} {'bits':>5s} {'accuracy':>9s} {'unsafe':>7s} {'stall cyc':>10s}")
    for entries in (256, 1024, 4096):
        for bits in (1, 2, 3):
            config = replace(th_config, width_predictor_entries=entries,
                             width_counter_bits=bits)
            result = simulate(trace, config, warmup=warmup)
            stats = result.width_stats
            print(f"{entries:8d} {bits:5d} {stats.accuracy:9.1%} "
                  f"{stats.unsafe_mispredictions:7d} {result.stalls.total:10d}")

    print(f"\n=== scheduler allocation policy ===")
    print(f"{'policy':<12s} {'dies/broadcast':>15s} {'top-die share':>14s}")
    for policy in AllocationPolicy:
        config = replace(th_config, scheduler_policy=policy)
        result = simulate(trace, config, warmup=warmup)
        dies = result.herding["scheduler_dies_per_broadcast"]
        top = result.herding.get("herded::scheduler", 0.0)
        print(f"{policy.value:<12s} {dies:15.2f} {top:14.1%}")

    print(f"\n=== L1D upper-bit encoding ===")
    print(f"{'scheme':<10s} {'herded loads':>13s} {'width stalls':>13s}")
    for scheme in EncodingScheme:
        config = replace(th_config, dcache_encoding=scheme)
        result = simulate(trace, config, warmup=warmup)
        print(f"{scheme.value:<10s} {result.herding['dcache_herded_loads']:13.1%} "
              f"{result.stalls.dcache_width_stalls:13d}")


if __name__ == "__main__":
    main()
