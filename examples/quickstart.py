#!/usr/bin/env python3
"""Quickstart: simulate one benchmark on the planar and 3D processors.

Generates the mpeg2-like trace, runs it through the paper's five
configurations (Base / TH / Pipe / Fast / 3D), and prints performance,
width prediction, and herding summaries.

Run:  python examples/quickstart.py [benchmark] [length]
"""

import sys

from repro.cpu import paper_configurations, simulate
from repro.workloads import benchmark_names, generate


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "mpeg2"
    length = int(sys.argv[2]) if len(sys.argv) > 2 else 20_000
    if benchmark not in benchmark_names():
        raise SystemExit(
            f"unknown benchmark {benchmark!r}; choose from: {', '.join(benchmark_names())}"
        )
    warmup = length // 3

    print(f"generating {benchmark} trace ({length} instructions)...")
    trace = generate(benchmark, length=length)
    stats = trace.stats()
    print(f"  low-width results: {stats.low_width_result_fraction:.1%}, "
          f"memory: {stats.memory_fraction:.1%}, branches: {stats.branch_fraction:.1%}")

    results = {}
    for label, pc in paper_configurations().items():
        results[label] = simulate(trace, pc.config, warmup=warmup)

    print(f"\n{'config':<6s} {'GHz':>5s} {'IPC':>6s} {'IPns':>6s} {'speedup':>8s}")
    base_ipns = results["Base"].ipns
    for label, result in results.items():
        print(
            f"{label:<6s} {result.clock_ghz:5.2f} {result.ipc:6.2f} "
            f"{result.ipns:6.2f} {result.ipns / base_ipns:7.2f}x"
        )

    th = results["3D"]
    assert th.width_stats is not None
    print(f"\nThermal Herding on the 3D processor:")
    print(f"  width prediction accuracy (predicted insts): {th.width_stats.accuracy:.1%}")
    print(f"  unsafe mispredictions: {th.width_stats.unsafe_mispredictions}, "
          f"stall cycles: {th.stalls.total}")
    for metric in ("pam_herded", "dcache_herded_loads", "scheduler_dies_per_broadcast"):
        if metric in th.herding:
            print(f"  {metric}: {th.herding[metric]:.3f}")


if __name__ == "__main__":
    main()
