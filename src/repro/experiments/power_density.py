"""Section 5.3's iso-power, iso-frequency power-density experiment.

The paper stacks the planar processor's 90 W at 2.66 GHz into the 3D
footprint — quadrupling power density while discarding 3D's latency and
power benefits — and observes a worst-case temperature of 418 K, a 58 K
increase over the planar baseline.  The point: the 3D processor's actual
temperature rise stays small *because* its total power drops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.experiments.context import (
    CORE_COUNT,
    ExperimentContext,
    REFERENCE_BENCHMARK,
)
from repro.power.model import StackKind
from repro.thermal.solver import ThermalResult

PAPER_ISO_POWER_PEAK_K = 418.0
PAPER_ISO_POWER_DELTA_K = 58.0


@dataclass
class PowerDensityResult:
    """Planar baseline vs the 4x-density iso-power stack."""

    planar: ThermalResult
    iso_power: ThermalResult
    planar_watts: float
    iso_watts: float

    @property
    def delta_k(self) -> float:
        return self.iso_power.peak_temperature - self.planar.peak_temperature

    def format(self) -> str:
        return "\n".join([
            "Section 5.3: iso-power (90 W) iso-frequency (2.66 GHz) 3D stacking",
            f"  planar    {self.planar.peak_temperature:6.1f} K at {self.planar_watts:.1f} W",
            f"  4x density {self.iso_power.peak_temperature:5.1f} K at {self.iso_watts:.1f} W "
            f"(+{self.delta_k:.1f} K; paper +{PAPER_ISO_POWER_DELTA_K:.0f} K -> 418 K)",
        ])


def run_power_density(context: Optional[ExperimentContext] = None) -> PowerDensityResult:
    """Solve the planar map and the same power folded into the 3D stack."""
    context = context or ExperimentContext()
    context.prefetch([(REFERENCE_BENCHMARK, "Base")])
    base_run = context.run(REFERENCE_BENCHMARK, "Base")
    model = context.power_model()

    planar_breakdown = model.evaluate(base_run, StackKind.PLANAR_2D)
    # The same workload's activity evaluated as a stack (uniform die
    # spreading, no herding, no 3D energy benefit credited), rescaled to
    # exactly the planar total power; both maps solve in one dispatch.
    stacked_breakdown = model.evaluate(base_run, StackKind.STACKED_3D)
    scale = planar_breakdown.total_watts / stacked_breakdown.total_watts
    solved = context.thermal_grouped({
        StackKind.PLANAR_2D: [([planar_breakdown] * CORE_COUNT, 1.0)],
        StackKind.STACKED_3D: [([stacked_breakdown] * CORE_COUNT, scale)],
    })
    planar = solved[StackKind.PLANAR_2D][0]
    iso = solved[StackKind.STACKED_3D][0]
    return PowerDensityResult(
        planar=planar,
        iso_power=iso,
        planar_watts=CORE_COUNT * planar_breakdown.total_watts,
        iso_watts=CORE_COUNT * stacked_breakdown.total_watts * scale,
    )
