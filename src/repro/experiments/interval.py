"""Interval power/thermal co-simulation: time-resolved herding effects.

The steady-state experiments collapse each run into one average power
map, which hides exactly the dynamics thermal herding is meant to
control: bursty phases that push the stack past a thermal ceiling and
force dynamic thermal management (DTM) to throttle.  This experiment
closes the loop:

1. **Interval power extraction** — each benchmark run is bucketed into
   N-instruction intervals (:class:`~repro.cpu.wavefront.IntervalCapture`
   plus the vectorized :func:`~repro.cpu.wavefront.build_interval_series`
   binning, no per-instruction Python loop), and every interval is
   evaluated through the calibrated power model into per-die power
   grids.  The resulting :class:`IntervalPowerTrace` is content-addressed
   in the on-disk cache, so warm sweeps skip re-extraction entirely.
2. **Batched transient stepping** — the per-config traces drive
   temperature-reactive schedules through
   :meth:`~repro.experiments.context.ExperimentContext.transient_many`,
   which groups runs by step-matrix key and advances each group in
   lock-step through a single factorization with a multi-column
   right-hand side.
3. **DTM scenario** — every configuration runs twice: free-running, and
   under a thermal ceiling with a throttle governor
   (:class:`IntervalPowerSchedule`) that scales power whenever the
   previous step's die peak breaches the ceiling.  The throttle duty
   cycle measures how often DTM must act; comparing 3D against 3D-noTH
   shows thermal herding buying back throttle-free cycles.

All stepping is deterministic and the extraction always uses the
columnar capture path, so the report section is byte-identical across
serial/parallel runs and ``REPRO_COLUMNAR`` modes, and a warm run
re-simulates nothing.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cpu.pipeline import TimingSimulator
from repro.cpu.predecode import predecode
from repro.cpu.wavefront import IntervalCapture, build_interval_series
from repro.experiments.cache import interval_trace_key
from repro.experiments.context import (
    CONFIG_STACKS,
    CORE_COUNT,
    REFERENCE_BENCHMARK,
    ExperimentContext,
    TransientRequest,
)
from repro.power.model import StackKind
from repro.thermal.power_map import build_power_map, rasterize
from repro.thermal.transient import PowerSchedule

#: Default interval granularity (instructions per bucket).
DEFAULT_INTERVAL_INSTS = 2_000


@dataclass
class IntervalPowerTrace:
    """Per-interval per-die power grids of one (benchmark, config) run.

    ``die_grids[j]`` holds interval ``j``'s rasterized chip-window grids,
    one ``(cny, cnx)`` array per power-bearing layer in the stack's
    die-layer order; ``time_ns``/``chip_watts`` are the interval runtimes
    and total chip powers.  Instances are content-addressed in the result
    cache (:func:`~repro.experiments.cache.interval_trace_key`).
    """

    benchmark: str
    config_label: str
    stack: StackKind
    interval_insts: int
    time_ns: np.ndarray
    chip_watts: np.ndarray
    die_grids: List[List[np.ndarray]]

    def __len__(self) -> int:
        return len(self.die_grids)


def extract_interval_trace(
    context: ExperimentContext,
    benchmark: str,
    config_label: str,
    interval_insts: int = DEFAULT_INTERVAL_INSTS,
) -> IntervalPowerTrace:
    """Extract (or load) the interval power trace of one run.

    Always drives the columnar capture path explicitly — independent of
    ``REPRO_COLUMNAR`` — so the trace (and everything downstream) is
    identical whichever simulation path the rest of the context uses.
    On a cache hit the simulator is never touched.
    """
    config = context._config_for(config_label)
    stack = CONFIG_STACKS[config_label]
    solver = context.solver(stack)
    model = context.power_model()
    key = None
    if context.cache is not None:
        key = interval_trace_key(
            context._cache_key(benchmark, config),
            interval_insts,
            model.activity_scale,
            CORE_COUNT,
            solver,
        )
        cached = context.cache.load(key, IntervalPowerTrace)
        if cached is not None:
            context.stats.interval_disk_hits += 1
            return cached

    start = time.perf_counter()
    compiled = context._compiled_for(benchmark)
    if compiled is not None:
        pre = predecode(compiled)
        warmup = context.settings.warmup
        capture = IntervalCapture(interval_insts)
        result = TimingSimulator(config, batched=True).run_compiled(
            pre, warmup=warmup, prewarm=True, capture=capture
        )
        series = build_interval_series(
            pre, config, warmup, True, capture, result.activity
        )
        breakdowns = model.evaluate_intervals(result, series, stack)
        cycles = np.asarray(series.cycles, dtype=np.int64)
    else:
        # Non-columnar workloads degrade to a one-interval trace built
        # from the aggregate run — the same special case the interval
        # binning reduces to for interval_insts >= the trace length.
        result = context.run(benchmark, config_label)
        breakdowns = [model.evaluate(result, stack)]
        cycles = np.asarray([result.cycles], dtype=np.int64)

    plan = context.floorplan(stack)
    ny, nx = solver.chip_grid_shape()
    time_ns = np.maximum(cycles, 1).astype(float) / result.clock_ghz
    chip_watts = np.empty(len(breakdowns), dtype=float)
    die_grids: List[List[np.ndarray]] = []
    for j, breakdown in enumerate(breakdowns):
        watts = build_power_map(plan, [breakdown] * CORE_COUNT)
        die_grids.append(rasterize(plan, watts, nx, ny))
        chip_watts[j] = CORE_COUNT * breakdown.total_watts
    trace = IntervalPowerTrace(
        benchmark=benchmark,
        config_label=config_label,
        stack=stack,
        interval_insts=interval_insts,
        time_ns=time_ns,
        chip_watts=chip_watts,
        die_grids=die_grids,
    )
    context.stats.intervals_extracted += len(die_grids)
    context.stats.add_stage("interval", time.perf_counter() - start)
    if key is not None:
        context.cache.store(key, trace)
    return trace


class IntervalPowerSchedule(PowerSchedule):
    """Loops an interval power trace, optionally under a DTM governor.

    The trace's intervals are laid out over one ``pass_s``-second pass
    with durations proportional to their simulated runtimes, and the
    pass repeats for as long as the integration runs — the stepper reads
    the interval active at each step's wall-clock position.

    With a ``ceiling_k`` the schedule models reactive throttling with
    hysteresis: when the previous step's die peak reaches the ceiling
    the governor engages and scales every grid by ``throttle_factor``;
    it disengages once the peak falls ``hysteresis_k`` below the
    ceiling.  :meth:`stats` reports the accumulated throttle duty, which
    the engine ships back across process boundaries.
    """

    def __init__(
        self,
        trace: IntervalPowerTrace,
        pass_s: float = 1.0,
        ceiling_k: Optional[float] = None,
        throttle_factor: float = 0.5,
        hysteresis_k: float = 2.0,
    ):
        if pass_s <= 0:
            raise ValueError(f"pass_s must be positive, got {pass_s}")
        self.trace = trace
        self.pass_s = float(pass_s)
        self.ceiling_k = None if ceiling_k is None else float(ceiling_k)
        self.throttle_factor = float(throttle_factor)
        self.hysteresis_k = float(hysteresis_k)
        weights = np.asarray(trace.time_ns, dtype=float)
        total = float(weights.sum())
        if total <= 0:
            weights = np.ones(len(trace.die_grids))
            total = float(len(trace.die_grids))
        self._cum = np.cumsum(weights / total) * self.pass_s
        self._engaged = False
        self.steps_total = 0
        self.steps_throttled = 0

    def interval_at(self, t_s: float) -> int:
        """Index of the interval active at wall-clock ``t_s``."""
        pos = math.fmod(t_s, self.pass_s)
        j = int(np.searchsorted(self._cum, pos, side="right"))
        return min(j, len(self._cum) - 1)

    def power_grids(self, t_s: float, prev_peak_k: float) -> Sequence[np.ndarray]:
        self.steps_total += 1
        grids = self.trace.die_grids[self.interval_at(t_s)]
        if self.ceiling_k is not None:
            if not self._engaged and prev_peak_k >= self.ceiling_k:
                self._engaged = True
            elif (
                self._engaged
                and prev_peak_k <= self.ceiling_k - self.hysteresis_k
            ):
                self._engaged = False
            if self._engaged:
                self.steps_throttled += 1
                # Never mutate the stored grids: the trace is shared
                # between the free-running and throttled schedules.
                return [g * self.throttle_factor for g in grids]
        return grids

    def stats(self) -> Dict[str, float]:
        out = {
            "steps_total": float(self.steps_total),
            "steps_throttled": float(self.steps_throttled),
        }
        if self.steps_total:
            out["throttle_duty"] = self.steps_throttled / self.steps_total
        return out


@dataclass
class IntervalRow:
    """One configuration's free-running vs throttled outcome."""

    config: str
    intervals: int
    ceiling_k: float
    free_peak_k: float
    throttled_peak_k: float
    throttle_duty: float


@dataclass
class IntervalResult:
    """Interval co-simulation sweep across the paper's configurations."""

    benchmark: str
    interval_insts: int
    dt_s: float
    duration_s: float
    rows: List[IntervalRow] = field(default_factory=list)

    def row(self, config: str) -> IntervalRow:
        for row in self.rows:
            if row.config == config:
                return row
        raise KeyError(config)

    def format(self) -> str:
        lines = [
            f"interval co-simulation: {self.benchmark}, "
            f"{self.interval_insts}-inst intervals, "
            f"dt {self.dt_s * 1e3:.0f} ms over {self.duration_s:.1f} s",
            f"  {'config':<8s} {'ivals':>5s} {'free peak':>10s} "
            f"{'ceiling':>8s} {'dtm peak':>9s} {'duty':>6s}",
        ]
        for r in self.rows:
            lines.append(
                f"  {r.config:<8s} {r.intervals:>5d} "
                f"{r.free_peak_k:>8.1f} K {r.ceiling_k:>6.1f} K "
                f"{r.throttled_peak_k:>7.1f} K {r.throttle_duty:>5.1%}"
            )
        try:
            herded = self.row("3D")
            unherded = self.row("3D-noTH")
        except KeyError:
            return "\n".join(lines)
        if unherded.throttle_duty > herded.throttle_duty:
            lines.append(
                "thermal herding cuts the 3D throttle duty from "
                f"{unherded.throttle_duty:.1%} to {herded.throttle_duty:.1%}"
            )
        else:
            lines.append(
                f"3D throttle duty: {herded.throttle_duty:.1%} herded vs "
                f"{unherded.throttle_duty:.1%} unherded"
            )
        return "\n".join(lines)


def run_interval(
    context: Optional[ExperimentContext] = None,
    benchmark: str = REFERENCE_BENCHMARK,
    interval_insts: int = DEFAULT_INTERVAL_INSTS,
    dt_s: float = 20e-3,
    duration_s: float = 4.0,
    pass_s: float = 1.0,
    ceiling_delta_k: float = 45.0,
    throttle_factor: float = 0.5,
    configs: Optional[Sequence[str]] = None,
) -> IntervalResult:
    """Run the interval co-simulation sweep.

    Every configuration's interval trace drives two transient runs — one
    free-running, one throttled against ``ambient + ceiling_delta_k`` —
    and all runs dispatch through one
    :meth:`~repro.experiments.context.ExperimentContext.transient_many`
    call, so runs sharing a step matrix (all planar configurations, all
    3D configurations) step in lock-step through one factorization.  The
    ceiling is anchored to ambient rather than a steady-state solve, so
    warm report runs stay free of thermal solves.
    """
    context = context or ExperimentContext()
    labels = list(configs) if configs is not None else list(context.configs)
    traces = [
        extract_interval_trace(context, benchmark, label, interval_insts)
        for label in labels
    ]
    requests: List[TransientRequest] = []
    ceilings: List[float] = []
    for label, trace in zip(labels, traces):
        stack = CONFIG_STACKS[label]
        ceiling = context.solver(stack).stack.ambient_k + ceiling_delta_k
        ceilings.append(ceiling)
        requests.append(TransientRequest(
            stack=stack,
            schedule=IntervalPowerSchedule(trace, pass_s=pass_s),
            dt_s=dt_s,
            duration_s=duration_s,
        ))
        requests.append(TransientRequest(
            stack=stack,
            schedule=IntervalPowerSchedule(
                trace,
                pass_s=pass_s,
                ceiling_k=ceiling,
                throttle_factor=throttle_factor,
            ),
            dt_s=dt_s,
            duration_s=duration_s,
        ))
    outcomes = context.transient_many(requests)
    result = IntervalResult(
        benchmark=benchmark,
        interval_insts=interval_insts,
        dt_s=dt_s,
        duration_s=duration_s,
    )
    for i, (label, trace) in enumerate(zip(labels, traces)):
        free, _ = outcomes[2 * i]
        throttled, duty_stats = outcomes[2 * i + 1]
        result.rows.append(IntervalRow(
            config=label,
            intervals=len(trace),
            ceiling_k=ceilings[i],
            free_peak_k=max(free.peak_k),
            throttled_peak_k=max(throttled.peak_k),
            throttle_duty=duty_stats.get("throttle_duty", 0.0),
        ))
    return result
