"""Heterogeneous core pairing: thermal-aware workload placement.

The paper's chip carries two cores.  Its figures run the same application
on both; this extension pairs *different* applications and shows that
co-scheduling a hot compute-bound app with a cool memory-bound app lowers
the chip's worst-case temperature versus two hot instances — the
scheduling-level complement to microarchitectural herding.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.cpu.multicore import DualCoreRun
from repro.experiments.context import ExperimentContext, REFERENCE_BENCHMARK
from repro.power.model import StackKind
from repro.thermal.solver import ThermalResult

#: Default pairings: hot+hot, hot+cool, cool+cool.
DEFAULT_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("mpeg2", "mpeg2"),
    ("mpeg2", "mcf"),
    ("mcf", "mcf"),
)


@dataclass
class PairingPoint:
    """One pairing's chip-level outcome."""

    pair: Tuple[str, str]
    throughput_ipns: float
    chip_watts: float
    peak_k: float
    hottest_block: str


@dataclass
class PairingResult:
    """All evaluated pairings (3D Thermal Herding processor)."""

    points: List[PairingPoint]

    def by_pair(self) -> Dict[Tuple[str, str], PairingPoint]:
        return {p.pair: p for p in self.points}

    def format(self) -> str:
        lines = [
            "core pairing on the 3D Thermal Herding chip",
            f"{'pair':<18s} {'IPns':>6s} {'chip W':>8s} {'peak K':>8s}  hottest",
        ]
        for p in self.points:
            label = "+".join(p.pair)
            lines.append(
                f"{label:<18s} {p.throughput_ipns:6.2f} {p.chip_watts:8.1f} "
                f"{p.peak_k:8.1f}  {p.hottest_block}"
            )
        return "\n".join(lines)


def run_pairing(
    context: Optional[ExperimentContext] = None,
    pairs: Tuple[Tuple[str, str], ...] = DEFAULT_PAIRS,
) -> PairingResult:
    """Evaluate each pairing's power and thermals on the 3D processor."""
    context = context or ExperimentContext()
    config = context.configs["3D"]
    # Each active core sees half the shared L2 (simulate_dual_core's
    # symmetric-partition model); runs go through the context so they are
    # parallelized, memoized, and persisted like every other simulation.
    half = max(config.l2_size // 2, config.line_bytes * config.l2_assoc)
    core_config = replace(config, l2_size=half, name=f"{config.name}-halfl2")
    members = sorted({name for pair in pairs for name in pair})
    context.prefetch([(REFERENCE_BENCHMARK, "Base")])  # power-model calibration anchor
    context.prefetch_configs((name, core_config) for name in members)
    model = context.power_model()

    runs = [
        DualCoreRun(
            core0=context.run_config(pair[0], core_config),
            core1=context.run_config(pair[1], core_config),
        )
        for pair in pairs
    ]
    pair_breakdowns = [
        [model.evaluate(result, StackKind.STACKED_3D) for result in run.results]
        for run in runs
    ]
    # One batched dispatch: every pairing shares the 3D geometry, so all
    # maps solve against a single factorization.
    thermals: List[ThermalResult] = context.thermal_batch(
        [(breakdowns, 1.0) for breakdowns in pair_breakdowns],
        StackKind.STACKED_3D,
    )
    points: List[PairingPoint] = []
    for pair, run, breakdowns, thermal in zip(pairs, runs, pair_breakdowns,
                                              thermals):
        name, die, _ = thermal.hottest_block()
        points.append(
            PairingPoint(
                pair=pair,
                throughput_ipns=run.throughput_ipns,
                chip_watts=sum(b.total_watts for b in breakdowns),
                peak_k=thermal.peak_temperature,
                hottest_block=f"{name} (die {die})",
            )
        )
    return PairingResult(points=points)
