"""Experiment harness: one module per table/figure of the paper.

* :mod:`~repro.experiments.table2` — 2D vs 3D block latencies and the
  derived clock frequencies (Section 5.1.1, Table 2).
* :mod:`~repro.experiments.figure8` — IPC, instructions-per-ns, and
  relative speedup per benchmark class for the Base/TH/Pipe/Fast/3D
  configurations (Figure 8).
* :mod:`~repro.experiments.figure9` — total power and per-module power
  maps for the planar, 3D-without-herding, and 3D Thermal Herding
  processors, plus the per-application savings range (Figure 9).
* :mod:`~repro.experiments.figure10` — worst-case and fixed-application
  thermal maps for the three processors (Figure 10).
* :mod:`~repro.experiments.power_density` — the iso-power, iso-frequency
  4x power density experiment (Section 5.3).
* :mod:`~repro.experiments.width_stats` — the 97 % width prediction
  accuracy claim (Section 3.8) and per-technique herding metrics.

All experiments share an :class:`~repro.experiments.context.ExperimentContext`
that caches traces, simulation runs, and the calibrated power model.
"""

from repro.experiments.cache import ResultCache
from repro.experiments.context import (
    ContextStats,
    ExperimentContext,
    ExperimentSettings,
)
from repro.experiments.table2 import run_table2, Table2Result
from repro.experiments.figure8 import run_figure8, Figure8Result
from repro.experiments.figure9 import run_figure9, Figure9Result
from repro.experiments.figure10 import run_figure10, Figure10Result
from repro.experiments.power_density import run_power_density, PowerDensityResult
from repro.experiments.width_stats import run_width_stats, WidthStatsResult

__all__ = [
    "ContextStats",
    "ExperimentContext",
    "ExperimentSettings",
    "ResultCache",
    "run_table2",
    "Table2Result",
    "run_figure8",
    "Figure8Result",
    "run_figure9",
    "Figure9Result",
    "run_figure10",
    "Figure10Result",
    "run_power_density",
    "PowerDensityResult",
    "run_width_stats",
    "WidthStatsResult",
]
