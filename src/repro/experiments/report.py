"""Full markdown report: every experiment with paper-vs-measured columns.

This is the machinery behind ``python -m repro report`` and the
EXPERIMENTS.md regeneration.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.context import ExperimentContext
from repro.experiments.dvfs import run_dvfs
from repro.experiments.figure7 import run_figure7
from repro.experiments.figure8 import run_figure8
from repro.experiments.figure9 import run_figure9
from repro.experiments.figure10 import run_figure10
from repro.experiments.interval import run_interval
from repro.experiments.power_density import run_power_density
from repro.experiments.leakage import run_leakage_feedback
from repro.experiments.pairing import run_pairing
from repro.experiments.roadmap import run_roadmap
from repro.experiments.sensitivity import run_sensitivity
from repro.experiments.stacking_order import run_stacking_order
from repro.experiments.table2 import run_table2
from repro.experiments.width_stats import run_width_stats


def stats_payload(context: ExperimentContext, wall_s: float,
                  fast: bool) -> dict:
    """The ``--stats``/``--log-json`` telemetry payload for one report run.

    Run telemetry (:meth:`ContextStats.as_dict`, which includes
    ``stage_seconds`` and the ``FACTORIZATION_STATS`` snapshot) at the
    top level — the layout CI's ``BENCH_report.json`` assembles — plus
    the cache/ledger metrics section under ``"metrics"`` so a single
    file answers both "what ran" and "what the cache did".
    """
    from repro.experiments.metrics import cache_metrics

    return {
        "wall_s": round(wall_s, 3),
        "jobs": context.jobs,
        "fast": bool(fast),
        **context.stats.as_dict(),
        "metrics": cache_metrics(context.cache),
    }


def _section(title: str, body: str) -> str:
    return f"## {title}\n\n```\n{body}\n```\n"


def _comparison_table(rows) -> str:
    lines = [
        "| quantity | paper | this repo |",
        "|---|---|---|",
    ]
    for quantity, paper, measured in rows:
        lines.append(f"| {quantity} | {paper} | {measured} |")
    return "\n".join(lines)


def generate_report(context: Optional[ExperimentContext] = None) -> str:
    """Run everything and render one markdown document."""
    context = context or ExperimentContext()

    # The whole (benchmark x configuration) grid is known up front: fan it
    # out across workers (or the warm on-disk cache) before any figure
    # demand-pulls runs one at a time.
    context.prefetch(context.grid())

    table2 = run_table2()
    figure8 = run_figure8(context)
    figure9 = run_figure9(context)
    figure10 = run_figure10(context)
    density = run_power_density(context)
    width = run_width_stats(context)
    dvfs = run_dvfs(context)
    roadmap = run_roadmap(context)
    sensitivity = run_sensitivity(context)
    stacking = run_stacking_order(context)
    leakage = run_leakage_feedback(context)
    pairing = run_pairing(context)
    interval = run_interval(context)
    figure7 = run_figure7()

    headline = _comparison_table([
        ("clock frequency gain", "+47.9% (2.66 -> 3.93 GHz)",
         f"+{table2.frequency_gain:.1%} ({table2.frequencies.f2d_ghz:.2f} -> "
         f"{table2.frequencies.f3d_ghz:.2f} GHz)"),
        ("wakeup-select loop", "-32%", f"-{table2.wakeup_improvement:.1%}"),
        ("ALU+bypass loop", "-36%", f"-{table2.alu_bypass_improvement:.1%}"),
        ("mean performance gain", "+47.0% (min 7%, max 77%)",
         f"+{figure8.mean_of_means_speedup - 1:.1%} "
         f"(min {figure8.min_speedup - 1:.0%}, max {figure8.max_speedup - 1:.0%})"),
        ("peak-power app chip power", "90 W planar",
         f"{figure9.base_chip_watts:.1f} W"),
        ("3D (no herding) power", "72.7 W (-19%)",
         f"{figure9.no_herding_chip_watts:.1f} W (-{figure9.no_herding_saving:.1%})"),
        ("3D Thermal Herding power", "64.3 W (-29%)",
         f"{figure9.herding_chip_watts:.1f} W (-{figure9.herding_saving:.1%})"),
        ("per-app TH saving range", "15% .. 30%",
         f"{figure9.min_saving[1]:.1%} .. {figure9.max_saving[1]:.1%}"),
        ("planar worst-case peak", "360 K (scheduler)",
         f"{figure10.peak_2d:.0f} K "
         f"({figure10.worst_case['Base'][1].hottest_block()[0].split('.')[-1]})"),
        ("3D temp increase, no herding", "+17 K", f"+{figure10.delta_no_herding:.0f} K"),
        ("3D temp increase, herding", "+12 K", f"+{figure10.delta_herding:.0f} K"),
        ("herding's reduction of the increase", "29%",
         f"{figure10.herding_delta_reduction:.0%}"),
        ("iso-power 4x-density increase", "+58 K", f"+{density.delta_k:.0f} K"),
        ("width prediction accuracy", "97% of fetched",
         f"{width.mean_all_inst_accuracy:.1%}"),
    ])

    parts = [
        "# Thermal Herding reproduction — experiment report",
        "",
        f"workloads: {len(context.settings.benchmark_list())} benchmarks, "
        f"{context.settings.trace_length} instructions each "
        f"({context.settings.warmup} warmup)",
        "",
        "## Headline comparison",
        "",
        headline,
        "",
        _section("Table 2 — block latencies and frequencies", table2.format()),
        _section("Figure 7 — floorplans", figure7.format()),
        _section("Figure 8 — performance", figure8.format()),
        _section("Figure 9 — power", figure9.format()),
        _section("Figure 10 — thermals", figure10.format()),
        _section("Section 5.3 — iso-power density", density.format()),
        _section("Section 3.8 — width prediction", width.format()),
        _section("Extension — DVFS (performance for temperature)", dvfs.format()),
        _section("Extension — Figure 2 roadmap", roadmap.format()),
        _section("Extension — thermal sensitivity", sensitivity.format()),
        _section("Extension — stacking-order ablation", stacking.format()),
        _section("Extension — leakage-temperature feedback", leakage.format()),
        _section("Extension — heterogeneous core pairing", pairing.format()),
        _section("Extension — interval power/thermal co-simulation",
                 interval.format()),
    ]
    return "\n".join(parts)
