"""Thermal sensitivity analysis of the Section 4 packaging assumptions.

The paper's thermal conclusions rest on three packaging parameters: the
sink's convection resistance, the TIM conductivity (they assume a
phase-change metallic alloy), and the d2d via fill (25 % copper).  This
study sweeps each around its nominal value and reports the worst-case 3D
Thermal Herding temperature, showing which assumption the +12 K result
leans on hardest.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.context import CORE_COUNT, ExperimentContext, REFERENCE_BENCHMARK
from repro.power.model import StackKind
from repro.thermal.materials import COPPER, D2D_BOND, Material, TIM_ALLOY
from repro.thermal.power_map import build_power_map, rasterize
from repro.thermal.solver import ThermalSolver
from repro.thermal.stack import LayerSpec, ThermalStack, stacked_3d_stack


@dataclass
class SensitivityPoint:
    """One parameter setting and the resulting peak temperature."""

    parameter: str
    value: float
    peak_k: float


@dataclass
class SensitivityResult:
    """Sweeps of the three packaging parameters."""

    nominal_peak_k: float
    points: List[SensitivityPoint]

    def by_parameter(self) -> Dict[str, List[SensitivityPoint]]:
        grouped: Dict[str, List[SensitivityPoint]] = {}
        for point in self.points:
            grouped.setdefault(point.parameter, []).append(point)
        return grouped

    def spread(self, parameter: str) -> float:
        """Peak-to-peak temperature spread of one parameter's sweep."""
        temps = [p.peak_k for p in self.points if p.parameter == parameter]
        return max(temps) - min(temps) if temps else 0.0

    def format(self) -> str:
        lines = [
            f"thermal sensitivity (3D TH worst case, nominal {self.nominal_peak_k:.1f} K)",
            f"{'parameter':<22s} {'value':>10s} {'peak K':>8s}",
        ]
        for parameter, points in self.by_parameter().items():
            for p in points:
                lines.append(f"{parameter:<22s} {p.value:10.3g} {p.peak_k:8.1f}")
            lines.append(f"  -> spread {self.spread(parameter):.1f} K")
        return "\n".join(lines)


def _stack_with(
    convection: float,
    tim_k: float,
    via_copper_fraction: float,
) -> ThermalStack:
    """A 3D stack with modified packaging parameters."""
    tim = Material("tim-sweep", conductivity_w_mk=tim_k)
    bond_k = via_copper_fraction * COPPER.conductivity_w_mk + \
        (1.0 - via_copper_fraction) * 0.5
    bond = Material("bond-sweep", conductivity_w_mk=bond_k)
    base = stacked_3d_stack(convection)
    layers = []
    for layer in base.layers:
        if layer.material is TIM_ALLOY:
            layers.append(dataclasses.replace(layer, material=tim))
        elif layer.material is D2D_BOND:
            layers.append(dataclasses.replace(layer, material=bond))
        else:
            layers.append(layer)
    stack = ThermalStack(name="sweep", layers=layers, convection_k_per_w=convection)
    stack.validate()
    return stack


#: (parameter name, nominal, sweep values)
SWEEPS: List[Tuple[str, float, List[float]]] = [
    ("convection K/W", 0.17, [0.12, 0.17, 0.25, 0.35]),
    ("TIM W/mK", 50.0, [4.0, 20.0, 50.0, 80.0]),
    ("via copper fraction", 0.25, [0.05, 0.15, 0.25, 0.50]),
]


def run_sensitivity(
    context: Optional[ExperimentContext] = None,
    benchmark: str = REFERENCE_BENCHMARK,
) -> SensitivityResult:
    """Sweep packaging parameters for the 3D TH processor."""
    context = context or ExperimentContext()
    context.prefetch([(benchmark, "3D"), (REFERENCE_BENCHMARK, "Base")])
    breakdown = context.power(benchmark, "3D")
    plan = context.floorplan(StackKind.STACKED_3D)
    watts = build_power_map(plan, [breakdown] * CORE_COUNT)
    grid = context.settings.thermal_grid

    # Build every sweep point's solver up front and submit the whole
    # grid as one dispatch: each distinct packaging geometry needs its
    # own SuperLU factorization (the dominant cost of this study), and
    # handing them to the solve engine together lets it fan them out
    # across the worker pool instead of factorizing one at a time inline.
    sweep_settings: List[Tuple[str, float, Tuple[float, float, float]]] = [
        ("nominal", 0.0, (0.17, 50.0, 0.25)),
    ]
    for parameter, _nominal_value, values in SWEEPS:
        for value in values:
            convection = value if parameter == "convection K/W" else 0.17
            tim = value if parameter == "TIM W/mK" else 50.0
            copper = value if parameter == "via copper fraction" else 0.25
            sweep_settings.append((parameter, value, (convection, tim, copper)))

    # The chip grid shape depends only on (floorplan, nx, ny), so every
    # sweep stack shares one rasterized power map.
    grids = None
    groups = []
    for _parameter, _value, (convection, tim, copper) in sweep_settings:
        solver = ThermalSolver(_stack_with(convection, tim, copper),
                               plan, grid, grid)
        if grids is None:
            ny, nx = solver.chip_grid_shape()
            grids = rasterize(plan, watts, nx, ny)
        groups.append((solver, [grids]))
    solved = context.solve_thermal_groups(groups)

    nominal = solved[0][0].peak_temperature
    points = [
        SensitivityPoint(parameter=parameter, value=value,
                         peak_k=result[0].peak_temperature)
        for (parameter, value, _), result in zip(sweep_settings[1:], solved[1:])
    ]
    return SensitivityResult(nominal_peak_k=nominal, points=points)
