"""Stacking-order ablation: does the LSW die belong next to the sink?

Thermal Herding's physical premise is that the least-significant-word
die — the one that stays active on narrow values — should sit adjacent
to the heat sink.  This ablation flips the stack (LSW die at the bottom,
farthest from the sink) while keeping the identical per-die power, and
measures how much of the technique's thermal benefit comes purely from
*where* the herded activity lands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.experiments.context import CORE_COUNT, ExperimentContext, REFERENCE_BENCHMARK
from repro.power.model import StackKind
from repro.thermal.power_map import build_power_map, rasterize
from repro.thermal.solver import ThermalResult


@dataclass
class StackingOrderResult:
    """Peak temperatures for the two die orderings."""

    benchmark: str
    herded_peak_k: float       # LSW die adjacent to the sink (the paper)
    inverted_peak_k: float     # LSW die farthest from the sink

    @property
    def penalty_k(self) -> float:
        """Extra degrees from putting the busy die at the bottom."""
        return self.inverted_peak_k - self.herded_peak_k

    def format(self) -> str:
        return "\n".join([
            f"stacking-order ablation ({self.benchmark}, 3D Thermal Herding power)",
            f"  LSW die at the heat sink (paper): {self.herded_peak_k:6.1f} K",
            f"  LSW die at the bottom (flipped):  {self.inverted_peak_k:6.1f} K",
            f"  orientation penalty:              {self.penalty_k:+6.1f} K",
        ])


def run_stacking_order(
    context: Optional[ExperimentContext] = None,
    benchmark: str = REFERENCE_BENCHMARK,
) -> StackingOrderResult:
    """Solve the 3D TH thermal map with normal and flipped die order."""
    context = context or ExperimentContext()
    context.prefetch([(benchmark, "3D"), (REFERENCE_BENCHMARK, "Base")])
    breakdown = context.power(benchmark, "3D")
    plan = context.floorplan(StackKind.STACKED_3D)
    solver = context.solver(StackKind.STACKED_3D)
    watts = build_power_map(plan, [breakdown] * CORE_COUNT)
    ny, nx = solver.chip_grid_shape()
    grids = rasterize(plan, watts, nx, ny)

    # One batched, disk-cached solve for both orientations.
    herded: ThermalResult
    inverted: ThermalResult
    herded, inverted = context.solve_thermal(
        solver, [grids, list(reversed(grids))]
    )
    return StackingOrderResult(
        benchmark=benchmark,
        herded_peak_k=herded.peak_temperature,
        inverted_peak_k=inverted.peak_temperature,
    )
