"""Table 2: 2D vs 3D block latencies and derived clock frequencies."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.circuits.blocks import BlockModel, build_block_models
from repro.circuits.frequency import FrequencyPlan, derive_frequencies

#: Paper values the reproduction is checked against.
PAPER_WAKEUP_IMPROVEMENT = 0.32
PAPER_ALU_BYPASS_IMPROVEMENT = 0.36
PAPER_F2D_GHZ = 2.66
PAPER_F3D_GHZ = 3.93
PAPER_FREQUENCY_GAIN = 0.479


@dataclass
class Table2Result:
    """All block timings plus the frequency derivation."""

    blocks: Dict[str, BlockModel]
    frequencies: FrequencyPlan

    @property
    def wakeup_improvement(self) -> float:
        return self.blocks["wakeup_select_loop"].timing.improvement

    @property
    def alu_bypass_improvement(self) -> float:
        return self.blocks["alu_bypass_loop"].timing.improvement

    @property
    def frequency_gain(self) -> float:
        return self.frequencies.speedup - 1.0

    def format(self) -> str:
        header = (
            f"{'Block':<22s} {'2D (ps)':>9s} {'3D (ps)':>9s} "
            f"{'improve':>8s} {'E2D (pJ)':>9s} {'E3D (pJ)':>9s}"
        )
        lines = ["Table 2: 2D vs 3D block latency and energy", header, "-" * len(header)]
        for name, model in sorted(self.blocks.items()):
            t = model.timing
            marker = " *" if name in ("wakeup_select_loop", "alu_bypass_loop") else ""
            lines.append(
                f"{name:<22s} {t.latency_2d_ps:9.1f} {t.latency_3d_ps:9.1f} "
                f"{t.improvement:7.1%} {t.energy_2d_pj:9.2f} {t.energy_3d_pj:9.2f}{marker}"
            )
        lines.append("* frequency-determining critical loop")
        lines.append(
            f"clock: {self.frequencies.f2d_ghz:.2f} GHz -> {self.frequencies.f3d_ghz:.2f} GHz "
            f"(+{self.frequency_gain:.1%}); paper: {PAPER_F2D_GHZ} -> {PAPER_F3D_GHZ} "
            f"(+{PAPER_FREQUENCY_GAIN:.1%})"
        )
        return "\n".join(lines)


def run_table2() -> Table2Result:
    """Evaluate every block model and derive the two clock frequencies."""
    blocks = build_block_models()
    return Table2Result(blocks=blocks, frequencies=derive_frequencies(blocks))
