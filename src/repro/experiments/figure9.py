"""Figure 9: power of the planar, 3D (no herding), and 3D TH processors.

The paper's peak-power application is mpeg2, two instances on two cores:
90 W planar, 72.7 W for the 3D processor without Thermal Herding (-19 %),
and 64.3 W with Thermal Herding (-29 %).  Across applications the Thermal
Herding saving ranges from 15 % (yacr2) to 30 % (susan).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.experiments.context import CORE_COUNT, ExperimentContext, REFERENCE_BENCHMARK
from repro.power.model import PowerBreakdown

PAPER_BASE_WATTS = 90.0
PAPER_NOTH_WATTS = 72.7
PAPER_TH_WATTS = 64.3
PAPER_MIN_SAVING = 0.15
PAPER_MAX_SAVING = 0.30


@dataclass
class Figure9Result:
    """Chip power for the three processors plus per-app savings."""

    #: per-core breakdowns of the reference app under the three processors
    base: PowerBreakdown
    no_herding: PowerBreakdown
    herding: PowerBreakdown
    #: benchmark -> (2D watts, 3D TH watts, fractional saving), whole chip
    per_benchmark: Dict[str, Tuple[float, float, float]]

    @property
    def base_chip_watts(self) -> float:
        return CORE_COUNT * self.base.total_watts

    @property
    def no_herding_chip_watts(self) -> float:
        return CORE_COUNT * self.no_herding.total_watts

    @property
    def herding_chip_watts(self) -> float:
        return CORE_COUNT * self.herding.total_watts

    @property
    def no_herding_saving(self) -> float:
        return 1.0 - self.no_herding_chip_watts / self.base_chip_watts

    @property
    def herding_saving(self) -> float:
        return 1.0 - self.herding_chip_watts / self.base_chip_watts

    @property
    def min_saving(self) -> Tuple[str, float]:
        name = min(self.per_benchmark, key=lambda b: self.per_benchmark[b][2])
        return name, self.per_benchmark[name][2]

    @property
    def max_saving(self) -> Tuple[str, float]:
        name = max(self.per_benchmark, key=lambda b: self.per_benchmark[b][2])
        return name, self.per_benchmark[name][2]

    def format(self) -> str:
        lines = [
            "Figure 9: total chip power (reference app on both cores)",
            f"  (a) planar 2D      {self.base_chip_watts:6.1f} W   (paper {PAPER_BASE_WATTS} W)",
            f"  (b) 3D no herding  {self.no_herding_chip_watts:6.1f} W  "
            f"(-{self.no_herding_saving:.1%}; paper {PAPER_NOTH_WATTS} W, -19%)",
            f"  (c) 3D herding     {self.herding_chip_watts:6.1f} W  "
            f"(-{self.herding_saving:.1%}; paper {PAPER_TH_WATTS} W, -29%)",
            "",
            "per-application Thermal Herding savings (chip, vs planar):",
        ]
        for name, (w2d, w3d, saving) in sorted(
            self.per_benchmark.items(), key=lambda kv: kv[1][2]
        ):
            lines.append(f"  {name:<10s} {w2d:6.1f} W -> {w3d:6.1f} W   (-{saving:.1%})")
        mn, mx = self.min_saving, self.max_saving
        lines.append(
            f"range: {mn[1]:.1%} ({mn[0]}) .. {mx[1]:.1%} ({mx[0]}); "
            f"paper: 15% (yacr2) .. 30% (susan)"
        )
        return "\n".join(lines)


def run_figure9(context: Optional[ExperimentContext] = None) -> Figure9Result:
    """Evaluate the three processors' power, plus the per-app range."""
    context = context or ExperimentContext()
    context.prefetch(
        [(REFERENCE_BENCHMARK, label) for label in ("Base", "3D-noTH", "3D")]
        + context.grid(("Base", "3D"))
    )
    base = context.power(REFERENCE_BENCHMARK, "Base")
    no_herding = context.power(REFERENCE_BENCHMARK, "3D-noTH")
    herding = context.power(REFERENCE_BENCHMARK, "3D")

    per_benchmark: Dict[str, Tuple[float, float, float]] = {}
    for benchmark in context.settings.benchmark_list():
        w2d = context.chip_power_watts(benchmark, "Base")
        w3d = context.chip_power_watts(benchmark, "3D")
        per_benchmark[benchmark] = (w2d, w3d, 1.0 - w3d / w2d)

    return Figure9Result(
        base=base,
        no_herding=no_herding,
        herding=herding,
        per_benchmark=per_benchmark,
    )
