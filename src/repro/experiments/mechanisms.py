"""Mechanism validation table: each herding mechanism on its microbench.

Runs the hand-built kernels of :mod:`repro.workloads.microbench` through
the Thermal Herding configuration and tabulates, per kernel, the stalls
and herding counters its mechanism should (and should not) produce — the
reproduction's per-mechanism regression surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cpu.config import thermal_herding_config
from repro.cpu.pipeline import simulate
from repro.cpu.results import SimulationResult
from repro.workloads.microbench import KERNELS


@dataclass
class MechanismsResult:
    """Per-kernel simulation results."""

    runs: Dict[str, SimulationResult]

    def format(self) -> str:
        header = (
            f"{'kernel':<14s} {'acc':>5s} {'rf':>4s} {'alu':>4s} {'reex':>5s} "
            f"{'dc':>4s} {'btb':>4s} {'pam':>5s} {'alu-herd':>9s}"
        )
        lines = ["mechanism validation (TH config on crafted kernels)", header,
                 "-" * len(header)]
        for name, result in self.runs.items():
            stalls = result.stalls
            alu = result.activity.module("alu")
            lines.append(
                f"{name:<14s} {result.width_stats.accuracy:5.2f} "
                f"{stalls.rf_group_stalls:4d} {stalls.alu_input_stalls:4d} "
                f"{stalls.alu_reexecutions:5d} {stalls.dcache_width_stalls:4d} "
                f"{stalls.btb_memoization_stalls:4d} "
                f"{result.herding.get('pam_herded', 0.0):5.2f} "
                f"{(alu.herded_fraction if alu.total else 0.0):9.2f}"
            )
        return "\n".join(lines)


def run_mechanisms(warmup: int = 0) -> MechanismsResult:
    """Run every kernel under the TH configuration."""
    config = thermal_herding_config()
    runs = {
        name: simulate(build(), config, warmup=warmup)
        for name, build in KERNELS.items()
    }
    return MechanismsResult(runs=runs)
