"""Persistent on-disk cache of simulation and thermal results.

Every figure consumes the same (benchmark x configuration) grid of
trace-replay simulations, and those simulations are deterministic: the
trace is a pure function of (benchmark name, length, seed) and the timing
model is a pure function of (trace, config, warmup).  Thermal solves are
equally deterministic — a pure function of the solver geometry and the
power grids.  The cache exploits that determinism to make repeated CLI
invocations, benchmark sessions, and report regenerations hit disk
instead of re-simulating or re-solving.

Layout::

    .repro_cache/
        v1/                     <- one directory per key-schema version
            ab/
                ab3f...e2.pkl.gz   <- one gzip-compressed pickled
                                      SimulationResult or ThermalResult
                                      per key

Keys are SHA-256 content hashes over everything a result depends on.
For simulations: the key-schema version, the workload-generator version,
the timing-simulator version, the benchmark name, the fidelity knobs
(trace length, warmup), and every field of the :class:`CPUConfig`.  For
thermal solves (:func:`thermal_key`): the thermal model version, the
solver's geometry fingerprint, and the power grids' raw bytes.
Changing any of these yields a different key, so stale entries are never
*returned* — and bumping :data:`CACHE_SCHEMA_VERSION` moves the cache to
a fresh ``v<N>/`` directory, leaving old versions inert until
``python -m repro cache clear`` (or :meth:`ResultCache.prune_stale`)
removes them.

The cache is on by default; ``REPRO_CACHE=0`` disables it and
``REPRO_CACHE_DIR`` relocates it.

Two cross-process concerns are handled here as well:

* **claim files** — ``<key>.claim`` markers (created with
  ``O_CREAT|O_EXCL``, carrying the claimant's pid and a timestamp) let
  concurrent cold starts on the same key deduplicate to one simulation:
  the loser waits for the winner's entry instead of re-simulating, and
  takes over stale claims whose holder died.  Claims are advisory —
  losing one never blocks progress, it only avoids duplicate work.
* **size bound** — ``REPRO_CACHE_MAX_MB`` sets a high-water mark; every
  ``store`` evicts entries until the cache fits.  Sizes come from an
  exact, crash-safe, sharded on-disk **size ledger**
  (:class:`SizeLedger`): each store/unlink appends a delta record to
  one of ``LEDGER_SHARDS`` append-only shard files (serialized by the
  same ``O_CREAT|O_EXCL`` lock-file protocol the claims use), and a
  compaction pass periodically folds the shards into a checkpoint.
  ``enforce_size_cap`` therefore reads the ledger total instead of
  re-``stat``-ing the whole directory on every store, concurrent
  writers share one exact total (a single cross-process eviction lock
  stops them from each evicting below the watermark), compiled-trace
  entries count against the cap and are evicted *first* (they are
  large and cheap to regenerate), and entries another process holds a
  live claim on are never eviction victims.  Loads still touch their
  entry's mtime *before* reading, so an entry being read sorts
  freshest among the remaining victims and survives.
"""

from __future__ import annotations

import dataclasses
import enum
import gzip
import hashlib
import itertools
import json
import os
import pickle
import shutil
import time
import warnings
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.cpu.config import CPUConfig
from repro.cpu.results import SimulationResult

#: Bump when the cache key schema or the pickled payload layout changes.
CACHE_SCHEMA_VERSION = 1

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro_cache"

#: Environment variable relocating the cache directory.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Environment variable disabling the cache ("0", "off", "no", "false").
ENV_CACHE_ENABLED = "REPRO_CACHE"

#: Environment variable bounding the cache size (megabytes, float OK).
ENV_CACHE_MAX_MB = "REPRO_CACHE_MAX_MB"

_DISABLED_VALUES = frozenset({"0", "off", "no", "false"})

#: Suffix of cross-process claim markers (next to their ``.pkl.gz`` entry).
CLAIM_SUFFIX = ".claim"

#: Age beyond which a claim is stale even if its holder pid is alive
#: (a wedged holder must not block other processes forever).
DEFAULT_CLAIM_STALE_S = 1800.0

#: Shard files the size ledger spreads its append-only delta records
#: across (more shards = less lock contention between writers).
LEDGER_SHARDS = 4

#: A shard larger than this triggers an opportunistic compaction pass
#: that folds every shard into the checkpoint.
LEDGER_COMPACT_BYTES = 32 * 1024

#: Age beyond which a ledger lock held by a live pid is broken anyway
#: (appends and compactions take milliseconds; a minute-old lock is a
#: wedged or killed holder).
LEDGER_LOCK_STALE_S = 60.0

#: Bounded wait for the cross-process eviction lock before enforcing
#: the size cap uncoordinated (never starve; duplicate eviction only
#: risks dipping below the watermark, not correctness).
EVICT_LOCK_WAIT_S = 5.0


def _canonical(value):
    """JSON-serializable canonical form of a config field value."""
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    return value


def simulation_key(
    benchmark: str,
    config: CPUConfig,
    trace_length: int,
    warmup: int,
) -> str:
    """Content hash identifying one deterministic simulation."""
    from repro.cpu.pipeline import SIMULATOR_VERSION
    from repro.workloads.emulator import GENERATOR_VERSION

    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "simulator": SIMULATOR_VERSION,
        "generator": GENERATOR_VERSION,
        "benchmark": benchmark,
        "trace_length": trace_length,
        "warmup": warmup,
        "config": _canonical(dataclasses.asdict(config)),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def thermal_key(solver, die_power_grids) -> str:
    """Content hash identifying one deterministic thermal solve.

    Covers the solver's full result geometry (stack layers, floorplan,
    grid resolution, spreader, boundary conditions — see
    :meth:`repro.thermal.solver.ThermalSolver.result_key`) plus the raw
    bytes of every per-die power grid.
    """
    import numpy as np

    digest = hashlib.sha256()
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "kind": "thermal",
        "geometry": _canonical(solver.result_key()),
    }
    digest.update(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    )
    for grid in die_power_grids:
        array = np.ascontiguousarray(np.asarray(grid, dtype=np.float64))
        digest.update(repr(array.shape).encode("utf-8"))
        digest.update(array.tobytes())
    return digest.hexdigest()


def interval_trace_key(
    sim_key: str,
    interval_insts: int,
    activity_scale: float,
    core_count: int,
    solver,
) -> str:
    """Content hash identifying one interval power trace.

    Covers the simulation it was extracted from (``sim_key`` already
    folds in trace, config, simulator and generator versions), the
    interval granularity, the calibrated power scale, the core
    replication factor, and the rasterization geometry (the solver's
    :meth:`~repro.thermal.solver.ThermalSolver.result_key`, since the
    trace stores chip-resolution per-die grids).
    """
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "kind": "interval_trace",
        "sim": sim_key,
        "interval_insts": interval_insts,
        "activity_scale": activity_scale,
        "core_count": core_count,
        "geometry": _canonical(solver.result_key()),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (EPERM counts as alive)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True
    return True


#: Per-process tiebreak so two records of one process sharing a wall-clock
#: timestamp still fold in append order.
_LEDGER_SEQ = itertools.count()


class SizeLedger:
    """Exact, crash-safe, sharded on-disk accounting of cache entry sizes.

    Layout (inside the cache's version directory)::

        ledger/
            checkpoint.json      <- folded state: {"gen": G, "entries":
                                    {"<kind>:<key>": [bytes, ts]}, "total": N}
            shard-00.g<G>.jsonl  <- append-only delta records of generation G
            shard-00.lock        <- O_CREAT|O_EXCL writer lock (pid + ts)
            compact.lock, evict.lock

    Every ``store``/``unlink`` appends one JSON record — ``{"op", "kind",
    "key", "bytes", "ts", "seq", "pid"}`` — to one of :data:`LEDGER_SHARDS`
    shard files, serialized by the same ``O_CREAT|O_EXCL`` lock-file
    protocol the cache's claims use (stale locks of dead or wedged
    holders are broken).  Reading the total folds the checkpoint with
    every current-generation shard record: O(shards) small-file reads,
    never an O(entries) directory scan.

    Crash model:

    * A writer killed mid-append leaves at most one torn trailing line;
      readers skip lines that do not parse, and :meth:`rebuild` (driven
      by :meth:`ResultCache.repair_ledger`'s directory scan) restores
      exactness.
    * Compaction is generation-based: it folds the generation-``G``
      shards, atomically replaces the checkpoint with generation
      ``G+1``, *then* deletes the folded shards.  A crash between the
      two steps leaves stale shards whose generation no longer matches
      the checkpoint; readers ignore them and the next compaction
      deletes them — deltas are never double-counted.
    * Records fold by ``(ts, seq)`` order, so a store and an unlink of
      the same key in different shards resolve the same way for every
      reader.
    """

    def __init__(self, directory: os.PathLike, shards: int = LEDGER_SHARDS):
        self.dir = Path(directory)
        self.shards = max(1, int(shards))
        self._checkpoint_cache: Optional[Tuple[tuple, dict]] = None
        #: per-process telemetry for the metrics snapshot
        self.appends = 0
        self.compactions = 0
        self.rebuilds = 0

    # -------------------------------------------------------------- #
    # Lock files (same O_CREAT|O_EXCL protocol as the cache claims)

    def _lock_path(self, name: str) -> Path:
        return self.dir / f"{name}.lock"

    def _try_lock(self, name: str) -> bool:
        """One non-blocking attempt at ``name``'s lock; breaks stale locks
        (dead holder, or older than :data:`LEDGER_LOCK_STALE_S`) first."""
        path = self._lock_path(name)
        try:
            self.dir.mkdir(parents=True, exist_ok=True)
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            if self._lock_stale(path):
                try:
                    path.unlink()
                except OSError:
                    pass
            return False
        except OSError:
            return True  # filesystem refused coordination: run uncoordinated
        try:
            os.write(fd, json.dumps(
                {"pid": os.getpid(), "ts": time.time()}).encode("utf-8"))
        except OSError:
            pass
        finally:
            os.close(fd)
        return True

    @staticmethod
    def _lock_stale(path: Path) -> bool:
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            return False  # vanished (released) or unreadable: retry instead
        try:
            holder = json.loads(raw)
        except ValueError:
            return True  # garbled lock: whoever wrote it died mid-write
        pid = holder.get("pid") if isinstance(holder, dict) else None
        if not isinstance(pid, int) or not _pid_alive(pid):
            return True
        ts = holder.get("ts")
        if not isinstance(ts, (int, float)):
            return True
        return (time.time() - ts) > LEDGER_LOCK_STALE_S

    def _unlock(self, name: str) -> None:
        try:
            self._lock_path(name).unlink()
        except OSError:
            pass

    def _acquire(self, name: str, wait_s: float) -> bool:
        """Acquire ``name``'s lock within ``wait_s`` seconds (False = give up)."""
        deadline = time.monotonic() + wait_s
        while not self._try_lock(name):
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.001)
        return True

    # -------------------------------------------------------------- #
    # Checkpoint

    def _checkpoint_path(self) -> Path:
        return self.dir / "checkpoint.json"

    @staticmethod
    def _empty_checkpoint() -> dict:
        return {"gen": 0, "entries": {}, "total": 0}

    def _read_checkpoint(self) -> dict:
        """The parsed checkpoint (cached by stat signature)."""
        path = self._checkpoint_path()
        try:
            st = path.stat()
        except OSError:
            self._checkpoint_cache = None
            return self._empty_checkpoint()
        signature = (st.st_mtime_ns, st.st_size, st.st_ino)
        cached = self._checkpoint_cache
        if cached is not None and cached[0] == signature:
            return cached[1]
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return self._empty_checkpoint()
        if not isinstance(data, dict) or not isinstance(data.get("entries"), dict):
            return self._empty_checkpoint()
        data.setdefault("gen", 0)
        self._checkpoint_cache = (signature, data)
        return data

    def _write_checkpoint(self, gen: int, entries: Dict[str, list]) -> bool:
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "gen": gen,
            "entries": entries,
            "total": sum(int(v[0]) for v in entries.values()),
            "ts": time.time(),
        }
        path = self._checkpoint_path()
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            self.dir.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        self._checkpoint_cache = None
        return True

    # -------------------------------------------------------------- #
    # Shards

    def _shard_path(self, index: int, gen: int) -> Path:
        return self.dir / f"shard-{index:02d}.g{gen}.jsonl"

    def _shard_files(self) -> List[Path]:
        if not self.dir.is_dir():
            return []
        return sorted(self.dir.glob("shard-*.jsonl"))

    @staticmethod
    def _shard_gen(path: Path) -> Optional[int]:
        try:
            return int(path.name.rsplit(".g", 1)[1].split(".", 1)[0])
        except (IndexError, ValueError):
            return None

    def _shard_records(self, gen: int) -> List[dict]:
        """Parsed records of every generation-``gen`` shard (torn trailing
        lines from writers killed mid-append are skipped)."""
        records: List[dict] = []
        for path in self._shard_files():
            if self._shard_gen(path) != gen:
                continue
            try:
                raw = path.read_bytes()
            except OSError:
                continue
            for line in raw.splitlines():
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict) and "op" in record:
                    records.append(record)
        return records

    def shard_record_count(self) -> int:
        """Unfolded delta records currently in the shards (metrics)."""
        return len(self._shard_records(self._read_checkpoint().get("gen", 0)))

    def initialized(self) -> bool:
        """Whether the ledger has ever recorded anything (checkpoint or
        shard present).  False on a pre-ledger cache directory — the
        owner should bootstrap with :meth:`rebuild` from a scan."""
        return self._checkpoint_path().exists() or bool(self._shard_files())

    # -------------------------------------------------------------- #
    # Appends

    def record_store(self, kind: str, key: str, nbytes: int) -> bool:
        """Account a stored (or replaced) entry of ``nbytes`` bytes."""
        return self._append({"op": "store", "kind": kind, "key": key,
                             "bytes": int(nbytes)})

    def record_unlink(self, kind: str, key: str) -> bool:
        """Account a removed entry."""
        return self._append({"op": "unlink", "kind": kind, "key": key})

    def _append(self, record: dict) -> bool:
        """Append one delta record to a shard, under that shard's lock.

        Writers start at a pid-spread shard and probe the others when it
        is busy; with every shard locked they retry briefly, then append
        to their home shard *unlocked* as a last resort (a torn line is
        skipped by readers and healed by the next repair — blocking a
        store on ledger contention would be worse).  Appending re-reads
        the checkpoint generation under the lock, so a record can never
        land in a shard file a concurrent compaction already folded.
        """
        record = {**record, "ts": time.time(), "seq": next(_LEDGER_SEQ),
                  "pid": os.getpid()}
        line = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        base = os.getpid() % self.shards
        shard_size = None
        locked = False
        for attempt in range(4 * self.shards):
            index = (base + attempt) % self.shards
            if not self._try_lock(f"shard-{index:02d}"):
                if attempt >= 2 * self.shards:
                    time.sleep(0.001)
                continue
            locked = True
            break
        if not locked:
            index = base
        try:
            gen = self._read_checkpoint().get("gen", 0)
            path = self._shard_path(index, gen)
            try:
                self.dir.mkdir(parents=True, exist_ok=True)
                with open(path, "ab") as stream:
                    stream.write(line)
                shard_size = path.stat().st_size
            except OSError:
                return False  # degraded filesystem: repair will resync
        finally:
            if locked:
                self._unlock(f"shard-{index:02d}")
        self.appends += 1
        if shard_size is not None and shard_size >= LEDGER_COMPACT_BYTES:
            self.compact()
        return True

    # -------------------------------------------------------------- #
    # Reads

    @staticmethod
    def _fold(entries: Dict[str, list], records: Iterable[dict]) -> Dict[str, list]:
        """Apply delta records to a checkpoint's entry map, in record order."""
        folded = {k: list(v) for k, v in entries.items()}
        def order(record):
            return (record.get("ts", 0.0), record.get("seq", 0))
        for record in sorted(records, key=order):
            key = record.get("key")
            kind = record.get("kind", "result")
            if not isinstance(key, str):
                continue
            composite = f"{kind}:{key}"
            if record.get("op") == "store":
                nbytes = record.get("bytes")
                if isinstance(nbytes, int) and nbytes >= 0:
                    folded[composite] = [nbytes, record.get("ts", 0.0)]
            else:
                folded.pop(composite, None)
        return folded

    def state(self) -> Dict[str, list]:
        """The folded entry map: ``{"<kind>:<key>": [bytes, store_ts]}``.

        Retries when a compaction replaces the checkpoint between the
        checkpoint read and the shard read, so the snapshot is always
        internally consistent.
        """
        for _ in range(3):
            checkpoint = self._read_checkpoint()
            gen = checkpoint.get("gen", 0)
            records = self._shard_records(gen)
            after = self._read_checkpoint()
            if after.get("gen", 0) == gen:
                return self._fold(checkpoint.get("entries", {}), records)
        return self._fold(after.get("entries", {}),
                          self._shard_records(after.get("gen", 0)))

    def total_bytes(self) -> int:
        """The exact tracked size of every accounted entry."""
        return sum(int(v[0]) for v in self.state().values())

    def entry_count(self) -> int:
        return len(self.state())

    # -------------------------------------------------------------- #
    # Compaction / rebuild

    def compact(self) -> bool:
        """Fold every current-generation shard into a new checkpoint.

        Takes the compaction lock plus every shard lock (so no append is
        in flight), writes the generation-``G+1`` checkpoint atomically,
        then deletes the folded (and any orphaned older-generation)
        shard files.  Returns False when another process is compacting
        or a lock could not be acquired in time — never blocks progress.
        """
        if not self._try_lock("compact"):
            return False
        held: List[str] = []
        try:
            for index in range(self.shards):
                name = f"shard-{index:02d}"
                if not self._acquire(name, wait_s=1.0):
                    return False
                held.append(name)
            checkpoint = self._read_checkpoint()
            gen = checkpoint.get("gen", 0)
            entries = self._fold(checkpoint.get("entries", {}),
                                 self._shard_records(gen))
            if not self._write_checkpoint(gen + 1, entries):
                return False
            for path in self._shard_files():
                shard_gen = self._shard_gen(path)
                if shard_gen is None or shard_gen <= gen:
                    try:
                        path.unlink()
                    except OSError:
                        pass
            self.compactions += 1
            return True
        finally:
            for name in held:
                self._unlock(name)
            self._unlock("compact")

    def rebuild(self, entries: Dict[str, list]) -> bool:
        """Replace the ledger state with ``entries`` (a repair scan's
        ground truth), resetting every shard."""
        self._acquire("compact", wait_s=EVICT_LOCK_WAIT_S)
        held: List[str] = []
        try:
            for index in range(self.shards):
                name = f"shard-{index:02d}"
                if self._acquire(name, wait_s=1.0):
                    held.append(name)
            gen = self._read_checkpoint().get("gen", 0)
            if not self._write_checkpoint(gen + 1, entries):
                return False
            for path in self._shard_files():
                try:
                    path.unlink()
                except OSError:
                    pass
            self.rebuilds += 1
            return True
        finally:
            for name in held:
                self._unlock(name)
            self._unlock("compact")


class ResultCache:
    """Load/store :class:`SimulationResult` objects keyed by content hash."""

    def __init__(
        self,
        root: Optional[os.PathLike] = None,
        max_mb: Optional[float] = None,
    ):
        if root is None:
            root = os.environ.get(ENV_CACHE_DIR) or DEFAULT_CACHE_DIR
        self.root = Path(root)
        self.version_dir = self.root / f"v{CACHE_SCHEMA_VERSION}"
        if max_mb is None:
            self.max_bytes = self._max_bytes_from_env()
        else:
            self.max_bytes = int(max_mb * 1024 * 1024) if max_mb > 0 else None
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: bad entries (corrupt, truncated, wrong type) deleted on load
        self.evictions = 0
        #: good entries evicted to respect the size high-water mark
        self.evictions_size = 0
        self._ledger: Optional[SizeLedger] = None

    @staticmethod
    def _max_bytes_from_env() -> Optional[int]:
        raw = os.environ.get(ENV_CACHE_MAX_MB, "").strip()
        if not raw:
            return None
        try:
            max_mb = float(raw)
        except ValueError:
            warnings.warn(
                f"ignoring invalid {ENV_CACHE_MAX_MB}={raw!r} (not a number); "
                f"cache size is unbounded",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        if max_mb <= 0:
            # A zero or negative cap is nonsensical (no store could ever
            # fit under it); treat it like the invalid-number path above.
            warnings.warn(
                f"ignoring invalid {ENV_CACHE_MAX_MB}={raw!r} (must be a "
                f"positive number of megabytes); cache size is unbounded",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        return int(max_mb * 1024 * 1024)

    @classmethod
    def from_env(cls) -> Optional["ResultCache"]:
        """The default cache, or ``None`` when disabled via REPRO_CACHE."""
        flag = os.environ.get(ENV_CACHE_ENABLED, "").strip().lower()
        if flag in _DISABLED_VALUES:
            return None
        return cls()

    # ------------------------------------------------------------------ #
    # Size ledger

    @property
    def ledger(self) -> SizeLedger:
        """The cache's size ledger, bootstrapped on first touch.

        A pre-ledger cache directory (entries on disk but no checkpoint
        or shard files) is brought up to date with one repair scan —
        the only directory-wide scan outside compaction/repair, paid
        once per cache lifetime, never per store.
        """
        if self._ledger is None:
            self._ledger = SizeLedger(self.version_dir / "ledger")
            if not self._ledger.initialized() and (
                self.version_dir.is_dir()
                and next(self.version_dir.glob("*/*.pkl.gz"), None) is not None
                or (self.version_dir / "traces").is_dir()
            ):
                self.repair_ledger()
        return self._ledger

    def _scan_entries(self) -> Dict[str, list]:
        """Ground-truth ledger state from a full directory scan (repair)."""
        entries: Dict[str, list] = {}
        for path in self.entries():
            try:
                st = path.stat()
            except OSError:
                continue
            key = path.name.split(".")[0]
            entries[f"result:{key}"] = [st.st_size, st.st_mtime]
        store = self.trace_store()
        for npy in store.entries():
            key = npy.name[: -len(".npy")]
            total = 0
            ts = 0.0
            for part in (npy, store._meta_path(key)):
                try:
                    st = part.stat()
                except OSError:
                    continue
                total += st.st_size
                ts = max(ts, st.st_mtime)
            entries[f"trace:{key}"] = [total, ts]
        return entries

    def repair_ledger(self) -> int:
        """Rebuild the ledger checkpoint from a directory scan; returns
        the exact tracked byte total.  This is the crash-recovery path —
        torn appends, evictors killed between unlink and record, or
        out-of-band deletions all resync here."""
        entries = self._scan_entries()
        self.ledger.rebuild(entries)
        return sum(int(v[0]) for v in entries.values())

    def _entry_paths(self, kind: str, key: str) -> Tuple[Path, ...]:
        """The on-disk files backing one ledger entry (primary first)."""
        if kind == "trace":
            store = self.trace_store()
            return (store.npy_path(key), store._meta_path(key))
        return (self._path(key),)

    def _claim_live(self, key: str) -> bool:
        """Whether ``key`` has a live (non-stale) claim — a peer is
        producing or loading it right now, so it is not an eviction
        victim."""
        if self.claim_holder(key) is None:
            return False
        return not self.claim_stale(key)

    # ------------------------------------------------------------------ #

    def _path(self, key: str) -> Path:
        return self.version_dir / key[:2] / f"{key}.pkl.gz"

    def load(self, key: str, expected_type: type = SimulationResult):
        """The cached result for ``key``, or ``None`` on a miss.

        ``expected_type`` guards against key collisions across result
        kinds (simulation vs thermal).  Bad entries — truncated writes,
        incompatible pickles, payloads of the wrong type — are deleted
        and treated as misses, so one damaged file costs one re-run, not
        a re-read-and-miss on every subsequent load.
        """
        path = self._path(key)
        try:
            # Touch *before* reading: the size-cap evictor removes
            # oldest-mtime entries first, so an entry being read is the
            # freshest in the cache and never the victim.
            os.utime(path)
        except OSError:
            pass
        try:
            with gzip.open(path, "rb") as stream:
                result = pickle.load(stream)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, EOFError, pickle.UnpicklingError,
                AttributeError, ImportError, IndexError):
            self._evict(path)
            self.misses += 1
            return None
        if not isinstance(result, expected_type):
            self._evict(path)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def _evict(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            return
        self.evictions += 1
        self.ledger.record_unlink("result", path.name.split(".")[0])

    def store(self, key: str, result) -> None:
        """Persist ``result`` under ``key`` (atomic within a filesystem)."""
        # Touch the ledger *before* the entry lands on disk: on a truly
        # fresh cache directory the bootstrap check then sees an empty
        # directory and skips the repair scan entirely.
        ledger = self.ledger
        path = self._path(key)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            # Level 2 instead of the gzip default (9): cache entries are
            # written once per cold simulation on the critical path, and
            # the ~5x faster compression is worth the slightly larger
            # files (the size cap bounds total growth either way).
            with gzip.open(tmp, "wb", compresslevel=2) as stream:
                pickle.dump(result, stream, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            # A read-only or full filesystem degrades to cacheless operation.
            try:
                tmp.unlink()
            except OSError:
                pass
            return
        self.stores += 1
        try:
            nbytes = path.stat().st_size
        except OSError:
            nbytes = None
        if nbytes is not None:
            ledger.record_store("result", key, nbytes)
        self.enforce_size_cap(protect=path)

    # ------------------------------------------------------------------ #
    # Size high-water mark

    def enforce_size_cap(self, protect=None) -> int:
        """Evict entries until the ledger total fits ``max_bytes``.

        The total comes from the size ledger — O(shards) small-file
        reads, never a directory-wide ``stat`` scan — so every process
        sharing the cache sees the same exact number, and a single
        cross-process eviction lock keeps concurrent writers from each
        evicting below the watermark.  Victim policy: compiled-trace
        entries go first (large, cheap to regenerate), then result
        entries, each oldest-mtime first; ``protect`` (the entry or
        entries just stored), keys with a live claim (a peer is
        producing or waiting on them), and the freshest-mtime survivor
        an in-progress ``load`` just touched are never victims.
        Returns the number of entries removed.
        """
        if self.max_bytes is None:
            return 0
        ledger = self.ledger
        if ledger.total_bytes() <= self.max_bytes:
            return 0
        if protect is None:
            protected = frozenset()
        elif isinstance(protect, (str, os.PathLike)):
            protected = frozenset((Path(protect),))
        else:
            protected = frozenset(Path(p) for p in protect)
        # One evictor at a time: everyone reads the same exact ledger
        # total, so the loser can simply wait — two uncoordinated
        # evictors would each pick victims and land below the watermark.
        locked = ledger._acquire("evict", wait_s=EVICT_LOCK_WAIT_S)
        try:
            state = ledger.state()
            total = sum(int(v[0]) for v in state.values())
            if total <= self.max_bytes:
                return 0  # the previous lock holder already made room
            candidates = []
            for composite, (nbytes, _ts) in state.items():
                kind, _, key = composite.partition(":")
                paths = self._entry_paths(kind, key)
                try:
                    mtime = paths[0].stat().st_mtime
                except OSError:
                    # Vanished behind the ledger's back (peer evictor
                    # died between unlink and record): heal the ledger.
                    ledger.record_unlink(kind, key)
                    total -= int(nbytes)
                    continue
                candidates.append(
                    (kind != "trace", mtime, str(paths[0]), kind, key,
                     int(nbytes), paths)
                )
            removed = 0
            for _, _, _, kind, key, nbytes, paths in sorted(candidates):
                if total <= self.max_bytes:
                    break
                if protected and not protected.isdisjoint(paths):
                    continue
                if kind == "result" and self._claim_live(key):
                    continue
                try:
                    paths[0].unlink()
                except FileNotFoundError:
                    total -= nbytes  # a peer removed (and recorded) it
                    continue
                except OSError:
                    continue
                for extra in paths[1:]:
                    try:
                        extra.unlink()
                    except OSError:
                        pass
                ledger.record_unlink(kind, key)
                total -= nbytes
                removed += 1
                self.evictions_size += 1
            return removed
        finally:
            if locked:
                ledger._unlock("evict")

    # ------------------------------------------------------------------ #
    # Cross-process claims

    def _claim_path(self, key: str) -> Path:
        return self.version_dir / key[:2] / f"{key}{CLAIM_SUFFIX}"

    def try_claim(self, key: str) -> bool:
        """Atomically claim ``key`` for this process.

        True means "go simulate" — either the claim file was created
        (``O_CREAT|O_EXCL``: exactly one process wins) or the filesystem
        refused coordination (read-only etc.), in which case running
        uncoordinated is the only safe degradation.  False means another
        live process holds the claim; wait for its entry instead.
        """
        path = self._claim_path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:
            return True
        try:
            os.write(fd, json.dumps(
                {"pid": os.getpid(), "ts": time.time()}).encode("utf-8"))
        except OSError:
            pass
        finally:
            os.close(fd)
        return True

    def claim_holder(self, key: str) -> Optional[dict]:
        """The claim's ``{"pid": ..., "ts": ...}`` payload; ``{}`` when the
        claim exists but is unreadable/garbled; ``None`` when unclaimed."""
        path = self._claim_path(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError:
            return {}
        try:
            data = json.loads(raw)
        except ValueError:
            return {}
        return data if isinstance(data, dict) else {}

    def claim_stale(
        self, key: str, max_age_s: float = DEFAULT_CLAIM_STALE_S
    ) -> bool:
        """Whether ``key``'s claim is abandoned (dead holder or too old)."""
        holder = self.claim_holder(key)
        if holder is None:
            return False
        pid = holder.get("pid")
        if not isinstance(pid, int) or not _pid_alive(pid):
            return True
        ts = holder.get("ts")
        if not isinstance(ts, (int, float)):
            try:
                ts = self._claim_path(key).stat().st_mtime
            except OSError:
                return False  # claim vanished between reads: not stale, gone
        return (time.time() - ts) > max_age_s

    def break_claim(self, key: str) -> None:
        """Forcibly remove ``key``'s claim (stale-claim takeover)."""
        try:
            self._claim_path(key).unlink()
        except OSError:
            pass

    def release_claim(self, key: str) -> None:
        """Remove ``key``'s claim if this process owns it (or it is garbled)."""
        holder = self.claim_holder(key)
        if holder is None:
            return
        pid = holder.get("pid")
        if isinstance(pid, int) and pid != os.getpid():
            return
        self.break_claim(key)

    def claims(self) -> List[Path]:
        """All claim files of the current schema version, sorted."""
        if not self.version_dir.is_dir():
            return []
        return sorted(self.version_dir.glob(f"*/*{CLAIM_SUFFIX}"))

    def sweep_claims(self, max_age_s: float = DEFAULT_CLAIM_STALE_S) -> int:
        """Delete claims abandoned by dead holders (or older than
        ``max_age_s``); returns the count removed."""
        removed = 0
        for path in self.claims():
            key = path.name[: -len(CLAIM_SUFFIX)]
            if not self.claim_stale(key, max_age_s):
                continue
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
        return removed

    # ------------------------------------------------------------------ #

    def entries(self) -> List[Path]:
        """All entry files of the current schema version, sorted."""
        if not self.version_dir.is_dir():
            return []
        return sorted(self.version_dir.glob("*/*.pkl.gz"))

    def stale_version_dirs(self) -> List[Path]:
        """``v<N>/`` directories left behind by older key schemas."""
        if not self.root.is_dir():
            return []
        return sorted(
            p for p in self.root.iterdir()
            if p.is_dir() and p.name.startswith("v") and p != self.version_dir
        )

    def size_bytes(self) -> int:
        """Recursive size of the result entries, tolerant of entries a
        concurrent evictor removes between ``entries()`` and ``stat``."""
        total = 0
        for path in self.entries():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    # ------------------------------------------------------------------ #
    # Temp-file hygiene

    def tmp_files(self) -> List[Path]:
        """All ``*.tmp`` writer scratch files anywhere under the cache."""
        if not self.root.is_dir():
            return []
        return sorted(p for p in self.root.rglob("*.tmp") if p.is_file())

    @staticmethod
    def _writer_alive(path: Path) -> bool:
        """Whether the process that owns a ``<key>.pkl.gz.<pid>.tmp`` lives."""
        parts = path.name.split(".")
        try:
            pid = int(parts[-2])
        except (IndexError, ValueError):
            return False  # not one of ours; treat as abandoned
        return _pid_alive(pid)

    def sweep_tmp(self, max_age_s: float = 3600.0) -> int:
        """Delete scratch files abandoned by writers that died mid-store.

        A ``store`` that is interrupted between writing its temp file and
        the atomic ``os.replace`` leaks the temp file forever; this
        removes any whose writer process is gone, plus any older than
        ``max_age_s`` (stores take milliseconds — an hour-old temp file
        is garbage no matter who owns the pid now).  Returns the count.
        """
        removed = 0
        now = time.time()
        for path in self.tmp_files():
            try:
                age = now - path.stat().st_mtime
            except OSError:
                continue  # already gone (concurrent sweep or writer finish)
            if self._writer_alive(path) and age < max_age_s:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
        return removed

    def clear(self) -> int:
        """Remove the whole cache directory; returns the entry count removed."""
        count = len(self.entries())
        if self.root.is_dir():
            shutil.rmtree(self.root, ignore_errors=True)
        return count

    def prune_stale(self) -> int:
        """Remove entries from older schema versions; returns dirs removed."""
        stale = self.stale_version_dirs()
        for directory in stale:
            shutil.rmtree(directory, ignore_errors=True)
        return len(stale)

    def prune(self) -> dict:
        """One-shot hygiene pass: stale schema dirs, abandoned temp files
        and claims, a ledger repair scan, and size-cap enforcement.
        Returns what was removed."""
        return {
            "stale_dirs": self.prune_stale(),
            "tmp_files": self.sweep_tmp(),
            "claims": self.sweep_claims(),
            "ledger_bytes": self.repair_ledger(),
            "evicted": self.enforce_size_cap(),
            "size_bytes": self.size_bytes(),
        }

    # ------------------------------------------------------------------ #
    # Compiled-trace store

    def trace_store(self) -> "TraceStore":
        """The compiled-trace store sharing this cache's directory.

        The store shares this cache's size ledger and size cap: every
        stored trace is accounted (and triggers cap enforcement, with
        its own files protected), and trace entries are the *first*
        eviction victims when the cache outgrows ``REPRO_CACHE_MAX_MB``.
        """
        store = getattr(self, "_trace_store", None)
        if store is None:
            store = TraceStore(self.version_dir / "traces",
                               ledger=self.ledger,
                               on_store=self.enforce_size_cap)
            self._trace_store = store
        return store

    def describe(self) -> str:
        """Human-readable cache summary for the CLI."""
        entries = self.entries()
        if self.max_bytes is not None:
            cap = f"{self.max_bytes / (1024 * 1024):.1f} MiB ({ENV_CACHE_MAX_MB})"
        else:
            cap = "unbounded"
        ledger = self.ledger
        lines = [
            f"cache directory: {self.root.resolve()}",
            f"key schema:      v{CACHE_SCHEMA_VERSION}",
            f"entries:         {len(entries)}",
            f"size:            {self.size_bytes() / 1024:.1f} KiB",
            f"size cap:        {cap}",
            f"size evictions:  {self.evictions_size} (this process)",
            f"size ledger:     {ledger.total_bytes() / 1024:.1f} KiB tracked "
            f"(gen {ledger._read_checkpoint().get('gen', 0)}, "
            f"{ledger.shard_record_count()} unfolded record(s))",
        ]
        stale = self.stale_version_dirs()
        if stale:
            names = ", ".join(p.name for p in stale)
            lines.append(f"stale versions:  {names} (run `repro cache clear`)")
        tmp = self.tmp_files()
        if tmp:
            lines.append(f"temp files:      {len(tmp)} in-flight or abandoned")
        claims = self.claims()
        if claims:
            lines.append(f"claims:          {len(claims)} in-flight or stale")
        traces = self.trace_store().entries()
        if traces:
            lines.append(f"compiled traces: {len(traces)}")
        return "\n".join(lines)


def trace_store_key(workload_fingerprint: str) -> str:
    """Content hash keying one compiled trace in the :class:`TraceStore`.

    Composes the workload fingerprint (which already covers the
    generator version, parameters, seed, and length — see
    :func:`repro.workloads.emulator.workload_fingerprint`) with the cache
    key schema and the columnar trace schema, so a change to either the
    on-disk layout or the key derivation retires every stored trace.
    """
    from repro.isa.compiled import TRACE_SCHEMA_VERSION

    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "kind": "trace",
        "trace_schema": TRACE_SCHEMA_VERSION,
        "workload": workload_fingerprint,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class TraceStore:
    """Persistent store of compiled (columnar) traces.

    One entry per workload fingerprint: ``traces/<key>.npy`` (the
    structured array, loaded memory-mapped) plus ``traces/<key>.json``
    (identifying metadata).  Lives inside the result cache's version
    directory — ``REPRO_CACHE=0`` disables both together, and
    ``REPRO_CACHE_DIR`` relocates both together — and when constructed
    through :meth:`ResultCache.trace_store` its entries count against
    ``REPRO_CACHE_MAX_MB`` through the shared size ledger.  Trace
    entries are the *first* eviction victims: they are large, and a
    vanished trace costs one deterministic regeneration, not a lost
    result.  A standalone ``TraceStore(directory)`` has no ledger and
    stays unaccounted.

    Writes go through per-pid temp files and ``os.replace``; the array
    is renamed into place before the metadata, and readers require both,
    so a torn write is indistinguishable from a miss and the stray
    ``.npy`` is evicted on the next load.  Any damaged entry
    (:class:`repro.isa.compiled.TraceReadError`) is deleted — both files
    — and reported as a miss, costing one regeneration, not a failure.
    """

    def __init__(self, directory: os.PathLike, ledger: Optional[SizeLedger] = None,
                 on_store=None):
        self.dir = Path(directory)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        #: shared size ledger (set by :meth:`ResultCache.trace_store`)
        self._ledger = ledger
        #: size-cap hook invoked after each store with the new entry's
        #: files as ``protect``
        self._on_store = on_store

    def npy_path(self, key: str) -> Path:
        return self.dir / f"{key}.npy"

    def _meta_path(self, key: str) -> Path:
        return self.dir / f"{key}.json"

    def load(self, key: str):
        """The stored compiled trace (memory-mapped), or ``None``."""
        from repro.isa.compiled import read_compiled, TraceReadError

        npy = self.npy_path(key)
        try:
            compiled = read_compiled(npy, self._meta_path(key), mmap=True)
        except TraceReadError:
            self._evict(key)
            self.misses += 1
            return None
        self.hits += 1
        return compiled

    def _evict(self, key: str) -> None:
        """Remove whatever remains of a damaged or torn entry."""
        evicted = False
        for path in (self.npy_path(key), self._meta_path(key)):
            try:
                path.unlink()
                evicted = True
            except OSError:
                pass
        if evicted:
            self.evictions += 1
            if self._ledger is not None:
                self._ledger.record_unlink("trace", key)

    def store(self, key: str, compiled) -> Optional[Path]:
        """Persist ``compiled`` under ``key``; returns the ``.npy`` path
        (for shipping to workers), or ``None`` when the filesystem
        refuses (read-only, full) and operation degrades to storeless."""
        from repro.isa.compiled import write_compiled

        npy = self.npy_path(key)
        meta = self._meta_path(key)
        pid = os.getpid()
        tmp_npy = npy.with_name(f"{npy.name}.{pid}.tmp")
        tmp_meta = meta.with_name(f"{meta.name}.{pid}.tmp")
        try:
            self.dir.mkdir(parents=True, exist_ok=True)
            write_compiled(compiled, tmp_npy, tmp_meta)
            os.replace(tmp_npy, npy)
            os.replace(tmp_meta, meta)
        except OSError:
            for tmp in (tmp_npy, tmp_meta):
                try:
                    tmp.unlink()
                except OSError:
                    pass
            return None
        self.stores += 1
        if self._ledger is not None:
            nbytes = 0
            for part in (npy, meta):
                try:
                    nbytes += part.stat().st_size
                except OSError:
                    pass
            self._ledger.record_store("trace", key, nbytes)
        if self._on_store is not None:
            self._on_store(protect=(npy, meta))
        return npy

    def entries(self) -> List[Path]:
        """All stored ``.npy`` entries, sorted."""
        if not self.dir.is_dir():
            return []
        return sorted(self.dir.glob("*.npy"))

    def size_bytes(self) -> int:
        total = 0
        for path in list(self.entries()) + sorted(self.dir.glob("*.json")):
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total
