"""Persistent on-disk cache of simulation and thermal results.

Every figure consumes the same (benchmark x configuration) grid of
trace-replay simulations, and those simulations are deterministic: the
trace is a pure function of (benchmark name, length, seed) and the timing
model is a pure function of (trace, config, warmup).  Thermal solves are
equally deterministic — a pure function of the solver geometry and the
power grids.  The cache exploits that determinism to make repeated CLI
invocations, benchmark sessions, and report regenerations hit disk
instead of re-simulating or re-solving.

Layout::

    .repro_cache/
        v1/                     <- one directory per key-schema version
            ab/
                ab3f...e2.pkl.gz   <- one gzip-compressed pickled
                                      SimulationResult or ThermalResult
                                      per key

Keys are SHA-256 content hashes over everything a result depends on.
For simulations: the key-schema version, the workload-generator version,
the timing-simulator version, the benchmark name, the fidelity knobs
(trace length, warmup), and every field of the :class:`CPUConfig`.  For
thermal solves (:func:`thermal_key`): the thermal model version, the
solver's geometry fingerprint, and the power grids' raw bytes.
Changing any of these yields a different key, so stale entries are never
*returned* — and bumping :data:`CACHE_SCHEMA_VERSION` moves the cache to
a fresh ``v<N>/`` directory, leaving old versions inert until
``python -m repro cache clear`` (or :meth:`ResultCache.prune_stale`)
removes them.

The cache is on by default; ``REPRO_CACHE=0`` disables it and
``REPRO_CACHE_DIR`` relocates it.

Two cross-process concerns are handled here as well:

* **claim files** — ``<key>.claim`` markers (created with
  ``O_CREAT|O_EXCL``, carrying the claimant's pid and a timestamp) let
  concurrent cold starts on the same key deduplicate to one simulation:
  the loser waits for the winner's entry instead of re-simulating, and
  takes over stale claims whose holder died.  Claims are advisory —
  losing one never blocks progress, it only avoids duplicate work.
* **size bound** — ``REPRO_CACHE_MAX_MB`` sets a high-water mark; every
  ``store`` evicts oldest-mtime entries first until the cache fits.
  Loads touch their entry's mtime *before* reading, so an entry being
  read is the freshest and never the eviction victim.
"""

from __future__ import annotations

import dataclasses
import enum
import gzip
import hashlib
import json
import os
import pickle
import shutil
import time
import warnings
from pathlib import Path
from typing import Iterator, List, Optional

from repro.cpu.config import CPUConfig
from repro.cpu.results import SimulationResult

#: Bump when the cache key schema or the pickled payload layout changes.
CACHE_SCHEMA_VERSION = 1

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro_cache"

#: Environment variable relocating the cache directory.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Environment variable disabling the cache ("0", "off", "no", "false").
ENV_CACHE_ENABLED = "REPRO_CACHE"

#: Environment variable bounding the cache size (megabytes, float OK).
ENV_CACHE_MAX_MB = "REPRO_CACHE_MAX_MB"

_DISABLED_VALUES = frozenset({"0", "off", "no", "false"})

#: Suffix of cross-process claim markers (next to their ``.pkl.gz`` entry).
CLAIM_SUFFIX = ".claim"

#: Age beyond which a claim is stale even if its holder pid is alive
#: (a wedged holder must not block other processes forever).
DEFAULT_CLAIM_STALE_S = 1800.0


def _canonical(value):
    """JSON-serializable canonical form of a config field value."""
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    return value


def simulation_key(
    benchmark: str,
    config: CPUConfig,
    trace_length: int,
    warmup: int,
) -> str:
    """Content hash identifying one deterministic simulation."""
    from repro.cpu.pipeline import SIMULATOR_VERSION
    from repro.workloads.emulator import GENERATOR_VERSION

    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "simulator": SIMULATOR_VERSION,
        "generator": GENERATOR_VERSION,
        "benchmark": benchmark,
        "trace_length": trace_length,
        "warmup": warmup,
        "config": _canonical(dataclasses.asdict(config)),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def thermal_key(solver, die_power_grids) -> str:
    """Content hash identifying one deterministic thermal solve.

    Covers the solver's full result geometry (stack layers, floorplan,
    grid resolution, spreader, boundary conditions — see
    :meth:`repro.thermal.solver.ThermalSolver.result_key`) plus the raw
    bytes of every per-die power grid.
    """
    import numpy as np

    digest = hashlib.sha256()
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "kind": "thermal",
        "geometry": _canonical(solver.result_key()),
    }
    digest.update(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    )
    for grid in die_power_grids:
        array = np.ascontiguousarray(np.asarray(grid, dtype=np.float64))
        digest.update(repr(array.shape).encode("utf-8"))
        digest.update(array.tobytes())
    return digest.hexdigest()


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (EPERM counts as alive)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True
    return True


class ResultCache:
    """Load/store :class:`SimulationResult` objects keyed by content hash."""

    def __init__(
        self,
        root: Optional[os.PathLike] = None,
        max_mb: Optional[float] = None,
    ):
        if root is None:
            root = os.environ.get(ENV_CACHE_DIR) or DEFAULT_CACHE_DIR
        self.root = Path(root)
        self.version_dir = self.root / f"v{CACHE_SCHEMA_VERSION}"
        if max_mb is None:
            self.max_bytes = self._max_bytes_from_env()
        else:
            self.max_bytes = int(max_mb * 1024 * 1024) if max_mb > 0 else None
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: bad entries (corrupt, truncated, wrong type) deleted on load
        self.evictions = 0
        #: good entries evicted to respect the size high-water mark
        self.evictions_size = 0

    @staticmethod
    def _max_bytes_from_env() -> Optional[int]:
        raw = os.environ.get(ENV_CACHE_MAX_MB, "").strip()
        if not raw:
            return None
        try:
            max_mb = float(raw)
        except ValueError:
            warnings.warn(
                f"ignoring invalid {ENV_CACHE_MAX_MB}={raw!r} (not a number); "
                f"cache size is unbounded",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        return int(max_mb * 1024 * 1024) if max_mb > 0 else None

    @classmethod
    def from_env(cls) -> Optional["ResultCache"]:
        """The default cache, or ``None`` when disabled via REPRO_CACHE."""
        flag = os.environ.get(ENV_CACHE_ENABLED, "").strip().lower()
        if flag in _DISABLED_VALUES:
            return None
        return cls()

    # ------------------------------------------------------------------ #

    def _path(self, key: str) -> Path:
        return self.version_dir / key[:2] / f"{key}.pkl.gz"

    def load(self, key: str, expected_type: type = SimulationResult):
        """The cached result for ``key``, or ``None`` on a miss.

        ``expected_type`` guards against key collisions across result
        kinds (simulation vs thermal).  Bad entries — truncated writes,
        incompatible pickles, payloads of the wrong type — are deleted
        and treated as misses, so one damaged file costs one re-run, not
        a re-read-and-miss on every subsequent load.
        """
        path = self._path(key)
        try:
            # Touch *before* reading: the size-cap evictor removes
            # oldest-mtime entries first, so an entry being read is the
            # freshest in the cache and never the victim.
            os.utime(path)
        except OSError:
            pass
        try:
            with gzip.open(path, "rb") as stream:
                result = pickle.load(stream)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, EOFError, pickle.UnpicklingError,
                AttributeError, ImportError, IndexError):
            self._evict(path)
            self.misses += 1
            return None
        if not isinstance(result, expected_type):
            self._evict(path)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def _evict(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            return
        self.evictions += 1

    def store(self, key: str, result) -> None:
        """Persist ``result`` under ``key`` (atomic within a filesystem)."""
        path = self._path(key)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            # Level 2 instead of the gzip default (9): cache entries are
            # written once per cold simulation on the critical path, and
            # the ~5x faster compression is worth the slightly larger
            # files (the size cap bounds total growth either way).
            with gzip.open(tmp, "wb", compresslevel=2) as stream:
                pickle.dump(result, stream, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            # A read-only or full filesystem degrades to cacheless operation.
            try:
                tmp.unlink()
            except OSError:
                pass
            return
        self.stores += 1
        self.enforce_size_cap(protect=path)

    # ------------------------------------------------------------------ #
    # Size high-water mark

    def enforce_size_cap(self, protect: Optional[Path] = None) -> int:
        """Evict oldest-mtime entries until the cache fits ``max_bytes``.

        ``protect`` (the entry just stored) is never evicted, nor is the
        freshest-mtime survivor an in-progress ``load`` just touched.
        Returns the number of entries removed.
        """
        if self.max_bytes is None:
            return 0
        infos = []
        total = 0
        for path in self.entries():
            try:
                st = path.stat()
            except OSError:
                continue
            infos.append((st.st_mtime, st.st_size, path))
            total += st.st_size
        removed = 0
        for mtime, size, path in sorted(infos, key=lambda t: (t[0], str(t[2]))):
            if total <= self.max_bytes:
                break
            if protect is not None and path == protect:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            removed += 1
            self.evictions_size += 1
        return removed

    # ------------------------------------------------------------------ #
    # Cross-process claims

    def _claim_path(self, key: str) -> Path:
        return self.version_dir / key[:2] / f"{key}{CLAIM_SUFFIX}"

    def try_claim(self, key: str) -> bool:
        """Atomically claim ``key`` for this process.

        True means "go simulate" — either the claim file was created
        (``O_CREAT|O_EXCL``: exactly one process wins) or the filesystem
        refused coordination (read-only etc.), in which case running
        uncoordinated is the only safe degradation.  False means another
        live process holds the claim; wait for its entry instead.
        """
        path = self._claim_path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:
            return True
        try:
            os.write(fd, json.dumps(
                {"pid": os.getpid(), "ts": time.time()}).encode("utf-8"))
        except OSError:
            pass
        finally:
            os.close(fd)
        return True

    def claim_holder(self, key: str) -> Optional[dict]:
        """The claim's ``{"pid": ..., "ts": ...}`` payload; ``{}`` when the
        claim exists but is unreadable/garbled; ``None`` when unclaimed."""
        path = self._claim_path(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError:
            return {}
        try:
            data = json.loads(raw)
        except ValueError:
            return {}
        return data if isinstance(data, dict) else {}

    def claim_stale(
        self, key: str, max_age_s: float = DEFAULT_CLAIM_STALE_S
    ) -> bool:
        """Whether ``key``'s claim is abandoned (dead holder or too old)."""
        holder = self.claim_holder(key)
        if holder is None:
            return False
        pid = holder.get("pid")
        if not isinstance(pid, int) or not _pid_alive(pid):
            return True
        ts = holder.get("ts")
        if not isinstance(ts, (int, float)):
            try:
                ts = self._claim_path(key).stat().st_mtime
            except OSError:
                return False  # claim vanished between reads: not stale, gone
        return (time.time() - ts) > max_age_s

    def break_claim(self, key: str) -> None:
        """Forcibly remove ``key``'s claim (stale-claim takeover)."""
        try:
            self._claim_path(key).unlink()
        except OSError:
            pass

    def release_claim(self, key: str) -> None:
        """Remove ``key``'s claim if this process owns it (or it is garbled)."""
        holder = self.claim_holder(key)
        if holder is None:
            return
        pid = holder.get("pid")
        if isinstance(pid, int) and pid != os.getpid():
            return
        self.break_claim(key)

    def claims(self) -> List[Path]:
        """All claim files of the current schema version, sorted."""
        if not self.version_dir.is_dir():
            return []
        return sorted(self.version_dir.glob(f"*/*{CLAIM_SUFFIX}"))

    def sweep_claims(self, max_age_s: float = DEFAULT_CLAIM_STALE_S) -> int:
        """Delete claims abandoned by dead holders (or older than
        ``max_age_s``); returns the count removed."""
        removed = 0
        for path in self.claims():
            key = path.name[: -len(CLAIM_SUFFIX)]
            if not self.claim_stale(key, max_age_s):
                continue
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
        return removed

    # ------------------------------------------------------------------ #

    def entries(self) -> List[Path]:
        """All entry files of the current schema version, sorted."""
        if not self.version_dir.is_dir():
            return []
        return sorted(self.version_dir.glob("*/*.pkl.gz"))

    def stale_version_dirs(self) -> List[Path]:
        """``v<N>/`` directories left behind by older key schemas."""
        if not self.root.is_dir():
            return []
        return sorted(
            p for p in self.root.iterdir()
            if p.is_dir() and p.name.startswith("v") and p != self.version_dir
        )

    def size_bytes(self) -> int:
        return sum(p.stat().st_size for p in self.entries())

    # ------------------------------------------------------------------ #
    # Temp-file hygiene

    def tmp_files(self) -> List[Path]:
        """All ``*.tmp`` writer scratch files anywhere under the cache."""
        if not self.root.is_dir():
            return []
        return sorted(p for p in self.root.rglob("*.tmp") if p.is_file())

    @staticmethod
    def _writer_alive(path: Path) -> bool:
        """Whether the process that owns a ``<key>.pkl.gz.<pid>.tmp`` lives."""
        parts = path.name.split(".")
        try:
            pid = int(parts[-2])
        except (IndexError, ValueError):
            return False  # not one of ours; treat as abandoned
        return _pid_alive(pid)

    def sweep_tmp(self, max_age_s: float = 3600.0) -> int:
        """Delete scratch files abandoned by writers that died mid-store.

        A ``store`` that is interrupted between writing its temp file and
        the atomic ``os.replace`` leaks the temp file forever; this
        removes any whose writer process is gone, plus any older than
        ``max_age_s`` (stores take milliseconds — an hour-old temp file
        is garbage no matter who owns the pid now).  Returns the count.
        """
        removed = 0
        now = time.time()
        for path in self.tmp_files():
            try:
                age = now - path.stat().st_mtime
            except OSError:
                continue  # already gone (concurrent sweep or writer finish)
            if self._writer_alive(path) and age < max_age_s:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
        return removed

    def clear(self) -> int:
        """Remove the whole cache directory; returns the entry count removed."""
        count = len(self.entries())
        if self.root.is_dir():
            shutil.rmtree(self.root, ignore_errors=True)
        return count

    def prune_stale(self) -> int:
        """Remove entries from older schema versions; returns dirs removed."""
        stale = self.stale_version_dirs()
        for directory in stale:
            shutil.rmtree(directory, ignore_errors=True)
        return len(stale)

    def prune(self) -> dict:
        """One-shot hygiene pass: stale schema dirs, abandoned temp files
        and claims, and size-cap enforcement.  Returns what was removed."""
        return {
            "stale_dirs": self.prune_stale(),
            "tmp_files": self.sweep_tmp(),
            "claims": self.sweep_claims(),
            "evicted": self.enforce_size_cap(),
            "size_bytes": self.size_bytes(),
        }

    # ------------------------------------------------------------------ #
    # Compiled-trace store

    def trace_store(self) -> "TraceStore":
        """The compiled-trace store sharing this cache's directory."""
        store = getattr(self, "_trace_store", None)
        if store is None:
            store = TraceStore(self.version_dir / "traces")
            self._trace_store = store
        return store

    def describe(self) -> str:
        """Human-readable cache summary for the CLI."""
        entries = self.entries()
        if self.max_bytes is not None:
            cap = f"{self.max_bytes / (1024 * 1024):.1f} MiB ({ENV_CACHE_MAX_MB})"
        else:
            cap = "unbounded"
        lines = [
            f"cache directory: {self.root.resolve()}",
            f"key schema:      v{CACHE_SCHEMA_VERSION}",
            f"entries:         {len(entries)}",
            f"size:            {self.size_bytes() / 1024:.1f} KiB",
            f"size cap:        {cap}",
            f"size evictions:  {self.evictions_size} (this process)",
        ]
        stale = self.stale_version_dirs()
        if stale:
            names = ", ".join(p.name for p in stale)
            lines.append(f"stale versions:  {names} (run `repro cache clear`)")
        tmp = self.tmp_files()
        if tmp:
            lines.append(f"temp files:      {len(tmp)} in-flight or abandoned")
        claims = self.claims()
        if claims:
            lines.append(f"claims:          {len(claims)} in-flight or stale")
        traces = self.trace_store().entries()
        if traces:
            lines.append(f"compiled traces: {len(traces)}")
        return "\n".join(lines)


def trace_store_key(workload_fingerprint: str) -> str:
    """Content hash keying one compiled trace in the :class:`TraceStore`.

    Composes the workload fingerprint (which already covers the
    generator version, parameters, seed, and length — see
    :func:`repro.workloads.emulator.workload_fingerprint`) with the cache
    key schema and the columnar trace schema, so a change to either the
    on-disk layout or the key derivation retires every stored trace.
    """
    from repro.isa.compiled import TRACE_SCHEMA_VERSION

    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "kind": "trace",
        "trace_schema": TRACE_SCHEMA_VERSION,
        "workload": workload_fingerprint,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class TraceStore:
    """Persistent store of compiled (columnar) traces.

    One entry per workload fingerprint: ``traces/<key>.npy`` (the
    structured array, loaded memory-mapped) plus ``traces/<key>.json``
    (identifying metadata).  Lives inside the result cache's version
    directory — ``REPRO_CACHE=0`` disables both together, and
    ``REPRO_CACHE_DIR`` relocates both together — but entries are *not*
    counted against ``REPRO_CACHE_MAX_MB`` (a sweep re-reads its traces
    constantly; evicting one mid-campaign would force a regeneration
    spike, and the store is bounded by the workload suite's size anyway).

    Writes go through per-pid temp files and ``os.replace``; the array
    is renamed into place before the metadata, and readers require both,
    so a torn write is indistinguishable from a miss and the stray
    ``.npy`` is evicted on the next load.  Any damaged entry
    (:class:`repro.isa.compiled.TraceReadError`) is deleted — both files
    — and reported as a miss, costing one regeneration, not a failure.
    """

    def __init__(self, directory: os.PathLike):
        self.dir = Path(directory)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0

    def npy_path(self, key: str) -> Path:
        return self.dir / f"{key}.npy"

    def _meta_path(self, key: str) -> Path:
        return self.dir / f"{key}.json"

    def load(self, key: str):
        """The stored compiled trace (memory-mapped), or ``None``."""
        from repro.isa.compiled import read_compiled, TraceReadError

        npy = self.npy_path(key)
        try:
            compiled = read_compiled(npy, self._meta_path(key), mmap=True)
        except TraceReadError:
            self._evict(key)
            self.misses += 1
            return None
        self.hits += 1
        return compiled

    def _evict(self, key: str) -> None:
        """Remove whatever remains of a damaged or torn entry."""
        evicted = False
        for path in (self.npy_path(key), self._meta_path(key)):
            try:
                path.unlink()
                evicted = True
            except OSError:
                pass
        if evicted:
            self.evictions += 1

    def store(self, key: str, compiled) -> Optional[Path]:
        """Persist ``compiled`` under ``key``; returns the ``.npy`` path
        (for shipping to workers), or ``None`` when the filesystem
        refuses (read-only, full) and operation degrades to storeless."""
        from repro.isa.compiled import write_compiled

        npy = self.npy_path(key)
        meta = self._meta_path(key)
        pid = os.getpid()
        tmp_npy = npy.with_name(f"{npy.name}.{pid}.tmp")
        tmp_meta = meta.with_name(f"{meta.name}.{pid}.tmp")
        try:
            self.dir.mkdir(parents=True, exist_ok=True)
            write_compiled(compiled, tmp_npy, tmp_meta)
            os.replace(tmp_npy, npy)
            os.replace(tmp_meta, meta)
        except OSError:
            for tmp in (tmp_npy, tmp_meta):
                try:
                    tmp.unlink()
                except OSError:
                    pass
            return None
        self.stores += 1
        return npy

    def entries(self) -> List[Path]:
        """All stored ``.npy`` entries, sorted."""
        if not self.dir.is_dir():
            return []
        return sorted(self.dir.glob("*.npy"))

    def size_bytes(self) -> int:
        total = 0
        for path in list(self.entries()) + sorted(self.dir.glob("*.json")):
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total
