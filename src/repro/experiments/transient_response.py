"""Transient thermal response: how fast do hotspots form?

Dynamic thermal management reacts on the thermal time constant.  This
experiment applies a power step (idle -> the reference app's full power)
to the planar chip and the 3D stack and measures the time each takes to
close 90 % of the gap to its steady-state peak.  The 3D stack's thinned
dies carry far less heat capacity per watt, so its hotspots form faster —
DTM for stacked processors must react quicker, an operational corollary
of the paper's thermal analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.experiments.context import CORE_COUNT, ExperimentContext, REFERENCE_BENCHMARK
from repro.power.model import StackKind
from repro.thermal.power_map import build_power_map, rasterize
from repro.thermal.transient import TransientThermalSolver


@dataclass
class StepResponse:
    """One stack's response to the power step."""

    label: str
    steady_peak_k: float
    time_to_90pct_s: Optional[float]


@dataclass
class TransientResponseResult:
    """Planar vs 3D step responses."""

    planar: StepResponse
    stacked: StepResponse

    def format(self) -> str:
        def render(r: StepResponse) -> str:
            t90 = f"{r.time_to_90pct_s * 1e3:7.1f} ms" if r.time_to_90pct_s else "  (n/a)"
            return f"  {r.label:<8s} steady {r.steady_peak_k:6.1f} K, 90% rise in {t90}"
        lines = [
            "transient step response (idle -> full power)",
            render(self.planar),
            render(self.stacked),
        ]
        if self.planar.time_to_90pct_s and self.stacked.time_to_90pct_s:
            ratio = self.planar.time_to_90pct_s / self.stacked.time_to_90pct_s
            lines.append(
                f"the 3D stack heats {ratio:.1f}x faster: DTM must react sooner"
            )
        return "\n".join(lines)


def _rasterized_step(context: ExperimentContext, stack_kind: StackKind,
                     breakdown):
    """The per-die power grids of one stack's full-power step input."""
    solver = context.solver(stack_kind)
    plan = context.floorplan(stack_kind)
    watts = build_power_map(plan, [breakdown] * CORE_COUNT)
    ny, nx = solver.chip_grid_shape()
    return solver, rasterize(plan, watts, nx, ny)


def _step_response(
    context: ExperimentContext,
    label: str,
    solver,
    grids,
    steady,
    dt_s: float,
    duration_s: float,
) -> StepResponse:
    ambient = solver.stack.ambient_k
    target = ambient + 0.9 * (steady.peak_temperature - ambient)

    transient = TransientThermalSolver(solver, dt_s=dt_s)
    response = transient.run(lambda t: grids, duration_s=duration_s)
    return StepResponse(
        label=label,
        steady_peak_k=steady.peak_temperature,
        time_to_90pct_s=response.time_to_reach(target),
    )


def run_transient_response(
    context: Optional[ExperimentContext] = None,
    benchmark: str = REFERENCE_BENCHMARK,
    dt_s: float = 20e-3,
    duration_s: float = 20.0,
) -> TransientResponseResult:
    """Measure the 90 % step-response time of both stacks."""
    context = context or ExperimentContext()
    context.prefetch([(benchmark, "Base"), (benchmark, "3D"),
                      (REFERENCE_BENCHMARK, "Base")])
    planar_solver, planar_grids = _rasterized_step(
        context, StackKind.PLANAR_2D, context.power(benchmark, "Base"))
    stacked_solver, stacked_grids = _rasterized_step(
        context, StackKind.STACKED_3D, context.power(benchmark, "3D"))
    # Both stacks' steady-state anchors solve in one engine dispatch; the
    # transient stepping itself stays in-process (it reuses the parent's
    # pre-factorized stepping matrix).
    steadies = context.solve_thermal_groups([
        (planar_solver, [planar_grids]), (stacked_solver, [stacked_grids]),
    ])
    planar = _step_response(
        context, "planar", planar_solver, planar_grids, steadies[0][0],
        dt_s, duration_s,
    )
    stacked = _step_response(
        context, "3D-TH", stacked_solver, stacked_grids, steadies[1][0],
        dt_s, duration_s,
    )
    return TransientResponseResult(planar=planar, stacked=stacked)
