"""Fault injection for the experiment engine.

Long simulation campaigns only earn trust in their fault tolerance if
the faults actually happen, so this module makes them happen on demand:

* **worker crashes** — :func:`arm_worker_kills` drops one claimable
  token per requested crash into a directory; any simulation worker that
  starts a task while ``REPRO_FAULT_DIR`` points at that directory
  atomically claims a token and dies (``os._exit``, like an OOM kill) or
  raises (an in-task software fault).  Tokens are consumed exactly once,
  so retries on a fresh pool succeed and the batch converges.
* **worker hangs** — :func:`arm_worker_hangs` tokens make the claiming
  worker sleep forever (a deadlock/livelock stand-in), exercising the
  per-task deadline supervision (``REPRO_TASK_TIMEOUT_S``): without it
  the batch blocks on ``future.result()`` indefinitely.
* **thermal-worker faults** — :func:`arm_thermal_worker_kills` /
  :func:`arm_thermal_worker_hangs` tokens are claimed only at the
  thermal solve engine's fault point
  (:func:`maybe_inject_thermal_fault`), so a kill or hang can be aimed
  at a geometry-group factorization mid-batch without ever landing on a
  simulation task; generic tokens still reach thermal workers too.
* **mid-simulation faults** — :func:`arm_midsim_faults` tokens carry an
  instruction-index trigger; the claiming worker arms
  :data:`repro.cpu.pipeline.FAULT_HOOK` and then dies (or hangs) *in the
  middle of the simulation loop*, with activity counters and cache state
  partially written.  This makes the injection point adversarial: entry
  injection tests a cooperative crash boundary, mid-simulation injection
  proves no partial state ever leaks into a recovered result.
* **cache corruption** — :func:`corrupt_entry` overwrites or truncates a
  cache file in place, exercising the loader's delete-and-miss path.
* **filesystem faults** — :func:`full_disk` and
  :func:`read_only_filesystem` make every cache *write* under a root
  fail with ``ENOSPC`` / ``EROFS`` while leaving reads (and the rest of
  the filesystem) untouched, exercising the cacheless degradation path.

The token directory also works across processes: CI arms kills with
``python -m repro.experiments.faults DIR --kills N`` and then runs a
normal ``repro report`` under ``REPRO_FAULT_DIR=DIR``.
"""

from __future__ import annotations

import contextlib
import errno
import gzip
import os
import re
import time
from pathlib import Path
from typing import Iterator, List, Optional

#: Directory holding claimable fault tokens (unset = no injection).
ENV_FAULT_DIR = "REPRO_FAULT_DIR"

#: Exit status of a deliberately killed worker (distinguishable in logs).
KILL_EXIT_CODE = 87

_KILL_PREFIX = "kill-"
_RAISE_PREFIX = "raise-"
_HANG_PREFIX = "hang-"
_MIDSIM_PREFIX = "midsim-"
#: Thermal-worker-only tokens: ``thermal-kill-NNNN`` / ``thermal-hang-NNNN``.
#: Simulation workers never claim these, so a thermal fault can be aimed
#: at the solve engine without perturbing the simulation stage.
_THERMAL_KILL_PREFIX = "thermal-kill-"
_THERMAL_HANG_PREFIX = "thermal-hang-"
_TOKEN_SUFFIX = ".token"

#: midsim token names: ``midsim-<action>-<instruction-index>-NNNN.token``
_MIDSIM_PATTERN = re.compile(rf"{_MIDSIM_PREFIX}(kill|hang)-(\d+)-")


class InjectedWorkerError(RuntimeError):
    """Raised inside a worker that claimed a ``raise`` fault token."""


def arm_worker_kills(directory, kills: int = 1) -> List[Path]:
    """Create ``kills`` claimable kill tokens; returns their paths.

    The caller still has to point ``REPRO_FAULT_DIR`` at ``directory``
    (environment variables propagate to pool workers automatically).
    """
    return _arm(directory, _KILL_PREFIX, kills)


def arm_worker_raises(directory, raises: int = 1) -> List[Path]:
    """Like :func:`arm_worker_kills` but the worker raises instead of dying."""
    return _arm(directory, _RAISE_PREFIX, raises)


def arm_worker_hangs(directory, hangs: int = 1) -> List[Path]:
    """Create ``hangs`` sleep-forever tokens; the claiming worker never
    returns (deadlock stand-in), so only deadline supervision saves the
    batch.  The hung process is reaped when the supervisor recycles the
    pool (SIGTERM), so tokens do not leak workers."""
    return _arm(directory, _HANG_PREFIX, hangs)


def arm_thermal_worker_kills(directory, kills: int = 1) -> List[Path]:
    """Create kill tokens only thermal solve workers claim.

    A claiming thermal worker dies at group entry (``os._exit``, like a
    SuperLU OOM abort mid-factorization), exercising the thermal fan-out's
    retry/pool-restart ladder without touching simulation tasks.
    """
    return _arm(directory, _THERMAL_KILL_PREFIX, kills)


def arm_thermal_worker_hangs(directory, hangs: int = 1) -> List[Path]:
    """Create sleep-forever tokens only thermal solve workers claim,
    exercising the thermal deadline (``REPRO_THERMAL_TIMEOUT_S``)."""
    return _arm(directory, _THERMAL_HANG_PREFIX, hangs)


def arm_midsim_faults(
    directory, count: int = 1, action: str = "kill", at_instruction: int = 1_000
) -> List[Path]:
    """Create tokens that fire *inside* the simulation loop.

    The claiming worker arms :data:`repro.cpu.pipeline.FAULT_HOOK` at
    task entry and then executes normally until the trace reaches
    ``at_instruction``, where it dies (``action="kill"``) or sleeps
    forever (``action="hang"``) with partially-written activity state.
    """
    if action not in ("kill", "hang"):
        raise ValueError(f"unknown midsim action {action!r}")
    return _arm(directory, f"{_MIDSIM_PREFIX}{action}-{at_instruction:d}-", count)


def _arm(directory, prefix: str, count: int) -> List[Path]:
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    existing = len(list(root.glob(f"{prefix}*{_TOKEN_SUFFIX}")))
    tokens = []
    for index in range(existing, existing + count):
        token = root / f"{prefix}{index:04d}{_TOKEN_SUFFIX}"
        token.touch()
        tokens.append(token)
    return tokens


def pending_tokens(directory) -> List[Path]:
    """Unclaimed fault tokens remaining under ``directory``."""
    root = Path(directory)
    if not root.is_dir():
        return []
    return sorted(root.glob(f"*{_TOKEN_SUFFIX}"))


def _claim_token(prefix: str) -> Optional[str]:
    """Atomically claim (unlink) one token; its name, or None when none left."""
    root = os.environ.get(ENV_FAULT_DIR, "").strip()
    if not root:
        return None
    for token in sorted(Path(root).glob(f"{prefix}*{_TOKEN_SUFFIX}")):
        try:
            token.unlink()  # atomic: exactly one process wins each token
        except OSError:
            continue
        return token.name
    return None


def _hang_forever() -> None:
    """Sleep until killed — what a deadlocked worker looks like from outside."""
    while True:
        time.sleep(3600)


def _arm_midsim(token_name: str) -> None:
    """Install the mid-simulation fault hook encoded in a claimed token."""
    match = _MIDSIM_PATTERN.match(token_name)
    if match is None:
        return
    action, trigger = match.group(1), int(match.group(2))
    from repro.cpu import pipeline

    def hook(index: int) -> None:
        if index < trigger:
            return
        if action == "kill":
            os._exit(KILL_EXIT_CODE)
        pipeline.FAULT_HOOK = None  # fire once even if the sleep is interrupted
        _hang_forever()

    pipeline.FAULT_HOOK = hook


def maybe_inject_worker_fault() -> None:
    """Fault point for simulation workers; no-op unless armed.

    Called at worker-task entry.  Claiming a kill token terminates the
    process without cleanup (``os._exit``), which is what an OOM kill or
    interpreter abort looks like to the pool; a hang token never returns
    (deadlock); a midsim token arms the in-loop hook instead of firing
    here; a raise token throws :class:`InjectedWorkerError` through the
    task.
    """
    if _claim_token(_KILL_PREFIX):
        os._exit(KILL_EXIT_CODE)
    if _claim_token(_HANG_PREFIX):
        _hang_forever()
    midsim = _claim_token(_MIDSIM_PREFIX)
    if midsim is not None:
        _arm_midsim(midsim)
    if _claim_token(_RAISE_PREFIX):
        raise InjectedWorkerError("injected worker fault (raise token claimed)")


def maybe_inject_thermal_fault() -> None:
    """Fault point for thermal solve workers; no-op unless armed.

    Claims the thermal-only tokens first (kill, then hang), then falls
    through to :func:`maybe_inject_worker_fault` so generic tokens keep
    reaching thermal workers too — the supervised-solve path has always
    honoured them, and the combined-fault CI scenarios rely on whichever
    worker claims a token first.
    """
    if _claim_token(_THERMAL_KILL_PREFIX):
        os._exit(KILL_EXIT_CODE)
    if _claim_token(_THERMAL_HANG_PREFIX):
        _hang_forever()
    maybe_inject_worker_fault()


# ---------------------------------------------------------------------- #
# Cache-entry corruption

def corrupt_entry(path, mode: str = "garbage") -> None:
    """Damage one cache entry in place.

    ``garbage`` replaces the file with bytes that are not a gzip stream;
    ``truncate`` keeps only the first half of the stream (a writer that
    died mid-write, minus the atomic-rename protection) — clipping only
    the gzip trailer would go unnoticed, because unpickling stops at the
    STOP opcode without ever reading to end-of-stream.
    """
    path = Path(path)
    if mode == "garbage":
        path.write_bytes(b"\x00not a gzip pickle\x00")
    elif mode == "truncate":
        payload = path.read_bytes() or gzip.compress(b"\x80\x04")
        path.write_bytes(payload[: max(1, len(payload) // 2)])
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")


# ---------------------------------------------------------------------- #
# Filesystem faults (scoped to one directory tree)

@contextlib.contextmanager
def full_disk(root) -> Iterator[None]:
    """Every gzip write under ``root`` fails with ``ENOSPC``."""
    with _failing_writes(root, errno.ENOSPC, fail_mkdir=False):
        yield


@contextlib.contextmanager
def read_only_filesystem(root) -> Iterator[None]:
    """Every mkdir/write/rename under ``root`` fails with ``EROFS``."""
    with _failing_writes(root, errno.EROFS, fail_mkdir=True):
        yield


def _under(path, root: Path) -> bool:
    try:
        Path(os.path.abspath(path)).relative_to(root)
    except ValueError:
        return False
    return True


@contextlib.contextmanager
def _failing_writes(root, errno_code: int, fail_mkdir: bool) -> Iterator[None]:
    """Patch the cache module's write syscalls to fail under ``root``.

    Injection happens at the module-reference layer (the ``gzip``/``os``
    names inside :mod:`repro.experiments.cache` and ``Path.mkdir``), so
    the cache's real degradation code runs — nothing is stubbed out of
    the path under test — while the rest of the process is unaffected.
    """
    import repro.experiments.cache as cache_module

    root = Path(os.path.abspath(root))

    def oserror(path) -> OSError:
        return OSError(errno_code, os.strerror(errno_code), str(path))

    real_gzip_open = cache_module.gzip.open
    real_os_replace = cache_module.os.replace
    real_mkdir = Path.mkdir

    class _GzipShim:
        def __getattr__(self, name):
            return getattr(gzip, name)

        def open(self, path, mode="rb", *args, **kwargs):
            if any(flag in str(mode) for flag in "wxa") and _under(path, root):
                raise oserror(path)
            return real_gzip_open(path, mode, *args, **kwargs)

    class _OsShim:
        def __getattr__(self, name):
            return getattr(os, name)

        def replace(self, src, dst, **kwargs):
            if _under(dst, root):
                raise oserror(dst)
            return real_os_replace(src, dst, **kwargs)

    def guarded_mkdir(self, *args, **kwargs):
        if _under(self, root):
            raise oserror(self)
        return real_mkdir(self, *args, **kwargs)

    cache_module.gzip = _GzipShim()
    cache_module.os = _OsShim()
    if fail_mkdir:
        Path.mkdir = guarded_mkdir
    try:
        yield
    finally:
        cache_module.gzip = gzip
        cache_module.os = os
        Path.mkdir = real_mkdir


# ---------------------------------------------------------------------- #

def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.experiments.faults DIR [--kills N] [--raises N]
    [--hangs N] [--midsim-kills N] [--midsim-hangs N] [--at-instruction I]``"""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.experiments.faults",
        description="Arm worker-fault tokens for a fault-injection run",
    )
    parser.add_argument("directory", help="token directory (REPRO_FAULT_DIR)")
    parser.add_argument("--kills", type=int, default=0, metavar="N",
                        help="worker kill tokens to arm (os._exit at task entry)")
    parser.add_argument("--raises", type=int, default=0, metavar="N",
                        help="worker raise tokens to arm (exception)")
    parser.add_argument("--hangs", type=int, default=0, metavar="N",
                        help="sleep-forever tokens to arm (deadlock stand-in)")
    parser.add_argument("--thermal-kills", type=int, default=0, metavar="N",
                        help="thermal-worker-only kill tokens to arm")
    parser.add_argument("--thermal-hangs", type=int, default=0, metavar="N",
                        help="thermal-worker-only hang tokens to arm")
    parser.add_argument("--midsim-kills", type=int, default=0, metavar="N",
                        help="mid-simulation kill tokens to arm")
    parser.add_argument("--midsim-hangs", type=int, default=0, metavar="N",
                        help="mid-simulation hang tokens to arm")
    parser.add_argument("--at-instruction", type=int, default=1_000, metavar="I",
                        help="trigger instruction index for midsim tokens "
                             "(default: 1000)")
    args = parser.parse_args(argv)
    tokens = arm_worker_kills(args.directory, args.kills) if args.kills else []
    tokens += arm_worker_raises(args.directory, args.raises) if args.raises else []
    tokens += arm_worker_hangs(args.directory, args.hangs) if args.hangs else []
    if args.thermal_kills:
        tokens += arm_thermal_worker_kills(args.directory, args.thermal_kills)
    if args.thermal_hangs:
        tokens += arm_thermal_worker_hangs(args.directory, args.thermal_hangs)
    if args.midsim_kills:
        tokens += arm_midsim_faults(args.directory, args.midsim_kills,
                                    "kill", args.at_instruction)
    if args.midsim_hangs:
        tokens += arm_midsim_faults(args.directory, args.midsim_hangs,
                                    "hang", args.at_instruction)
    print(f"armed {len(tokens)} fault tokens in {args.directory} "
          f"(export {ENV_FAULT_DIR}={args.directory})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
