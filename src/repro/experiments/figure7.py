"""Figure 7: the planar floorplan and the 4-die 3D floorplan.

The paper's Figure 7 shows (a) the two-core planar chip and (b) the top
die of the 4-die stack after re-packing — roughly a 4x footprint
reduction.  This experiment renders both layouts and checks the area
accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.floorplan import Floorplan, planar_floorplan, stacked_floorplan
from repro.floorplan.render import area_summary, render_die_ascii

PAPER_FOOTPRINT_REDUCTION = 4.0


@dataclass
class Figure7Result:
    """Both floorplans plus the footprint ratio."""

    planar: Floorplan
    stacked: Floorplan

    @property
    def footprint_reduction(self) -> float:
        planar_area = self.planar.width_mm * self.planar.height_mm
        stacked_area = self.stacked.width_mm * self.stacked.height_mm
        return planar_area / stacked_area

    def format(self) -> str:
        return "\n".join([
            "Figure 7 (a): planar two-core floorplan",
            area_summary(self.planar),
            render_die_ascii(self.planar, die=0, width_chars=60),
            "",
            "Figure 7 (b): 3D floorplan (every die carries this layout)",
            area_summary(self.stacked),
            render_die_ascii(self.stacked, die=0, width_chars=40),
            "",
            f"footprint reduction: {self.footprint_reduction:.1f}x "
            f"(paper: ~{PAPER_FOOTPRINT_REDUCTION:.0f}x)",
        ])


def run_figure7() -> Figure7Result:
    """Build and validate both floorplans."""
    planar = planar_floorplan()
    stacked = stacked_floorplan()
    planar.validate()
    stacked.validate()
    return Figure7Result(planar=planar, stacked=stacked)
