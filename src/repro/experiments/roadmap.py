"""The 3D adoption roadmap of Figure 2 / Section 2.2.

The paper sketches the likely evolution of 3D processors:

* (a) today's planar design;
* (b) planar cores with a 3D-stacked L2 (density play: shorter wires to
  the cache, same cores) — the "3D CMP" class of prior work;
* (c) more stacked cache layers (bigger, still-close L2);
* (d) full 3D cores with Thermal Herding — this paper.

Only (d) touches the cores, so only (d) changes the clock frequency; (b)
and (c) improve L2 latency/capacity at the planar clock.  The experiment
quantifies each step's performance on a workload set, reproducing the
section's argument that stopping at stacked caches leaves most of the
benefit unrealized.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from repro.experiments.context import ExperimentContext

#: Roadmap stages in presentation order.
STAGES = ("planar", "stacked-l2", "stacked-cache+", "3d-cores")


@dataclass
class RoadmapResult:
    """Per-stage geometric-mean performance."""

    #: stage -> benchmark -> instructions per ns
    ipns: Dict[str, Dict[str, float]]
    #: stage -> geometric-mean speedup over the planar stage
    speedup: Dict[str, float]

    def format(self) -> str:
        lines = [
            "Figure 2 roadmap: from planar to full 3D cores",
            f"{'stage':<16s} {'speedup':>8s}",
        ]
        for stage in STAGES:
            lines.append(f"{stage:<16s} {self.speedup[stage]:7.2f}x")
        lines.append(
            "stacked caches alone capture only part of the full-3D gain "
            "(Section 2.2's motivation)"
        )
        return "\n".join(lines)


def _geomean(values: List[float]) -> float:
    import math
    return math.exp(sum(math.log(v) for v in values) / len(values)) if values else 0.0


def run_roadmap(
    context: Optional[ExperimentContext] = None,
    benchmarks: Optional[List[str]] = None,
) -> RoadmapResult:
    """Evaluate the four roadmap stages."""
    context = context or ExperimentContext()
    names = benchmarks or context.settings.benchmark_list()

    base = context.configs["Base"]
    stages = {
        "planar": base,
        # A 3D-stacked L2 die: the L2 moves closer (fewer cycles), cores
        # untouched.
        "stacked-l2": replace(base, name="stacked-l2", l2_latency=9),
        # Additional cache layers: closer still, and twice the capacity.
        "stacked-cache+": replace(
            base, name="stacked-cache+", l2_latency=8, l2_size=8 << 20
        ),
        # Full 3D cores (this paper).
        "3d-cores": context.configs["3D"],
    }

    context.prefetch(context.grid(("Base", "3D"), names))
    context.prefetch_configs(
        (name, config)
        for name in names
        for stage, config in stages.items()
        if stage not in ("planar", "3d-cores")
    )

    ipns: Dict[str, Dict[str, float]] = {stage: {} for stage in STAGES}
    for name in names:
        for stage, config in stages.items():
            if stage in ("planar", "3d-cores"):
                result = context.run(name, "Base" if stage == "planar" else "3D")
            else:
                result = context.run_config(name, config)
            ipns[stage][name] = result.ipns

    speedup = {
        stage: _geomean([
            ipns[stage][name] / ipns["planar"][name] for name in names
        ])
        for stage in STAGES
    }
    return RoadmapResult(ipns=ipns, speedup=speedup)
