"""Section 3.8's width prediction accuracy and herding effectiveness.

The paper reports that 97 % of all fetched instructions have their widths
correctly predicted.  Control-flow and FP instructions carry no width
prediction, so the all-instruction metric counts them as trivially
correct; the per-predicted-instruction accuracy is also reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.experiments.context import ExperimentContext

PAPER_WIDTH_ACCURACY = 0.97


@dataclass
class WidthStatsResult:
    """Width prediction and herding metrics across the suite."""

    #: benchmark -> accuracy over all fetched instructions
    all_inst_accuracy: Dict[str, float]
    #: benchmark -> accuracy over width-predicted instructions only
    predicted_accuracy: Dict[str, float]
    #: benchmark -> herding metric name -> value
    herding: Dict[str, Dict[str, float]]

    @property
    def mean_all_inst_accuracy(self) -> float:
        values = list(self.all_inst_accuracy.values())
        return sum(values) / len(values) if values else 0.0

    @property
    def mean_predicted_accuracy(self) -> float:
        values = list(self.predicted_accuracy.values())
        return sum(values) / len(values) if values else 0.0

    def mean_herding(self, metric: str) -> float:
        values = [m[metric] for m in self.herding.values() if metric in m]
        return sum(values) / len(values) if values else 0.0

    def format(self) -> str:
        lines = [
            "Width prediction accuracy (Section 3.8; paper: 97% of fetched)",
            f"{'benchmark':<10s} {'all-inst':>9s} {'predicted':>10s} "
            f"{'dcache':>8s} {'pam':>6s} {'sched':>7s}",
        ]
        for name in sorted(self.all_inst_accuracy):
            herd = self.herding[name]
            lines.append(
                f"{name:<10s} {self.all_inst_accuracy[name]:9.1%} "
                f"{self.predicted_accuracy[name]:10.1%} "
                f"{herd.get('dcache_herded_loads', 0.0):8.1%} "
                f"{herd.get('pam_herded', 0.0):6.1%} "
                f"{herd.get('scheduler_dies_per_broadcast', 0.0):7.2f}"
            )
        lines.append(
            f"mean all-instruction accuracy: {self.mean_all_inst_accuracy:.1%} "
            f"(paper {PAPER_WIDTH_ACCURACY:.0%})"
        )
        return "\n".join(lines)


def run_width_stats(context: Optional[ExperimentContext] = None) -> WidthStatsResult:
    """Run the TH configuration across the suite and collect metrics."""
    context = context or ExperimentContext()
    context.prefetch(context.grid(("TH",)))
    all_acc: Dict[str, float] = {}
    pred_acc: Dict[str, float] = {}
    herding: Dict[str, Dict[str, float]] = {}
    for benchmark in context.settings.benchmark_list():
        result = context.run(benchmark, "TH")
        stats = result.width_stats
        assert stats is not None, "TH runs must produce width stats"
        total = result.instructions
        unpredicted = total - stats.predictions
        all_acc[benchmark] = (
            (stats.correct + unpredicted) / total if total else 0.0
        )
        pred_acc[benchmark] = stats.accuracy
        herding[benchmark] = dict(result.herding)
    return WidthStatsResult(
        all_inst_accuracy=all_acc,
        predicted_accuracy=pred_acc,
        herding=herding,
    )
