"""Machine-readable exports of experiment results.

Downstream analysis (plotting, regression dashboards) wants the numbers,
not the formatted tables: these helpers flatten each experiment result
into rows and write JSON or CSV.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, List

from repro.experiments.figure8 import Figure8Result
from repro.experiments.figure9 import Figure9Result
from repro.experiments.figure10 import Figure10Result
from repro.experiments.table2 import Table2Result


def table2_rows(result: Table2Result) -> List[Dict[str, Any]]:
    """One row per block: latencies, energies, improvement."""
    rows = []
    for name, model in sorted(result.blocks.items()):
        timing = model.timing
        rows.append({
            "block": name,
            "latency_2d_ps": round(timing.latency_2d_ps, 2),
            "latency_3d_ps": round(timing.latency_3d_ps, 2),
            "improvement": round(timing.improvement, 4),
            "energy_2d_pj": round(timing.energy_2d_pj, 3),
            "energy_3d_pj": round(timing.energy_3d_pj, 3),
            "energy_3d_top_pj": round(timing.energy_3d_top_pj, 3),
            "mode": timing.mode.value,
        })
    return rows


def figure8_rows(result: Figure8Result) -> List[Dict[str, Any]]:
    """One row per benchmark: IPC per config plus the 3D speedup."""
    rows = []
    for benchmark, per_config in sorted(result.ipc.items()):
        row: Dict[str, Any] = {"benchmark": benchmark}
        for config, ipc in per_config.items():
            row[f"ipc_{config.lower()}"] = round(ipc, 4)
        row["speedup_3d"] = round(result.speedup[benchmark], 4)
        rows.append(row)
    return rows


def figure9_rows(result: Figure9Result) -> List[Dict[str, Any]]:
    """One row per benchmark: chip power planar vs 3D TH."""
    rows = []
    for benchmark, (w2d, w3d, saving) in sorted(result.per_benchmark.items()):
        rows.append({
            "benchmark": benchmark,
            "planar_watts": round(w2d, 3),
            "herding_watts": round(w3d, 3),
            "saving": round(saving, 4),
        })
    return rows


def figure10_rows(result: Figure10Result) -> List[Dict[str, Any]]:
    """One row per configuration: worst app and peak temperature."""
    rows = []
    for label, (benchmark, thermal) in result.worst_case.items():
        name, die, temp = thermal.hottest_block()
        rows.append({
            "config": label,
            "worst_benchmark": benchmark,
            "peak_k": round(thermal.peak_temperature, 2),
            "hottest_block": name,
            "hottest_die": die,
        })
    return rows


def to_json(rows: List[Dict[str, Any]], indent: int = 2) -> str:
    """Serialize rows as a JSON array."""
    return json.dumps(rows, indent=indent)


def to_csv(rows: List[Dict[str, Any]]) -> str:
    """Serialize rows as CSV (header from the first row's keys)."""
    if not rows:
        return ""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0].keys()))
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def write_rows(rows: List[Dict[str, Any]], path: str) -> None:
    """Write rows to ``path``; the extension picks the format."""
    if path.endswith(".json"):
        payload = to_json(rows)
    elif path.endswith(".csv"):
        payload = to_csv(rows)
    else:
        raise ValueError(f"unsupported export extension: {path!r} (.json/.csv)")
    with open(path, "w", encoding="utf-8") as stream:
        stream.write(payload)
