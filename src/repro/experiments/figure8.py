"""Figure 8: IPC, instructions per ns, and relative speedup.

The paper reports, per benchmark class, the geometric-mean IPC of the
Base / TH / Pipe / Fast / 3D configurations (8a), the corresponding
instructions-per-nanosecond (8b), and the speedup of the 3D processor
over the baseline (8c), plus the mean-of-means across classes.  Headline
numbers: mean speedup 1.47, minimum 1.07 (mcf), maximum 1.77 (patricia);
every class except SPECfp2000 lands between +49.4 % and +51.5 %; SPECfp
gets +29.5 % because it is bound by unimproved DRAM latency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.context import ExperimentContext
from repro.workloads.parameters import BenchmarkClass
from repro.workloads.suite import BENCHMARKS

#: The configurations shown in Figure 8, in presentation order.
FIGURE8_CONFIGS = ("Base", "TH", "Pipe", "Fast", "3D")

PAPER_MEAN_SPEEDUP = 1.47
PAPER_MIN_SPEEDUP = 1.07
PAPER_MAX_SPEEDUP = 1.77
PAPER_SPECFP_SPEEDUP = 1.295


def _geomean(values: List[float]) -> float:
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass
class Figure8Result:
    """Per-benchmark and per-class performance metrics."""

    #: benchmark -> config label -> IPC
    ipc: Dict[str, Dict[str, float]]
    #: benchmark -> config label -> instructions per ns
    ipns: Dict[str, Dict[str, float]]
    #: benchmark -> 3D speedup over Base (by IPns)
    speedup: Dict[str, float]
    #: class name -> config label -> geometric mean IPC
    class_ipc: Dict[str, Dict[str, float]]
    #: class name -> geometric mean speedup
    class_speedup: Dict[str, float]

    @property
    def mean_of_means_speedup(self) -> float:
        return _geomean(list(self.class_speedup.values()))

    @property
    def min_speedup(self) -> float:
        return min(self.speedup.values())

    @property
    def max_speedup(self) -> float:
        return max(self.speedup.values())

    def config_mean_ipc(self, config: str) -> float:
        """Mean-of-means IPC for one configuration."""
        return _geomean([c[config] for c in self.class_ipc.values()])

    def format(self) -> str:
        lines = ["Figure 8: performance of Base / TH / Pipe / Fast / 3D"]
        header = f"{'class':<14s}" + "".join(f"{c:>8s}" for c in FIGURE8_CONFIGS) + f"{'speedup':>9s}"
        lines.append("(a) geometric mean IPC per class")
        lines.append(header)
        for klass, per_config in self.class_ipc.items():
            row = f"{klass:<14s}" + "".join(f"{per_config[c]:8.2f}" for c in FIGURE8_CONFIGS)
            lines.append(row + f"{self.class_speedup[klass]:9.2f}")
        mom = f"{'M-of-M':<14s}" + "".join(
            f"{self.config_mean_ipc(c):8.2f}" for c in FIGURE8_CONFIGS
        )
        lines.append(mom + f"{self.mean_of_means_speedup:9.2f}")
        lines.append("(c) speedup extremes")
        lines.append(
            f"  min {self.min_speedup:.2f} "
            f"({min(self.speedup, key=self.speedup.get)}); paper 1.07 (mcf)"
        )
        lines.append(
            f"  max {self.max_speedup:.2f} "
            f"({max(self.speedup, key=self.speedup.get)}); paper 1.77 (patricia)"
        )
        lines.append(
            f"  mean {self.mean_of_means_speedup:.2f}; paper {PAPER_MEAN_SPEEDUP}"
        )
        return "\n".join(lines)


def run_figure8(context: Optional[ExperimentContext] = None) -> Figure8Result:
    """Simulate every benchmark under the five configurations."""
    context = context or ExperimentContext()
    benchmarks = context.settings.benchmark_list()
    context.prefetch(context.grid(FIGURE8_CONFIGS, benchmarks))

    ipc: Dict[str, Dict[str, float]] = {}
    ipns: Dict[str, Dict[str, float]] = {}
    speedup: Dict[str, float] = {}
    for benchmark in benchmarks:
        ipc[benchmark] = {}
        ipns[benchmark] = {}
        for config in FIGURE8_CONFIGS:
            result = context.run(benchmark, config)
            ipc[benchmark][config] = result.ipc
            ipns[benchmark][config] = result.ipns
        speedup[benchmark] = ipns[benchmark]["3D"] / ipns[benchmark]["Base"]

    class_ipc: Dict[str, Dict[str, float]] = {}
    class_speedup: Dict[str, float] = {}
    for klass in BenchmarkClass:
        members = [
            b for b in benchmarks
            if BENCHMARKS[b].benchmark_class is klass
        ]
        if not members:
            continue
        class_ipc[klass.value] = {
            config: _geomean([ipc[b][config] for b in members])
            for config in FIGURE8_CONFIGS
        }
        class_speedup[klass.value] = _geomean([speedup[b] for b in members])

    return Figure8Result(
        ipc=ipc,
        ipns=ipns,
        speedup=speedup,
        class_ipc=class_ipc,
        class_speedup=class_speedup,
    )
