"""Figure 10: thermal maps of the three processors.

Panels (a-c) show each processor running its own *worst-case* application
(the paper found mpeg2 worst for the planar and 3D-no-herding processors
and yacr2 worst for the Thermal Herding processor): peak 360 K at the
instruction scheduler for 2D, 377 K (+17 K) for 3D without herding, and
372 K (+12 K, at the data cache) with Thermal Herding — a 29 % reduction
of the 3D temperature increase.  Panels (d-f) rerun a single application
on all three processors; the ROB (holding mostly low-width values) ends
up ~5 K *cooler* than planar under Thermal Herding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.context import ExperimentContext, REFERENCE_BENCHMARK
from repro.thermal.solver import ThermalResult

PAPER_2D_PEAK_K = 360.0
PAPER_NOTH_DELTA_K = 17.0
PAPER_TH_DELTA_K = 12.0
PAPER_TH_REDUCTION = 0.29

#: Candidate worst-case applications probed per configuration (the full
#: 106-trace sweep is summarized by the highest-power candidates).
WORST_CASE_CANDIDATES = ("mpeg2", "adpcm", "susan", "yacr2", "crafty", "g721")


@dataclass
class Figure10Result:
    """Worst-case and fixed-application thermal analyses."""

    #: config label -> (worst benchmark, thermal result)
    worst_case: Dict[str, Tuple[str, ThermalResult]]
    #: config label -> thermal result for the fixed reference application
    fixed_app: Dict[str, ThermalResult]
    fixed_benchmark: str

    @property
    def peak_2d(self) -> float:
        return self.worst_case["Base"][1].peak_temperature

    @property
    def delta_no_herding(self) -> float:
        return self.worst_case["3D-noTH"][1].peak_temperature - self.peak_2d

    @property
    def delta_herding(self) -> float:
        return self.worst_case["3D"][1].peak_temperature - self.peak_2d

    @property
    def herding_delta_reduction(self) -> float:
        """Fraction of the 3D temperature increase removed by herding."""
        if self.delta_no_herding <= 0:
            return 0.0
        return 1.0 - self.delta_herding / self.delta_no_herding

    def rob_delta_vs_planar(self) -> float:
        """Fixed-app ROB peak: 3D Thermal Herding minus planar (K)."""
        planar = self.fixed_app["Base"]
        herding = self.fixed_app["3D"]
        planar_rob = max(
            t for (name, _die), t in planar.block_peak.items() if name.endswith(".rob")
        )
        herding_rob = max(
            t for (name, _die), t in herding.block_peak.items() if name.endswith(".rob")
        )
        return herding_rob - planar_rob

    def format(self) -> str:
        lines = ["Figure 10 (a-c): worst-case thermal maps"]
        paper = {
            "Base": f"paper 360 K (scheduler)",
            "3D-noTH": f"paper 377 K (+17)",
            "3D": f"paper 372 K (+12, data cache)",
        }
        for label in ("Base", "3D-noTH", "3D"):
            benchmark, result = self.worst_case[label]
            name, die, temp = result.hottest_block()
            delta = result.peak_temperature - self.peak_2d
            delta_txt = f" (+{delta:.1f} K)" if label != "Base" else ""
            lines.append(
                f"  {label:<8s} {result.peak_temperature:6.1f} K{delta_txt}  "
                f"worst app {benchmark}, hottest {name} die {die}; {paper[label]}"
            )
        lines.append(
            f"herding removes {self.herding_delta_reduction:.0%} of the 3D increase "
            f"(paper: {PAPER_TH_REDUCTION:.0%})"
        )
        lines.append(f"Figure 10 (d-f): {self.fixed_benchmark} on all three processors")
        for label in ("Base", "3D-noTH", "3D"):
            result = self.fixed_app[label]
            name, die, temp = result.hottest_block()
            lines.append(
                f"  {label:<8s} peak {result.peak_temperature:6.1f} K  hottest {name} die {die}"
            )
        lines.append(
            f"ROB with herding vs planar: {self.rob_delta_vs_planar():+.1f} K "
            f"(paper: -5 K)"
        )
        return "\n".join(lines)


def run_figure10(
    context: Optional[ExperimentContext] = None,
    candidates: Optional[List[str]] = None,
) -> Figure10Result:
    """Find each configuration's worst-case app and solve the maps."""
    context = context or ExperimentContext()
    available = set(context.settings.benchmark_list())
    probe = [c for c in (candidates or WORST_CASE_CANDIDATES) if c in available]
    if not probe:
        probe = context.settings.benchmark_list()[:3]

    fixed = REFERENCE_BENCHMARK if REFERENCE_BENCHMARK in available else probe[0]
    labels = ("Base", "3D-noTH", "3D")
    # One batched solve per stack covers every candidate map.
    maps = context.thermal_many(
        [(benchmark, label) for label in labels for benchmark in probe]
        + [(fixed, label) for label in labels]
    )

    worst_case: Dict[str, Tuple[str, ThermalResult]] = {}
    for label in labels:
        best: Optional[Tuple[str, ThermalResult]] = None
        for benchmark in probe:
            result = maps[(benchmark, label)]
            if best is None or result.peak_temperature > best[1].peak_temperature:
                best = (benchmark, result)
        assert best is not None
        worst_case[label] = best

    fixed_app = {label: maps[(fixed, label)] for label in labels}
    return Figure10Result(
        worst_case=worst_case,
        fixed_app=fixed_app,
        fixed_benchmark=fixed,
    )
