"""Scrapeable metrics snapshot of the cache, ledger, and run telemetry.

One JSON-serializable dictionary combining:

* **cache-side state** read from disk — exact size/entry counts from the
  :class:`repro.experiments.cache.SizeLedger` (result and trace entries
  broken out), the configured size cap, ledger generation/compaction
  health, and in-flight claim/temp-file counts;
* **per-process cache counters** — hit/miss/store/eviction counts of the
  live :class:`~repro.experiments.cache.ResultCache` and its trace
  store;
* **solver state** — the process-wide ``FACTORIZATION_STATS`` LRU
  counters;
* **run telemetry** — the owning context's
  :meth:`~repro.experiments.context.ContextStats.as_dict` payload
  (per-stage wall-clock, claim/retry/fault counters), when a context is
  attached.

``python -m repro metrics`` prints the snapshot (or writes it with
``--out FILE``) for CI artifacts and external scrapers;
``repro report --stats``/``--log-json`` embed the same cache section so
one warm-vs-cold diff shows exactly where every result came from.
"""

from __future__ import annotations

from datetime import datetime, timezone
from typing import Optional

#: Bump when the snapshot layout changes incompatibly.
METRICS_SCHEMA_VERSION = 1


def cache_metrics(cache) -> dict:
    """The cache/ledger section of the snapshot (``cache`` may be None —
    the ``REPRO_CACHE=0`` configuration — which reports as disabled)."""
    from repro.experiments.cache import CACHE_SCHEMA_VERSION, ENV_CACHE_MAX_MB

    if cache is None:
        return {"enabled": False}
    ledger = cache.ledger
    state = ledger.state()
    result_bytes = result_entries = trace_bytes = trace_entries = 0
    for composite, (nbytes, _ts) in state.items():
        if composite.startswith("trace:"):
            trace_bytes += int(nbytes)
            trace_entries += 1
        else:
            result_bytes += int(nbytes)
            result_entries += 1
    store = cache.trace_store()
    return {
        "enabled": True,
        "dir": str(cache.root),
        "schema_version": CACHE_SCHEMA_VERSION,
        "size_bytes": result_bytes + trace_bytes,
        "entries": result_entries + trace_entries,
        "result_bytes": result_bytes,
        "result_entries": result_entries,
        "trace_bytes": trace_bytes,
        "trace_entries": trace_entries,
        "max_bytes": cache.max_bytes,
        "max_bytes_env": ENV_CACHE_MAX_MB,
        "ledger": {
            "generation": ledger._read_checkpoint().get("gen", 0),
            "shards": ledger.shards,
            "unfolded_records": ledger.shard_record_count(),
            "appends": ledger.appends,
            "compactions": ledger.compactions,
            "rebuilds": ledger.rebuilds,
        },
        "claims": len(cache.claims()),
        "tmp_files": len(cache.tmp_files()),
        "counters": {
            "hits": cache.hits,
            "misses": cache.misses,
            "stores": cache.stores,
            "evictions": cache.evictions,
            "evictions_size": cache.evictions_size,
            "trace_hits": store.hits,
            "trace_misses": store.misses,
            "trace_stores": store.stores,
            "trace_evictions": store.evictions,
        },
    }


def metrics_snapshot(context=None, cache=None) -> dict:
    """The full snapshot.

    ``context`` attaches its cache and run telemetry; without one,
    ``cache`` is used as-is when given, else the environment-default
    cache (``None`` under ``REPRO_CACHE=0``) is inspected — that is what
    ``python -m repro metrics`` scrapes between runs.
    """
    from repro.thermal.solver import FACTORIZATION_STATS
    from repro.thermal.transient import STEP_FACTORIZATION_STATS

    if context is not None:
        cache = context.cache
    elif cache is None:
        from repro.experiments.cache import ResultCache

        cache = ResultCache.from_env()
    snapshot = {
        "schema": METRICS_SCHEMA_VERSION,
        "ts": datetime.now(timezone.utc).isoformat(timespec="milliseconds"),
        "cache": cache_metrics(cache),
        "factorizations": {
            "factorizations": FACTORIZATION_STATS.factorizations,
            "cache_hits": FACTORIZATION_STATS.cache_hits,
        },
        "step_factorizations": {
            "factorizations": STEP_FACTORIZATION_STATS.factorizations,
            "cache_hits": STEP_FACTORIZATION_STATS.cache_hits,
        },
    }
    if context is not None:
        snapshot["run"] = context.stats.as_dict()
    return snapshot
