"""Leakage-temperature feedback applied to the three processors.

The paper budgets leakage at a flat 20 % of the baseline power.  With
temperature-dependent leakage (doubling every ~24 K), hot designs pay a
compounding tax: this experiment converges the electro-thermal fixed
point for the planar, 3D-without-herding, and 3D Thermal Herding
processors, reporting how much each design's leakage inflates beyond the
budget — herding's reduction of hotspot temperatures also buys leakage
headroom.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.experiments.context import CORE_COUNT, ExperimentContext, REFERENCE_BENCHMARK
from repro.power.model import StackKind
from repro.thermal.feedback import (
    FeedbackResult,
    solve_with_leakage_feedback,
    uniform_leakage_grids,
)
from repro.thermal.power_map import build_power_map, rasterize

#: Leakage is budgeted at the paper's planar worst-case temperature.
LEAKAGE_REFERENCE_K = 360.0

CONFIG_LABELS = ("Base", "3D-noTH", "3D")


@dataclass
class LeakageFeedbackResult:
    """Fixed-point outcomes per configuration."""

    #: config label -> (fixed-leakage peak K, feedback peak K, amplification)
    outcomes: Dict[str, tuple]

    def format(self) -> str:
        lines = [
            f"leakage-temperature feedback (budget at {LEAKAGE_REFERENCE_K:.0f} K)",
            f"{'config':<8s} {'fixed K':>8s} {'coupled K':>10s} {'leak x':>7s}",
        ]
        for label in CONFIG_LABELS:
            fixed, coupled, amp = self.outcomes[label]
            lines.append(f"{label:<8s} {fixed:8.1f} {coupled:10.1f} {amp:7.2f}")
        base_amp = self.outcomes["Base"][2]
        noth_amp = self.outcomes["3D-noTH"][2]
        th_amp = self.outcomes["3D"][2]
        lines.append(
            f"herding's leakage headroom vs no-herding: "
            f"{(noth_amp - th_amp) / max(noth_amp, 1e-9):.1%}"
        )
        return "\n".join(lines)


def run_leakage_feedback(
    context: Optional[ExperimentContext] = None,
    benchmark: str = REFERENCE_BENCHMARK,
) -> LeakageFeedbackResult:
    """Converge the electro-thermal fixed point for each processor."""
    context = context or ExperimentContext()
    context.prefetch([(benchmark, label) for label in CONFIG_LABELS]
                     + [(REFERENCE_BENCHMARK, "Base")])
    outcomes: Dict[str, tuple] = {}
    for label in CONFIG_LABELS:
        stack_kind = StackKind.PLANAR_2D if label == "Base" else StackKind.STACKED_3D
        breakdown = context.power(benchmark, label)
        plan = context.floorplan(stack_kind)
        solver = context.solver(stack_kind)
        ny, nx = solver.chip_grid_shape()

        # Separate the leakage component so it can respond to temperature.
        leakage_total = CORE_COUNT * breakdown.leakage_watts
        dynamic_total = CORE_COUNT * (breakdown.total_watts - breakdown.leakage_watts)
        full = build_power_map(plan, [breakdown] * CORE_COUNT)
        full_grids = rasterize(plan, full, nx, ny)
        chip_total = sum(float(g.sum()) for g in full_grids)
        dynamic_grids = [
            g * (dynamic_total / chip_total) for g in full_grids
        ]
        leak_grids = uniform_leakage_grids(solver, leakage_total)

        fixed = solver.solve([d + l for d, l in zip(dynamic_grids, leak_grids)])
        feedback: FeedbackResult = solve_with_leakage_feedback(
            solver, dynamic_grids, leak_grids, reference_k=LEAKAGE_REFERENCE_K,
        )
        outcomes[label] = (
            fixed.peak_temperature,
            feedback.result.peak_temperature,
            feedback.leakage_amplification,
        )
    return LeakageFeedbackResult(outcomes=outcomes)
