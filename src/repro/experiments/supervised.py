"""Worker-side thermal solving for the parallel thermal engine.

SuperLU factorizations grow superlinearly with the grid: a huge sweep
configuration can exhaust memory and abort the interpreter, and unlike
simulation tasks the thermal solve historically ran *in the parent
process*, so one oversized factorization took the whole campaign down.

:func:`solve_group_task` is the worker entry point of
:meth:`repro.experiments.context.ExperimentContext.solve_thermal_groups`:
it rebuilds the solver from pure geometry data (a built solver holds an
unpicklable SuperLU handle), factorizes once, solves every right-hand
side of its geometry group, and ships back the temperature arrays plus
its factorization-LRU delta.  The same entry point serves two callers —
the geometry fan-out that parallelizes cold thermal stages across the
pool, and the supervised path for solves whose system exceeds
``REPRO_THERMAL_SUBPROC_CELLS`` unknowns, where a crash, OOM kill, or
hang in the subprocess costs one timeout and an in-process fallback
solve instead of the parent.  Solves are deterministic, so worker
results are bit-identical to in-process ones.

When the variable is unset, :func:`default_subproc_cells` supplies a
threshold calibrated to this machine's RAM (see its docstring for the
formula); setting it to ``0``/``off``/``no``/``false``/``none`` disables
supervision entirely, and a positive integer overrides the calibration.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.thermal.solver import FACTORIZATION_STATS, ThermalResult, ThermalSolver

#: ``REPRO_THERMAL_SUBPROC_CELLS`` values that disable supervision.
DISABLED_VALUES = frozenset({"0", "off", "no", "false", "none"})

#: Measured SuperLU fill constant: the LU factors of the thermal
#: conductance matrix occupy about ``LU_FILL_BYTES * cells ** (4/3)``
#: bytes (12 bytes per stored nonzero; measured 952-3419 bytes/cell over
#: 4k-65k cell systems across the planar and 3D stacks, with the 4/3
#: exponent fitting the observed growth of fill-in with system size;
#: 100 covers the worst case, the 10-layer 3D stack).
LU_FILL_BYTES = 100.0

#: Fraction of physical RAM one in-process factorization may claim
#: before the solve is routed to a crash-isolated subprocess.
RAM_FRACTION = 0.25

#: Never supervise systems smaller than this: sub-65k-cell solves (all
#: default and fast-test grids) take milliseconds and cannot threaten
#: the parent even on tiny machines, so the subprocess round-trip would
#: be pure overhead.
MIN_SUBPROC_CELLS = 65_536

#: Threshold used when physical RAM cannot be queried (non-POSIX).
FALLBACK_SUBPROC_CELLS = 250_000


def physical_ram_bytes() -> Optional[int]:
    """Physical RAM in bytes, or ``None`` when unqueryable."""
    try:
        page = os.sysconf("SC_PAGE_SIZE")
        pages = os.sysconf("SC_PHYS_PAGES")
    except (AttributeError, ValueError, OSError):
        return None
    if page <= 0 or pages <= 0:
        return None
    return page * pages


def default_subproc_cells() -> int:
    """Calibrated default for ``REPRO_THERMAL_SUBPROC_CELLS``.

    Supervision pays a subprocess round-trip to protect the parent from
    an OOM abort, so the threshold is the system size whose factorization
    footprint reaches :data:`RAM_FRACTION` of physical RAM.  Inverting
    the measured footprint model ``bytes = LU_FILL_BYTES * cells**(4/3)``
    gives::

        cells = (RAM_FRACTION * ram_bytes / LU_FILL_BYTES) ** (3/4)

    clamped below by :data:`MIN_SUBPROC_CELLS`.  On a 4 GiB machine this
    is about 180k cells; on 128 GiB about 2.4M cells — the paper-default
    64x64 grids (16k-41k cells) always solve in-process.
    """
    ram = physical_ram_bytes()
    if ram is None:
        return FALLBACK_SUBPROC_CELLS
    cells = (RAM_FRACTION * ram / LU_FILL_BYTES) ** 0.75
    return max(int(cells), MIN_SUBPROC_CELLS)


def solve_group_task(
    stack,
    floorplan,
    nx: int,
    ny: int,
    spreader_mm: float,
    batches: Sequence[Sequence],
) -> Tuple[List[ThermalResult], Dict[str, float]]:
    """Worker entry point: solve one geometry group, report solve stats.

    The solver is reconstructed from its constructor arguments (geometry
    is pure data) rather than pickled, because a built solver holds an
    unpicklable SuperLU handle; its factorization lands in the *worker's*
    process-wide LRU, so a long-lived worker re-solving the same
    geometry skips ``gstrf`` exactly like the parent would.  Returns the
    temperature results together with this task's factorization-LRU
    delta and wall-clock, which the parent folds into ``ContextStats``
    (worker counters are otherwise invisible across the process
    boundary).  The fault point mirrors the simulation workers' — no-op
    unless a token directory is armed.
    """
    from repro.experiments.faults import maybe_inject_thermal_fault

    maybe_inject_thermal_fault()
    start = time.perf_counter()
    factorizations = FACTORIZATION_STATS.factorizations
    cache_hits = FACTORIZATION_STATS.cache_hits
    solver = ThermalSolver(stack, floorplan, nx, ny, spreader_mm)
    results = solver.solve_many(batches)
    stats = {
        "factorizations": FACTORIZATION_STATS.factorizations - factorizations,
        "cache_hits": FACTORIZATION_STATS.cache_hits - cache_hits,
        "seconds": round(time.perf_counter() - start, 3),
    }
    return results, stats


def transient_group_task(
    stack,
    floorplan,
    nx: int,
    ny: int,
    spreader_mm: float,
    dt_s: float,
    schedules: Sequence,
    duration_s: float,
    initial_k: Optional[float],
) -> Tuple[List, List[Dict[str, float]], Dict[str, float]]:
    """Worker entry point: step one step-matrix group of transient runs.

    Same contract as :func:`solve_group_task` — the steady solver is
    rebuilt from pure geometry (the step-matrix factorization lands in
    the worker's LRU and never crosses the process boundary), every run
    in the group advances in lock-step through one multi-RHS
    factorization, and the task ships back its step-factorization delta.
    Schedules are pickled copies, so their accumulated stats (throttle
    duty counters) travel back explicitly as the second element.
    Stepping is deterministic: worker results are bit-identical to the
    parent's inline path.
    """
    from repro.experiments.faults import maybe_inject_thermal_fault
    from repro.thermal.transient import (
        STEP_FACTORIZATION_STATS,
        TransientThermalSolver,
    )

    maybe_inject_thermal_fault()
    start = time.perf_counter()
    step_factorizations = STEP_FACTORIZATION_STATS.factorizations
    step_cache_hits = STEP_FACTORIZATION_STATS.cache_hits
    solver = ThermalSolver(stack, floorplan, nx, ny, spreader_mm)
    transient = TransientThermalSolver(solver, dt_s=dt_s)
    results = transient.run_many(schedules, duration_s, initial_k=initial_k)
    stats = {
        "step_factorizations": (
            STEP_FACTORIZATION_STATS.factorizations - step_factorizations
        ),
        "step_cache_hits": (
            STEP_FACTORIZATION_STATS.cache_hits - step_cache_hits
        ),
        "seconds": round(time.perf_counter() - start, 3),
    }
    return results, [s.stats() for s in schedules], stats


def solve_batches_task(
    stack,
    floorplan,
    nx: int,
    ny: int,
    spreader_mm: float,
    batches: Sequence[Sequence],
) -> List[ThermalResult]:
    """Back-compat wrapper around :func:`solve_group_task`: results only."""
    return solve_group_task(stack, floorplan, nx, ny, spreader_mm, batches)[0]
