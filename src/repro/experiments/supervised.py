"""Supervised subprocess execution for large thermal solves.

SuperLU factorizations grow superlinearly with the grid: a huge sweep
configuration can exhaust memory and abort the interpreter, and unlike
simulation tasks the thermal solve historically ran *in the parent
process*, so one oversized factorization took the whole campaign down.

:meth:`repro.experiments.context.ExperimentContext.solve_thermal` routes
solve batches whose system exceeds ``REPRO_THERMAL_SUBPROC_CELLS``
unknowns through :func:`solve_batches_task` in a single-use worker
process, supervised with a timeout; a crash, OOM kill, or hang in the
subprocess costs one timeout and an in-process fallback solve instead of
the parent.  Solves are deterministic, so the subprocess result is
bit-identical to the in-process one.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.thermal.solver import ThermalResult, ThermalSolver


def solve_batches_task(
    stack,
    floorplan,
    nx: int,
    ny: int,
    spreader_mm: float,
    batches: Sequence[Sequence],
) -> List[ThermalResult]:
    """Worker entry point: rebuild the solver and run the batched solve.

    The solver is reconstructed from its constructor arguments (geometry
    is pure data) rather than pickled, because a built solver holds an
    unpicklable SuperLU handle.  The fault point mirrors the simulation
    workers' — no-op unless a token directory is armed.
    """
    from repro.experiments.faults import maybe_inject_worker_fault

    maybe_inject_worker_fault()
    solver = ThermalSolver(stack, floorplan, nx, ny, spreader_mm)
    return solver.solve_many(batches)
