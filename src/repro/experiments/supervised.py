"""Supervised subprocess execution for large thermal solves.

SuperLU factorizations grow superlinearly with the grid: a huge sweep
configuration can exhaust memory and abort the interpreter, and unlike
simulation tasks the thermal solve historically ran *in the parent
process*, so one oversized factorization took the whole campaign down.

:meth:`repro.experiments.context.ExperimentContext.solve_thermal` routes
solve batches whose system exceeds ``REPRO_THERMAL_SUBPROC_CELLS``
unknowns through :func:`solve_batches_task` in a single-use worker
process, supervised with a timeout; a crash, OOM kill, or hang in the
subprocess costs one timeout and an in-process fallback solve instead of
the parent.  Solves are deterministic, so the subprocess result is
bit-identical to the in-process one.

When the variable is unset, :func:`default_subproc_cells` supplies a
threshold calibrated to this machine's RAM (see its docstring for the
formula); setting it to ``0``/``off``/``no``/``false``/``none`` disables
supervision entirely, and a positive integer overrides the calibration.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence

from repro.thermal.solver import ThermalResult, ThermalSolver

#: ``REPRO_THERMAL_SUBPROC_CELLS`` values that disable supervision.
DISABLED_VALUES = frozenset({"0", "off", "no", "false", "none"})

#: Measured SuperLU fill constant: the LU factors of the thermal
#: conductance matrix occupy about ``LU_FILL_BYTES * cells ** (4/3)``
#: bytes (12 bytes per stored nonzero; measured 952-3419 bytes/cell over
#: 4k-65k cell systems across the planar and 3D stacks, with the 4/3
#: exponent fitting the observed growth of fill-in with system size;
#: 100 covers the worst case, the 10-layer 3D stack).
LU_FILL_BYTES = 100.0

#: Fraction of physical RAM one in-process factorization may claim
#: before the solve is routed to a crash-isolated subprocess.
RAM_FRACTION = 0.25

#: Never supervise systems smaller than this: sub-65k-cell solves (all
#: default and fast-test grids) take milliseconds and cannot threaten
#: the parent even on tiny machines, so the subprocess round-trip would
#: be pure overhead.
MIN_SUBPROC_CELLS = 65_536

#: Threshold used when physical RAM cannot be queried (non-POSIX).
FALLBACK_SUBPROC_CELLS = 250_000


def physical_ram_bytes() -> Optional[int]:
    """Physical RAM in bytes, or ``None`` when unqueryable."""
    try:
        page = os.sysconf("SC_PAGE_SIZE")
        pages = os.sysconf("SC_PHYS_PAGES")
    except (AttributeError, ValueError, OSError):
        return None
    if page <= 0 or pages <= 0:
        return None
    return page * pages


def default_subproc_cells() -> int:
    """Calibrated default for ``REPRO_THERMAL_SUBPROC_CELLS``.

    Supervision pays a subprocess round-trip to protect the parent from
    an OOM abort, so the threshold is the system size whose factorization
    footprint reaches :data:`RAM_FRACTION` of physical RAM.  Inverting
    the measured footprint model ``bytes = LU_FILL_BYTES * cells**(4/3)``
    gives::

        cells = (RAM_FRACTION * ram_bytes / LU_FILL_BYTES) ** (3/4)

    clamped below by :data:`MIN_SUBPROC_CELLS`.  On a 4 GiB machine this
    is about 180k cells; on 128 GiB about 2.4M cells — the paper-default
    64x64 grids (16k-41k cells) always solve in-process.
    """
    ram = physical_ram_bytes()
    if ram is None:
        return FALLBACK_SUBPROC_CELLS
    cells = (RAM_FRACTION * ram / LU_FILL_BYTES) ** 0.75
    return max(int(cells), MIN_SUBPROC_CELLS)


def solve_batches_task(
    stack,
    floorplan,
    nx: int,
    ny: int,
    spreader_mm: float,
    batches: Sequence[Sequence],
) -> List[ThermalResult]:
    """Worker entry point: rebuild the solver and run the batched solve.

    The solver is reconstructed from its constructor arguments (geometry
    is pure data) rather than pickled, because a built solver holds an
    unpicklable SuperLU handle.  The fault point mirrors the simulation
    workers' — no-op unless a token directory is armed.
    """
    from repro.experiments.faults import maybe_inject_worker_fault

    maybe_inject_worker_fault()
    solver = ThermalSolver(stack, floorplan, nx, ny, spreader_mm)
    return solver.solve_many(batches)
