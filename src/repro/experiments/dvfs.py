"""Frequency-for-temperature trading (Section 5.3's closing observation).

The paper notes (citing Black et al.) that part of the 3D performance
gain can be converted into power reduction to cut temperature further.
This experiment sweeps the 3D Thermal Herding processor's clock between
the planar baseline frequency and the full 3D frequency, evaluating
performance, power, and peak temperature at each point — including the
largest 3D frequency that stays within the planar thermal envelope.

Voltage is scaled with frequency (f ~ V over the relevant range), so
dynamic power follows the classic ~f^3 curve between the endpoints while
leakage stays constant.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from repro.experiments.context import CORE_COUNT, ExperimentContext, REFERENCE_BENCHMARK
from repro.power.model import StackKind
from repro.thermal.solver import ThermalResult


@dataclass
class DVFSPoint:
    """One frequency point of the sweep."""

    clock_ghz: float
    voltage_scale: float
    ipns: float
    chip_watts: float
    peak_k: float


@dataclass
class DVFSResult:
    """The sweep plus the derived iso-temperature operating point."""

    benchmark: str
    points: List[DVFSPoint]
    planar_peak_k: float
    planar_ipns: float

    def best_within_planar_envelope(self) -> Optional[DVFSPoint]:
        """Fastest point not exceeding the planar peak temperature."""
        within = [p for p in self.points if p.peak_k <= self.planar_peak_k]
        if not within:
            return None
        return max(within, key=lambda p: p.ipns)

    def format(self) -> str:
        lines = [
            f"DVFS sweep of the 3D TH processor ({self.benchmark}); "
            f"planar envelope {self.planar_peak_k:.1f} K",
            f"{'GHz':>6s} {'Vscale':>7s} {'IPns':>6s} {'chip W':>8s} {'peak K':>8s} {'speedup':>8s}",
        ]
        for p in self.points:
            lines.append(
                f"{p.clock_ghz:6.2f} {p.voltage_scale:7.2f} {p.ipns:6.2f} "
                f"{p.chip_watts:8.1f} {p.peak_k:8.1f} {p.ipns / self.planar_ipns:7.2f}x"
            )
        best = self.best_within_planar_envelope()
        if best is None:
            lines.append("no sweep point fits the planar thermal envelope")
        else:
            lines.append(
                f"iso-temperature point: {best.clock_ghz:.2f} GHz, "
                f"{best.ipns / self.planar_ipns:.2f}x planar performance at "
                f"{best.peak_k:.1f} K"
            )
        return "\n".join(lines)


def run_dvfs(
    context: Optional[ExperimentContext] = None,
    benchmark: str = REFERENCE_BENCHMARK,
    steps: int = 5,
) -> DVFSResult:
    """Sweep the 3D processor clock from the 2D to the 3D frequency."""
    if steps < 2:
        raise ValueError(f"steps must be >= 2, got {steps}")
    context = context or ExperimentContext()

    config_3d = context.configs["3D"]
    f_low = context.configs["Base"].clock_ghz
    f_high = config_3d.clock_ghz
    clocks = [
        f_low + (f_high - f_low) * step / (steps - 1) for step in range(steps)
    ]
    sweep_configs = [replace(config_3d, clock_ghz=round(c, 3)) for c in clocks]
    context.prefetch([(benchmark, "Base"), (REFERENCE_BENCHMARK, "Base")])
    context.prefetch_configs((benchmark, config) for config in sweep_configs)
    model = context.power_model()

    base_run = context.run(benchmark, "Base")
    planar_breakdown = model.evaluate(base_run, StackKind.PLANAR_2D)

    # Collect every sweep point's thermal request first, then submit the
    # planar envelope and the whole 3D sweep as one engine dispatch.
    sweep: List[tuple] = []
    for clock, config in zip(clocks, sweep_configs):
        run = context.run_config(benchmark, config)
        breakdown = model.evaluate(run, StackKind.STACKED_3D)
        # Voltage tracks frequency: dynamic components gain f^2 through V^2
        # on top of the f they already carry via the activity rate.
        voltage_scale = clock / f_high
        scaled_modules = voltage_scale ** 2
        dynamic = breakdown.dynamic_watts * scaled_modules
        clock_watts = breakdown.clock_watts * scaled_modules
        total = dynamic + clock_watts + breakdown.leakage_watts
        power_scale = total / breakdown.total_watts
        sweep.append((clock, voltage_scale, run, total, breakdown, power_scale))
    solved = context.thermal_grouped({
        StackKind.PLANAR_2D: [([planar_breakdown] * CORE_COUNT, 1.0)],
        StackKind.STACKED_3D: [
            ([breakdown] * CORE_COUNT, power_scale)
            for _, _, _, _, breakdown, power_scale in sweep
        ],
    })
    planar_thermal = solved[StackKind.PLANAR_2D][0]

    points = [
        DVFSPoint(
            clock_ghz=clock,
            voltage_scale=voltage_scale,
            ipns=run.ipns,
            chip_watts=CORE_COUNT * total,
            peak_k=thermal.peak_temperature,
        )
        for (clock, voltage_scale, run, total, _, _), thermal
        in zip(sweep, solved[StackKind.STACKED_3D])
    ]
    return DVFSResult(
        benchmark=benchmark,
        points=points,
        planar_peak_k=planar_thermal.peak_temperature,
        planar_ipns=base_run.ipns,
    )
