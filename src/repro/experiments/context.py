"""Shared experiment state: cached traces, runs, and calibrated models.

The paper's evaluation reuses the same simulation runs across figures
(e.g. mpeg2's Base run both anchors the 90 W power calibration and feeds
Figure 8); the context memoizes everything so the benchmark harness does
each piece of work once per process.

Two additional layers make repeated and large evaluations cheap:

* a **persistent on-disk cache** (:mod:`repro.experiments.cache`) keyed
  by a content hash of the benchmark, fidelity knobs, configuration, and
  generator/simulator versions, so repeated CLI/benchmark/report runs
  hit disk instead of re-simulating;
* a **parallel dispatcher**: :meth:`ExperimentContext.prefetch` fans
  pending simulations out across a :class:`ProcessPoolExecutor`
  (``jobs`` argument, ``REPRO_JOBS`` environment variable, default
  ``os.cpu_count()``).  Simulations are deterministic, so the parallel
  path produces results identical to the serial one.
"""

from __future__ import annotations

import os
import time
import uuid
import warnings
from datetime import datetime, timezone
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cpu.config import CPUConfig, paper_configurations
from repro.cpu.pipeline import columnar_enabled, simulate
from repro.cpu.results import SimulationResult
from repro.experiments.cache import (
    DEFAULT_CLAIM_STALE_S,
    ResultCache,
    simulation_key,
    thermal_key,
    trace_store_key,
)
from repro.floorplan import Floorplan, planar_floorplan, stacked_floorplan
from repro.isa.compiled import CompiledTrace
from repro.isa.trace import Trace
from repro.power.model import (
    PowerBreakdown,
    PowerModel,
    StackKind,
    calibrate_activity_scale,
)
from repro.thermal.power_map import build_power_map, rasterize
from repro.thermal.solver import FACTORIZATION_STATS, ThermalResult, ThermalSolver
from repro.thermal.stack import planar_stack, stacked_3d_stack
from repro.thermal.transient import (
    STEP_FACTORIZATION_STATS,
    PowerSchedule,
    TransientResult,
    TransientThermalSolver,
    step_matrix_key,
)
from repro.workloads.suite import benchmark_names, fingerprint, generate

#: The power/thermal reference application (the paper's peak-power app).
REFERENCE_BENCHMARK = "mpeg2"
#: Number of cores on the chip (Table 1 context / Figure 9).
CORE_COUNT = 2

#: Environment variable setting the default simulation worker count.
ENV_JOBS = "REPRO_JOBS"

#: Per-task deadline (seconds) for pool workers; unset/empty = no deadline.
#: A worker that exceeds it is presumed hung (deadlock, livelock): its
#: task re-enters the retry ladder and the pool is recycled.
ENV_TASK_TIMEOUT = "REPRO_TASK_TIMEOUT_S"

#: Thermal solves whose system has at least this many unknowns
#: (layers x ny x nx) run in a supervised subprocess.  Unset = a
#: RAM-calibrated default (:func:`repro.experiments.supervised.
#: default_subproc_cells`); "0"/"off"/"no"/"false"/"none" = never.
ENV_THERMAL_SUBPROC = "REPRO_THERMAL_SUBPROC_CELLS"

#: Deadline (seconds) for a supervised thermal subprocess; defaults to
#: REPRO_TASK_TIMEOUT_S, unset = wait for completion (crash-isolated only).
ENV_THERMAL_TIMEOUT = "REPRO_THERMAL_TIMEOUT_S"

#: Worker-pool attempts each task gets before it falls back to running
#: serially in this process (1 first try + N-1 retries on a fresh pool).
MAX_TASK_ATTEMPTS = 3

#: Broken-pool restarts per batch before the whole remainder goes serial.
MAX_POOL_RESTARTS = 3

#: Base of the bounded exponential backoff between pool restarts.
RETRY_BACKOFF_S = 0.05

#: Backoff ceiling — a restart never waits longer than this.
MAX_BACKOFF_S = 2.0

#: Bounded wait (seconds) on another process's cache claim before taking
#: over and simulating anyway (duplicate work beats waiting forever).
CLAIM_WAIT_S = 120.0

#: Poll interval while waiting on another process's claim.
CLAIM_POLL_S = 0.05

#: Distinct geometries a thermal dispatch needs before it fans out to
#: worker processes.  Below this the parent solves inline: a worker
#: cannot return its SuperLU handle, so small dispatches would pay a
#: pool spin-up *and* forfeit the parent's factorization LRU that later
#: single-geometry solves (DVFS points, transient steps, leakage
#: feedback) reuse for free.
THERMAL_PARALLEL_MIN_GROUPS = 3

#: Configuration labels -> whether they are evaluated as a 3D stack.
CONFIG_STACKS: Dict[str, StackKind] = {
    "Base": StackKind.PLANAR_2D,
    "TH": StackKind.PLANAR_2D,
    "Pipe": StackKind.PLANAR_2D,
    "Fast": StackKind.PLANAR_2D,
    "3D": StackKind.STACKED_3D,
    "3D-noTH": StackKind.STACKED_3D,
}

#: Sentinel: "build the default cache from the environment".
_AUTO_CACHE = object()


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs trading fidelity for runtime."""

    trace_length: int = 20_000
    warmup: int = 6_000
    #: None = the full 24-benchmark suite
    benchmarks: Optional[Tuple[str, ...]] = None
    #: thermal grid resolution (over the spreader footprint)
    thermal_grid: int = 64

    def benchmark_list(self) -> List[str]:
        if self.benchmarks is not None:
            return list(self.benchmarks)
        return benchmark_names()


@dataclass
class ContextStats:
    """Where this context's results came from, and what it took to get them.

    Besides provenance counters (simulated vs disk hits) this carries the
    robustness telemetry of the fault-tolerant executor: how many task
    submissions worker pools saw, how often tasks were retried, how often
    a broken pool was restarted, how many tasks ended up running serially
    in-process, and wall-clock per pipeline stage.  ``events`` is an
    append-only log of the individual robustness incidents, emitted by
    ``repro report --log-json``.
    """

    #: simulations actually executed (serial or in workers)
    simulated: int = 0
    #: simulation results served from the on-disk cache
    disk_hits: int = 0
    #: thermal maps actually solved (factorize and/or backsubstitute)
    thermal_solved: int = 0
    #: thermal maps served from the on-disk cache
    thermal_disk_hits: int = 0
    #: task submissions handed to worker pools (includes resubmissions)
    tasks_run: int = 0
    #: tasks resubmitted to a pool after an in-task exception
    task_retries: int = 0
    #: tasks that exceeded their REPRO_TASK_TIMEOUT_S deadline
    task_timeouts: int = 0
    #: fresh pools created after a BrokenProcessPool (worker death)
    pool_restarts: int = 0
    #: tasks that gave up on pools and ran serially in this process
    serial_fallbacks: int = 0
    #: times this process waited on another process's cache claim
    claim_waits: int = 0
    #: results obtained from another process's simulation via a claim wait
    claim_dedup: int = 0
    #: stale or expired claims this process took over
    claim_takeovers: int = 0
    #: taken-over keys simulated *during* a claim wait (work stealing)
    claim_steals: int = 0
    #: traces generated by the emulator in this process
    traces_generated: int = 0
    #: compiled traces served from the on-disk trace store
    trace_cache_hits: int = 0
    #: wall-clock spent compiling traces to columnar form
    trace_compile_seconds: float = 0.0
    #: committed instructions simulated in this process (incl. warmup)
    instructions_simulated: int = 0
    #: thermal batches solved in a supervised subprocess
    thermal_subproc_solves: int = 0
    #: supervised thermal solves that fell back in-process
    thermal_subproc_fallbacks: int = 0
    #: geometry groups dispatched by the thermal solve engine
    thermal_groups: int = 0
    #: geometry groups factorized+solved in pool workers (vs inline)
    thermal_worker_groups: int = 0
    #: SuperLU factorizations performed inside thermal workers
    thermal_worker_factorizations: int = 0
    #: transient runs dispatched through :meth:`transient_many`
    transient_runs: int = 0
    #: step-matrix groups dispatched by the transient engine
    transient_groups: int = 0
    #: step-matrix groups stepped in pool workers (vs inline)
    transient_worker_groups: int = 0
    #: implicit-Euler steps integrated (per run, so K lock-stepped runs
    #: of S steps count K*S)
    transient_steps: int = 0
    #: step-matrix factorizations performed inside transient workers
    transient_worker_factorizations: int = 0
    #: interval power traces extracted (simulated with capture + binned)
    intervals_extracted: int = 0
    #: interval power traces served from the on-disk cache
    interval_disk_hits: int = 0
    #: accumulated wall-clock per pipeline stage (e.g. simulate, thermal)
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    #: robustness incidents, in order ({"event": ..., **detail})
    events: List[dict] = field(default_factory=list)
    #: correlation id of the owning context, stamped on every event
    run_id: str = ""
    #: correlation id of the in-flight worker batch (None between batches)
    batch_id: Optional[str] = None
    _batch_seq: int = 0

    def add_stage(self, stage: str, seconds: float) -> None:
        self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds

    def begin_batch(self) -> str:
        """Open a new batch scope; events until :meth:`end_batch` carry it."""
        self._batch_seq += 1
        self.batch_id = f"b{self._batch_seq:04d}"
        return self.batch_id

    def end_batch(self) -> None:
        self.batch_id = None

    def record_event(self, event: str, **detail) -> None:
        """Append one robustness incident, stamped for log correlation.

        Every event carries an ISO-8601 UTC timestamp, the context's
        ``run_id``, and the current ``batch_id`` (None outside a worker
        batch) so ``--log-json`` lines line up with external job-runner
        logs.
        """
        self.events.append({
            "event": event,
            "ts": datetime.now(timezone.utc).isoformat(timespec="milliseconds"),
            "run_id": self.run_id,
            "batch_id": self.batch_id,
            **detail,
        })

    def as_dict(self) -> dict:
        """Telemetry payload for ``--stats`` files and the CI benchmark report."""
        return {
            "run_id": self.run_id,
            "simulated": self.simulated,
            "sim_disk_hits": self.disk_hits,
            "thermal_solved": self.thermal_solved,
            "thermal_disk_hits": self.thermal_disk_hits,
            "tasks_run": self.tasks_run,
            "task_retries": self.task_retries,
            "task_timeouts": self.task_timeouts,
            "pool_restarts": self.pool_restarts,
            "serial_fallbacks": self.serial_fallbacks,
            "claim_waits": self.claim_waits,
            "claim_dedup": self.claim_dedup,
            "claim_takeovers": self.claim_takeovers,
            "claim_steals": self.claim_steals,
            "traces_generated": self.traces_generated,
            "trace_cache_hits": self.trace_cache_hits,
            "trace_compile_seconds": round(self.trace_compile_seconds, 3),
            "instructions_simulated": self.instructions_simulated,
            "instructions_per_second": self.instructions_per_second(),
            "thermal_subproc_solves": self.thermal_subproc_solves,
            "thermal_subproc_fallbacks": self.thermal_subproc_fallbacks,
            "thermal_groups": self.thermal_groups,
            "thermal_worker_groups": self.thermal_worker_groups,
            "thermal_worker_factorizations": self.thermal_worker_factorizations,
            "transient_runs": self.transient_runs,
            "transient_groups": self.transient_groups,
            "transient_worker_groups": self.transient_worker_groups,
            "transient_steps": self.transient_steps,
            "transient_worker_factorizations": self.transient_worker_factorizations,
            "intervals_extracted": self.intervals_extracted,
            "interval_disk_hits": self.interval_disk_hits,
            # Process-wide factorization-LRU snapshot (parent process
            # only; worker-side factorizations are accumulated above).
            "factorizations": FACTORIZATION_STATS.factorizations,
            "factorization_cache_hits": FACTORIZATION_STATS.cache_hits,
            # The transient solver's step-matrix LRU, same contract.
            "step_factorizations": STEP_FACTORIZATION_STATS.factorizations,
            "step_factorization_cache_hits": STEP_FACTORIZATION_STATS.cache_hits,
            "stage_seconds": {
                stage: round(seconds, 3)
                for stage, seconds in sorted(self.stage_seconds.items())
            },
        }

    def instructions_per_second(self) -> float:
        """Simulated instructions per wall-clock second of the simulate
        stage (0.0 until something has been simulated)."""
        seconds = self.stage_seconds.get("simulate", 0.0)
        if not seconds or not self.instructions_simulated:
            return 0.0
        return round(self.instructions_simulated / seconds, 1)


def _all_configurations() -> Dict[str, CPUConfig]:
    """The five paper configurations plus the 3D-without-herding variant."""
    configs = {label: pc.config for label, pc in paper_configurations().items()}
    configs["3D-noTH"] = replace(configs["3D"], thermal_herding=False, name="3d-noth")
    return configs


def _resolve_jobs(jobs: Optional[int]) -> int:
    """Worker count: explicit argument > REPRO_JOBS > os.cpu_count()."""
    if jobs is not None:
        return max(1, int(jobs))
    env = os.environ.get(ENV_JOBS, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            warnings.warn(
                f"ignoring invalid {ENV_JOBS}={env!r} (not an integer); "
                f"defaulting to os.cpu_count()={os.cpu_count()}",
                RuntimeWarning,
                stacklevel=3,
            )
    return os.cpu_count() or 1


def _env_positive_number(name: str, convert=float) -> Optional[float]:
    """A positive number from the environment, or None (unset/invalid)."""
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        value = convert(raw)
    except ValueError:
        warnings.warn(
            f"ignoring invalid {name}={raw!r} (not a number)",
            RuntimeWarning,
            stacklevel=3,
        )
        return None
    return value if value > 0 else None


def _resolve_thermal_subproc_cells() -> Optional[int]:
    """The supervision threshold: explicit env value > calibrated default.

    ``None`` (supervision disabled) only on an explicit opt-out value;
    unset and invalid values fall back to the RAM-calibrated default.
    """
    from repro.experiments.supervised import (
        DISABLED_VALUES,
        default_subproc_cells,
    )

    raw = os.environ.get(ENV_THERMAL_SUBPROC, "").strip().lower()
    if raw in DISABLED_VALUES:
        return None
    if raw:
        explicit = _env_positive_number(ENV_THERMAL_SUBPROC, convert=int)
        if explicit is not None:
            return int(explicit)
    return default_subproc_cells()


def _simulate_task(
    benchmark: str,
    config: CPUConfig,
    trace_length: int,
    warmup: int,
    trace_file: Optional[str] = None,
) -> SimulationResult:
    """Worker entry point: map in the compiled trace (or regenerate) and run.

    ``trace_file`` points at the parent's stored compiled trace; the
    worker memory-maps it instead of re-running the emulator, so each
    task ships a file path rather than a pickled instruction list.  A
    damaged or vanished file degrades to regeneration — the emulator is
    deterministic, so every path yields the same trace.

    The fault point is a no-op unless a fault-injection token directory
    is armed (see :mod:`repro.experiments.faults`); the serial path calls
    :func:`repro.cpu.pipeline.simulate` directly and is never injected.
    """
    from repro.experiments.faults import maybe_inject_worker_fault

    maybe_inject_worker_fault()
    if trace_file is not None:
        from repro.isa.compiled import read_compiled, TraceReadError

        try:
            compiled = read_compiled(trace_file)
        except TraceReadError:
            pass
        else:
            if len(compiled) == trace_length and compiled.name == benchmark:
                return simulate(compiled, config, warmup=warmup)
    trace = generate(benchmark, length=trace_length)
    return simulate(trace, config, warmup=warmup)


@dataclass
class _PoolTask:
    """One unit of work for the fault-tolerant pool executor.

    ``fn(*args)`` runs in a worker process; ``serial()`` is the
    in-process fallback producing an identical result (every task is
    deterministic).  ``detail`` labels the task in robustness events,
    ``timeout_s`` is its per-attempt deadline, ``max_attempts`` its
    worker-pool attempt budget, and ``on_fallback`` (if set) is invoked
    with a reason string whenever the task abandons the pool path.
    """

    fn: Callable
    args: tuple
    serial: Callable[[], object]
    detail: Dict[str, object]
    timeout_s: Optional[float] = None
    max_attempts: int = 1
    on_fallback: Optional[Callable[[str], None]] = None


class ExperimentContext:
    """Memoizing facade over the whole simulation pipeline."""

    def __init__(
        self,
        settings: Optional[ExperimentSettings] = None,
        *,
        jobs: Optional[int] = None,
        cache=_AUTO_CACHE,
    ):
        self.settings = settings or ExperimentSettings()
        self.configs = _all_configurations()
        self.jobs = _resolve_jobs(jobs)
        self.cache: Optional[ResultCache] = (
            ResultCache.from_env() if cache is _AUTO_CACHE else cache
        )
        self.stats = ContextStats()
        self.stats.run_id = uuid.uuid4().hex[:12]
        #: fault-tolerance knobs (instance attributes so tests and callers
        #: can tighten them without touching the module-level defaults)
        self.max_task_attempts = MAX_TASK_ATTEMPTS
        self.max_pool_restarts = MAX_POOL_RESTARTS
        self.retry_backoff_s = RETRY_BACKOFF_S
        #: per-task deadline; None (the default) waits indefinitely
        self.task_timeout_s = _env_positive_number(ENV_TASK_TIMEOUT)
        #: thermal systems at least this many unknowns go to a subprocess
        self.thermal_subproc_cells = _resolve_thermal_subproc_cells()
        self.thermal_timeout_s = (
            _env_positive_number(ENV_THERMAL_TIMEOUT) or self.task_timeout_s
        )
        #: distinct geometries a thermal dispatch needs to use the pool
        self.thermal_parallel_min_groups = THERMAL_PARALLEL_MIN_GROUPS
        #: cross-process claim coordination knobs
        self.claim_wait_s = CLAIM_WAIT_S
        self.claim_poll_s = CLAIM_POLL_S
        self.claim_stale_s = DEFAULT_CLAIM_STALE_S
        self._traces: Dict[str, Trace] = {}
        self._compiled: Dict[str, Optional[CompiledTrace]] = {}
        self._trace_files: Dict[str, Optional[str]] = {}
        self._runs: Dict[Tuple[str, str], SimulationResult] = {}
        self._config_runs: Dict[Tuple[str, str], SimulationResult] = {}
        self._thermals: Dict[Tuple[str, str], ThermalResult] = {}
        self._power_model: Optional[PowerModel] = None
        self._floorplans: Dict[StackKind, Floorplan] = {}
        self._solvers: Dict[StackKind, ThermalSolver] = {}

    # ------------------------------------------------------------------ #

    def metrics(self) -> dict:
        """One scrapeable snapshot of this context's caches and telemetry.

        Combines the on-disk cache/ledger state (exact sizes from the
        sharded size ledger, result and trace entries broken out), this
        process's cache hit/miss/eviction counters, the process-wide
        ``FACTORIZATION_STATS``, and :meth:`ContextStats.as_dict` (which
        carries ``stage_seconds``) — the payload behind
        ``python -m repro metrics`` and ``repro report --stats``.
        """
        from repro.experiments.metrics import metrics_snapshot

        return metrics_snapshot(context=self)

    # ------------------------------------------------------------------ #

    def trace(self, benchmark: str) -> Trace:
        trace = self._traces.get(benchmark)
        if trace is None:
            start = time.perf_counter()
            trace = generate(benchmark, length=self.settings.trace_length)
            # ``generate``/``compile`` stage seconds count the emulator
            # and compiler wherever they run — including nested inside
            # the ``simulate`` stage on cold sweeps — so the per-stage
            # breakdown shows the next bottleneck without re-profiling.
            self.stats.add_stage("generate", time.perf_counter() - start)
            self.stats.traces_generated += 1
            self._traces[benchmark] = trace
        return trace

    def _compiled_for(self, benchmark: str) -> Optional[CompiledTrace]:
        """The compiled columnar trace: memo -> disk store -> generate.

        A store hit skips the emulator entirely — a config sweep (and
        every later process pointed at the same cache directory) pays
        for each workload's generation and compilation once.  ``None``
        means the trace is not representable in columnar form; callers
        fall back to the object path.
        """
        if benchmark in self._compiled:
            return self._compiled[benchmark]
        store = key = None
        compiled = None
        if self.cache is not None:
            store = self.cache.trace_store()
            key = trace_store_key(
                fingerprint(benchmark, self.settings.trace_length)
            )
            compiled = store.load(key)
            if compiled is not None:
                self.stats.trace_cache_hits += 1
                self._trace_files[benchmark] = os.fspath(store.npy_path(key))
        if compiled is None:
            trace = self.trace(benchmark)
            start = time.perf_counter()
            compiled = trace.compiled()
            elapsed = time.perf_counter() - start
            self.stats.trace_compile_seconds += elapsed
            self.stats.add_stage("compile", elapsed)
            if compiled is not None and store is not None:
                path = store.store(key, compiled)
                self._trace_files[benchmark] = (
                    None if path is None else os.fspath(path)
                )
        self._compiled[benchmark] = compiled
        return compiled

    def _trace_for_simulation(self, benchmark: str):
        """What in-process :func:`simulate` calls should replay: the
        compiled trace when the columnar path is on (shared pre-decode
        across configs), the object trace otherwise."""
        if columnar_enabled():
            compiled = self._compiled_for(benchmark)
            if compiled is not None:
                return compiled
        return self.trace(benchmark)

    def _trace_file(self, benchmark: str) -> Optional[str]:
        """The on-disk compiled trace workers should map, or ``None``
        (store disabled/unusable, or trace uncompilable) — in which case
        workers regenerate the trace themselves."""
        if not columnar_enabled():
            return None
        self._compiled_for(benchmark)
        return self._trace_files.get(benchmark)

    def _config_for(self, config_label: str) -> CPUConfig:
        config = self.configs.get(config_label)
        if config is None:
            raise KeyError(
                f"unknown configuration {config_label!r}; "
                f"known: {', '.join(self.configs)}"
            )
        return config

    def _cache_key(self, benchmark: str, config: CPUConfig) -> str:
        return simulation_key(
            benchmark, config, self.settings.trace_length, self.settings.warmup
        )

    def _load_or_simulate(self, benchmark: str, config: CPUConfig) -> SimulationResult:
        """One simulation, served from disk (or a peer process) when possible."""
        key = self._cache_key(benchmark, config)
        if self.cache is None:
            result = self._run_serial(benchmark, config)
            self.stats.simulated += 1
            self.stats.instructions_simulated += self.settings.trace_length
            return result
        cached = self.cache.load(key)
        if cached is not None:
            self.stats.disk_hits += 1
            return cached
        if not self.cache.try_claim(key):
            peer_result = self._claim_coordinate(key)
            if peer_result is not None:
                return peer_result
        try:
            result = self._run_serial(benchmark, config)
            self.stats.simulated += 1
            self.stats.instructions_simulated += self.settings.trace_length
            self.cache.store(key, result)
        finally:
            self.cache.release_claim(key)
        return result

    def _claim_coordinate(self, key: str):
        """Wait (bounded) for the peer process holding ``key``'s claim.

        Returns the peer's result when it lands on disk (one simulation
        for N cold-starting processes), or None when this process should
        simulate after all — the claim went stale (dead holder) and was
        taken over, or the bounded wait expired.
        """
        cache = self.cache
        self.stats.claim_waits += 1
        self.stats.record_event("claim_wait", key=key[:16])
        deadline = time.monotonic() + self.claim_wait_s
        while True:
            result = cache.load(key)
            if result is not None:
                self.stats.claim_dedup += 1
                self.stats.record_event("claim_dedup", key=key[:16])
                return result
            if cache.claim_stale(key, self.claim_stale_s):
                cache.break_claim(key)
                self.stats.claim_takeovers += 1
                self.stats.record_event(
                    "claim_takeover", key=key[:16], reason="stale"
                )
                cache.try_claim(key)
                return None
            if cache.claim_holder(key) is None:
                # Holder released without storing (full disk, crash between
                # release and store): claim for ourselves and simulate.
                self.stats.claim_takeovers += 1
                self.stats.record_event(
                    "claim_takeover", key=key[:16], reason="released"
                )
                cache.try_claim(key)
                return None
            if time.monotonic() >= deadline:
                self.stats.claim_takeovers += 1
                self.stats.record_event(
                    "claim_takeover", key=key[:16], reason="wait_expired"
                )
                return None
            time.sleep(self.claim_poll_s)

    def run(self, benchmark: str, config_label: str) -> SimulationResult:
        """The (cached) simulation of one benchmark under one configuration."""
        key = (benchmark, config_label)
        result = self._runs.get(key)
        if result is None:
            result = self._load_or_simulate(benchmark, self._config_for(config_label))
            self._runs[key] = result
        return result

    def run_config(self, benchmark: str, config: CPUConfig) -> SimulationResult:
        """Like :meth:`run` for an ad-hoc configuration object.

        Used by sweeps (DVFS, roadmap stages, shared-L2 core pairing)
        whose configurations are not among the six labelled ones; results
        are memoized by content hash and persisted like labelled runs.
        """
        key = (benchmark, self._cache_key(benchmark, config))
        result = self._config_runs.get(key)
        if result is None:
            result = self._load_or_simulate(benchmark, config)
            self._config_runs[key] = result
        return result

    # ------------------------------------------------------------------ #
    # Parallel prefetching

    def grid(
        self,
        config_labels: Optional[Sequence[str]] = None,
        benchmarks: Optional[Sequence[str]] = None,
    ) -> List[Tuple[str, str]]:
        """The full (benchmark, config label) evaluation grid."""
        labels = list(config_labels) if config_labels is not None else list(self.configs)
        names = list(benchmarks) if benchmarks is not None else self.settings.benchmark_list()
        return [(benchmark, label) for benchmark in names for label in labels]

    def prefetch(self, pairs: Iterable[Tuple[str, str]]) -> None:
        """Materialize many labelled runs, simulating misses in parallel."""
        items = []
        for benchmark, label in pairs:
            key = (benchmark, label)
            if key in self._runs:
                continue
            items.append((self._runs, key, benchmark, self._config_for(label)))
        self._prefetch_items(items)

    def prefetch_configs(self, items: Iterable[Tuple[str, CPUConfig]]) -> None:
        """Materialize many ad-hoc-configuration runs (see :meth:`run_config`)."""
        normalized = []
        for benchmark, config in items:
            key = (benchmark, self._cache_key(benchmark, config))
            if key in self._config_runs:
                continue
            normalized.append((self._config_runs, key, benchmark, config))
        self._prefetch_items(normalized)

    def run_many(
        self, pairs: Sequence[Tuple[str, str]]
    ) -> Dict[Tuple[str, str], SimulationResult]:
        """Prefetch and return many labelled runs keyed by (benchmark, label)."""
        pairs = list(pairs)
        self.prefetch(pairs)
        return {pair: self.run(*pair) for pair in pairs}

    def _prefetch_items(self, items) -> None:
        """Resolve (memo, memo key, benchmark, config) work items.

        Each item is served from the memo, then the on-disk cache; the
        remainder is simulated — across worker processes when more than
        one simulation is pending and ``jobs`` allows it.  Misses whose
        cache key another process has claimed are not simulated here:
        after our own batch completes, we poll all waiting claims
        *collectively* and steal the work behind any claim that resolves
        to abandoned (stale holder, released without storing) the moment
        it does, instead of serially sitting out each key's full wait.
        """
        pending = []
        waiting = []
        seen = set()
        for memo, memo_key, benchmark, config in items:
            if memo_key in memo or (id(memo), memo_key) in seen:
                continue
            seen.add((id(memo), memo_key))
            cache_key = self._cache_key(benchmark, config)
            if self.cache is not None:
                cached = self.cache.load(cache_key)
                if cached is not None:
                    self.stats.disk_hits += 1
                    memo[memo_key] = cached
                    continue
                if not self.cache.try_claim(cache_key):
                    waiting.append((memo, memo_key, benchmark, config, cache_key))
                    continue
            pending.append((memo, memo_key, benchmark, config, cache_key))
        self._simulate_items(pending)
        if waiting:
            self._await_claims(waiting)

    def _await_claims(self, waiting) -> None:
        """Collectively wait on peer-claimed work items, stealing as we go.

        One bounded deadline covers the whole set (the peers run
        concurrently with each other, so their waits overlap).  Each poll
        sweeps every outstanding key: results that landed are adopted
        (``claim_dedup``), and abandoned claims — stale holder, or
        released without a stored result — are taken over and simulated
        *immediately* (``claim_steals``), so this process does useful
        work while the remaining keys are still being waited on.  Keys
        still claimed when the deadline expires are simulated
        uncoordinated, exactly like :meth:`_claim_coordinate`'s
        ``wait_expired`` outcome (no claim of our own is taken).
        """
        cache = self.cache
        for *_, cache_key in waiting:
            self.stats.claim_waits += 1
            self.stats.record_event("claim_wait", key=cache_key[:16])
        deadline = time.monotonic() + self.claim_wait_s
        remaining = list(waiting)
        while remaining:
            still = []
            stolen = []
            for item in remaining:
                memo, memo_key, _, _, cache_key = item
                result = cache.load(cache_key)
                if result is not None:
                    self.stats.claim_dedup += 1
                    self.stats.record_event("claim_dedup", key=cache_key[:16])
                    memo[memo_key] = result
                    continue
                if cache.claim_stale(cache_key, self.claim_stale_s):
                    cache.break_claim(cache_key)
                    self.stats.claim_takeovers += 1
                    self.stats.record_event(
                        "claim_takeover", key=cache_key[:16], reason="stale"
                    )
                    cache.try_claim(cache_key)
                    stolen.append(item)
                    continue
                if cache.claim_holder(cache_key) is None:
                    # Holder released without storing (full disk, crash
                    # between release and store): claim and simulate.
                    self.stats.claim_takeovers += 1
                    self.stats.record_event(
                        "claim_takeover", key=cache_key[:16], reason="released"
                    )
                    cache.try_claim(cache_key)
                    stolen.append(item)
                    continue
                still.append(item)
            if stolen:
                self.stats.claim_steals += len(stolen)
                self.stats.record_event("claim_steal", tasks=len(stolen))
                self._simulate_items(stolen)
            remaining = still
            if not remaining:
                return
            if time.monotonic() >= deadline:
                break
            time.sleep(self.claim_poll_s)
        for item in remaining:
            cache_key = item[4]
            self.stats.claim_takeovers += 1
            self.stats.record_event(
                "claim_takeover", key=cache_key[:16], reason="wait_expired"
            )
        self._simulate_items(remaining)

    def _simulate_items(self, pending) -> None:
        """Simulate claimed work items in parallel; store and release."""
        if not pending:
            return
        tasks = [(benchmark, config) for _, _, benchmark, config, _ in pending]
        try:
            results = self._execute(tasks)
            for (memo, memo_key, _, _, cache_key), result in zip(pending, results):
                self.stats.simulated += 1
                self.stats.instructions_simulated += self.settings.trace_length
                memo[memo_key] = result
                if self.cache is not None:
                    self.cache.store(cache_key, result)
        finally:
            if self.cache is not None:
                for _, _, _, _, cache_key in pending:
                    self.cache.release_claim(cache_key)

    def _execute(self, tasks: List[Tuple[str, CPUConfig]]) -> List[SimulationResult]:
        """Run simulations, fanning out across processes when worthwhile.

        The parallel path is fault tolerant: every task is tracked
        individually, completed results are never discarded, a dead
        worker (OOM kill, interpreter abort) only costs the tasks that
        had not finished — they are retried on a fresh pool with bounded
        exponential backoff — and tasks that keep failing run serially
        in this process.  A pool that keeps breaking degrades the whole
        remainder to serial execution with a warning.  Simulations are
        deterministic, so every recovery path yields results identical
        to a clean run; :class:`ContextStats` records what happened.
        """
        start = time.perf_counter()
        self.stats.begin_batch()
        try:
            settings = self.settings
            pool_tasks = [
                _PoolTask(
                    fn=_simulate_task,
                    args=(benchmark, config, settings.trace_length,
                          settings.warmup, self._trace_file(benchmark)),
                    serial=(lambda b=benchmark, c=config: self._run_serial(b, c)),
                    detail={"benchmark": benchmark, "config": config.name},
                    timeout_s=self.task_timeout_s,
                    max_attempts=self.max_task_attempts,
                )
                for benchmark, config in tasks
            ]
            return self._run_pool_tasks(pool_tasks, kind="simulation")
        finally:
            self.stats.end_batch()
            self.stats.add_stage("simulate", time.perf_counter() - start)

    def _run_serial(self, benchmark: str, config: CPUConfig) -> SimulationResult:
        """One in-process simulation (also the per-task fallback path)."""
        return simulate(
            self._trace_for_simulation(benchmark), config,
            warmup=self.settings.warmup,
        )

    def _new_pool(self, workers: int):
        try:
            from concurrent.futures import ProcessPoolExecutor
            return ProcessPoolExecutor(max_workers=workers)
        except (ImportError, NotImplementedError, OSError):
            return None  # restricted platforms: caller falls back to serial

    @staticmethod
    def _abandon_pool(pool, kill: bool = False) -> None:
        """Walk away from a broken or hung pool without blocking on it.

        ``kill`` additionally SIGTERMs the worker processes — a hung
        worker never exits on its own, and ``shutdown(wait=False)``
        would leak it for the lifetime of the campaign.
        """
        processes = list((getattr(pool, "_processes", None) or {}).values())
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        if kill:
            for process in processes:
                try:
                    process.terminate()
                except Exception:
                    pass

    def _serial_remainder(self, tasks, results, indices, reason: str,
                          kind: str):
        """Finish ``indices`` serially after the pool path was abandoned."""
        warnings.warn(
            f"{kind} worker pool unusable ({reason}); running "
            f"{len(indices)} remaining task(s) serially",
            RuntimeWarning,
            stacklevel=4,
        )
        self.stats.record_event("serial_degrade", kind=kind, reason=reason,
                                tasks=len(indices))
        for index in indices:
            task = tasks[index]
            if task.on_fallback is not None:
                task.on_fallback(f"pool {reason}")
            results[index] = task.serial()
            self.stats.serial_fallbacks += 1

    def _run_pool_tasks(self, tasks: List[_PoolTask], kind: str,
                        force_pool: bool = False) -> List:
        """Run :class:`_PoolTask` descriptors on a fault-tolerant pool.

        The shared executor behind both the simulation and thermal fan-
        out.  ``force_pool`` insists on worker processes even for a
        single task on a single-job context (the crash isolation the
        supervised thermal path needs).  Tasks carry their own deadlines
        and attempt budgets, so one dispatch can mix quick tasks with
        supervised one-shot ones.
        """
        workers = max(1, min(self.jobs, len(tasks)))
        if workers <= 1 and not force_pool:
            return [task.serial() for task in tasks]
        pool = self._new_pool(workers)
        if pool is None:
            self.stats.record_event("pool_unavailable", kind=kind,
                                    tasks=len(tasks))
            out = []
            for task in tasks:
                if task.on_fallback is not None:
                    task.on_fallback("pool unavailable")
                out.append(task.serial())
            return out

        from concurrent.futures import wait as wait_futures
        from concurrent.futures.process import BrokenProcessPool

        results: List = [None] * len(tasks)
        attempts = [0] * len(tasks)
        pending = list(range(len(tasks)))
        restarts = 0
        try:
            while pending:
                futures = {}
                deadlines = {}
                pool_broken = False
                pool_hung = False
                failed: List[int] = []
                for index in pending:
                    task = tasks[index]
                    try:
                        future = pool.submit(task.fn, *task.args)
                    except (BrokenProcessPool, RuntimeError):
                        # The pool broke under our feet; everything not
                        # yet submitted joins the retry set.
                        pool_broken = True
                        failed.append(index)
                        continue
                    futures[future] = index
                    if task.timeout_s is not None:
                        deadlines[future] = time.monotonic() + task.timeout_s
                self.stats.tasks_run += len(futures)

                not_done = set(futures)
                while not_done:
                    timed = [deadlines[f] for f in not_done if f in deadlines]
                    if not timed:
                        done, not_done = wait_futures(not_done)
                    else:
                        done, not_done = wait_futures(
                            not_done,
                            timeout=max(0.0, min(timed) - time.monotonic()),
                        )
                    for future in done:
                        index = futures[future]
                        try:
                            results[index] = future.result()
                        except BrokenProcessPool:
                            pool_broken = True
                            failed.append(index)
                        except Exception as exc:  # in-task failure, pool alive
                            attempts[index] += 1
                            failed.append(index)
                            self.stats.record_event(
                                "task_error",
                                **tasks[index].detail,
                                attempt=attempts[index],
                                error=repr(exc),
                            )
                    if not timed:
                        continue
                    # Deadline sweep: any task past its deadline re-enters
                    # the retry ladder now.  One that cancels cleanly was
                    # only queued behind a stalled pool; one that does not
                    # is running on a hung worker, and the whole pool gets
                    # recycled once everything still live has drained.
                    now = time.monotonic()
                    for future in [f for f in not_done
                                   if deadlines.get(f, now + 1.0) <= now]:
                        index = futures[future]
                        not_done.discard(future)
                        attempts[index] += 1
                        failed.append(index)
                        self.stats.task_timeouts += 1
                        was_running = not future.cancel()
                        if was_running:
                            pool_hung = True
                        self.stats.record_event(
                            "task_timeout",
                            **tasks[index].detail,
                            attempt=attempts[index],
                            timeout_s=tasks[index].timeout_s,
                            running=was_running,
                        )
                if not failed:
                    break

                reason = "hung" if pool_hung else "broke"
                if pool_broken or pool_hung:
                    self._abandon_pool(pool, kill=pool_hung)
                    pool = None
                # Tasks that exhausted their budget fall back serially
                # inside the filter; restarting a pool for an empty retry
                # set would be pure churn, so filter first.
                retryable = self._filter_retryable(tasks, results, attempts,
                                                   failed)
                if not retryable:
                    break
                if pool is None:
                    if restarts >= self.max_pool_restarts:
                        self._serial_remainder(
                            tasks, results, retryable,
                            f"{reason} {restarts + 1} times", kind,
                        )
                        break
                    restarts += 1
                    self.stats.pool_restarts += 1
                    self.stats.record_event("pool_restart", kind=kind,
                                            restart=restarts, reason=reason,
                                            tasks=len(retryable))
                    time.sleep(min(MAX_BACKOFF_S,
                                   self.retry_backoff_s * 2 ** (restarts - 1)))
                    pool = self._new_pool(workers)
                    if pool is None:
                        self._serial_remainder(tasks, results, retryable,
                                               "could not be recreated", kind)
                        break
                    pending = retryable
                else:
                    # Pool is healthy: retry transient in-task failures on
                    # it (a genuine, deterministic error will surface from
                    # the serial run once attempts are exhausted).
                    self.stats.task_retries += len(retryable)
                    pending = retryable
        finally:
            if pool is not None:
                pool.shutdown()
        return results

    def _filter_retryable(self, tasks: List[_PoolTask], results, attempts,
                          failed) -> List[int]:
        """Split failed indices into pool retries vs immediate serial runs.

        Tasks that exhausted their attempt budget (repeat raisers, repeat
        deadline overruns) run serially right here; the rest go back to
        the pool.
        """
        retryable: List[int] = []
        for index in failed:
            task = tasks[index]
            if attempts[index] < task.max_attempts:
                retryable.append(index)
            else:
                self.stats.record_event(
                    "serial_fallback",
                    **task.detail,
                    attempts=attempts[index],
                )
                if task.on_fallback is not None:
                    task.on_fallback("attempts exhausted")
                results[index] = task.serial()
                self.stats.serial_fallbacks += 1
        return retryable

    # ------------------------------------------------------------------ #

    def power_model(self) -> PowerModel:
        """The power model calibrated on the reference baseline run."""
        if self._power_model is None:
            reference = self.run(REFERENCE_BENCHMARK, "Base")
            scale = calibrate_activity_scale(reference)
            self._power_model = PowerModel(activity_scale=scale)
        return self._power_model

    def power(self, benchmark: str, config_label: str) -> PowerBreakdown:
        """Per-core power of one benchmark under one configuration."""
        stack = CONFIG_STACKS[config_label]
        return self.power_model().evaluate(self.run(benchmark, config_label), stack)

    def chip_power_watts(self, benchmark: str, config_label: str) -> float:
        """Total chip power with the benchmark replicated on every core."""
        return CORE_COUNT * self.power(benchmark, config_label).total_watts

    # ------------------------------------------------------------------ #

    def floorplan(self, stack: StackKind) -> Floorplan:
        plan = self._floorplans.get(stack)
        if plan is None:
            plan = (
                planar_floorplan(CORE_COUNT)
                if stack is StackKind.PLANAR_2D
                else stacked_floorplan(CORE_COUNT)
            )
            self._floorplans[stack] = plan
        return plan

    def solver(self, stack: StackKind) -> ThermalSolver:
        solver = self._solvers.get(stack)
        if solver is None:
            grid = self.settings.thermal_grid
            thermal_stack = planar_stack() if stack is StackKind.PLANAR_2D else stacked_3d_stack()
            solver = ThermalSolver(thermal_stack, self.floorplan(stack), grid, grid)
            self._solvers[stack] = solver
        return solver

    def thermal(self, benchmark: str, config_label: str) -> ThermalResult:
        """Thermal map with the benchmark replicated on every core."""
        key = (benchmark, config_label)
        result = self._thermals.get(key)
        if result is None:
            stack = CONFIG_STACKS[config_label]
            breakdown = self.power(benchmark, config_label)
            result = self.thermal_for_breakdowns([breakdown] * CORE_COUNT, stack)
            self._thermals[key] = result
        return result

    def thermal_many(
        self, pairs: Sequence[Tuple[str, str]]
    ) -> Dict[Tuple[str, str], ThermalResult]:
        """Thermal maps for many (benchmark, config label) pairs.

        Pending simulations are prefetched in parallel, then all maps
        sharing a stack are solved as one batched right-hand-side call
        against that stack's already-LU-factorized solver.
        """
        pairs = list(pairs)
        if self._power_model is None:
            self.prefetch(pairs + [(REFERENCE_BENCHMARK, "Base")])
        else:
            self.prefetch(pairs)
        by_stack: Dict[StackKind, List[Tuple[str, str]]] = {}
        for pair in pairs:
            if pair in self._thermals or pair in by_stack.get(
                CONFIG_STACKS[pair[1]], ()
            ):
                continue
            by_stack.setdefault(CONFIG_STACKS[pair[1]], []).append(pair)
        solved = self.thermal_grouped({
            stack: [
                ([self.power(benchmark, label)] * CORE_COUNT, 1.0)
                for benchmark, label in group
            ]
            for stack, group in by_stack.items()
        })
        for stack, group in by_stack.items():
            for pair, result in zip(group, solved[stack]):
                self._thermals[pair] = result
        return {pair: self._thermals[pair] for pair in pairs}

    def thermal_for_breakdowns(
        self,
        breakdowns: List[PowerBreakdown],
        stack: StackKind,
        power_scale: float = 1.0,
    ) -> ThermalResult:
        """Thermal map for explicit per-core breakdowns (scaled if asked)."""
        return self.thermal_batch([(breakdowns, power_scale)], stack)[0]

    def thermal_batch(
        self,
        requests: Sequence[Tuple[List[PowerBreakdown], float]],
        stack: StackKind,
    ) -> List[ThermalResult]:
        """Thermal maps for many (breakdowns, power scale) requests.

        All right-hand sides go through one batched backsubstitution
        against the stack's LU-factorized conductance matrix; solved
        maps are persisted in the on-disk cache.
        """
        if not requests:
            return []
        return self.thermal_grouped({stack: list(requests)})[stack]

    def thermal_grouped(
        self,
        requests_by_stack: Dict[StackKind, Sequence[Tuple[List[PowerBreakdown], float]]],
    ) -> Dict[StackKind, List[ThermalResult]]:
        """Thermal maps for (breakdowns, power scale) requests on several
        stacks at once — one thermal-engine dispatch for the whole grid.

        Submitting every stack's requests together lets the solve engine
        see all distinct geometries up front and fan their factorizations
        out across the worker pool (:meth:`solve_thermal_groups`) instead
        of blocking on one stack at a time.
        """
        groups: List[Tuple[ThermalSolver, List[Sequence]]] = []
        order: List[StackKind] = []
        for stack, requests in requests_by_stack.items():
            plan = self.floorplan(stack)
            solver = self.solver(stack)
            ny, nx = solver.chip_grid_shape()
            batches = []
            for breakdowns, power_scale in requests:
                watts = build_power_map(plan, breakdowns)
                if power_scale != 1.0:
                    watts = {key: value * power_scale
                             for key, value in watts.items()}
                batches.append(rasterize(plan, watts, nx, ny))
            groups.append((solver, batches))
            order.append(stack)
        solved = self.solve_thermal_groups(groups)
        return dict(zip(order, solved))

    def solve_thermal(
        self,
        solver: ThermalSolver,
        batches: Sequence[Sequence],
    ) -> List[ThermalResult]:
        """Disk-cached batched thermal solve against an explicit solver.

        Each batch entry (per-die chip power grids) is keyed by the
        solver's geometry fingerprint plus a content hash of the grids;
        hits skip the solve entirely, and the misses share one batched
        backsubstitution — so warm report reruns do no thermal work.
        """
        batches = list(batches)
        if not batches:
            return []
        return self.solve_thermal_groups([(solver, batches)])[0]

    def solve_thermal_groups(
        self,
        groups: Sequence[Tuple[ThermalSolver, Sequence[Sequence]]],
    ) -> List[List[ThermalResult]]:
        """The parallel thermal solve engine: many geometry groups at once.

        Each group is one solver (geometry) with its pending power-grid
        batches.  Entries are deduplicated by thermal key within the
        call, served from the on-disk cache when possible, coordinated
        with peer processes through the claim protocol (two processes
        never factorize the same geometry concurrently), and the misses
        are fanned out per *geometry* across the worker pool — each
        worker assembles, factorizes, and backsubstitutes every
        right-hand side for its geometry and ships the temperature
        arrays back (SuperLU handles never cross the process boundary).
        Solves are deterministic, so results are byte-identical to the
        serial path.
        """
        groups = [(solver, list(batches)) for solver, batches in groups]
        results: List[List[Optional[ThermalResult]]] = [
            [None] * len(batches) for _, batches in groups
        ]
        seen: Dict[str, dict] = {}
        work: List[dict] = []
        waiting: List[dict] = []
        for gi, (solver, batches) in enumerate(groups):
            for pos, grids in enumerate(batches):
                key = thermal_key(solver, grids)
                unit = seen.get(key)
                if unit is not None:  # duplicate within this call
                    unit["targets"].append((gi, pos))
                    continue
                if self.cache is not None:
                    cached = self.cache.load(key, ThermalResult)
                    if cached is not None:
                        self.stats.thermal_disk_hits += 1
                        results[gi][pos] = cached
                        continue
                unit = {"key": key, "solver": solver, "grids": grids,
                        "targets": [(gi, pos)], "claimed": False}
                seen[key] = unit
                if self.cache is not None and not self.cache.try_claim(key):
                    waiting.append(unit)
                else:
                    unit["claimed"] = self.cache is not None
                    work.append(unit)
        if work or waiting:
            start = time.perf_counter()
            try:
                if work:
                    self._solve_thermal_units(work, results)
                if waiting:
                    self._await_thermal_claims(waiting, results)
            finally:
                self.stats.add_stage("thermal", time.perf_counter() - start)
        return results

    def _solve_thermal_units(self, units: List[dict], results) -> None:
        """Solve units (one per distinct thermal key), scatter, persist.

        Units sharing a geometry are merged into one group so their
        right-hand sides share a factorization wherever the group runs;
        claims taken in :meth:`solve_thermal_groups` (or stolen during
        the wait) are always released, even when a solve raises.
        """
        try:
            by_geometry: Dict[Tuple, List[dict]] = {}
            for unit in units:
                key = unit["solver"].matrix_key()
                by_geometry.setdefault(key, []).append(unit)
            grouped = list(by_geometry.values())
            solved = self._dispatch_thermal([
                (members[0]["solver"], [u["grids"] for u in members])
                for members in grouped
            ])
            for members, outs in zip(grouped, solved):
                for unit, result in zip(members, outs):
                    for gi, pos in unit["targets"]:
                        results[gi][pos] = result
                        self.stats.thermal_solved += 1
                    if self.cache is not None:
                        self.cache.store(unit["key"], result)
        finally:
            if self.cache is not None:
                for unit in units:
                    if unit["claimed"]:
                        self.cache.release_claim(unit["key"])

    def _await_thermal_claims(self, waiting: List[dict], results) -> None:
        """Collectively wait on peer-claimed thermal keys, stealing as we go.

        The thermal twin of :meth:`_await_claims`: one bounded deadline
        covers the whole set, landed results are adopted
        (``claim_dedup``), abandoned claims are taken over and solved
        immediately (``claim_steals``), and keys still claimed at the
        deadline are solved uncoordinated.
        """
        cache = self.cache
        for unit in waiting:
            self.stats.claim_waits += 1
            self.stats.record_event("claim_wait", key=unit["key"][:16])
        deadline = time.monotonic() + self.claim_wait_s
        remaining = list(waiting)
        while remaining:
            still = []
            stolen = []
            for unit in remaining:
                key = unit["key"]
                result = cache.load(key, ThermalResult)
                if result is not None:
                    self.stats.claim_dedup += 1
                    self.stats.record_event("claim_dedup", key=key[:16])
                    for gi, pos in unit["targets"]:
                        results[gi][pos] = result
                    continue
                if cache.claim_stale(key, self.claim_stale_s):
                    cache.break_claim(key)
                    self.stats.claim_takeovers += 1
                    self.stats.record_event(
                        "claim_takeover", key=key[:16], reason="stale"
                    )
                    unit["claimed"] = cache.try_claim(key)
                    stolen.append(unit)
                    continue
                if cache.claim_holder(key) is None:
                    # Holder released without storing (full disk, crash
                    # between release and store): claim and solve.
                    self.stats.claim_takeovers += 1
                    self.stats.record_event(
                        "claim_takeover", key=key[:16], reason="released"
                    )
                    unit["claimed"] = cache.try_claim(key)
                    stolen.append(unit)
                    continue
                still.append(unit)
            if stolen:
                self.stats.claim_steals += len(stolen)
                self.stats.record_event("claim_steal", tasks=len(stolen))
                self._solve_thermal_units(stolen, results)
            remaining = still
            if not remaining:
                return
            if time.monotonic() >= deadline:
                break
            time.sleep(self.claim_poll_s)
        for unit in remaining:
            self.stats.claim_takeovers += 1
            self.stats.record_event(
                "claim_takeover", key=unit["key"][:16], reason="wait_expired"
            )
            unit["claimed"] = False  # solve uncoordinated, no claim taken
        self._solve_thermal_units(remaining, results)

    def _thermal_cells(self, solver: ThermalSolver) -> int:
        """Unknown count of one geometry's linear system."""
        return len(solver.stack.layers) * solver.ny * solver.nx

    def _thermal_subproc_fallback(self, batches: int) -> Callable[[str], None]:
        """The supervised-path fallback hook: count, log, and warn."""
        def on_fallback(reason: str) -> None:
            self.stats.thermal_subproc_fallbacks += 1
            self.stats.record_event("thermal_subproc_fallback",
                                    reason=reason, batches=batches)
            warnings.warn(
                f"supervised thermal solve failed ({reason}); "
                f"solving {batches} batch(es) in-process",
                RuntimeWarning,
                stacklevel=2,
            )
        return on_fallback

    def _dispatch_thermal(
        self, geometry_groups: List[Tuple[ThermalSolver, List[Sequence]]]
    ) -> List[List[ThermalResult]]:
        """Solve geometry groups inline or across the worker pool.

        The pool path pays a spin-up and forfeits the parent's
        factorization LRU, so it only engages when several distinct
        geometries are pending (``thermal_parallel_min_groups``) — or
        when a group is oversized (``REPRO_THERMAL_SUBPROC_CELLS``), in
        which case crash isolation demands a subprocess even for a
        single group on a single-job context: that is the supervised
        solve of old, folded into the same worker path.  Oversized
        groups keep its one-attempt contract — a crash, OOM kill, or
        hang costs one timeout and an in-process fallback (with a
        warning), not the retry ladder.
        """
        threshold = self.thermal_subproc_cells
        oversized = [
            threshold is not None and self._thermal_cells(solver) >= threshold
            for solver, _ in geometry_groups
        ]
        use_pool = any(oversized) or (
            self.jobs > 1
            and len(geometry_groups) >= self.thermal_parallel_min_groups
        )
        self.stats.thermal_groups += len(geometry_groups)
        if not use_pool:
            out = []
            for solver, grids in geometry_groups:
                t0 = time.perf_counter()
                out.append(solver.solve_many(grids))
                self.stats.record_event(
                    "thermal_group", geometry=solver.geometry_id(),
                    batches=len(grids), cells=self._thermal_cells(solver),
                    where="inline",
                    seconds=round(time.perf_counter() - t0, 3),
                )
            return out

        from repro.experiments.supervised import solve_group_task

        tasks = []
        for (solver, grids), big in zip(geometry_groups, oversized):
            tasks.append(_PoolTask(
                fn=solve_group_task,
                args=(solver.stack, solver.floorplan, solver.nx, solver.ny,
                      solver.spreader_mm, grids),
                serial=(lambda s=solver, g=grids: (s.solve_many(g), None)),
                detail={"geometry": solver.geometry_id(),
                        "batches": len(grids),
                        "cells": self._thermal_cells(solver)},
                timeout_s=self.thermal_timeout_s,
                max_attempts=1 if big else self.max_task_attempts,
                on_fallback=(
                    self._thermal_subproc_fallback(len(grids)) if big else None
                ),
            ))
        self.stats.begin_batch()
        try:
            outs = self._run_pool_tasks(tasks, kind="thermal solve",
                                        force_pool=True)
            results = []
            for (solver, grids), big, out in zip(geometry_groups, oversized,
                                                 outs):
                solved, worker_stats = out
                if worker_stats is not None:
                    self.stats.thermal_worker_groups += 1
                    self.stats.thermal_worker_factorizations += (
                        worker_stats.get("factorizations", 0)
                    )
                    if big:
                        self.stats.thermal_subproc_solves += 1
                self.stats.record_event(
                    "thermal_group", geometry=solver.geometry_id(),
                    batches=len(grids), cells=self._thermal_cells(solver),
                    where="inline" if worker_stats is None else "worker",
                    seconds=(worker_stats or {}).get("seconds"),
                )
                results.append(solved)
            return results
        finally:
            self.stats.end_batch()

    # ------------------------------------------------------------------ #

    def transient_many(
        self, requests: Sequence["TransientRequest"]
    ) -> List[Tuple[TransientResult, Dict[str, float]]]:
        """The transient co-simulation engine: many interval runs at once.

        Requests are grouped by step-matrix key — ``(geometry, heat
        capacities, dt)`` plus the shared integration window — and every
        group steps its runs in lock-step through one factorization with
        an ``(n, K)`` right-hand-side matrix
        (:meth:`~repro.thermal.transient.TransientThermalSolver.run_many`).
        Groups are fanned out across the worker pool exactly like
        :meth:`solve_thermal_groups` (the factorization never crosses a
        process boundary; workers rebuild the solver from pure geometry),
        and stepping is deterministic, so pool results are byte-identical
        to inline ones.  Returns, per request, the
        :class:`~repro.thermal.transient.TransientResult` and the
        schedule's accumulated stats (throttle duty counters and the
        like — pool workers mutate pickled schedule copies, so the stats
        travel back explicitly).
        """
        requests = list(requests)
        if not requests:
            return []
        groups: Dict[Tuple, dict] = {}
        order: List[dict] = []
        for i, req in enumerate(requests):
            solver = self.solver(req.stack)
            key = (step_matrix_key(solver, req.dt_s),
                   req.duration_s, req.initial_k)
            group = groups.get(key)
            if group is None:
                group = {"solver": solver, "req": req,
                         "indices": [], "schedules": []}
                groups[key] = group
                order.append(group)
            group["indices"].append(i)
            group["schedules"].append(req.schedule)
        self.stats.transient_runs += len(requests)
        start = time.perf_counter()
        try:
            solved = self._dispatch_transient(order)
        finally:
            self.stats.add_stage("transient", time.perf_counter() - start)
        out: List[Optional[Tuple[TransientResult, Dict[str, float]]]] = (
            [None] * len(requests)
        )
        for group, (results, sched_stats) in zip(order, solved):
            for i, result, stats in zip(group["indices"], results, sched_stats):
                out[i] = (result, stats)
        return out

    def _run_transient_group(
        self, group: dict
    ) -> Tuple[List[TransientResult], List[Dict[str, float]]]:
        """Inline path: step one group in-process (shares the parent's
        step-matrix LRU)."""
        req = group["req"]
        transient = TransientThermalSolver(group["solver"], dt_s=req.dt_s)
        results = transient.run_many(
            group["schedules"], req.duration_s, initial_k=req.initial_k
        )
        return results, [
            s.stats() if isinstance(s, PowerSchedule) else {}
            for s in group["schedules"]
        ]

    def _dispatch_transient(
        self, groups: List[dict]
    ) -> List[Tuple[List[TransientResult], List[Dict[str, float]]]]:
        """Step groups inline or across the worker pool.

        Mirrors :meth:`_dispatch_thermal`: the pool only engages when
        several step-matrix groups are pending
        (``thermal_parallel_min_groups``) and every schedule is a
        picklable :class:`~repro.thermal.transient.PowerSchedule` (plain
        callables stay inline).
        """
        self.stats.transient_groups += len(groups)
        steps_of = {}
        for group in groups:
            req = group["req"]
            steps = max(1, int(round(req.duration_s / req.dt_s)))
            steps_of[id(group)] = steps
            self.stats.transient_steps += steps * len(group["schedules"])
        use_pool = (
            self.jobs > 1
            and len(groups) >= self.thermal_parallel_min_groups
            and all(
                isinstance(schedule, PowerSchedule)
                for group in groups
                for schedule in group["schedules"]
            )
        )
        if not use_pool:
            out = []
            for group in groups:
                t0 = time.perf_counter()
                out.append(self._run_transient_group(group))
                self.stats.record_event(
                    "transient_group",
                    geometry=group["solver"].geometry_id(),
                    runs=len(group["schedules"]),
                    steps=steps_of[id(group)],
                    where="inline",
                    seconds=round(time.perf_counter() - t0, 3),
                )
            return out

        from repro.experiments.supervised import transient_group_task

        tasks = []
        for group in groups:
            solver = group["solver"]
            req = group["req"]
            tasks.append(_PoolTask(
                fn=transient_group_task,
                args=(solver.stack, solver.floorplan, solver.nx, solver.ny,
                      solver.spreader_mm, req.dt_s, group["schedules"],
                      req.duration_s, req.initial_k),
                serial=(lambda g=group: self._run_transient_group(g) + (None,)),
                detail={"geometry": solver.geometry_id(),
                        "runs": len(group["schedules"]),
                        "steps": steps_of[id(group)]},
                timeout_s=self.thermal_timeout_s,
                max_attempts=self.max_task_attempts,
            ))
        self.stats.begin_batch()
        try:
            outs = self._run_pool_tasks(tasks, kind="transient step",
                                        force_pool=True)
            results = []
            for group, out in zip(groups, outs):
                solved, sched_stats, worker_stats = out
                if worker_stats is not None:
                    self.stats.transient_worker_groups += 1
                    self.stats.transient_worker_factorizations += (
                        worker_stats.get("step_factorizations", 0)
                    )
                self.stats.record_event(
                    "transient_group",
                    geometry=group["solver"].geometry_id(),
                    runs=len(group["schedules"]),
                    steps=steps_of[id(group)],
                    where="inline" if worker_stats is None else "worker",
                    seconds=(worker_stats or {}).get("seconds"),
                )
                results.append((solved, sched_stats))
            return results
        finally:
            self.stats.end_batch()


@dataclass
class TransientRequest:
    """One transient run for :meth:`ExperimentContext.transient_many`.

    Requests sharing ``(stack geometry, dt_s, duration_s, initial_k)``
    step in lock-step through one factorization; ``schedule`` supplies
    the per-step power grids (a
    :class:`~repro.thermal.transient.PowerSchedule` or a plain
    ``power_fn(t)`` callable — the latter forces inline dispatch).
    """

    stack: StackKind
    schedule: object
    dt_s: float
    duration_s: float
    initial_k: Optional[float] = None
