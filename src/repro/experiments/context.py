"""Shared experiment state: cached traces, runs, and calibrated models.

The paper's evaluation reuses the same simulation runs across figures
(e.g. mpeg2's Base run both anchors the 90 W power calibration and feeds
Figure 8); the context memoizes everything so the benchmark harness does
each piece of work once per process.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.cpu.config import CPUConfig, paper_configurations
from repro.cpu.pipeline import simulate
from repro.cpu.results import SimulationResult
from repro.floorplan import Floorplan, planar_floorplan, stacked_floorplan
from repro.isa.trace import Trace
from repro.power.model import (
    PowerBreakdown,
    PowerModel,
    StackKind,
    calibrate_activity_scale,
)
from repro.thermal.power_map import build_power_map, rasterize
from repro.thermal.solver import ThermalResult, ThermalSolver
from repro.thermal.stack import planar_stack, stacked_3d_stack
from repro.workloads.suite import benchmark_names, generate

#: The power/thermal reference application (the paper's peak-power app).
REFERENCE_BENCHMARK = "mpeg2"
#: Number of cores on the chip (Table 1 context / Figure 9).
CORE_COUNT = 2

#: Configuration labels -> whether they are evaluated as a 3D stack.
CONFIG_STACKS: Dict[str, StackKind] = {
    "Base": StackKind.PLANAR_2D,
    "TH": StackKind.PLANAR_2D,
    "Pipe": StackKind.PLANAR_2D,
    "Fast": StackKind.PLANAR_2D,
    "3D": StackKind.STACKED_3D,
    "3D-noTH": StackKind.STACKED_3D,
}


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs trading fidelity for runtime."""

    trace_length: int = 20_000
    warmup: int = 6_000
    #: None = the full 24-benchmark suite
    benchmarks: Optional[Tuple[str, ...]] = None
    #: thermal grid resolution (over the spreader footprint)
    thermal_grid: int = 64

    def benchmark_list(self) -> List[str]:
        if self.benchmarks is not None:
            return list(self.benchmarks)
        return benchmark_names()


def _all_configurations() -> Dict[str, CPUConfig]:
    """The five paper configurations plus the 3D-without-herding variant."""
    configs = {label: pc.config for label, pc in paper_configurations().items()}
    configs["3D-noTH"] = replace(configs["3D"], thermal_herding=False, name="3d-noth")
    return configs


class ExperimentContext:
    """Memoizing facade over the whole simulation pipeline."""

    def __init__(self, settings: Optional[ExperimentSettings] = None):
        self.settings = settings or ExperimentSettings()
        self.configs = _all_configurations()
        self._traces: Dict[str, Trace] = {}
        self._runs: Dict[Tuple[str, str], SimulationResult] = {}
        self._power_model: Optional[PowerModel] = None
        self._floorplans: Dict[StackKind, Floorplan] = {}
        self._solvers: Dict[StackKind, ThermalSolver] = {}

    # ------------------------------------------------------------------ #

    def trace(self, benchmark: str) -> Trace:
        trace = self._traces.get(benchmark)
        if trace is None:
            trace = generate(benchmark, length=self.settings.trace_length)
            self._traces[benchmark] = trace
        return trace

    def run(self, benchmark: str, config_label: str) -> SimulationResult:
        """The (cached) simulation of one benchmark under one configuration."""
        key = (benchmark, config_label)
        result = self._runs.get(key)
        if result is None:
            config = self.configs.get(config_label)
            if config is None:
                raise KeyError(
                    f"unknown configuration {config_label!r}; "
                    f"known: {', '.join(self.configs)}"
                )
            result = simulate(self.trace(benchmark), config, warmup=self.settings.warmup)
            self._runs[key] = result
        return result

    # ------------------------------------------------------------------ #

    def power_model(self) -> PowerModel:
        """The power model calibrated on the reference baseline run."""
        if self._power_model is None:
            reference = self.run(REFERENCE_BENCHMARK, "Base")
            scale = calibrate_activity_scale(reference)
            self._power_model = PowerModel(activity_scale=scale)
        return self._power_model

    def power(self, benchmark: str, config_label: str) -> PowerBreakdown:
        """Per-core power of one benchmark under one configuration."""
        stack = CONFIG_STACKS[config_label]
        return self.power_model().evaluate(self.run(benchmark, config_label), stack)

    def chip_power_watts(self, benchmark: str, config_label: str) -> float:
        """Total chip power with the benchmark replicated on every core."""
        return CORE_COUNT * self.power(benchmark, config_label).total_watts

    # ------------------------------------------------------------------ #

    def floorplan(self, stack: StackKind) -> Floorplan:
        plan = self._floorplans.get(stack)
        if plan is None:
            plan = (
                planar_floorplan(CORE_COUNT)
                if stack is StackKind.PLANAR_2D
                else stacked_floorplan(CORE_COUNT)
            )
            self._floorplans[stack] = plan
        return plan

    def solver(self, stack: StackKind) -> ThermalSolver:
        solver = self._solvers.get(stack)
        if solver is None:
            grid = self.settings.thermal_grid
            thermal_stack = planar_stack() if stack is StackKind.PLANAR_2D else stacked_3d_stack()
            solver = ThermalSolver(thermal_stack, self.floorplan(stack), grid, grid)
            self._solvers[stack] = solver
        return solver

    def thermal(self, benchmark: str, config_label: str) -> ThermalResult:
        """Thermal map with the benchmark replicated on every core."""
        stack = CONFIG_STACKS[config_label]
        breakdown = self.power(benchmark, config_label)
        return self.thermal_for_breakdowns([breakdown] * CORE_COUNT, stack)

    def thermal_for_breakdowns(
        self,
        breakdowns: List[PowerBreakdown],
        stack: StackKind,
        power_scale: float = 1.0,
    ) -> ThermalResult:
        """Thermal map for explicit per-core breakdowns (scaled if asked)."""
        plan = self.floorplan(stack)
        solver = self.solver(stack)
        watts = build_power_map(plan, breakdowns)
        if power_scale != 1.0:
            watts = {key: value * power_scale for key, value in watts.items()}
        ny, nx = solver.chip_grid_shape()
        return solver.solve(rasterize(plan, watts, nx, ny))
