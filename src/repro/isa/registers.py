"""Architectural register namespace for the trace ISA.

We model an Alpha-like split register file: 32 integer and 32 floating
point architectural registers.  Integer register 31 is the hard-wired
zero register (writes are discarded, reads return zero), which the
workload emulator uses for result-discarding instructions.
"""

from __future__ import annotations

import enum

#: Number of architectural integer registers.
NUM_INT_REGS = 32
#: Number of architectural floating point registers.
NUM_FP_REGS = 32
#: Integer register ids are [0, 32); FP ids are offset by this constant.
FP_REG_BASE = NUM_INT_REGS
#: The hard-wired integer zero register.
ZERO_REG = 31
#: Conventional stack pointer register (used by generators for stack traffic).
STACK_POINTER_REG = 30
#: Total architectural register namespace size.
TOTAL_REGS = NUM_INT_REGS + NUM_FP_REGS


class RegisterClass(enum.Enum):
    """Whether a register id names an integer or floating point register."""

    INT = "int"
    FP = "fp"


def register_class(reg: int) -> RegisterClass:
    """Classify a register id as integer or floating point."""
    if not 0 <= reg < TOTAL_REGS:
        raise ValueError(f"register id {reg} out of range [0, {TOTAL_REGS})")
    return RegisterClass.INT if reg < FP_REG_BASE else RegisterClass.FP


def fp_reg(index: int) -> int:
    """Register id of floating point register ``index``."""
    if not 0 <= index < NUM_FP_REGS:
        raise ValueError(f"fp register index {index} out of range [0, {NUM_FP_REGS})")
    return FP_REG_BASE + index


def is_zero_reg(reg: int) -> bool:
    """True when ``reg`` is the hard-wired integer zero register."""
    return reg == ZERO_REG
