"""Fluent builder for hand-written traces.

Microbenchmarks and tests need small, precisely controlled instruction
streams; constructing :class:`TraceInstruction` records by hand is
verbose and error prone (PCs, srcs/values pairing, branch targets).  The
builder assigns sequential PCs, tracks register values so ``src_values``
always match the dataflow, and checks branch-target consistency.

Example::

    trace = (TraceBuilder("microbench")
             .alu(dst=1, result=5)
             .alu(dst=2, result=7, srcs=(1,))
             .load(dst=3, addr=0x2AAA_0000_0000, value=42, srcs=(2,))
             .branch(taken=False)
             .build())
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.isa.instruction import TraceInstruction
from repro.isa.opcodes import OpClass
from repro.isa.trace import Trace
from repro.isa.values import to_unsigned

DEFAULT_PC = 0x40_0000


class TraceBuilder:
    """Accumulates instructions with consistent PCs and dataflow."""

    def __init__(self, name: str = "built", start_pc: int = DEFAULT_PC):
        if start_pc % 4:
            raise ValueError(f"start pc must be 4-byte aligned, got {start_pc:#x}")
        self.name = name
        self._pc = start_pc
        self._instructions: List[TraceInstruction] = []
        self._regs: Dict[int, int] = {}

    # ------------------------------------------------------------------ #

    def _values_for(self, srcs: Tuple[int, ...]) -> Tuple[int, ...]:
        return tuple(self._regs.get(reg, 0) for reg in srcs)

    def _advance(self, inst: TraceInstruction) -> "TraceBuilder":
        self._instructions.append(inst)
        self._pc = inst.next_pc
        if inst.dst is not None:
            self._regs[inst.dst] = to_unsigned(inst.result)
        return self

    @property
    def next_pc(self) -> int:
        """The PC the next appended instruction will get."""
        return self._pc

    # ------------------------------------------------------------------ #

    def alu(self, dst: int, result: int, srcs: Tuple[int, ...] = (),
            op: OpClass = OpClass.IALU) -> "TraceBuilder":
        """An integer ALU instruction producing ``result``."""
        if not op.is_integer_datapath or op.is_memory:
            raise ValueError(f"{op} is not an ALU opcode")
        return self._advance(TraceInstruction(
            pc=self._pc, op=op, srcs=srcs, dst=dst,
            result=to_unsigned(result), src_values=self._values_for(srcs),
        ))

    def fp(self, dst: int, srcs: Tuple[int, ...] = (),
           op: OpClass = OpClass.FADD, result: int = 0) -> "TraceBuilder":
        """A floating point instruction (bit pattern is opaque)."""
        if not op.is_fp:
            raise ValueError(f"{op} is not a floating point opcode")
        return self._advance(TraceInstruction(
            pc=self._pc, op=op, srcs=srcs, dst=dst,
            result=to_unsigned(result), src_values=self._values_for(srcs),
        ))

    def load(self, dst: int, addr: int, value: int,
             srcs: Tuple[int, ...] = ()) -> "TraceBuilder":
        """A load of ``value`` from ``addr``."""
        return self._advance(TraceInstruction(
            pc=self._pc, op=OpClass.LOAD, srcs=srcs, dst=dst,
            result=to_unsigned(value), src_values=self._values_for(srcs),
            mem_addr=addr, mem_value=to_unsigned(value),
        ))

    def store(self, addr: int, value: int,
              srcs: Tuple[int, ...] = ()) -> "TraceBuilder":
        """A store of ``value`` to ``addr``."""
        return self._advance(TraceInstruction(
            pc=self._pc, op=OpClass.STORE, srcs=srcs,
            src_values=self._values_for(srcs),
            mem_addr=addr, mem_value=to_unsigned(value),
        ))

    def branch(self, taken: bool, target: Optional[int] = None,
               srcs: Tuple[int, ...] = ()) -> "TraceBuilder":
        """A conditional branch; taken branches need a 4-aligned target."""
        if taken:
            if target is None:
                raise ValueError("taken branches need a target")
            if target % 4:
                raise ValueError(f"target must be 4-byte aligned, got {target:#x}")
        return self._advance(TraceInstruction(
            pc=self._pc, op=OpClass.BRANCH, srcs=srcs,
            src_values=self._values_for(srcs),
            taken=taken, target=target if taken else None,
        ))

    def jump(self, target: int) -> "TraceBuilder":
        return self._advance(TraceInstruction(
            pc=self._pc, op=OpClass.JUMP, taken=True, target=target,
        ))

    def call(self, target: int) -> "TraceBuilder":
        return self._advance(TraceInstruction(
            pc=self._pc, op=OpClass.CALL, taken=True, target=target,
        ))

    def ret(self, target: int) -> "TraceBuilder":
        return self._advance(TraceInstruction(
            pc=self._pc, op=OpClass.RETURN, taken=True, target=target,
        ))

    def repeat(self, times: int, body) -> "TraceBuilder":
        """Apply ``body(builder, iteration)`` ``times`` times."""
        if times < 0:
            raise ValueError(f"times must be non-negative, got {times}")
        for iteration in range(times):
            body(self, iteration)
        return self

    # ------------------------------------------------------------------ #

    def build(self, benchmark_class: str = "microbench") -> Trace:
        """Finalize into a :class:`Trace`, validating path continuity."""
        for a, b in zip(self._instructions, self._instructions[1:]):
            if a.next_pc != b.pc:
                raise ValueError(
                    f"committed path breaks between {a.pc:#x} (next "
                    f"{a.next_pc:#x}) and {b.pc:#x}"
                )
        return Trace(
            name=self.name,
            instructions=list(self._instructions),
            benchmark_class=benchmark_class,
        )
