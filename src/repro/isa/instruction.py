"""The trace instruction record.

A :class:`TraceInstruction` carries everything the timing model and the
Thermal Herding activity accounting need: program counter, opcode class,
register operands, the *architectural result value* (for width analysis),
and resolved memory/control-flow information.  Because the trace is the
committed instruction stream, branches carry their actual outcome and the
timing model charges misprediction penalties by comparing predictor output
against the recorded outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Optional, Tuple

from repro.isa.opcodes import OpClass
from repro.isa.values import is_low_width, to_unsigned

#: Maximum architectural sources per instruction.  The columnar trace
#: form (:mod:`repro.isa.compiled`) allots exactly this many source
#: register/value columns; a trace exceeding it is not columnar-
#: representable and replays on the object path.
MAX_SOURCES = 2


@dataclass(frozen=True)
class TraceInstruction:
    """One committed dynamic instruction.

    Columnar representability: the compiled trace form stores register
    ids as int16, all values (``result``, ``src_values``, ``mem_addr``,
    ``mem_value``, ``target``, ``pc``) as unsigned 64-bit, and at most
    :data:`MAX_SOURCES` sources.  Instructions within those bounds —
    everything the emulator emits — round-trip exactly through
    :func:`repro.isa.compiled.compile_trace` /
    :meth:`repro.isa.compiled.CompiledTrace.to_trace`.

    Attributes
    ----------
    pc:
        Byte address of the instruction (4-byte aligned).
    op:
        Opcode class (see :class:`~repro.isa.opcodes.OpClass`).
    srcs:
        Architectural source register ids (0-2 of them).
    dst:
        Architectural destination register id, or ``None``.
    result:
        64-bit unsigned result value written to ``dst`` (0 if no dst).
        Width prediction and the partitioned datapath key off this.
    src_values:
        64-bit unsigned values of the source operands at execution,
        parallel to ``srcs``.  Used to decide whether the upper dies of
        the register file and functional units must be enabled.
    mem_addr:
        Effective address for loads and stores, else ``None``.
    mem_value:
        Value loaded or stored, else ``None``.
    taken:
        Resolved direction for control instructions (``True`` for
        unconditional transfers).
    target:
        Resolved next-PC for taken control instructions.
    """

    pc: int
    op: OpClass
    srcs: Tuple[int, ...] = field(default=())
    dst: Optional[int] = None
    result: int = 0
    src_values: Tuple[int, ...] = field(default=())
    mem_addr: Optional[int] = None
    mem_value: Optional[int] = None
    taken: bool = False
    target: Optional[int] = None

    def __post_init__(self) -> None:
        if self.op.is_memory and self.mem_addr is None:
            raise ValueError(f"{self.op} at pc={self.pc:#x} requires mem_addr")
        if self.op.is_control and self.taken and self.target is None:
            raise ValueError(f"taken {self.op} at pc={self.pc:#x} requires target")
        if len(self.src_values) not in (0, len(self.srcs)):
            raise ValueError(
                f"src_values length {len(self.src_values)} does not match "
                f"srcs length {len(self.srcs)}"
            )

    @property
    def next_pc(self) -> int:
        """Architectural next PC (fall-through or taken target)."""
        if self.op.is_control and self.taken:
            assert self.target is not None
            return self.target
        return self.pc + 4

    @property
    def writes_register(self) -> bool:
        return self.dst is not None

    # The three width predicates are pure functions of immutable fields,
    # and every trace is replayed under several configurations, so they
    # are cached per instruction.  (cached_property stores directly into
    # __dict__, which frozen dataclasses permit.)

    @cached_property
    def result_is_low_width(self) -> bool:
        """True when the result fits the 16-bit low-width definition."""
        return is_low_width(self.result)

    @cached_property
    def operands_are_low_width(self) -> bool:
        """True when every source operand value is low width."""
        for v in self.src_values:
            if not is_low_width(v):
                return False
        return True

    @cached_property
    def is_low_width(self) -> bool:
        """The instruction's overall width class.

        An instruction is low width when both its source operands and its
        result are representable in 16 bits — the condition under which
        the lower three dies of the register file, functional unit, and
        bypass network can stay gated for it.
        """
        return self.result_is_low_width and self.operands_are_low_width

    def describe(self) -> str:
        """Human-readable one-line rendering, for debugging and examples."""
        parts = [f"{self.pc:#010x} {self.op.value:7s}"]
        if self.dst is not None:
            parts.append(f"r{self.dst} <-")
        if self.srcs:
            parts.append(", ".join(f"r{s}" for s in self.srcs))
        if self.mem_addr is not None:
            parts.append(f"[{to_unsigned(self.mem_addr):#x}]")
        if self.op.is_control:
            arrow = "T" if self.taken else "NT"
            tgt = f" -> {self.target:#x}" if self.taken and self.target else ""
            parts.append(f"({arrow}{tgt})")
        if self.dst is not None:
            parts.append(f"= {to_unsigned(self.result):#x}")
        return " ".join(parts)
