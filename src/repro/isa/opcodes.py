"""Opcode classes and functional-unit mapping for the trace ISA.

The paper models a Core 2-class machine (Table 1): 3 integer ALUs, 2
shifters, 1 multiplier/complex unit, 1 FP adder, 1 FP multiplier, 1 FP
divider/sqrt, one load/store port and one load-only port.  We keep the
trace ISA at the granularity the timing and activity models need: an
opcode *class* per instruction rather than a full architectural opcode.
"""

from __future__ import annotations

import enum


class OpClass(enum.Enum):
    """Semantic class of a trace instruction."""

    IALU = "ialu"          # integer add/sub/logic/compare
    ISHIFT = "ishift"      # integer shift/rotate/byte-manipulation
    IMUL = "imul"          # integer multiply and other long-latency int ops
    FADD = "fadd"          # floating point add/sub/convert
    FMUL = "fmul"          # floating point multiply
    FDIV = "fdiv"          # floating point divide / sqrt
    LOAD = "load"          # memory read
    STORE = "store"        # memory write
    BRANCH = "branch"      # conditional direct branch
    JUMP = "jump"          # unconditional direct jump
    CALL = "call"          # direct function call (pushes return address)
    RETURN = "return"      # indirect return (uses iBTB / RAS-like target)
    NOP = "nop"            # no-op / fence placeholder

    # The predicates below are precomputed into plain member attributes
    # right after the class body: the timing simulator evaluates them
    # millions of times per trace, where a property call plus tuple
    # membership test is measurable.

    is_memory: bool
    """True for LOAD/STORE."""

    is_control: bool
    """True for BRANCH/JUMP/CALL/RETURN."""

    is_conditional: bool
    """True for BRANCH."""

    is_fp: bool
    """True for FADD/FMUL/FDIV."""

    is_integer_datapath: bool
    """True for ops whose results flow through the 64-bit integer datapath.

    These are the instructions subject to width prediction and the
    significance-partitioned register file / ALU / bypass techniques.
    """


for _op in OpClass:
    _op.is_memory = _op in (OpClass.LOAD, OpClass.STORE)
    _op.is_control = _op in (
        OpClass.BRANCH, OpClass.JUMP, OpClass.CALL, OpClass.RETURN
    )
    _op.is_conditional = _op is OpClass.BRANCH
    _op.is_fp = _op in (OpClass.FADD, OpClass.FMUL, OpClass.FDIV)
    _op.is_integer_datapath = _op in (
        OpClass.IALU,
        OpClass.ISHIFT,
        OpClass.IMUL,
        OpClass.LOAD,
        OpClass.STORE,
    )
del _op


class FunctionalUnit(enum.Enum):
    """Execution resource pools (Table 1 of the paper)."""

    INT_ALU = "int_alu"
    INT_SHIFT = "int_shift"
    INT_MUL = "int_mul"
    FP_ADD = "fp_add"
    FP_MUL = "fp_mul"
    FP_DIV = "fp_div"
    LOAD_STORE_PORT = "ld_st_port"
    LOAD_PORT = "ld_port"


#: Which functional-unit pool executes each opcode class.  Loads may use
#: either memory port; the issue logic treats LOAD specially (see
#: :mod:`repro.cpu.execute`).
FU_FOR_OP = {
    OpClass.IALU: FunctionalUnit.INT_ALU,
    OpClass.ISHIFT: FunctionalUnit.INT_SHIFT,
    OpClass.IMUL: FunctionalUnit.INT_MUL,
    OpClass.FADD: FunctionalUnit.FP_ADD,
    OpClass.FMUL: FunctionalUnit.FP_MUL,
    OpClass.FDIV: FunctionalUnit.FP_DIV,
    OpClass.LOAD: FunctionalUnit.LOAD_PORT,
    OpClass.STORE: FunctionalUnit.LOAD_STORE_PORT,
    OpClass.BRANCH: FunctionalUnit.INT_ALU,
    OpClass.JUMP: FunctionalUnit.INT_ALU,
    OpClass.CALL: FunctionalUnit.INT_ALU,
    OpClass.RETURN: FunctionalUnit.INT_ALU,
    OpClass.NOP: FunctionalUnit.INT_ALU,
}

#: Execution latency in cycles (cache access latency for loads is added by
#: the memory hierarchy on top of the 1-cycle address generation here).
OP_LATENCY = {
    OpClass.IALU: 1,
    OpClass.ISHIFT: 1,
    OpClass.IMUL: 4,
    OpClass.FADD: 3,
    OpClass.FMUL: 5,
    OpClass.FDIV: 20,
    OpClass.LOAD: 1,
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
    OpClass.JUMP: 1,
    OpClass.CALL: 1,
    OpClass.RETURN: 1,
    OpClass.NOP: 1,
}
