"""Trace instruction-set layer.

The reproduction is trace driven: workload generators (:mod:`repro.workloads`)
emit streams of :class:`~repro.isa.instruction.TraceInstruction` records that
the timing model (:mod:`repro.cpu`) replays.  This package defines the
instruction record format, the opcode classes, the register namespace, and
the value-width utilities that the Thermal Herding techniques build on.
"""

from repro.isa.opcodes import OpClass, FunctionalUnit, FU_FOR_OP, OP_LATENCY
from repro.isa.instruction import TraceInstruction
from repro.isa.registers import (
    NUM_INT_REGS,
    NUM_FP_REGS,
    RegisterClass,
    register_class,
)
from repro.isa.trace import Trace, TraceStats
from repro.isa.builder import TraceBuilder
from repro.isa.serialization import load_trace, save_trace
from repro.isa.values import (
    LOW_WIDTH_BITS,
    WORD_BITS,
    WORDS_PER_VALUE,
    VALUE_BITS,
    UpperBitsEncoding,
    classify_upper_bits,
    is_low_width,
    sign_extend,
    significant_width,
    split_words,
    upper_bits,
    join_words,
)

__all__ = [
    "OpClass",
    "FunctionalUnit",
    "FU_FOR_OP",
    "OP_LATENCY",
    "TraceInstruction",
    "NUM_INT_REGS",
    "NUM_FP_REGS",
    "RegisterClass",
    "register_class",
    "Trace",
    "TraceStats",
    "TraceBuilder",
    "load_trace",
    "save_trace",
    "LOW_WIDTH_BITS",
    "WORD_BITS",
    "WORDS_PER_VALUE",
    "VALUE_BITS",
    "UpperBitsEncoding",
    "classify_upper_bits",
    "is_low_width",
    "sign_extend",
    "significant_width",
    "split_words",
    "upper_bits",
    "join_words",
]
