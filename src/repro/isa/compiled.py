"""Columnar (structure-of-arrays) trace representation.

A :class:`~repro.isa.trace.Trace` is a list of frozen dataclass records;
replaying one under six configurations re-pays Python attribute access,
``cached_property`` machinery, and big-int width arithmetic per
instruction per configuration.  :func:`compile_trace` converts the trace
into one numpy structured array — the *compiled* form — from which all
loop-invariant per-instruction properties (op-class predicates, 16-bit
significance classification, cache line/page indices) are derived once,
vectorized, and shared across every configuration that replays the
trace (see :mod:`repro.cpu.predecode`).

The compiled form is also the *transport* form: it round-trips through
``.npy`` + JSON-sidecar files (:func:`write_compiled` /
:func:`read_compiled`) and is memory-mapped back in, so worker processes
share one on-disk copy per workload instead of each re-running the
emulator or unpickling a private instruction list.

Compilation is strict: any trace the fixed-width columns cannot represent
exactly (more than two sources, values outside 64-bit range, register ids
outside int16) raises :class:`TraceCompileError`, and callers fall back
to the object path.  :meth:`CompiledTrace.to_trace` reconstructs the
original instruction list exactly, which the equivalence tests rely on.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

import numpy as np

from repro.isa.instruction import MAX_SOURCES, TraceInstruction
from repro.isa.opcodes import OpClass
from repro.isa.trace import Trace

#: Bump on any change to the structured dtype or the sidecar layout so
#: stale on-disk compiled traces never load.
TRACE_SCHEMA_VERSION = 1

#: Op classes in enum-definition order; the ``op`` column stores indices
#: into this list.
OPCLASS_LIST: List[OpClass] = list(OpClass)

_OP_CODE: Dict[OpClass, int] = {op: code for code, op in enumerate(OPCLASS_LIST)}

#: One row per committed instruction.  ``dst`` uses -1 for "no
#: destination"; optional fields pair a value column with a presence
#: flag so ``None`` survives the round trip exactly.
TRACE_DTYPE = np.dtype([
    ("pc", "<u8"),
    ("op", "<u1"),
    ("nsrcs", "<u1"),
    ("nvals", "<u1"),
    ("src0", "<i2"),
    ("src1", "<i2"),
    ("dst", "<i2"),
    ("result", "<u8"),
    ("sval0", "<u8"),
    ("sval1", "<u8"),
    ("has_mem_addr", "?"),
    ("mem_addr", "<u8"),
    ("has_mem_value", "?"),
    ("mem_value", "<u8"),
    ("taken", "?"),
    ("has_target", "?"),
    ("target", "<u8"),
])

_U64_MAX = (1 << 64) - 1
_REG_MAX = (1 << 15) - 1


class TraceCompileError(ValueError):
    """The trace cannot be represented exactly in columnar form."""


class TraceReadError(ValueError):
    """An on-disk compiled trace is missing, corrupt, or incompatible."""


def _check_u64(value: int, what: str, pc: int) -> int:
    if not 0 <= value <= _U64_MAX:
        raise TraceCompileError(
            f"{what}={value!r} at pc={pc:#x} is outside the unsigned 64-bit range"
        )
    return value


class CompiledTrace:
    """A trace as one numpy structured array plus identifying metadata.

    ``array`` may be an ordinary in-memory array or a read-only memory
    map of an on-disk entry; consumers never mutate it.  ``_predecoded``
    caches the config-independent decoded columns
    (:class:`repro.cpu.predecode.PreDecodedTrace`) so six configurations
    replaying the same workload decode it once.
    """

    __slots__ = ("name", "benchmark_class", "seed", "array", "_predecoded")

    def __init__(
        self,
        name: str,
        benchmark_class: str,
        seed: Optional[int],
        array: np.ndarray,
    ):
        self.name = name
        self.benchmark_class = benchmark_class
        self.seed = seed
        self.array = array
        self._predecoded = None

    def __len__(self) -> int:
        return len(self.array)

    @property
    def nbytes(self) -> int:
        """Size of the columnar array in bytes (the transport payload).

        For a memory-mapped entry this is the on-disk footprint shared by
        all workers, not per-process resident memory.
        """
        return int(self.array.nbytes)

    def to_trace(self) -> Trace:
        """Reconstruct the exact object-form :class:`Trace`."""
        rows = self.array
        instructions: List[TraceInstruction] = []
        for row in rows:
            nsrcs = int(row["nsrcs"])
            nvals = int(row["nvals"])
            srcs = (int(row["src0"]),)[:nsrcs] if nsrcs < 2 else (
                int(row["src0"]), int(row["src1"])
            )
            src_values = (int(row["sval0"]),)[:nvals] if nvals < 2 else (
                int(row["sval0"]), int(row["sval1"])
            )
            dst = int(row["dst"])
            instructions.append(TraceInstruction(
                pc=int(row["pc"]),
                op=OPCLASS_LIST[int(row["op"])],
                srcs=srcs,
                dst=None if dst < 0 else dst,
                result=int(row["result"]),
                src_values=src_values,
                mem_addr=int(row["mem_addr"]) if row["has_mem_addr"] else None,
                mem_value=int(row["mem_value"]) if row["has_mem_value"] else None,
                taken=bool(row["taken"]),
                target=int(row["target"]) if row["has_target"] else None,
            ))
        return Trace(
            name=self.name,
            instructions=instructions,
            benchmark_class=self.benchmark_class,
            seed=self.seed,
        )


def compile_trace(trace: Trace) -> CompiledTrace:
    """Compile ``trace`` into columnar form (strict; see module docstring)."""
    n = len(trace.instructions)
    arr = np.zeros(n, dtype=TRACE_DTYPE)
    pcs = [0] * n
    ops = [0] * n
    nsrcs_col = [0] * n
    nvals_col = [0] * n
    src0 = [0] * n
    src1 = [0] * n
    dsts = [-1] * n
    results = [0] * n
    sval0 = [0] * n
    sval1 = [0] * n
    has_ma = [False] * n
    mem_addrs = [0] * n
    has_mv = [False] * n
    mem_values = [0] * n
    takens = [False] * n
    has_tgt = [False] * n
    targets = [0] * n
    for i, inst in enumerate(trace.instructions):
        pc = inst.pc
        pcs[i] = _check_u64(pc, "pc", pc)
        ops[i] = _OP_CODE[inst.op]
        srcs = inst.srcs
        if len(srcs) > MAX_SOURCES:
            raise TraceCompileError(
                f"{len(srcs)} sources at pc={pc:#x} exceed the "
                f"{MAX_SOURCES}-column layout"
            )
        nsrcs_col[i] = len(srcs)
        for j, src in enumerate(srcs):
            if not 0 <= src <= _REG_MAX:
                raise TraceCompileError(
                    f"source register {src!r} at pc={pc:#x} is outside int16"
                )
            (src0 if j == 0 else src1)[i] = src
        values = inst.src_values
        nvals_col[i] = len(values)
        for j, value in enumerate(values):
            (sval0 if j == 0 else sval1)[i] = _check_u64(value, "src value", pc)
        if inst.dst is not None:
            if not 0 <= inst.dst <= _REG_MAX:
                raise TraceCompileError(
                    f"destination register {inst.dst!r} at pc={pc:#x} is outside int16"
                )
            dsts[i] = inst.dst
        results[i] = _check_u64(inst.result, "result", pc)
        if inst.mem_addr is not None:
            has_ma[i] = True
            mem_addrs[i] = _check_u64(inst.mem_addr, "mem_addr", pc)
        if inst.mem_value is not None:
            has_mv[i] = True
            mem_values[i] = _check_u64(inst.mem_value, "mem_value", pc)
        takens[i] = inst.taken
        if inst.target is not None:
            has_tgt[i] = True
            targets[i] = _check_u64(inst.target, "target", pc)
    arr["pc"] = pcs
    arr["op"] = ops
    arr["nsrcs"] = nsrcs_col
    arr["nvals"] = nvals_col
    arr["src0"] = src0
    arr["src1"] = src1
    arr["dst"] = dsts
    arr["result"] = results
    arr["sval0"] = sval0
    arr["sval1"] = sval1
    arr["has_mem_addr"] = has_ma
    arr["mem_addr"] = mem_addrs
    arr["has_mem_value"] = has_mv
    arr["mem_value"] = mem_values
    arr["taken"] = takens
    arr["has_target"] = has_tgt
    arr["target"] = targets
    return CompiledTrace(
        name=trace.name,
        benchmark_class=trace.benchmark_class,
        seed=trace.seed,
        array=arr,
    )


# ---------------------------------------------------------------------- #
# On-disk form: <key>.npy (the array, memory-mappable) + <key>.json
# (metadata).  Atomicity and eviction policy belong to the trace store
# (:class:`repro.experiments.cache.TraceStore`); these two functions are
# the raw serialization shared by the store and by pool workers.

def meta_path_for(npy_path: os.PathLike) -> str:
    """The JSON sidecar path belonging to a ``.npy`` entry."""
    path = os.fspath(npy_path)
    return (path[:-4] if path.endswith(".npy") else path) + ".json"


def write_compiled(compiled: CompiledTrace, npy_path, meta_path=None) -> None:
    """Serialize ``compiled`` (non-atomic; callers rename into place)."""
    if meta_path is None:
        meta_path = meta_path_for(npy_path)
    with open(npy_path, "wb") as stream:
        np.save(stream, np.ascontiguousarray(compiled.array))
    meta = {
        "schema": TRACE_SCHEMA_VERSION,
        "name": compiled.name,
        "benchmark_class": compiled.benchmark_class,
        "seed": compiled.seed,
        "length": len(compiled.array),
    }
    with open(meta_path, "w", encoding="utf-8") as stream:
        json.dump(meta, stream, sort_keys=True)
        stream.write("\n")


def read_compiled(npy_path, meta_path=None, mmap: bool = True) -> CompiledTrace:
    """Load an on-disk compiled trace, memory-mapping the array.

    Raises :class:`TraceReadError` on any damage or incompatibility —
    missing files, bad magic, wrong dtype, schema drift, or metadata
    that disagrees with the array — so callers can evict and regenerate
    instead of simulating garbage.
    """
    if meta_path is None:
        meta_path = meta_path_for(npy_path)
    try:
        with open(meta_path, "r", encoding="utf-8") as stream:
            meta = json.load(stream)
    except (OSError, ValueError) as exc:
        raise TraceReadError(f"unreadable trace metadata {meta_path}: {exc}") from exc
    if not isinstance(meta, dict) or meta.get("schema") != TRACE_SCHEMA_VERSION:
        raise TraceReadError(
            f"trace metadata {meta_path} has schema "
            f"{meta.get('schema') if isinstance(meta, dict) else meta!r}, "
            f"expected {TRACE_SCHEMA_VERSION}"
        )
    name = meta.get("name")
    benchmark_class = meta.get("benchmark_class")
    seed = meta.get("seed")
    length = meta.get("length")
    if not isinstance(name, str) or not isinstance(benchmark_class, str) \
            or not isinstance(length, int) \
            or not (seed is None or isinstance(seed, int)):
        raise TraceReadError(f"trace metadata {meta_path} is malformed: {meta}")
    try:
        array = np.load(npy_path, mmap_mode="r" if mmap else None,
                        allow_pickle=False)
    except (OSError, ValueError) as exc:
        raise TraceReadError(f"unreadable trace array {npy_path}: {exc}") from exc
    if not isinstance(array, np.ndarray) or array.ndim != 1 \
            or array.dtype != TRACE_DTYPE:
        raise TraceReadError(
            f"trace array {npy_path} has wrong shape/dtype "
            f"({getattr(array, 'dtype', None)})"
        )
    if len(array) != length:
        raise TraceReadError(
            f"trace array {npy_path} holds {len(array)} rows, metadata says {length}"
        )
    return CompiledTrace(
        name=name, benchmark_class=benchmark_class, seed=seed, array=array
    )
