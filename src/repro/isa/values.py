"""Value-width utilities for the significance-partitioned datapath.

The paper partitions every 64-bit integer value into four 16-bit words,
one per die, with the least-significant word on the die closest to the
heat sink.  A value is *low width* when it is representable in 16 bits,
i.e. the upper 48 bits are all zeros (small non-negative values) or all
ones (small negative values in two's complement).

The L1 data cache broadens "low width" with a 2-bit encoding of the upper
48 bits (Section 3.6):

====  =====================================================
bits  meaning of the upper 48 bits
====  =====================================================
00    all zeros
01    all ones (sign extension of a negative low value)
10    identical to the upper 48 bits of the referencing
      address (nearby-pointer case)
11    not trivially encodable; stored on the lower three die
====  =====================================================
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple

#: Number of bits per die word.
WORD_BITS = 16
#: Full architectural value width.
VALUE_BITS = 64
#: Words (and therefore dies) per value.
WORDS_PER_VALUE = VALUE_BITS // WORD_BITS
#: A value is "low width" when representable in this many bits.
LOW_WIDTH_BITS = WORD_BITS

_VALUE_MASK = (1 << VALUE_BITS) - 1
_WORD_MASK = (1 << WORD_BITS) - 1
_UPPER_BITS = VALUE_BITS - WORD_BITS
_UPPER_MASK = ((1 << _UPPER_BITS) - 1) << WORD_BITS
_UPPER_ONES = _UPPER_MASK >> WORD_BITS


class UpperBitsEncoding(enum.IntEnum):
    """The 2-bit L1D partial-value encoding of a word's upper 48 bits."""

    ALL_ZEROS = 0b00
    ALL_ONES = 0b01
    SAME_AS_ADDRESS = 0b10
    LITERAL = 0b11

    @property
    def is_compressed(self) -> bool:
        """True when the upper 48 bits need not be read from the lower dies."""
        return self is not UpperBitsEncoding.LITERAL


def to_unsigned(value: int) -> int:
    """Normalize a Python int to its unsigned 64-bit representation."""
    return value & _VALUE_MASK


def sign_extend(value: int, bits: int = VALUE_BITS) -> int:
    """Interpret the low ``bits`` bits of ``value`` as two's complement."""
    if bits <= 0 or bits > VALUE_BITS:
        raise ValueError(f"bits must be in [1, {VALUE_BITS}], got {bits}")
    value &= (1 << bits) - 1
    sign_bit = 1 << (bits - 1)
    return (value ^ sign_bit) - sign_bit


_SIGN_BIT = 1 << (VALUE_BITS - 1)


def significant_width(value: int) -> int:
    """Number of bits needed to represent ``value`` in two's complement.

    A non-negative value ``v`` needs ``v.bit_length() + 1`` bits (one for
    the sign); a negative value ``v`` needs ``(~v).bit_length() + 1``.
    Zero and minus-one both need 1 bit.  The result is capped at 64.

    (For a negative 64-bit value, ``~signed`` equals the bit complement
    of its unsigned representation, so the hot path below stays in
    unsigned arithmetic and never materializes the signed form.)
    """
    value &= _VALUE_MASK
    if value & _SIGN_BIT:
        width = (value ^ _VALUE_MASK).bit_length() + 1
    else:
        width = value.bit_length() + 1
    return width if width < VALUE_BITS else VALUE_BITS


def is_low_width(value: int, threshold: int = LOW_WIDTH_BITS) -> bool:
    """True when ``value`` is representable in ``threshold`` bits (signed)."""
    return significant_width(value) <= threshold


def split_words(value: int) -> Tuple[int, ...]:
    """Split a 64-bit value into four 16-bit words, LSW first.

    Word 0 is the least-significant word, which lives on the top die
    (closest to the heat sink) in the paper's stacking.
    """
    value = to_unsigned(value)
    return tuple((value >> (WORD_BITS * i)) & _WORD_MASK for i in range(WORDS_PER_VALUE))


def join_words(words: Tuple[int, ...]) -> int:
    """Inverse of :func:`split_words`."""
    if len(words) != WORDS_PER_VALUE:
        raise ValueError(f"expected {WORDS_PER_VALUE} words, got {len(words)}")
    value = 0
    for i, word in enumerate(words):
        if word & ~_WORD_MASK:
            raise ValueError(f"word {i} ({word:#x}) exceeds {WORD_BITS} bits")
        value |= word << (WORD_BITS * i)
    return value


def upper_bits(value: int) -> int:
    """The upper 48 bits of a 64-bit value, right aligned."""
    return to_unsigned(value) >> WORD_BITS


def classify_upper_bits(value: int, address: Optional[int] = None) -> UpperBitsEncoding:
    """Classify a value's upper 48 bits with the L1D partial-value encoding.

    ``address`` is the address of the memory word holding ``value`` (the
    "referencing address"); when provided and the value's upper bits match
    the address's upper bits, the SAME_AS_ADDRESS encoding applies (the
    nearby-pointer case the paper cites from heap data structures).
    """
    upper = upper_bits(value)
    if upper == 0:
        return UpperBitsEncoding.ALL_ZEROS
    if upper == _UPPER_ONES:
        return UpperBitsEncoding.ALL_ONES
    if address is not None and upper == upper_bits(address):
        return UpperBitsEncoding.SAME_AS_ADDRESS
    return UpperBitsEncoding.LITERAL
