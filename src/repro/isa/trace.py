"""Trace container and summary statistics.

A :class:`Trace` is the unit of work a benchmark run consumes: an ordered
list of committed :class:`~repro.isa.instruction.TraceInstruction` records
plus identifying metadata (name, benchmark class, generator seed).
:class:`TraceStats` summarizes the properties the paper's techniques
exploit — instruction mix, value-width distribution, address upper-bit
locality, and branch-target displacement locality — and is used both by
tests and by the width-locality example.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

from repro.isa.instruction import TraceInstruction
from repro.isa.opcodes import OpClass
from repro.isa.values import (
    classify_upper_bits,
    is_low_width,
    upper_bits,
    UpperBitsEncoding,
)


@dataclass
class Trace:
    """An ordered committed-instruction stream with metadata."""

    name: str
    instructions: List[TraceInstruction]
    benchmark_class: str = "unknown"
    seed: Optional[int] = None

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[TraceInstruction]:
        return iter(self.instructions)

    def __getitem__(self, index):
        return self.instructions[index]

    def stats(self) -> "TraceStats":
        return TraceStats.from_instructions(self.instructions)

    def compiled(self):
        """The columnar form of this trace, or ``None`` if uncompilable.

        Compilation is memoized on the instance: the fast simulation path
        calls this once per (trace, config) pair, but six configs share
        one trace object in a sweep.  A trace the fixed-width columns
        cannot represent memoizes ``None`` so the object path is used
        without re-attempting compilation.
        """
        compiled = self.__dict__.get("_compiled", _UNCOMPILED)
        if compiled is _UNCOMPILED:
            from repro.isa.compiled import compile_trace, TraceCompileError

            try:
                compiled = compile_trace(self)
            except TraceCompileError:
                compiled = None
            self.__dict__["_compiled"] = compiled
        return compiled


#: Sentinel distinguishing "never compiled" from "compilation failed".
_UNCOMPILED = object()


@dataclass
class TraceStats:
    """Summary statistics of a trace.

    All fractions are over the relevant instruction subset (e.g.
    ``low_width_result_fraction`` is over register-writing integer-datapath
    instructions).
    """

    count: int = 0
    op_mix: Dict[OpClass, float] = field(default_factory=dict)
    low_width_result_fraction: float = 0.0
    low_width_operand_fraction: float = 0.0
    branch_fraction: float = 0.0
    taken_fraction: float = 0.0
    memory_fraction: float = 0.0
    dcache_encoding_mix: Dict[UpperBitsEncoding, float] = field(default_factory=dict)
    address_upper_match_fraction: float = 0.0
    near_target_fraction: float = 0.0

    @classmethod
    def from_instructions(cls, instructions: Iterable[TraceInstruction]) -> "TraceStats":
        op_counts: Counter = Counter()
        enc_counts: Counter = Counter()
        total = 0
        int_writes = 0
        low_results = 0
        int_reads = 0
        low_operands = 0
        branches = 0
        taken = 0
        memory = 0
        addr_matches = 0
        near_targets = 0
        control_taken_total = 0
        last_store_upper: Optional[int] = None

        for inst in instructions:
            total += 1
            op_counts[inst.op] += 1
            if inst.op.is_memory:
                memory += 1
                assert inst.mem_addr is not None
                if last_store_upper is not None and upper_bits(inst.mem_addr) == last_store_upper:
                    addr_matches += 1
                if inst.op is OpClass.STORE:
                    last_store_upper = upper_bits(inst.mem_addr)
                if inst.mem_value is not None:
                    enc_counts[classify_upper_bits(inst.mem_value, inst.mem_addr)] += 1
            if inst.op is OpClass.BRANCH:
                branches += 1
                if inst.taken:
                    taken += 1
            if inst.op.is_control and inst.taken and inst.target is not None:
                control_taken_total += 1
                if upper_bits(inst.target) == upper_bits(inst.pc):
                    near_targets += 1
            if inst.op.is_integer_datapath:
                if inst.writes_register:
                    int_writes += 1
                    if inst.result_is_low_width:
                        low_results += 1
                for value in inst.src_values:
                    int_reads += 1
                    if is_low_width(value):
                        low_operands += 1

        def frac(n: int, d: int) -> float:
            return n / d if d else 0.0

        return cls(
            count=total,
            op_mix={op: frac(c, total) for op, c in sorted(op_counts.items(), key=lambda kv: kv[0].value)},
            low_width_result_fraction=frac(low_results, int_writes),
            low_width_operand_fraction=frac(low_operands, int_reads),
            branch_fraction=frac(branches, total),
            taken_fraction=frac(taken, branches),
            memory_fraction=frac(memory, total),
            dcache_encoding_mix={enc: frac(c, sum(enc_counts.values())) for enc, c in sorted(enc_counts.items())},
            address_upper_match_fraction=frac(addr_matches, memory),
            near_target_fraction=frac(near_targets, control_taken_total),
        )

    def format(self) -> str:
        """Render the statistics as an aligned text block."""
        lines = [f"instructions              {self.count}"]
        for op, fraction in self.op_mix.items():
            lines.append(f"  {op.value:<22s}  {fraction:6.1%}")
        lines.append(f"low-width results         {self.low_width_result_fraction:6.1%}")
        lines.append(f"low-width operands        {self.low_width_operand_fraction:6.1%}")
        lines.append(f"branch fraction           {self.branch_fraction:6.1%}")
        lines.append(f"taken fraction            {self.taken_fraction:6.1%}")
        lines.append(f"memory fraction           {self.memory_fraction:6.1%}")
        lines.append(f"addr upper-bits match     {self.address_upper_match_fraction:6.1%}")
        lines.append(f"near branch targets       {self.near_target_fraction:6.1%}")
        for enc, fraction in self.dcache_encoding_mix.items():
            lines.append(f"  L1D encoding {enc.name:<16s} {fraction:6.1%}")
        return "\n".join(lines)
