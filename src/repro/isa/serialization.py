"""Trace (de)serialization.

Traces are stored as gzip-compressed JSON-lines: a header record followed
by one record per instruction.  The format is line-oriented so huge
traces can stream; integers are kept as decimal strings only where JSON
cannot hold them exactly (none — all fields fit in 64 bits and Python's
JSON handles arbitrary ints, so values are stored directly).
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import List, Union

from repro.isa.instruction import TraceInstruction
from repro.isa.opcodes import OpClass
from repro.isa.trace import Trace

#: Format identifier written into the header record.
FORMAT = "repro-trace"
VERSION = 1


def _instruction_to_record(inst: TraceInstruction) -> dict:
    record = {"pc": inst.pc, "op": inst.op.value}
    if inst.srcs:
        record["srcs"] = list(inst.srcs)
    if inst.src_values:
        record["sv"] = list(inst.src_values)
    if inst.dst is not None:
        record["dst"] = inst.dst
        record["res"] = inst.result
    if inst.mem_addr is not None:
        record["ma"] = inst.mem_addr
    if inst.mem_value is not None:
        record["mv"] = inst.mem_value
    if inst.taken:
        record["tk"] = 1
        record["tg"] = inst.target
    return record


def _record_to_instruction(record: dict) -> TraceInstruction:
    return TraceInstruction(
        pc=record["pc"],
        op=OpClass(record["op"]),
        srcs=tuple(record.get("srcs", ())),
        src_values=tuple(record.get("sv", ())),
        dst=record.get("dst"),
        result=record.get("res", 0),
        mem_addr=record.get("ma"),
        mem_value=record.get("mv"),
        taken=bool(record.get("tk", 0)),
        target=record.get("tg"),
    )


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write ``trace`` to ``path`` (gzip JSON-lines)."""
    path = Path(path)
    header = {
        "format": FORMAT,
        "version": VERSION,
        "name": trace.name,
        "benchmark_class": trace.benchmark_class,
        "seed": trace.seed,
        "length": len(trace),
    }
    with gzip.open(path, "wt", encoding="utf-8") as stream:
        stream.write(json.dumps(header) + "\n")
        for inst in trace:
            stream.write(json.dumps(_instruction_to_record(inst)) + "\n")


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    path = Path(path)
    with gzip.open(path, "rt", encoding="utf-8") as stream:
        header_line = stream.readline()
        if not header_line:
            raise ValueError(f"{path}: empty trace file")
        header = json.loads(header_line)
        if header.get("format") != FORMAT:
            raise ValueError(f"{path}: not a {FORMAT} file")
        if header.get("version") != VERSION:
            raise ValueError(
                f"{path}: unsupported version {header.get('version')} (expected {VERSION})"
            )
        instructions: List[TraceInstruction] = []
        for line in stream:
            if line.strip():
                instructions.append(_record_to_instruction(json.loads(line)))
    if len(instructions) != header.get("length"):
        raise ValueError(
            f"{path}: header says {header.get('length')} instructions, "
            f"found {len(instructions)}"
        )
    return Trace(
        name=header.get("name", path.stem),
        instructions=instructions,
        benchmark_class=header.get("benchmark_class", "unknown"),
        seed=header.get("seed"),
    )
