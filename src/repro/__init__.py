"""Reproduction of *Thermal Herding: Microarchitecture Techniques for
Controlling Hotspots in High-Performance 3D-Integrated Processors*
(Puttaswamy & Loh, HPCA 2007).

The package is organized bottom-up:

* :mod:`repro.isa` — trace instruction format and value-width utilities.
* :mod:`repro.workloads` — synthetic benchmark generators (six suites).
* :mod:`repro.circuits` — 2D/3D latency and energy models (HSpice stand-in).
* :mod:`repro.core` — the Thermal Herding techniques themselves.
* :mod:`repro.cpu` — out-of-order timing simulator (SimpleScalar stand-in).
* :mod:`repro.power` — per-module power integration.
* :mod:`repro.floorplan` — planar and 4-die-stack floorplans.
* :mod:`repro.thermal` — steady-state 3D thermal solver (HotSpot stand-in).
* :mod:`repro.experiments` — one runner per table/figure of the paper.

Quickstart::

    from repro.workloads import generate
    from repro.cpu import simulate, paper_configurations

    trace = generate("mpeg2", length=20_000)
    configs = paper_configurations()
    base = simulate(trace, configs["Base"].config, warmup=6_000)
    full = simulate(trace, configs["3D"].config, warmup=6_000)
    print(f"3D speedup: {full.ipns / base.ipns:.2f}x")
"""

__version__ = "1.0.0"

from repro.cpu import paper_configurations, simulate
from repro.workloads import generate, standard_suite

__all__ = [
    "__version__",
    "paper_configurations",
    "simulate",
    "generate",
    "standard_suite",
]
