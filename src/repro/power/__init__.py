"""Power model: per-module energies x activity x frequency (Section 4).

The paper combines HSpice per-access energies with MASE activity factors
and the clock frequency; it assumes the baseline 2D processor dissipates
35 % of its power in the clock network and 20 % in leakage, that the 3D
clock network's power halves (footprint folded by four, conservatively
credited by two), and that leakage is unchanged by 3D or Thermal Herding.

This package reproduces that pipeline: per-access energies come from
:mod:`repro.circuits.blocks`; per-module (and per-die) activity comes
from a :class:`~repro.cpu.results.SimulationResult`; one global activity
scale is calibrated so the baseline dual-core mpeg2 run dissipates the
paper's 90 W.
"""

from repro.power.model import (
    PowerModel,
    PowerBreakdown,
    ModulePower,
    StackKind,
    calibrate_activity_scale,
)
from repro.power.audit import audit, composition, die_shares, format_audit, top_consumers

__all__ = [
    "PowerModel",
    "PowerBreakdown",
    "ModulePower",
    "StackKind",
    "calibrate_activity_scale",
    "audit",
    "composition",
    "die_shares",
    "format_audit",
    "top_consumers",
]
