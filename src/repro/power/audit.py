"""Power audit: where the watts go, and whether the books balance.

Sanity tooling over :class:`~repro.power.model.PowerBreakdown`: top
consumers, per-die shares, dynamic/clock/leakage split, and cross-checks
(per-die sums equal module totals; nothing negative).  Used by tests and
handy when re-tuning block energies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.activity import NUM_DIES
from repro.power.model import PowerBreakdown, StackKind


@dataclass
class AuditFinding:
    """One bookkeeping violation."""

    module: str
    message: str


def audit(breakdown: PowerBreakdown, tolerance: float = 1e-9) -> List[AuditFinding]:
    """Check the breakdown's internal consistency; returns violations."""
    findings: List[AuditFinding] = []
    expected_dies = NUM_DIES if breakdown.stack is StackKind.STACKED_3D else 1
    for name, module in breakdown.modules.items():
        if module.watts < -tolerance:
            findings.append(AuditFinding(name, f"negative power {module.watts}"))
        if len(module.per_die) != expected_dies:
            findings.append(AuditFinding(
                name, f"{len(module.per_die)} die entries, expected {expected_dies}"
            ))
        if abs(sum(module.per_die) - module.watts) > max(tolerance, 1e-9 * abs(module.watts)):
            findings.append(AuditFinding(
                name, f"per-die sum {sum(module.per_die)} != watts {module.watts}"
            ))
        if any(w < -tolerance for w in module.per_die):
            findings.append(AuditFinding(name, "negative per-die entry"))
    if breakdown.clock_watts < 0 or breakdown.leakage_watts < 0:
        findings.append(AuditFinding("(shared)", "negative clock/leakage"))
    return findings


def top_consumers(breakdown: PowerBreakdown, count: int = 5) -> List[Tuple[str, float]]:
    """The ``count`` hungriest modules, (name, watts), descending."""
    ranked = sorted(
        ((name, module.watts) for name, module in breakdown.modules.items()),
        key=lambda kv: -kv[1],
    )
    return ranked[:count]


def composition(breakdown: PowerBreakdown) -> Dict[str, float]:
    """Fractions of the total: dynamic / clock / leakage."""
    total = breakdown.total_watts
    if total <= 0:
        return {"dynamic": 0.0, "clock": 0.0, "leakage": 0.0}
    return {
        "dynamic": breakdown.dynamic_watts / total,
        "clock": breakdown.clock_watts / total,
        "leakage": breakdown.leakage_watts / total,
    }


def die_shares(breakdown: PowerBreakdown) -> List[float]:
    """Per-die fraction of the total (1.0 total across dies)."""
    totals = breakdown.per_die_totals()
    chip = sum(totals)
    if chip <= 0:
        return [0.0] * len(totals)
    return [t / chip for t in totals]


def format_audit(breakdown: PowerBreakdown) -> str:
    """Human-readable audit block."""
    comp = composition(breakdown)
    lines = [
        f"power audit: {breakdown.benchmark} [{breakdown.config_name}] "
        f"{breakdown.stack.value} = {breakdown.total_watts:.2f} W/core",
        f"  dynamic {comp['dynamic']:.1%}  clock {comp['clock']:.1%}  "
        f"leakage {comp['leakage']:.1%}",
        "  top consumers:",
    ]
    for name, watts in top_consumers(breakdown):
        lines.append(f"    {name:<18s} {watts:7.3f} W")
    if breakdown.stack is StackKind.STACKED_3D:
        shares = die_shares(breakdown)
        rendered = "  ".join(f"die{d}={s:.1%}" for d, s in enumerate(shares))
        lines.append(f"  die shares: {rendered}")
    findings = audit(breakdown)
    lines.append(
        "  books: OK" if not findings else
        "  books: " + "; ".join(f"{f.module}: {f.message}" for f in findings)
    )
    return "\n".join(lines)
