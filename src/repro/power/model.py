"""Per-module power integration.

``P_module = E_access x accesses x scale / runtime``, evaluated per die
for 3D stacks so the thermal model sees where the heat actually lands.
Die 0 is the top die (adjacent to the heat sink).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.circuits.blocks import BlockModel, build_block_models
from repro.core.activity import NUM_DIES, ModuleActivity
from repro.cpu.results import SimulationResult

#: Activity-module -> circuit-block mapping (identity unless listed).
_BLOCK_FOR_MODULE = {
    "alu": "int_adder",
    "scheduler": "wakeup_select_loop",
}
#: Activity modules that are not on-chip consumers.
_EXCLUDED_MODULES = frozenset({"dram"})

#: Paper assumptions (Section 4).
BASELINE_CLOCK_FRACTION = 0.35
BASELINE_LEAKAGE_FRACTION = 0.20
CLOCK_3D_POWER_FACTOR = 0.5
#: Figure 9: two mpeg2 instances on two cores dissipate 90 W total.
BASELINE_TOTAL_WATTS = 90.0
BASELINE_CORE_WATTS = BASELINE_TOTAL_WATTS / 2.0


class StackKind(enum.Enum):
    """Whether a run is evaluated as the planar die or the 4-die stack."""

    PLANAR_2D = "2d"
    STACKED_3D = "3d"


@dataclass
class ModulePower:
    """Power of one module, with per-die attribution for 3D stacks."""

    name: str
    watts: float
    per_die: List[float]


@dataclass
class PowerBreakdown:
    """Complete power picture of one core for one run."""

    benchmark: str
    config_name: str
    stack: StackKind
    clock_ghz: float
    modules: Dict[str, ModulePower]
    clock_watts: float
    leakage_watts: float

    @property
    def dynamic_watts(self) -> float:
        return sum(m.watts for m in self.modules.values())

    @property
    def total_watts(self) -> float:
        return self.dynamic_watts + self.clock_watts + self.leakage_watts

    def per_die_totals(self) -> List[float]:
        """Total per-die watts including clock and leakage shares."""
        dies = NUM_DIES if self.stack is StackKind.STACKED_3D else 1
        totals = [0.0] * dies
        for module in self.modules.values():
            for die, watts in enumerate(module.per_die):
                totals[die] += watts
        shared = (self.clock_watts + self.leakage_watts) / dies
        return [t + shared for t in totals]

    def format(self) -> str:
        lines = [
            f"{self.benchmark} [{self.config_name}] {self.stack.value} "
            f"@ {self.clock_ghz:.2f} GHz"
        ]
        for name, module in sorted(self.modules.items(), key=lambda kv: -kv[1].watts):
            lines.append(f"  {name:<18s} {module.watts:7.3f} W")
        lines.append(f"  {'clock network':<18s} {self.clock_watts:7.3f} W")
        lines.append(f"  {'leakage':<18s} {self.leakage_watts:7.3f} W")
        lines.append(f"  {'TOTAL':<18s} {self.total_watts:7.3f} W")
        return "\n".join(lines)


class PowerModel:
    """Evaluates :class:`SimulationResult` activity into watts.

    Parameters
    ----------
    activity_scale:
        Global multiplier mapping modelled per-access energies onto the
        paper's absolute power scale; obtain it from
        :func:`calibrate_activity_scale` against the baseline mpeg2 run.
    """

    def __init__(
        self,
        blocks: Optional[Dict[str, BlockModel]] = None,
        activity_scale: float = 1.0,
        baseline_core_watts: float = BASELINE_CORE_WATTS,
        baseline_clock_ghz: float = 2.66,
    ):
        if activity_scale <= 0:
            raise ValueError(f"activity_scale must be positive, got {activity_scale}")
        self.blocks = blocks if blocks is not None else build_block_models()
        self.activity_scale = activity_scale
        self.baseline_core_watts = baseline_core_watts
        self.baseline_clock_ghz = baseline_clock_ghz
        self.clock_watts_2d = BASELINE_CLOCK_FRACTION * baseline_core_watts
        self.leakage_watts = BASELINE_LEAKAGE_FRACTION * baseline_core_watts

    # ------------------------------------------------------------------ #

    def _module_power(
        self,
        name: str,
        activity: ModuleActivity,
        stack: StackKind,
        time_ns: float,
    ) -> ModulePower:
        block = self.blocks[_BLOCK_FOR_MODULE.get(name, name)]
        timing = block.timing
        scale = self.activity_scale / time_ns * 1e-3  # pJ/ns -> W
        if stack is StackKind.PLANAR_2D:
            watts = timing.energy_2d_pj * activity.total * scale
            return ModulePower(name=name, watts=watts, per_die=[watts])
        # 3D: a full-stack access spreads its energy evenly over the dies;
        # a herded (top-die-only) access deposits the top-die energy on
        # die 0 alone.
        full_share = timing.energy_3d_pj / NUM_DIES
        top_only = activity.top_only
        per_die = []
        for die in range(NUM_DIES):
            touches = activity.per_die[die]
            if die == 0:
                energy_pj = (
                    top_only * timing.energy_3d_top_pj
                    + max(touches - top_only, 0) * full_share
                )
            else:
                energy_pj = touches * full_share
            per_die.append(energy_pj * scale)
        return ModulePower(name=name, watts=sum(per_die), per_die=per_die)

    def _clock_watts(self, stack: StackKind, clock_ghz: float) -> float:
        watts = self.clock_watts_2d * clock_ghz / self.baseline_clock_ghz
        if stack is StackKind.STACKED_3D:
            watts *= CLOCK_3D_POWER_FACTOR
        return watts

    def evaluate(self, result: SimulationResult, stack: StackKind) -> PowerBreakdown:
        """Power of one core for one simulation run."""
        time_ns = result.time_ns
        if time_ns <= 0:
            raise ValueError("simulation result has non-positive runtime")
        modules: Dict[str, ModulePower] = {}
        for name, activity in result.activity.modules().items():
            if name in _EXCLUDED_MODULES or not activity.total:
                continue
            modules[name] = self._module_power(name, activity, stack, time_ns)
        return PowerBreakdown(
            benchmark=result.benchmark,
            config_name=result.config_name,
            stack=stack,
            clock_ghz=result.clock_ghz,
            modules=modules,
            clock_watts=self._clock_watts(stack, result.clock_ghz),
            leakage_watts=self.leakage_watts,
        )

    def evaluate_intervals(
        self, result: SimulationResult, series, stack: StackKind
    ) -> List[PowerBreakdown]:
        """Per-interval power breakdowns from an interval activity series.

        ``series`` is an
        :class:`~repro.cpu.wavefront.IntervalActivitySeries` produced for
        ``result``'s run.  Each interval is evaluated exactly like
        :meth:`evaluate` with the interval's own cycle count as the
        runtime (clamped to one cycle like the aggregate result), so the
        one-interval series reproduces the aggregate breakdown.
        """
        breakdowns: List[PowerBreakdown] = []
        clock_watts = self._clock_watts(stack, result.clock_ghz)
        for activity, cycles in zip(series.counters, series.cycles):
            time_ns = max(int(cycles), 1) / result.clock_ghz
            modules: Dict[str, ModulePower] = {}
            for name, module_activity in activity.modules().items():
                if name in _EXCLUDED_MODULES or not module_activity.total:
                    continue
                modules[name] = self._module_power(
                    name, module_activity, stack, time_ns
                )
            breakdowns.append(PowerBreakdown(
                benchmark=result.benchmark,
                config_name=result.config_name,
                stack=stack,
                clock_ghz=result.clock_ghz,
                modules=modules,
                clock_watts=clock_watts,
                leakage_watts=self.leakage_watts,
            ))
        return breakdowns


def calibrate_activity_scale(
    reference: SimulationResult,
    blocks: Optional[Dict[str, BlockModel]] = None,
    baseline_core_watts: float = BASELINE_CORE_WATTS,
) -> float:
    """Activity scale that puts the reference run on the paper's scale.

    ``reference`` should be the baseline (planar, 2.66 GHz) run of the
    peak-power application (mpeg2): the paper's 90 W for two cores means
    45 W per core, of which 45 % is non-clock dynamic power.
    """
    target_dynamic = baseline_core_watts * (
        1.0 - BASELINE_CLOCK_FRACTION - BASELINE_LEAKAGE_FRACTION
    )
    raw_model = PowerModel(blocks=blocks, activity_scale=1.0,
                           baseline_core_watts=baseline_core_watts)
    raw_dynamic = raw_model.evaluate(reference, StackKind.PLANAR_2D).dynamic_watts
    if raw_dynamic <= 0:
        raise ValueError("reference run produced no dynamic activity")
    return target_dynamic / raw_dynamic
