"""Partial address memoization for the load/store queues (Section 3.5).

Load and store addresses are almost always full-width, but their upper 48
bits change rarely (stack traffic, strided walks).  PAM broadcasts only
the low 16 address bits on the top die plus one extra bit saying "the
remaining 48 bits equal those of the most recent store address".  When
the bit is set, the lower three dies of the queue CAMs stay gated; when
it is clear, the full address must be broadcast to all dies.
"""

from __future__ import annotations

from typing import Optional

from repro.core.activity import ActivityCounters, NUM_DIES
from repro.isa.values import upper_bits


class PartialAddressMemoization:
    """PAM state and activity accounting for LQ/SQ address broadcasts."""

    def __init__(
        self,
        counters: ActivityCounters,
        lq_module: str = "load_queue",
        sq_module: str = "store_queue",
    ):
        self._counters = counters
        self._lq_module = lq_module
        self._sq_module = sq_module
        self._last_store_upper: Optional[int] = None
        self.broadcasts = 0
        self.herded = 0

    def load_broadcast(self, address: int) -> bool:
        """Broadcast a load address into the store queue CAM.

        Returns True when the broadcast was herded to the top die.
        """
        return self._broadcast(address, self._sq_module, update=False)

    def store_broadcast(self, address: int) -> bool:
        """Broadcast a store address into the load queue CAM.

        Stores also update the memoized upper bits.
        """
        return self._broadcast(address, self._lq_module, update=True)

    def _broadcast(self, address: int, module: str, update: bool) -> bool:
        upper = upper_bits(address)
        herded = upper == self._last_store_upper
        self.broadcasts += 1
        if herded:
            self.herded += 1
            self._counters.record(module, dies_active=1)
        else:
            self._counters.record(module, dies_active=NUM_DIES)
        if update:
            self._last_store_upper = upper
        return herded

    @property
    def herded_fraction(self) -> float:
        """Fraction of address broadcasts confined to the top die."""
        return self.herded / self.broadcasts if self.broadcasts else 0.0
