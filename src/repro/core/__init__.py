"""Thermal Herding techniques (the paper's contribution, Section 3).

Each module models one technique as a small stateful component with two
responsibilities: (1) decide the *timing* consequences (stall cycles,
re-executions) that the CPU model charges, and (2) account the *per-die
switching activity* that the power and thermal models consume.

Components
----------
* :mod:`~repro.core.width_prediction` — PC-indexed two-bit saturating
  counter width predictor (Section 3, [13]).
* :mod:`~repro.core.register_file` — word-partitioned register file with
  width memoization bits and group-stall semantics (Section 3.1).
* :mod:`~repro.core.alu` — 3D functional-unit gating with input-stall and
  output-re-execute misprediction handling (Section 3.2).
* :mod:`~repro.core.bypass` — significance-partitioned bypass activity
  (Section 3.3).
* :mod:`~repro.core.scheduler_allocation` — entry-stacked scheduler with
  top-die-first allocation and per-die broadcast gating (Section 3.4).
* :mod:`~repro.core.lsq_pam` — partial address memoization for the
  load/store queues (Section 3.5).
* :mod:`~repro.core.dcache_encoding` — 2-bit partial-value encoding for
  the L1 data cache (Section 3.6).
* :mod:`~repro.core.btb_memoization` — BTB target memoization (Section 3.7).
* :mod:`~repro.core.direction_split` — split direction/hysteresis
  predictor arrays (Section 3.7).
* :mod:`~repro.core.activity` — per-module, per-die activity accounting.
"""

from repro.core.activity import ActivityCounters, ModuleActivity
from repro.core.width_prediction import WidthPredictor, WidthPredictorStats
from repro.core.register_file import PartitionedRegisterFile, RegisterFileAccess
from repro.core.alu import PartitionedALU, ALUExecution
from repro.core.bypass import BypassNetwork
from repro.core.scheduler_allocation import (
    AllocationPolicy,
    EntryStackedScheduler,
)
from repro.core.lsq_pam import PartialAddressMemoization
from repro.core.dcache_encoding import (
    EncodingScheme,
    PartialValueCache,
    CacheAccessOutcome,
)
from repro.core.btb_memoization import MemoizedBTB, BTBLookup
from repro.core.direction_split import SplitDirectionPredictorActivity

__all__ = [
    "ActivityCounters",
    "ModuleActivity",
    "WidthPredictor",
    "WidthPredictorStats",
    "PartitionedRegisterFile",
    "RegisterFileAccess",
    "PartitionedALU",
    "ALUExecution",
    "BypassNetwork",
    "AllocationPolicy",
    "EntryStackedScheduler",
    "PartialAddressMemoization",
    "EncodingScheme",
    "PartialValueCache",
    "CacheAccessOutcome",
    "MemoizedBTB",
    "BTBLookup",
    "SplitDirectionPredictorActivity",
]
