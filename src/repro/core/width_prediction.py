"""PC-indexed saturating-counter width predictor (Section 3).

For each instruction the processor predicts whether it will use low-width
(<= 16-bit) or full-width values.  The predictor is a direct-mapped table
of two-bit saturating counters indexed by the PC, exactly the simple
scheme the paper adopts from Loh [13].  A *prediction correction* hook
lets the register file fix an in-flight instruction's prediction after an
unsafe misprediction (Section 3.1, action 2), preventing repeated stalls
downstream in the same instruction's life.

Misprediction taxonomy (Section 3):

* **unsafe** — predicted low width, actually full width; requires stalls
  (register read, cache read) or re-execution (ALU output).
* **safe** — predicted full width, actually low; no stall, just a missed
  power-gating opportunity.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Counter value at or above which the prediction is "full width".
_DEFAULT_BITS = 2


@dataclass
class WidthPredictorStats:
    """Prediction outcome counts."""

    predictions: int = 0
    correct: int = 0
    unsafe_mispredictions: int = 0
    safe_mispredictions: int = 0

    @property
    def accuracy(self) -> float:
        return self.correct / self.predictions if self.predictions else 0.0

    @property
    def unsafe_rate(self) -> float:
        return self.unsafe_mispredictions / self.predictions if self.predictions else 0.0


class WidthPredictor:
    """Table of saturating counters: high counter values mean full width.

    Parameters
    ----------
    table_size:
        Number of counters (power of two).
    counter_bits:
        Saturating counter width; 2 in the paper.
    """

    def __init__(self, table_size: int = 4096, counter_bits: int = _DEFAULT_BITS):
        if table_size < 1 or table_size & (table_size - 1):
            raise ValueError(f"table_size must be a power of two, got {table_size}")
        if counter_bits < 1:
            raise ValueError(f"counter_bits must be >= 1, got {counter_bits}")
        self._mask = table_size - 1
        self._max_count = (1 << counter_bits) - 1
        self._threshold = 1 << (counter_bits - 1)
        # Initialize weakly full-width: mispredicting "full" is safe.
        self._table = [self._threshold] * table_size
        self.stats = WidthPredictorStats()

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def predict_low_width(self, pc: int) -> bool:
        """Predict whether the instruction at ``pc`` uses low-width values."""
        return self._table[self._index(pc)] < self._threshold

    def correct_prediction(self, pc: int) -> None:
        """Force the entry toward full width after an unsafe misprediction.

        This models the register file's in-flight correction: the counter
        saturates high so the very next occurrence predicts full width.
        """
        self._table[self._index(pc)] = self._max_count

    def record_and_train(self, pc: int, predicted_low: bool, actual_low: bool) -> None:
        """Account the outcome of a prediction and train the counter."""
        self.stats.predictions += 1
        if predicted_low == actual_low:
            self.stats.correct += 1
        elif predicted_low:
            self.stats.unsafe_mispredictions += 1
        else:
            self.stats.safe_mispredictions += 1
        index = self._index(pc)
        count = self._table[index]
        if actual_low:
            if count > 0:
                self._table[index] = count - 1
        else:
            if count < self._max_count:
                self._table[index] = count + 1

    def observe(self, pc: int, actual_low: bool) -> bool:
        """Predict, train, and return whether the prediction was unsafe.

        Convenience wrapper used by the timing model: one call per
        instruction occurrence.
        """
        predicted_low = self.predict_low_width(pc)
        self.record_and_train(pc, predicted_low, actual_low)
        return predicted_low and not actual_low
