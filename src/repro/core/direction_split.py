"""Split direction/hysteresis predictor arrays (Section 3.7).

Two-bit-counter direction predictors are split into a direction-bit array
(the MSBs) and a hysteresis-bit array (the LSBs), following Seznec's
observation that only the direction bit is needed to predict.  In the 3D
organization the direction array occupies the top two dies (read on every
prediction *and* update) while the hysteresis array sits on the bottom
two dies (touched only on updates).
"""

from __future__ import annotations

from repro.core.activity import ActivityCounters

#: Dies holding the direction-bit array (top half of the stack).
DIRECTION_DIES = (0, 1)
#: Dies holding the hysteresis-bit array (bottom half).
HYSTERESIS_DIES = (2, 3)


class SplitDirectionPredictorActivity:
    """Per-die activity accounting for the split predictor arrays.

    The prediction logic itself lives in
    :mod:`repro.cpu.branch_predictor`; this model only assigns its reads
    and updates to dies.
    """

    def __init__(self, counters: ActivityCounters, module: str = "dir_predictor"):
        self._counters = counters
        self._module = module
        self.predictions = 0
        self.updates = 0

    def record_prediction(self) -> None:
        """A lookup reads only the direction array (top two dies)."""
        self.predictions += 1
        activity = self._counters.module(self._module)
        for die in DIRECTION_DIES:
            activity.record_die(die)

    def record_update(self) -> None:
        """An update touches both arrays (all four dies)."""
        self.updates += 1
        activity = self._counters.module(self._module)
        for die in DIRECTION_DIES + HYSTERESIS_DIES:
            activity.record_die(die)

    @property
    def top_half_fraction(self) -> float:
        """Fraction of array touches landing on the top two dies."""
        touches_top = 2 * (self.predictions + self.updates)
        touches_total = 2 * self.predictions + 4 * self.updates
        return touches_top / touches_total if touches_total else 0.0
