"""Bit-accurate L1D line with the 2-bit partial-value encoding (Section 3.6).

Each 64-bit word of a cache line stores its low 16 bits on the top die
plus two encoding bits; the upper 48 bits live on the lower three dies
*only* for words encoded LITERAL.  Reads of compressed words reconstruct
the value from the top die alone; LITERAL words need the lower dies (the
width-misprediction stall case when the load predicted low).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.isa.values import (
    UpperBitsEncoding,
    WORD_BITS,
    classify_upper_bits,
    to_unsigned,
    upper_bits,
)

_LOW_MASK = (1 << WORD_BITS) - 1
_UPPER_ONES = (1 << 48) - 1

#: 64-bit words per 64-byte cache line.
WORDS_PER_LINE = 8


@dataclass
class EncodedWord:
    """One stored word: top-die state plus optional lower-die literal."""

    low16: int
    encoding: UpperBitsEncoding
    #: literal upper 48 bits; only meaningful when encoding is LITERAL
    upper48: int = 0


class EncodedCacheLine:
    """A 64-byte data line in the word-partitioned L1D."""

    def __init__(self, base_address: int, words: int = WORDS_PER_LINE):
        if base_address % 8:
            raise ValueError(f"base address must be 8-byte aligned, got {base_address:#x}")
        if words < 1:
            raise ValueError(f"need at least one word, got {words}")
        self.base_address = base_address
        self._words: List[Optional[EncodedWord]] = [None] * words

    # ------------------------------------------------------------------ #

    def _index(self, address: int) -> int:
        offset = address - self.base_address
        if offset % 8 or not 0 <= offset // 8 < len(self._words):
            raise ValueError(
                f"address {address:#x} not an aligned word of the line at "
                f"{self.base_address:#x}"
            )
        return offset // 8

    def store(self, address: int, value: int) -> int:
        """Store a word; returns the dies written (1 if compressed)."""
        index = self._index(address)
        value = to_unsigned(value)
        encoding = classify_upper_bits(value, address)
        word = EncodedWord(low16=value & _LOW_MASK, encoding=encoding)
        if encoding is UpperBitsEncoding.LITERAL:
            word.upper48 = upper_bits(value)
        self._words[index] = word
        return 1 if encoding.is_compressed else 4

    def load(self, address: int) -> Tuple[int, int]:
        """Load a word; returns (value, dies read).

        Compressed words reconstruct exactly from the top die; LITERAL
        words read their upper bits from the lower dies.
        """
        index = self._index(address)
        word = self._words[index]
        if word is None:
            raise KeyError(f"word at {address:#x} never stored")
        if word.encoding is UpperBitsEncoding.ALL_ZEROS:
            return word.low16, 1
        if word.encoding is UpperBitsEncoding.ALL_ONES:
            return (_UPPER_ONES << WORD_BITS) | word.low16, 1
        if word.encoding is UpperBitsEncoding.SAME_AS_ADDRESS:
            return (upper_bits(address) << WORD_BITS) | word.low16, 1
        return (word.upper48 << WORD_BITS) | word.low16, 4

    def encoding_of(self, address: int) -> Optional[UpperBitsEncoding]:
        """The stored encoding bits for a word (None if never stored)."""
        index = self._index(address)
        word = self._words[index]
        return word.encoding if word is not None else None

    def compressed_fraction(self) -> float:
        """Fraction of stored words reconstructible from the top die."""
        stored = [w for w in self._words if w is not None]
        if not stored:
            return 0.0
        return sum(1 for w in stored if w.encoding.is_compressed) / len(stored)
