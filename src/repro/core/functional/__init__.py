"""Functional (bit-accurate) models of the partitioned datapath.

The rest of :mod:`repro.core` models the *timing and activity* of the
Thermal Herding structures; this subpackage implements them functionally
— real 16-bit word slices, real cross-die carries, real memoization
bits — so the partitioning itself can be verified: a word-partitioned
adder must add, a partial-value cache line must reconstruct its values
exactly.

* :mod:`~repro.core.functional.adder` — the 4-die word-sliced adder with
  explicit per-die carry propagation (Section 3.2's Figure 4).
* :mod:`~repro.core.functional.register_file` — a register file storing
  actual word slices per die with width memoization bits (Figure 3).
* :mod:`~repro.core.functional.cache_line` — L1D lines holding the low
  word plus 2-bit upper-bit encodings, with exact reconstruction
  (Section 3.6).
"""

from repro.core.functional.adder import PartitionedAdderFunctional, AdderTrace
from repro.core.functional.register_file import (
    FunctionalRegisterFile,
    RegisterReadOutcome,
)
from repro.core.functional.cache_line import EncodedCacheLine, EncodedWord

__all__ = [
    "PartitionedAdderFunctional",
    "AdderTrace",
    "FunctionalRegisterFile",
    "RegisterReadOutcome",
    "EncodedCacheLine",
    "EncodedWord",
]
