"""Bit-accurate word-partitioned register file (Section 3.1, Figure 3).

Each architectural register's 64 bits live as four 16-bit slices, one per
die; the top die additionally stores the width memoization bit ("the
remaining three die contain non-zero state").  A predicted-low-width read
touches only the top die: the value is reconstructed by sign-extending
the low word, which is exact precisely when the memoization bit is clear.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.activity import NUM_DIES
from repro.isa.values import (
    WORD_BITS,
    is_low_width,
    join_words,
    sign_extend,
    split_words,
    to_unsigned,
)


@dataclass(frozen=True)
class RegisterReadOutcome:
    """Result of a width-predicted register read."""

    value: int
    dies_read: int
    #: True when the top-die probe detected an unsafe width misprediction
    unsafe: bool


class FunctionalRegisterFile:
    """Word-sliced storage with memoization bits."""

    def __init__(self, registers: int = 32, dies: int = NUM_DIES):
        if registers < 1:
            raise ValueError(f"need at least one register, got {registers}")
        self.registers = registers
        self.dies = dies
        #: per-die slices: _slices[die][reg]
        self._slices: List[List[int]] = [[0] * registers for _ in range(dies)]
        #: top-die memoization bits: True = upper dies hold non-zero state
        self._memo_full: List[bool] = [False] * registers

    # ------------------------------------------------------------------ #

    def _check(self, reg: int) -> None:
        if not 0 <= reg < self.registers:
            raise ValueError(f"register {reg} out of range [0, {self.registers})")

    def write(self, reg: int, value: int) -> int:
        """Write a 64-bit value; returns the dies that switched.

        A low-width value only writes the top die (the lower slices hold
        its sign extension implicitly via the cleared memoization bit —
        but the hardware must clear stale upper words when the previous
        occupant was full width, which we model by writing the extension).
        """
        self._check(reg)
        value = to_unsigned(value)
        words = split_words(value)
        low = is_low_width(value)
        self._memo_full[reg] = not low
        if low:
            # Only the top die switches; the cleared memoization bit makes
            # the upper slices architecturally "the sign extension".
            self._slices[0][reg] = words[0]
            return 1
        for die in range(self.dies):
            self._slices[die][reg] = words[die]
        return self.dies

    def read_full(self, reg: int) -> int:
        """Full-width read touching all dies.

        When the memoization bit marks the register low width, the upper
        slices are stale; the value is the low word's sign extension.
        """
        self._check(reg)
        if not self._memo_full[reg]:
            return to_unsigned(sign_extend(self._slices[0][reg], WORD_BITS))
        return join_words(tuple(self._slices[die][reg] for die in range(self.dies)))

    def read_predicted(self, reg: int, predicted_low: bool) -> RegisterReadOutcome:
        """Width-predicted read.

        Predicted low: read the top die and the memoization bit; if the
        bit says full width, the prediction was unsafe and a full read
        follows (all dies, one stall in the timing model).
        """
        self._check(reg)
        if not predicted_low:
            return RegisterReadOutcome(
                value=self.read_full(reg), dies_read=self.dies, unsafe=False
            )
        if self._memo_full[reg]:
            # Unsafe: the probe + the corrective full read.
            return RegisterReadOutcome(
                value=self.read_full(reg), dies_read=self.dies, unsafe=True
            )
        low_word = self._slices[0][reg]
        value = to_unsigned(sign_extend(low_word, WORD_BITS))
        return RegisterReadOutcome(value=value, dies_read=1, unsafe=False)

    def memoization_bit(self, reg: int) -> bool:
        """True when the register's upper dies hold meaningful state."""
        self._check(reg)
        return self._memo_full[reg]
