"""Bit-accurate 4-die word-partitioned adder (Section 3.2, Figure 4).

Each die adds one 16-bit word; carries cross dies through d2d vias.  When
the width prediction gates the lower three dies, only die 0 computes; the
result is correct iff the true sum fits 16 signed bits *and* no carry
would have left die 0 — exactly the output-misprediction condition the
timing model charges a re-execution for.

The functional model exposes which dies computed and which carries
crossed so tests can verify the gating logic against plain addition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.activity import NUM_DIES
from repro.isa.values import (
    VALUE_BITS,
    WORD_BITS,
    WORDS_PER_VALUE,
    join_words,
    split_words,
    to_unsigned,
)

_WORD_MASK = (1 << WORD_BITS) - 1


@dataclass(frozen=True)
class AdderTrace:
    """What one addition did on the stack."""

    #: full 64-bit result (truncated if the upper dies were gated)
    result: int
    #: per-die 16-bit sum words, LSW (die 0) first
    words: Tuple[int, ...]
    #: per-die carry-out bits (die 3's carry-out is the discarded C64)
    carries: Tuple[int, ...]
    #: dies that actually computed (1 when gated, NUM_DIES otherwise)
    dies_active: int
    #: True when gating truncated a result that needed the upper dies
    truncated: bool


class PartitionedAdderFunctional:
    """The word-sliced ripple-of-slices adder."""

    def __init__(self, dies: int = NUM_DIES):
        if dies != WORDS_PER_VALUE:
            raise ValueError(
                f"the 64-bit datapath partitions into exactly {WORDS_PER_VALUE} "
                f"dies, got {dies}"
            )
        self.dies = dies

    # ------------------------------------------------------------------ #

    @staticmethod
    def _word_add(a: int, b: int, carry_in: int) -> Tuple[int, int]:
        """One die's 16-bit add: (sum word, carry out)."""
        total = a + b + carry_in
        return total & _WORD_MASK, total >> WORD_BITS

    def add(self, a: int, b: int, gate_upper: bool = False) -> AdderTrace:
        """Add two 64-bit values on the stack.

        ``gate_upper`` models a low-width prediction: dies 1-3 are clock
        gated, their slices output zero, and any carry out of die 0 is
        lost — the hardware detects this and requests re-execution.
        """
        a_words = split_words(to_unsigned(a))
        b_words = split_words(to_unsigned(b))
        words: List[int] = []
        carries: List[int] = []
        carry = 0
        active = 1 if gate_upper else self.dies
        for die in range(self.dies):
            if gate_upper and die > 0:
                words.append(0)
                carries.append(0)
                continue
            word, carry = self._word_add(a_words[die], b_words[die], carry)
            words.append(word)
            carries.append(carry)

        true_sum = (to_unsigned(a) + to_unsigned(b)) & ((1 << VALUE_BITS) - 1)
        if gate_upper:
            # A gated result is architecturally the sign extension of the
            # low word (the memoization bit marks it low width); it is
            # correct iff the true sum really is that low-width value —
            # 0x7FFF + 0x7FFF needs 17 signed bits and must re-execute.
            from repro.isa.values import sign_extend

            result = to_unsigned(sign_extend(words[0], WORD_BITS))
            truncated = true_sum != result
        else:
            result = join_words(tuple(words))
            truncated = False
        return AdderTrace(
            result=result,
            words=tuple(words),
            carries=tuple(carries),
            dies_active=active,
            truncated=truncated,
        )

    def add_checked(self, a: int, b: int, predicted_low: bool) -> Tuple[int, bool]:
        """Add under a width prediction; re-execute on truncation.

        Returns ``(correct result, reexecuted)`` — the functional analogue
        of :meth:`repro.core.alu.PartitionedALU.execute`'s output
        misprediction path.
        """
        first = self.add(a, b, gate_upper=predicted_low)
        if not first.truncated:
            return first.result, False
        full = self.add(a, b, gate_upper=False)
        return full.result, True
