"""Branch target buffer with target memoization (Section 3.7).

Most branch targets lie close to the branch itself (PC-relative), so the
BTB stores only the low 16 target bits on the top die plus one *target
memoization bit* saying whether the upper 48 bits differ from the
branch's own PC.  When they do differ (the infrequent case), the
prediction pipeline stalls one cycle to retrieve the upper bits from the
lower three dies — reading only the hit way, since the tag match resolved
in the first cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.activity import ActivityCounters, NUM_DIES
from repro.isa.values import upper_bits


@dataclass(frozen=True)
class BTBLookup:
    """Outcome of a memoized BTB target read."""

    #: extra front-end bubble cycles (far target needing the lower dies)
    stall_cycles: int
    #: dies touched
    dies_active: int
    #: True when the target was reconstructed from the top die alone
    herded: bool


class MemoizedBTB:
    """Activity/timing model of the word-partitioned BTB target array.

    Hit/miss behaviour lives in the front-end model; this class accounts
    the die gating and memoization stalls for *hits* (a missing entry has
    no target to read at all).
    """

    def __init__(self, counters: ActivityCounters, module: str = "btb"):
        self._counters = counters
        self._module = module
        self.lookups = 0
        self.far_target_stalls = 0

    def read_target(self, branch_pc: int, target: int) -> BTBLookup:
        """Read the predicted target for a hit at ``branch_pc``."""
        self.lookups += 1
        near = upper_bits(target) == upper_bits(branch_pc)
        if near:
            self._counters.record(self._module, dies_active=1)
            return BTBLookup(stall_cycles=0, dies_active=1, herded=True)
        self.far_target_stalls += 1
        self._counters.record(self._module, dies_active=NUM_DIES)
        return BTBLookup(stall_cycles=1, dies_active=NUM_DIES, herded=False)

    @property
    def herded_fraction(self) -> float:
        if not self.lookups:
            return 0.0
        return 1.0 - self.far_target_stalls / self.lookups
