"""Partial-value-encoded L1 data cache (Section 3.6).

The L1D data array is word-partitioned like the register file, but with a
*two-bit* encoding of each word's upper 48 bits stored on the top die:

====  ==========================================================
00    upper bits are all zeros
01    upper bits are all ones (negative numbers)
10    upper bits equal the upper bits of the referencing address
      (nearby heap pointers)
11    not trivially encodable; stored literally on the lower dies
====  ==========================================================

On a predicted-low-width load only the top die is read; if the encoding
bits say ``11`` the prediction was unsafe and the cache pipeline stalls
one cycle while the remaining 48 bits are fetched — from a *single*
set-associative way, because the tag match has already resolved the hit
way.  Stores know their width at commit and never mispredict.  L2
spills/fills have no width prediction and always touch all four dies.

``EncodingScheme.ONE_BIT`` is the ablation variant: a single memoization
bit that can only compress the all-zeros upper pattern (the register
file's scheme applied to the cache).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.activity import ActivityCounters, NUM_DIES
from repro.isa.values import UpperBitsEncoding, classify_upper_bits


class EncodingScheme(enum.Enum):
    """Upper-bit compression scheme for the L1D top-die metadata."""

    TWO_BIT = "two_bit"   # the paper's 00/01/10/11 encoding
    ONE_BIT = "one_bit"   # ablation: all-zeros-only memoization


@dataclass(frozen=True)
class CacheAccessOutcome:
    """Timing/activity outcome of one L1D data-array access."""

    #: extra cycles charged to the access (unsafe width misprediction)
    stall_cycles: int
    #: dies touched by the data-array access
    dies_active: int
    #: True when the access was herded to the top die
    herded: bool


class PartialValueCache:
    """Activity/timing model of the word-partitioned L1D data array.

    The *tag* array and hit/miss behaviour belong to the cache hierarchy
    model (:mod:`repro.cpu.caches`); this class models only the data-array
    die gating driven by width prediction and the partial-value encoding.
    """

    def __init__(
        self,
        counters: ActivityCounters,
        scheme: EncodingScheme = EncodingScheme.TWO_BIT,
        module: str = "l1_dcache",
    ):
        self._counters = counters
        self._scheme = scheme
        self._module = module
        self._encodings: Dict[int, UpperBitsEncoding] = {}
        self.loads = 0
        self.herded_loads = 0
        self.unsafe_stalls = 0

    @property
    def scheme(self) -> EncodingScheme:
        return self._scheme

    def _classify(self, value: int, address: int) -> UpperBitsEncoding:
        encoding = classify_upper_bits(value, address)
        if self._scheme is EncodingScheme.ONE_BIT and encoding is not UpperBitsEncoding.ALL_ZEROS:
            return UpperBitsEncoding.LITERAL
        return encoding

    def record_store(self, address: int, value: int) -> CacheAccessOutcome:
        """A committed store writes the data array and its encoding bits.

        Stores know their width, so a compressible value touches only the
        top die; no misprediction is possible.
        """
        encoding = self._classify(value, address)
        self._encodings[address & ~0x7] = encoding
        dies = 1 if encoding.is_compressed else NUM_DIES
        self._counters.record(self._module, dies_active=dies)
        return CacheAccessOutcome(stall_cycles=0, dies_active=dies, herded=dies == 1)

    def record_fill(self) -> None:
        """An L2 fill: no width prediction, all four dies written."""
        self._counters.record(self._module, dies_active=NUM_DIES)

    def record_load(
        self,
        address: int,
        value: int,
        predicted_low: bool,
    ) -> CacheAccessOutcome:
        """A load reads the data array under a width prediction."""
        self.loads += 1
        encoding = self._encodings.get(address & ~0x7)
        if encoding is None:
            encoding = self._classify(value, address)
            self._encodings[address & ~0x7] = encoding

        if not predicted_low:
            self._counters.record(self._module, dies_active=NUM_DIES)
            return CacheAccessOutcome(stall_cycles=0, dies_active=NUM_DIES, herded=False)

        if encoding.is_compressed:
            self.herded_loads += 1
            self._counters.record(self._module, dies_active=1)
            return CacheAccessOutcome(stall_cycles=0, dies_active=1, herded=True)

        # Unsafe width misprediction: stall the cache pipeline one cycle;
        # the tag match already identified the hit way, so the second
        # access reads a single way of the lower three dies.
        self.unsafe_stalls += 1
        self._counters.record(self._module, dies_active=NUM_DIES)
        return CacheAccessOutcome(stall_cycles=1, dies_active=NUM_DIES, herded=False)

    @property
    def herded_load_fraction(self) -> float:
        return self.herded_loads / self.loads if self.loads else 0.0
