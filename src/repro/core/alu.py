"""3D-partitioned arithmetic units with width gating (Section 3.2).

The adder (and by extension the other integer units) spans four dies with
16 bits each; on a predicted-low-width instruction the lower three dies
are clock gated.  Two unsafe scenarios:

* **input misprediction** — operands turn out full width: one stall cycle
  to re-enable the upper 48 bits before execution starts;
* **output misprediction** — the result turns out full width after a
  low-width prediction: the instruction must re-execute (the result's
  upper bits were never computed), costing its full latency again.

Note a full-width *prediction* always enables the whole unit, because two
low-width operands can still produce a full-width result (16+16 -> 17 bits).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.activity import ActivityCounters, NUM_DIES


@dataclass(frozen=True)
class ALUExecution:
    """Timing consequences of one integer execution."""

    #: extra cycles before execution (input unsafe misprediction)
    input_stall_cycles: int
    #: True when the instruction must re-execute (output misprediction)
    reexecute: bool
    #: dies active for this execution
    dies_active: int


class PartitionedALU:
    """Activity/timing model of the word-partitioned integer units."""

    def __init__(self, counters: ActivityCounters, module: str = "alu"):
        self._counters = counters
        self._module = module
        self.input_stalls = 0
        self.reexecutions = 0

    def execute(
        self,
        predicted_low: bool,
        operands_low: bool,
        result_low: bool,
    ) -> ALUExecution:
        """Execute one integer instruction under a width prediction."""
        if not predicted_low:
            # Full-width prediction: all four dies active, no risk.
            self._counters.record(self._module, dies_active=NUM_DIES)
            return ALUExecution(input_stall_cycles=0, reexecute=False, dies_active=NUM_DIES)

        if not operands_low:
            # Unsafe input misprediction: one cycle to enable the upper
            # 48 bits, then a full-width execution.
            self.input_stalls += 1
            self._counters.record(self._module, dies_active=NUM_DIES)
            return ALUExecution(input_stall_cycles=1, reexecute=False, dies_active=NUM_DIES)

        if not result_low:
            # Output misprediction: the gated execution produced a
            # truncated result; re-execute at full width.
            self.reexecutions += 1
            self._counters.record(self._module, dies_active=1)       # wasted pass
            self._counters.record(self._module, dies_active=NUM_DIES)  # re-execution
            return ALUExecution(input_stall_cycles=0, reexecute=True, dies_active=NUM_DIES)

        # Correct low-width prediction: top die only.
        self._counters.record(self._module, dies_active=1)
        return ALUExecution(input_stall_cycles=0, reexecute=False, dies_active=1)
