"""Static (profile-based) width prediction — an ablation baseline.

The paper's dynamic two-bit predictor descends from earlier work that
also considered *static* width hints: profile a run, mark each static
instruction low- or full-width by majority, and use that fixed hint at
run time.  Static hints cannot adapt to phase behaviour but need no
table.  A perfect oracle (always right) bounds what any predictor could
achieve.

Both classes expose the same interface as
:class:`~repro.core.width_prediction.WidthPredictor` so the timing model
can swap them in.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable

from repro.core.width_prediction import WidthPredictorStats
from repro.isa.instruction import TraceInstruction
from repro.isa.opcodes import OpClass
from repro.isa.values import is_low_width


def actual_width_class(inst: TraceInstruction) -> bool:
    """The width class the timing model trains on (True = low width).

    Mirrors the per-op rules of the pipeline: loads/stores classify their
    data value; ALU ops classify operands and result together.
    """
    if inst.op is OpClass.LOAD:
        return is_low_width(inst.mem_value if inst.mem_value is not None else inst.result)
    if inst.op is OpClass.STORE:
        return is_low_width(inst.mem_value if inst.mem_value is not None else 0)
    return inst.is_low_width


def build_width_profile(instructions: Iterable[TraceInstruction]) -> Dict[int, bool]:
    """Majority width class per static PC over a profiling run."""
    low_counts: Dict[int, int] = defaultdict(int)
    totals: Dict[int, int] = defaultdict(int)
    for inst in instructions:
        if not inst.op.is_integer_datapath:
            continue
        totals[inst.pc] += 1
        if actual_width_class(inst):
            low_counts[inst.pc] += 1
    # Ties resolve to full width (the safe direction).
    return {pc: low_counts[pc] * 2 > totals[pc] for pc in totals}


class StaticWidthPredictor:
    """Profile-driven static hints with the dynamic predictor's interface."""

    def __init__(self, profile: Dict[int, bool]):
        self._profile = profile
        self.stats = WidthPredictorStats()
        self._overrides: Dict[int, bool] = {}

    def predict_low_width(self, pc: int) -> bool:
        override = self._overrides.get(pc)
        if override is not None:
            return override
        # Unprofiled instructions default to full width (safe).
        return self._profile.get(pc, False)

    def correct_prediction(self, pc: int) -> None:
        """Static hints cannot really be corrected; model the hardware
        override latch the paper's register file implies (per-PC sticky)."""
        self._overrides[pc] = False

    def record_and_train(self, pc: int, predicted_low: bool, actual_low: bool) -> None:
        self.stats.predictions += 1
        if predicted_low == actual_low:
            self.stats.correct += 1
        elif predicted_low:
            self.stats.unsafe_mispredictions += 1
        else:
            self.stats.safe_mispredictions += 1

    def observe(self, pc: int, actual_low: bool) -> bool:
        predicted = self.predict_low_width(pc)
        self.record_and_train(pc, predicted, actual_low)
        return predicted and not actual_low


class OracleWidthPredictor:
    """Always-correct width prediction (the upper bound).

    The timing model special-cases the oracle by passing the actual class
    through :meth:`prime` just before prediction.
    """

    def __init__(self) -> None:
        self.stats = WidthPredictorStats()
        self._next_actual = False

    def prime(self, actual_low: bool) -> None:
        self._next_actual = actual_low

    def predict_low_width(self, pc: int) -> bool:
        return self._next_actual

    def correct_prediction(self, pc: int) -> None:
        """The oracle never needs correction."""

    def record_and_train(self, pc: int, predicted_low: bool, actual_low: bool) -> None:
        self.stats.predictions += 1
        self.stats.correct += 1

    def observe(self, pc: int, actual_low: bool) -> bool:
        self.prime(actual_low)
        self.record_and_train(pc, actual_low, actual_low)
        return False
