"""Significance-partitioned bypass network (Section 3.3).

The bypass network needs no misprediction circuitry of its own — unsafe
cases are resolved by the functional units before results reach it.  A
correctly-predicted low-width result drives only the top die's wires; a
full-width result drives all four dies.
"""

from __future__ import annotations

from repro.core.activity import ActivityCounters, NUM_DIES


class BypassNetwork:
    """Per-die activity accounting for result broadcasts."""

    def __init__(self, counters: ActivityCounters, module: str = "bypass"):
        self._counters = counters
        self._module = module

    def broadcast(self, result_low: bool) -> int:
        """Broadcast one result; returns the number of dies driven."""
        dies = 1 if result_low else NUM_DIES
        self._counters.record(self._module, dies_active=dies)
        return dies
