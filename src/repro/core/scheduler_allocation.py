"""Entry-stacked instruction scheduler with herding allocation (Section 3.4).

The reservation stations are partitioned by entry across the four dies
(one quarter each).  The allocator fills the die closest to the heat sink
first, overflowing downward only when upper dies are full, so that under
moderate occupancy all scheduler activity is confined to the top of the
stack.  Tag broadcasts are gated per die: a die with no occupied entries
does not receive the broadcast.

The ``ROUND_ROBIN`` policy is the ablation baseline: entries are spread
evenly, so every broadcast usually touches all four dies.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.core.activity import ActivityCounters, NUM_DIES


class AllocationPolicy(enum.Enum):
    """RS entry allocation policy across dies."""

    TOP_FIRST = "top_first"
    ROUND_ROBIN = "round_robin"


class EntryStackedScheduler:
    """Occupancy and broadcast-gating model of the 3D scheduler.

    The timing simulator decides *when* instructions enter and leave the
    scheduler; this model decides *where* (which die) and accounts the
    per-die broadcast energy.
    """

    def __init__(
        self,
        counters: ActivityCounters,
        entries: int = 32,
        policy: AllocationPolicy = AllocationPolicy.TOP_FIRST,
        module: str = "scheduler",
    ):
        if entries < NUM_DIES or entries % NUM_DIES:
            raise ValueError(f"entries must be a positive multiple of {NUM_DIES}, got {entries}")
        self._counters = counters
        self._module = module
        self._per_die_capacity = entries // NUM_DIES
        self._occupancy: List[int] = [0] * NUM_DIES
        self._policy = policy
        self._rr_next = 0
        self.broadcasts = 0
        self.broadcast_die_sum = 0

    @property
    def policy(self) -> AllocationPolicy:
        return self._policy

    @property
    def occupancy(self) -> List[int]:
        """Current per-die occupancy (copy)."""
        return list(self._occupancy)

    def allocate(self) -> Optional[int]:
        """Allocate one RS entry; returns the die, or None when full."""
        if self._policy is AllocationPolicy.TOP_FIRST:
            for die in range(NUM_DIES):
                if self._occupancy[die] < self._per_die_capacity:
                    self._occupancy[die] += 1
                    self._counters.record(self._module, dies_active=die + 1, count=0)
                    return die
            return None
        # Round robin: rotate across dies with free entries.
        for offset in range(NUM_DIES):
            die = (self._rr_next + offset) % NUM_DIES
            if self._occupancy[die] < self._per_die_capacity:
                self._occupancy[die] += 1
                self._rr_next = (die + 1) % NUM_DIES
                return die
        return None

    def release(self, die: int) -> None:
        """Free one entry on ``die`` (instruction issued)."""
        if not 0 <= die < NUM_DIES:
            raise ValueError(f"die must be in [0, {NUM_DIES}), got {die}")
        if self._occupancy[die] <= 0:
            raise ValueError(f"release on empty die {die}")
        self._occupancy[die] -= 1

    def die_for_occupancy(self, occupancy: int) -> int:
        """Die on which the ``occupancy``-th entry (1-based) is allocated.

        Used by the timing model, which tracks chronological occupancy
        itself: under TOP_FIRST the stack fills downward from the heat
        sink; under ROUND_ROBIN entries spread evenly.
        """
        if occupancy < 1:
            raise ValueError(f"occupancy must be >= 1, got {occupancy}")
        index = min(occupancy, NUM_DIES * self._per_die_capacity) - 1
        if self._policy is AllocationPolicy.TOP_FIRST:
            return index // self._per_die_capacity
        return index % NUM_DIES

    def occupied_dies(self, occupancy: int) -> int:
        """Number of dies with at least one occupied entry."""
        occupancy = max(0, min(occupancy, NUM_DIES * self._per_die_capacity))
        if occupancy == 0:
            return 1  # the broadcast still drives the top die's bus stub
        if self._policy is AllocationPolicy.TOP_FIRST:
            return -(-occupancy // self._per_die_capacity)  # ceil division
        return min(occupancy, NUM_DIES)

    def broadcast_with_occupancy(self, occupancy: int) -> int:
        """Tag broadcast gated by chronological occupancy; returns dies hit."""
        dies = self.occupied_dies(occupancy)
        if self._policy is AllocationPolicy.TOP_FIRST:
            # Herding fills from the top: the occupied dies are 0..dies-1.
            for die in range(dies):
                self._counters.module(self._module).record_die(die)
        else:
            # Round robin spreads entries cyclically, so the occupied dies
            # rotate over time rather than clustering at the heat sink.
            for offset in range(dies):
                self._counters.module(self._module).record_die(
                    (self._rr_next + offset) % NUM_DIES
                )
            self._rr_next = (self._rr_next + 1) % NUM_DIES
        self.broadcasts += 1
        self.broadcast_die_sum += dies
        return dies

    def tag_broadcast(self) -> int:
        """Broadcast a completing instruction's tag to all occupied dies.

        Returns the number of dies that received the broadcast.  Gated
        dies (no occupied entries) dissipate no broadcast power.
        """
        active = [die for die in range(NUM_DIES) if self._occupancy[die] > 0]
        if not active:
            # The broadcast still drives the top die's bus stub.
            active = [0]
        for die in active:
            self._counters.module(self._module).record_die(die)
        self.broadcasts += 1
        self.broadcast_die_sum += len(active)
        return len(active)

    @property
    def mean_dies_per_broadcast(self) -> float:
        return self.broadcast_die_sum / self.broadcasts if self.broadcasts else 0.0
