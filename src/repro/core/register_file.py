"""Word-partitioned 3D register file with width memoization (Section 3.1).

Each 64-bit entry is split into four 16-bit words, one per die, with the
least-significant word plus a *width memoization bit* on the top die.  A
predicted-low-width read activates only the top die; the memoization bit
is compared against the prediction, and on an unsafe misprediction the
processor (1) stalls the previous stage one cycle while enabling the
lower three dies and (2) corrects the instruction's width prediction.

Group-stall semantics: all instructions reading registers in the same
cycle share at most ONE stall cycle regardless of how many of them
mispredicted (Section 3.1) — the CPU model enforces this by asking the
register file once per dispatch group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from repro.core.activity import ActivityCounters, NUM_DIES
from repro.isa.values import is_low_width


@dataclass(frozen=True)
class RegisterFileAccess:
    """Outcome of one dispatch group's register file read."""

    #: number of operand reads performed
    reads: int
    #: reads satisfied by the top die alone
    top_only_reads: int
    #: True when the group suffers its (single) unsafe-misprediction stall
    stall: bool


class PartitionedRegisterFile:
    """Activity/timing model of the word-partitioned register file.

    The model tracks memoization bits per architectural register (the
    timing simulator operates pre-rename on trace values, so the
    architectural namespace is the right granularity for memoization
    behaviour) and charges per-die activity to ``counters``.
    """

    def __init__(self, counters: ActivityCounters, module: str = "register_file"):
        self._counters = counters
        self._module = module
        self._memo_low: Dict[int, bool] = {}

    def write(self, reg: int, value: int) -> None:
        """Write a result: sets the memoization bit, charges die activity."""
        low = is_low_width(value)
        self._memo_low[reg] = low
        self._counters.record(self._module, dies_active=1 if low else NUM_DIES)

    def value_is_low(self, reg: int, value: int) -> bool:
        """The memoization bit for ``reg`` (lazily derived from the value)."""
        memo = self._memo_low.get(reg)
        if memo is None:
            memo = is_low_width(value)
            self._memo_low[reg] = memo
        return memo

    def read_group(
        self,
        operands: Iterable[Tuple[int, int, bool]],
    ) -> RegisterFileAccess:
        """Read a dispatch group's operands.

        ``operands`` yields ``(reg, value, predicted_low)`` triples.  A
        read predicted low whose memoization bit says full width is an
        unsafe misprediction; the whole group shares one stall.
        """
        reads = 0
        top_only = 0
        stall = False
        for reg, value, predicted_low in operands:
            reads += 1
            actual_low = self.value_is_low(reg, value)
            if predicted_low and actual_low:
                top_only += 1
                self._counters.record(self._module, dies_active=1)
            elif predicted_low and not actual_low:
                # Unsafe: top-die probe, then a full access after the stall.
                stall = True
                self._counters.record(self._module, dies_active=NUM_DIES)
            else:
                self._counters.record(self._module, dies_active=NUM_DIES)
        return RegisterFileAccess(reads=reads, top_only_reads=top_only, stall=stall)
