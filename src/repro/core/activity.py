"""Per-module, per-die switching activity accounting.

The power model needs, for every module, how many accesses occurred and
how many of them were confined to the top die (the essence of Thermal
Herding).  ``dies`` below always refers to the 4-die stack; die 0 is the
top die, adjacent to the heat sink.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

#: Number of dies in the stack (the paper's design point).
NUM_DIES = 4


@dataclass
class ModuleActivity:
    """Access counts of one module, split by how many dies were active."""

    #: total accesses
    total: int = 0
    #: accesses confined to the top die (Thermal Herding success cases)
    top_only: int = 0
    #: per-die access counts; full-stack accesses increment every die
    per_die: List[int] = field(default_factory=lambda: [0] * NUM_DIES)

    def record(self, dies_active: int = NUM_DIES, count: int = 1) -> None:
        """Record ``count`` accesses touching the top ``dies_active`` dies."""
        if not 1 <= dies_active <= NUM_DIES:
            raise ValueError(f"dies_active must be in [1, {NUM_DIES}], got {dies_active}")
        self.total += count
        per_die = self.per_die
        if dies_active == 1:
            self.top_only += count
            per_die[0] += count
        else:
            for die in range(dies_active):
                per_die[die] += count

    def record_die(self, die: int, count: int = 1) -> None:
        """Record ``count`` accesses on a specific die only."""
        if not 0 <= die < NUM_DIES:
            raise ValueError(f"die must be in [0, {NUM_DIES}), got {die}")
        self.total += count
        if die == 0:
            self.top_only += count
        self.per_die[die] += count

    @property
    def herded_fraction(self) -> float:
        """Fraction of accesses confined to the top die."""
        return self.top_only / self.total if self.total else 0.0

    @property
    def die_activity_fraction(self) -> List[float]:
        """Per-die activity normalized to total accesses."""
        if not self.total:
            return [0.0] * NUM_DIES
        return [c / self.total for c in self.per_die]


class ActivityCounters:
    """Activity for all modules of one simulated core."""

    def __init__(self) -> None:
        self._modules: Dict[str, ModuleActivity] = {}

    def module(self, name: str) -> ModuleActivity:
        """The activity record for ``name``, created on first use."""
        activity = self._modules.get(name)
        if activity is None:
            activity = ModuleActivity()
            self._modules[name] = activity
        return activity

    def record(self, name: str, dies_active: int = NUM_DIES, count: int = 1) -> None:
        # Hot path: inlines ModuleActivity.record (same arithmetic) because
        # the simulator calls this once or more per instruction.
        activity = self._modules.get(name)
        if activity is None:
            activity = ModuleActivity()
            self._modules[name] = activity
        if not 1 <= dies_active <= NUM_DIES:
            raise ValueError(f"dies_active must be in [1, {NUM_DIES}], got {dies_active}")
        activity.total += count
        per_die = activity.per_die
        if dies_active == 1:
            activity.top_only += count
            per_die[0] += count
        else:
            for die in range(dies_active):
                per_die[die] += count

    def modules(self) -> Dict[str, ModuleActivity]:
        """All recorded modules (live view)."""
        return self._modules

    def clear(self) -> None:
        """Drop all recorded activity (used at the warmup boundary)."""
        self._modules.clear()

    def total_accesses(self) -> int:
        return sum(m.total for m in self._modules.values())

    def merged_with(self, other: "ActivityCounters") -> "ActivityCounters":
        """A new counter set combining self and other (for multi-core runs)."""
        merged = ActivityCounters()
        for source in (self, other):
            for name, activity in source.modules().items():
                target = merged.module(name)
                target.total += activity.total
                target.top_only += activity.top_only
                for die in range(NUM_DIES):
                    target.per_die[die] += activity.per_die[die]
        return merged


class BatchedActivityCounters(ActivityCounters):
    """Drop-in :class:`ActivityCounters` that defers totals to a flush.

    The timing simulator records several activity events per instruction;
    applying each one eagerly costs a validation, a ``total`` add, and a
    per-die loop on every call.  This subclass accumulates ``(module,
    dies_active)`` event counts in a plain dict and applies them in one
    pass at :meth:`flush` — the semantics (including module *creation
    order*, which downstream float summations depend on for bit-identical
    results) are unchanged, because the first occurrence of every event
    kind still creates its module immediately.

    ``record_die`` and direct mutation of :meth:`module` objects (used by
    the split direction arrays and the entry-stacked scheduler) bypass
    batching entirely and remain eager, which composes: the flush only
    *adds* the deferred counts.  Any read through :meth:`modules` flushes
    first, so readers always observe fully-applied totals.
    """

    def __init__(self) -> None:
        super().__init__()
        self._pending: Dict[tuple, int] = {}

    def record(self, name: str, dies_active: int = NUM_DIES, count: int = 1) -> None:
        key = (name, dies_active)
        pending = self._pending
        deferred = pending.get(key)
        if deferred is None:
            # First occurrence of this event kind: validate once and create
            # the module now so creation order matches eager recording.
            if not 1 <= dies_active <= NUM_DIES:
                raise ValueError(
                    f"dies_active must be in [1, {NUM_DIES}], got {dies_active}"
                )
            self.module(name)
            pending[key] = count
        else:
            pending[key] = deferred + count

    def flush(self) -> None:
        """Apply all deferred event counts to their modules."""
        for (name, dies_active), count in self._pending.items():
            if not count:
                continue
            activity = self._modules[name]
            activity.total += count
            per_die = activity.per_die
            if dies_active == 1:
                activity.top_only += count
                per_die[0] += count
            else:
                for die in range(dies_active):
                    per_die[die] += count
        self._pending.clear()

    def modules(self) -> Dict[str, ModuleActivity]:
        self.flush()
        return super().modules()

    def clear(self) -> None:
        self._pending.clear()
        super().clear()

    def total_accesses(self) -> int:
        self.flush()
        return super().total_accesses()

    def into_plain(self) -> ActivityCounters:
        """Flush and repackage as a plain :class:`ActivityCounters`.

        Simulation results are pickled into the on-disk cache; converting
        back keeps the payload byte-identical to one produced by eager
        recording (same class, same module dict contents and order).
        """
        self.flush()
        plain = ActivityCounters()
        plain._modules = self._modules
        return plain
