"""Vectorized pre-decode of a compiled trace for the timing loop.

Everything the scoreboard loop needs per instruction that does *not*
depend on dynamic timing state is computed here, once per trace, with
numpy reductions over the columnar form — op-class predicate columns,
the Section 3 16-bit significance classification (``is_low_width`` is
equivalent to ``v < 2**15 or v >= 2**64 - 2**15`` on the unsigned
representation), functional-unit latencies, and cache line/page indices.
A config sweep replays the same :class:`PreDecodedTrace` under every
configuration, so the per-instruction Python work in
:meth:`~repro.cpu.pipeline.TimingSimulator.run_compiled` shrinks to the
genuinely dynamic scoreboard updates.

The columns are materialized as plain Python lists (``ndarray.tolist``):
the consuming loop is scalar, and list indexing of native ints/bools is
substantially faster than per-element numpy scalar extraction.

Geometry-dependent columns (cache line and TLB page numbers) are cached
per ``(line_bytes, page_bytes)``; the L2 prewarm install sequence is
cached per ``line_bytes``; the static width-prediction profile is cached
once.  All cached derivations replicate the reference path's iteration
order exactly — dict insertion order feeds LRU state and the width
profile's dict order, both of which the byte-identity guarantee covers.

The batched wavefront split (:mod:`repro.cpu.wavefront`) adds a second
family of derived columns: dependency writer indices (which earlier
instruction produced each source operand), width-predictor index
streams, PAM/partial-value-encoding outcomes, and BTB target nearness —
everything the Thermal Herding models compute per instruction that does
not depend on dynamic cycle counts.  Those columns are lazy (a config
sweep that never enables herding never pays for them) and, like the
geometry columns, are shared across every configuration replaying the
trace.  The frontend/memory walk caches at the bottom are populated by
:mod:`repro.cpu.wavefront` and keyed by the structural parameters that
actually influence each walk.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.isa.compiled import CompiledTrace, OPCLASS_LIST
from repro.isa.opcodes import OpClass, OP_LATENCY

_LOW_POS = np.uint64(1 << 15)
_LOW_NEG = np.uint64((1 << 64) - (1 << 15))

_IS_CONTROL = np.array([op.is_control for op in OPCLASS_LIST])
_IS_MEMORY = np.array([op.is_memory for op in OPCLASS_LIST])
_IS_INTDP = np.array([op.is_integer_datapath for op in OPCLASS_LIST])
_IS_FP = np.array([op.is_fp for op in OPCLASS_LIST])
_LATENCY = np.array([OP_LATENCY[op] for op in OPCLASS_LIST], dtype=np.int64)
#: Only FDIV occupies its unit for more than one cycle (see the issue stage).
_BUSY = np.array(
    [OP_LATENCY[op] if op is OpClass.FDIV else 1 for op in OPCLASS_LIST],
    dtype=np.int64,
)

LOAD_CODE = OPCLASS_LIST.index(OpClass.LOAD)
STORE_CODE = OPCLASS_LIST.index(OpClass.STORE)
RETURN_CODE = OPCLASS_LIST.index(OpClass.RETURN)
FDIV_CODE = OPCLASS_LIST.index(OpClass.FDIV)
BRANCH_CODE = OPCLASS_LIST.index(OpClass.BRANCH)
CALL_CODE = OPCLASS_LIST.index(OpClass.CALL)
JUMP_CODE = OPCLASS_LIST.index(OpClass.JUMP)

#: 16-bit word size: values and addresses split upper bits at this shift
#: (mirrors repro.isa.values.WORD_BITS for the vectorized columns below).
_UPPER_SHIFT = np.uint64(16)
_UPPER_ONES = np.uint64((1 << 48) - 1)
_ENC_ALIGN = np.uint64(~np.uint64(0x7))


def _low_width(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.isa.values.is_low_width` over u64 values."""
    return (values < _LOW_POS) | (values >= _LOW_NEG)


class PreDecodedTrace:
    """Config-independent per-instruction columns as Python lists."""

    __slots__ = (
        "name", "benchmark_class", "n",
        "pcs", "ops", "codes", "fetch_lines",
        "is_control", "is_memory", "is_intdp", "is_fp", "is_load", "is_store",
        "srcs", "svals", "svals_low", "nsrcs", "dsts", "results",
        "mem_addrs", "has_mem_addr",
        "mem_values_or_zero", "takens", "targets",
        "operands_low", "result_low", "actual_low", "latency", "busy",
        "_pc_arr", "_mem_arr", "_geometry", "_prewarm", "_width_profile",
        # Wavefront-split additions: numpy views for the plan builder,
        # lazy dependency/herding columns, and the walk caches populated
        # by repro.cpu.wavefront.
        "np_cols", "_writers", "_pred_index", "_pam_herded", "_dc_cols",
        "frontend_walks", "memory_walks",
    )

    def __init__(self, compiled: CompiledTrace):
        rows = compiled.array
        self.name = compiled.name
        self.benchmark_class = compiled.benchmark_class
        self.n = len(rows)

        pc = np.ascontiguousarray(rows["pc"])
        codes = np.ascontiguousarray(rows["op"])
        result = np.ascontiguousarray(rows["result"])
        mem_value = np.ascontiguousarray(rows["mem_value"])
        has_mv = np.ascontiguousarray(rows["has_mem_value"])
        mem_addr = np.ascontiguousarray(rows["mem_addr"])
        nvals = np.ascontiguousarray(rows["nvals"])
        dst = np.ascontiguousarray(rows["dst"])

        self.pcs = pc.tolist()
        self.codes = codes.tolist()
        self.ops = [OPCLASS_LIST[code] for code in self.codes]
        self.fetch_lines = (pc // 64).tolist()

        is_load = codes == LOAD_CODE
        is_store = codes == STORE_CODE
        is_intdp = _IS_INTDP[codes]
        self.is_control = _IS_CONTROL[codes].tolist()
        self.is_memory = _IS_MEMORY[codes].tolist()
        self.is_intdp = is_intdp.tolist()
        self.is_fp = _IS_FP[codes].tolist()
        self.is_load = is_load.tolist()
        self.is_store = is_store.tolist()

        nsrcs = rows["nsrcs"].tolist()
        src0 = rows["src0"].tolist()
        src1 = rows["src1"].tolist()
        self.nsrcs = nsrcs
        self.srcs = [
            () if k == 0 else ((a,) if k == 1 else (a, b))
            for k, a, b in zip(nsrcs, src0, src1)
        ]
        sval0 = rows["sval0"].tolist()
        sval1 = rows["sval1"].tolist()
        nvals_list = nvals.tolist()
        self.svals = [
            () if k == 0 else ((a,) if k == 1 else (a, b))
            for k, a, b in zip(nvals_list, sval0, sval1)
        ]
        self.dsts = [None if d < 0 else d for d in dst.tolist()]
        self.results = result.tolist()
        self.mem_addrs = mem_addr.tolist()
        self.has_mem_addr = rows["has_mem_addr"].tolist()
        self.mem_values_or_zero = np.where(has_mv, mem_value, 0).tolist()
        self.takens = rows["taken"].tolist()
        has_target = rows["has_target"].tolist()
        self.targets = [
            t if h else None for h, t in zip(has_target, rows["target"].tolist())
        ]

        # Width classification (Section 3): operands, result, and the
        # per-op "actual" class the predictor trains on.  Padding src
        # values are 0 (low), so the nvals == 1 case reduces to low0.
        low0 = _low_width(np.ascontiguousarray(rows["sval0"]))
        low1 = _low_width(np.ascontiguousarray(rows["sval1"]))
        low_result = _low_width(result)
        low_mv = _low_width(mem_value)
        operands_low = (nvals == 0) | (low0 & low1)
        inst_low = low_result & operands_low
        self.operands_low = operands_low.tolist()
        result_low = (dst < 0) | low_result
        self.result_low = result_low.tolist()
        actual_low = np.where(
            is_load,
            np.where(has_mv, low_mv, low_result),
            np.where(is_store, np.where(has_mv, low_mv, True), inst_low),
        ) & is_intdp
        self.actual_low = actual_low.tolist()

        # Per-source-value width bits (the register file's lazily installed
        # memoization values), truncated by nvals exactly like ``svals``.
        low0_list = low0.tolist()
        low1_list = low1.tolist()
        self.svals_low = [
            () if k == 0 else ((a,) if k == 1 else (a, b))
            for k, a, b in zip(nvals_list, low0_list, low1_list)
        ]

        self.latency = _LATENCY[codes].tolist()
        self.busy = _BUSY[codes].tolist()

        self._pc_arr = pc
        self._mem_arr = mem_addr
        self._geometry: Dict[Tuple[int, int], tuple] = {}
        self._prewarm: Dict[int, List[int]] = {}
        self._width_profile: Optional[Dict[int, bool]] = None

        # Numpy views consumed by the wavefront plan builder
        # (:mod:`repro.cpu.wavefront`): everything it needs to derive
        # masks, first-occurrence positions, and windowed counts without
        # re-materializing arrays from the Python lists.
        self.np_cols: Dict[str, np.ndarray] = {
            "pc": pc,
            "codes": codes,
            "fetch_lines": pc // 64,
            "is_control": _IS_CONTROL[codes],
            "is_memory": _IS_MEMORY[codes],
            "is_intdp": is_intdp,
            "is_fp": _IS_FP[codes],
            "is_load": is_load,
            "is_store": is_store,
            "is_cond": codes == BRANCH_CODE,
            "is_return": codes == RETURN_CODE,
            "taken": np.ascontiguousarray(rows["taken"]),
            "has_target": np.ascontiguousarray(rows["has_target"]),
            "target": np.ascontiguousarray(rows["target"]),
            "has_dst": dst >= 0,
            "has_srcs": np.ascontiguousarray(rows["nsrcs"]) > 0,
            "result_low": result_low,
            "mem_addr": mem_addr,
            "mem_value_or_zero": np.where(has_mv, mem_value, np.uint64(0)),
        }

        # Lazy wavefront columns and walk caches (see the methods below).
        self._writers: Optional[Tuple[List[int], List[int]]] = None
        self._pred_index: Dict[int, List[int]] = {}
        self._pam_herded: Optional[np.ndarray] = None
        self._dc_cols: Dict[str, Tuple[List[bool], np.ndarray]] = {}
        self.frontend_walks: Dict[tuple, object] = {}
        self.memory_walks: Dict[tuple, object] = {}

    # ------------------------------------------------------------------ #

    def geometry(self, line_bytes: int, page_bytes: int) -> tuple:
        """Cache-line and TLB-page index columns for one cache geometry.

        Returns ``(pc_lines, pc_pages, mem_lines, mem_pages)``.  The
        hierarchy's line-based access paths require L1I/L1D/L2 to share
        ``line_bytes``, which :func:`~repro.cpu.caches.build_hierarchy`
        guarantees (one ``config.line_bytes`` feeds all three).
        """
        key = (line_bytes, page_bytes)
        cached = self._geometry.get(key)
        if cached is None:
            cached = (
                (self._pc_arr // line_bytes).tolist(),
                (self._pc_arr // page_bytes).tolist(),
                (self._mem_arr // line_bytes).tolist(),
                (self._mem_arr // page_bytes).tolist(),
            )
            self._geometry[key] = cached
        return cached

    def prewarm_lines(self, line_bytes: int) -> List[int]:
        """The L2 prewarm install sequence, as line numbers, in the exact
        order :meth:`TimingSimulator._prewarm` installs them (insertion
        order feeds LRU state, so order is part of the contract)."""
        cached = self._prewarm.get(line_bytes)
        if cached is not None:
            return cached
        region_shift = 16
        access_counts: Dict[int, int] = {}
        region_accesses: Dict[int, int] = {}
        pcs = self.pcs
        mem_addrs = self.mem_addrs
        has_mem_addr = self.has_mem_addr
        for i in range(self.n):
            addr = pcs[i]
            tag = addr // line_bytes
            access_counts[tag] = access_counts.get(tag, 0) + 1
            region = addr >> region_shift
            region_accesses[region] = region_accesses.get(region, 0) + 1
            if has_mem_addr[i]:
                addr = mem_addrs[i]
                tag = addr // line_bytes
                access_counts[tag] = access_counts.get(tag, 0) + 1
                region = addr >> region_shift
                region_accesses[region] = region_accesses.get(region, 0) + 1
        region_lines: Dict[int, int] = {}
        region_reused: Dict[int, int] = {}
        for tag, count in access_counts.items():
            region = (tag * line_bytes) >> region_shift
            region_lines[region] = region_lines.get(region, 0) + 1
            if count >= 2:
                region_reused[region] = region_reused.get(region, 0) + 1
        install: List[int] = []
        for tag, count in access_counts.items():
            region = (tag * line_bytes) >> region_shift
            lines_here = region_lines[region]
            ratio = region_accesses[region] / lines_here
            reuse_fraction = region_reused.get(region, 0) / lines_here
            if count >= 2 or ratio >= 2.0 or reuse_fraction >= 0.025:
                install.append(tag)
        self._prewarm[line_bytes] = install
        return install

    def width_profile(self) -> Dict[int, bool]:
        """Majority width class per static PC, identical (including dict
        order) to :func:`repro.core.static_width.build_width_profile`."""
        profile = self._width_profile
        if profile is None:
            totals: Dict[int, int] = {}
            lows: Dict[int, int] = {}
            pcs = self.pcs
            actual_low = self.actual_low
            is_intdp = self.is_intdp
            for i in range(self.n):
                if not is_intdp[i]:
                    continue
                pc = pcs[i]
                totals[pc] = totals.get(pc, 0) + 1
                if actual_low[i]:
                    lows[pc] = lows.get(pc, 0) + 1
            profile = {pc: lows.get(pc, 0) * 2 > totals[pc] for pc in totals}
            self._width_profile = profile
        return profile

    # ------------------------------------------------------------------ #
    # Wavefront-split derived columns (lazy; see repro.cpu.wavefront).

    def writers(self) -> Tuple[List[int], List[int]]:
        """Last-writer instruction index per source-operand slot.

        ``writers()[k][i]`` is the index of the most recent instruction
        before ``i`` whose destination equals source ``k`` of ``i``, or
        -1 when no earlier instruction wrote it.  Together with the
        per-instruction completion cycles the loop records, these replace
        the reference loop's ``reg_ready`` scoreboard dict exactly: a
        register never written reads ready-at-cycle-0, like the dict's
        default.
        """
        cached = self._writers
        if cached is None:
            n = self.n
            w0 = [-1] * n
            w1 = [-1] * n
            last_writer: Dict[int, int] = {}
            last_writer_get = last_writer.get
            srcs = self.srcs
            dsts = self.dsts
            for i in range(n):
                s = srcs[i]
                if s:
                    w0[i] = last_writer_get(s[0], -1)
                    if len(s) == 2:
                        w1[i] = last_writer_get(s[1], -1)
                d = dsts[i]
                if d is not None:
                    last_writer[d] = i
            cached = (w0, w1)
            self._writers = cached
        return cached

    def pred_index(self, mask: int) -> List[int]:
        """Width-predictor table indices ``(pc >> 2) & mask`` per instruction."""
        cached = self._pred_index.get(mask)
        if cached is None:
            cached = ((self._pc_arr >> np.uint64(2)).astype(np.int64) & mask).tolist()
            self._pred_index[mask] = cached
        return cached

    def pam_herded(self) -> List[bool]:
        """Per-memory-op PAM outcome: does the address's upper 48 bits
        match the most recent *earlier* store's (Section 3.5)?  Stores
        compare against the previous store before installing their own
        upper bits, so both loads and stores use the strictly-preceding
        store.  Entries at non-memory indices are meaningless."""
        cached = self._pam_herded
        if cached is None:
            n = self.n
            idx = np.arange(n, dtype=np.int64)
            store_pos = np.where(self.np_cols["is_store"], idx, -1)
            last_incl = np.maximum.accumulate(store_pos)
            prev = np.empty(n, dtype=np.int64)
            prev[0] = -1
            prev[1:] = last_incl[:-1]
            uppers = self._mem_arr >> _UPPER_SHIFT
            herded = (prev >= 0) & (uppers == uppers[np.maximum(prev, 0)])
            cached = herded.tolist()
            self._pam_herded = cached
        return cached

    def dc_columns(self, scheme_value: str) -> Tuple[List[bool], List[bool]]:
        """Partial-value-encoding outcomes for the L1D model (Section 3.6).

        Returns ``(load_compressed, store_compressed)``: per-index, is
        the encoding the access observes/installs compressible?  Stores
        always reclassify their value (fully vectorized); loads see the
        get-or-install evolution of the per-double-word encoding dict,
        replayed here once per scheme in program order — identical to the
        call sequence :class:`~repro.core.dcache_encoding.PartialValueCache`
        sees in the reference loop (every load and store participates,
        regardless of width prediction).
        """
        cached = self._dc_cols.get(scheme_value)
        if cached is None:
            cols = self.np_cols
            value = cols["mem_value_or_zero"]
            addr = cols["mem_addr"]
            upper = value >> _UPPER_SHIFT
            if scheme_value == "two_bit":
                comp = (upper == 0) | (upper == _UPPER_ONES) \
                    | (upper == (addr >> _UPPER_SHIFT))
            else:  # one_bit ablation: only the all-zeros pattern compresses
                comp = upper == 0
            comp_list = comp.tolist()
            keys = (addr & _ENC_ALIGN).tolist()
            mem_idx = np.flatnonzero(cols["is_load"] | cols["is_store"]).tolist()
            is_store = self.is_store
            load_comp = comp_list[:]
            enc: Dict[int, bool] = {}
            enc_get = enc.get
            for i in mem_idx:
                key = keys[i]
                if is_store[i]:
                    enc[key] = comp_list[i]
                else:
                    e = enc_get(key)
                    if e is None:
                        enc[key] = comp_list[i]
                    else:
                        load_comp[i] = e
            cached = (load_comp, comp_list)
            self._dc_cols[scheme_value] = cached
        return cached


def predecode(compiled: CompiledTrace) -> PreDecodedTrace:
    """The (memoized) pre-decoded form of ``compiled``."""
    pre = compiled._predecoded
    if pre is None:
        pre = PreDecodedTrace(compiled)
        compiled._predecoded = pre
    return pre
