"""Simulation result container and derived performance metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.activity import ActivityCounters
from repro.core.width_prediction import WidthPredictorStats
from repro.cpu.branch_predictor import BranchStats
from repro.cpu.caches import CacheStats


@dataclass
class StallBreakdown:
    """Cycles lost to each Thermal Herding misprediction mechanism."""

    rf_group_stalls: int = 0
    alu_input_stalls: int = 0
    alu_reexecutions: int = 0
    dcache_width_stalls: int = 0
    btb_memoization_stalls: int = 0

    @property
    def total(self) -> int:
        return (
            self.rf_group_stalls
            + self.alu_input_stalls
            + self.alu_reexecutions
            + self.dcache_width_stalls
            + self.btb_memoization_stalls
        )

    def as_dict(self) -> Dict[str, int]:
        """JSON-ready mapping of the five mechanisms plus their total."""
        return {
            "rf_group_stalls": self.rf_group_stalls,
            "alu_input_stalls": self.alu_input_stalls,
            "alu_reexecutions": self.alu_reexecutions,
            "dcache_width_stalls": self.dcache_width_stalls,
            "btb_memoization_stalls": self.btb_memoization_stalls,
            "total": self.total,
        }


@dataclass
class SimulationResult:
    """Everything one simulation run produces."""

    benchmark: str
    benchmark_class: str
    config_name: str
    clock_ghz: float
    instructions: int
    cycles: int
    activity: ActivityCounters
    branch_stats: BranchStats
    cache_stats: Dict[str, CacheStats] = field(default_factory=dict)
    width_stats: Optional[WidthPredictorStats] = None
    stalls: StallBreakdown = field(default_factory=StallBreakdown)
    #: herding effectiveness metrics (module -> fraction confined to top die)
    herding: Dict[str, float] = field(default_factory=dict)
    #: approximate CPI stack: category -> cycles attributed (sums to cycles)
    cpi_stack: Dict[str, int] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def time_ns(self) -> float:
        """Wall-clock execution time in nanoseconds."""
        return self.cycles / self.clock_ghz if self.clock_ghz else float("inf")

    @property
    def ipns(self) -> float:
        """Instructions per nanosecond (the paper's IPns metric)."""
        return self.instructions / self.time_ns if self.time_ns else 0.0

    def cpi_breakdown(self) -> Dict[str, float]:
        """CPI per category (cycles attributed / committed instructions)."""
        if not self.instructions:
            return {}
        return {
            category: cycles / self.instructions
            for category, cycles in sorted(self.cpi_stack.items())
        }

    def format_cpi_stack(self) -> str:
        """Render the CPI stack as an aligned block."""
        lines = [f"CPI stack ({self.benchmark} [{self.config_name}], "
                 f"CPI = {1 / self.ipc if self.ipc else 0:.2f})"]
        for category, cpi in sorted(
            self.cpi_breakdown().items(), key=lambda kv: -kv[1]
        ):
            lines.append(f"  {category:<12s} {cpi:6.3f}")
        return "\n".join(lines)

    def summary(self) -> str:
        """One-line human-readable summary."""
        parts = [
            f"{self.benchmark:>10s} [{self.config_name:>4s}]",
            f"IPC={self.ipc:5.2f}",
            f"IPns={self.ipns:5.2f}",
            f"cycles={self.cycles}",
        ]
        if self.width_stats is not None and self.width_stats.predictions:
            parts.append(f"width-acc={self.width_stats.accuracy:5.1%}")
        if self.branch_stats.conditional_branches:
            parts.append(f"br-acc={self.branch_stats.direction_accuracy:5.1%}")
        return "  ".join(parts)
