"""Set-associative caches, TLBs, and the memory hierarchy timing model.

Tag-only LRU models: the simulator needs hit/miss behaviour and
latencies, not data movement.  The hierarchy is L1I + L1D backed by a
shared L2 backed by DRAM, plus I/D TLBs whose misses charge a fixed
page-walk penalty.  Activity (for the power model) is charged to the
module names used by :mod:`repro.circuits.blocks`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.activity import ActivityCounters, NUM_DIES


@dataclass
class CacheStats:
    """Hit/miss counters of one cache or TLB."""

    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """Tag-only set-associative cache with true-LRU replacement."""

    def __init__(self, name: str, size_bytes: int, assoc: int, line_bytes: int):
        if size_bytes <= 0 or assoc <= 0 or line_bytes <= 0:
            raise ValueError(f"{name}: sizes must be positive")
        lines = size_bytes // line_bytes
        if lines % assoc:
            raise ValueError(f"{name}: {lines} lines not divisible by associativity {assoc}")
        self.name = name
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.num_sets = lines // assoc
        # Each set is an LRU-ordered list of tags (index 0 = MRU).
        self._sets: List[List[int]] = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def _locate(self, addr: int) -> Tuple[int, int]:
        line = addr // self.line_bytes
        return line % self.num_sets, line // self.num_sets

    def access(self, addr: int) -> bool:
        """Access ``addr``; returns True on hit.  Misses allocate (LRU evict)."""
        return self.access_line(addr // self.line_bytes)

    def access_line(self, line: int) -> bool:
        """:meth:`access` with the line number (``addr // line_bytes``)
        already computed — the columnar pre-decode supplies line and page
        columns so the hierarchy's hot path skips the per-access divide."""
        tag, index = divmod(line, self.num_sets)
        entries = self._sets[index]
        self.stats.accesses += 1
        if entries and entries[0] == tag:
            # MRU hit: remove-then-reinsert at the head is a no-op.
            return True
        if tag in entries:
            entries.remove(tag)
            entries.insert(0, tag)
            return True
        self.stats.misses += 1
        entries.insert(0, tag)
        if len(entries) > self.assoc:
            entries.pop()
        return False

    def probe(self, addr: int) -> bool:
        """Check residency without updating LRU or stats."""
        index, tag = self._locate(addr)
        return tag in self._sets[index]

    def install(self, addr: int) -> None:
        """Insert a line without touching stats (prefetch fill)."""
        self.install_line(addr // self.line_bytes)

    def install_line(self, line: int) -> None:
        """:meth:`install` with the line number already computed."""
        tag, index = divmod(line, self.num_sets)
        entries = self._sets[index]
        if tag in entries:
            return
        entries.insert(0, tag)
        if len(entries) > self.assoc:
            entries.pop()


class TLB(SetAssociativeCache):
    """A TLB is a set-associative cache over page numbers."""

    def __init__(self, name: str, entries: int, assoc: int, page_bytes: int):
        super().__init__(name, size_bytes=entries * page_bytes, assoc=assoc,
                         line_bytes=page_bytes)


@dataclass
class MemoryAccessResult:
    """Latency and service level of one data access."""

    cycles: int
    level: str  # "l1", "l2", "dram"
    tlb_miss: bool = False


class MemoryHierarchy:
    """L1I/L1D + shared L2 + DRAM + TLBs with per-module activity."""

    def __init__(
        self,
        counters: ActivityCounters,
        l1i: SetAssociativeCache,
        l1d: SetAssociativeCache,
        l2: SetAssociativeCache,
        itlb: TLB,
        dtlb: TLB,
        l1_latency: int,
        l2_latency: int,
        dram_cycles: int,
        tlb_miss_penalty: int,
    ):
        self._counters = counters
        self.l1i = l1i
        self.l1d = l1d
        self.l2 = l2
        self.itlb = itlb
        self.dtlb = dtlb
        self.l1_latency = l1_latency
        self.l2_latency = l2_latency
        self.dram_cycles = dram_cycles
        self.tlb_miss_penalty = tlb_miss_penalty

    # ------------------------------------------------------------------ #

    def _lower_levels(self, addr: int) -> Tuple[int, str]:
        """Service a miss from L2/DRAM; returns (extra cycles, level)."""
        self._counters.record("l2_cache", dies_active=NUM_DIES)
        if self.l2.access(addr):
            return self.l2_latency, "l2"
        self._counters.record("dram", dies_active=NUM_DIES)
        return self.l2_latency + self.dram_cycles, "dram"

    def instruction_fetch(self, pc: int) -> MemoryAccessResult:
        """Fetch the line containing ``pc``."""
        self._counters.record("itlb", dies_active=NUM_DIES)
        tlb_miss = not self.itlb.access(pc)
        self._counters.record("l1_icache", dies_active=NUM_DIES)
        cycles = self.l1_latency
        level = "l1"
        if not self.l1i.access(pc):
            extra, level = self._lower_levels(pc)
            cycles += extra
        # Always-next-line instruction prefetch.
        self.l1i.install(pc + self.l1i.line_bytes)
        self.l2.install(pc + self.l1i.line_bytes)
        if tlb_miss:
            cycles += self.tlb_miss_penalty
        return MemoryAccessResult(cycles=cycles, level=level, tlb_miss=tlb_miss)

    def load(self, addr: int) -> MemoryAccessResult:
        """A demand load; L1D data-array die gating is accounted separately
        by :class:`~repro.core.dcache_encoding.PartialValueCache`."""
        self._counters.record("dtlb", dies_active=NUM_DIES)
        tlb_miss = not self.dtlb.access(addr)
        cycles = self.l1_latency
        level = "l1"
        if not self.l1d.access(addr):
            extra, level = self._lower_levels(addr)
            cycles += extra
        # Hardware next-line data prefetcher (Core 2-class streamers):
        # unit-stride streams never pay the miss latency; larger strides
        # and irregular traffic defeat it.
        self.l1d.install(addr + self.l1d.line_bytes)
        self.l2.install(addr + self.l1d.line_bytes)
        if tlb_miss:
            cycles += self.tlb_miss_penalty
        return MemoryAccessResult(cycles=cycles, level=level, tlb_miss=tlb_miss)

    def store(self, addr: int) -> MemoryAccessResult:
        """A committed store (write-allocate, write-back; non-blocking)."""
        self._counters.record("dtlb", dies_active=NUM_DIES)
        tlb_miss = not self.dtlb.access(addr)
        level = "l1"
        if not self.l1d.access(addr):
            _, level = self._lower_levels(addr)
        # Store streams benefit from the same next-line prefetcher.
        self.l1d.install(addr + self.l1d.line_bytes)
        self.l2.install(addr + self.l1d.line_bytes)
        return MemoryAccessResult(cycles=0, level=level, tlb_miss=tlb_miss)

    # ------------------------------------------------------------------ #
    # Line/page twins of the three access paths above, used by the
    # columnar simulation loop: the caller supplies the precomputed line
    # number (addr // line_bytes, identical for L1I/L1D/L2 — see
    # build_hierarchy) and page number (addr // page_bytes), so the
    # next-line prefetch is simply ``line + 1`` and no division happens
    # per access.  Results are plain values instead of
    # MemoryAccessResult (the hot loop unpacks them immediately).
    # Activity, stats, and replacement state evolve identically to the
    # address-based paths — the equivalence tests depend on it.

    def instruction_fetch_line(self, line: int, page: int) -> int:
        """:meth:`instruction_fetch` by line/page; returns cycles."""
        self._counters.record("itlb", dies_active=NUM_DIES)
        tlb_miss = not self.itlb.access_line(page)
        self._counters.record("l1_icache", dies_active=NUM_DIES)
        cycles = self.l1_latency
        if not self.l1i.access_line(line):
            self._counters.record("l2_cache", dies_active=NUM_DIES)
            if self.l2.access_line(line):
                cycles += self.l2_latency
            else:
                self._counters.record("dram", dies_active=NUM_DIES)
                cycles += self.l2_latency + self.dram_cycles
        self.l1i.install_line(line + 1)
        self.l2.install_line(line + 1)
        if tlb_miss:
            cycles += self.tlb_miss_penalty
        return cycles

    def load_line(self, line: int, page: int) -> Tuple[int, str, bool]:
        """:meth:`load` by line/page; returns (cycles, level, tlb_miss)."""
        self._counters.record("dtlb", dies_active=NUM_DIES)
        tlb_miss = not self.dtlb.access_line(page)
        cycles = self.l1_latency
        level = "l1"
        if not self.l1d.access_line(line):
            self._counters.record("l2_cache", dies_active=NUM_DIES)
            if self.l2.access_line(line):
                cycles += self.l2_latency
                level = "l2"
            else:
                self._counters.record("dram", dies_active=NUM_DIES)
                cycles += self.l2_latency + self.dram_cycles
                level = "dram"
        self.l1d.install_line(line + 1)
        self.l2.install_line(line + 1)
        if tlb_miss:
            cycles += self.tlb_miss_penalty
        return cycles, level, tlb_miss

    def store_line(self, line: int, page: int) -> None:
        """:meth:`store` by line/page; the result is never consumed."""
        self._counters.record("dtlb", dies_active=NUM_DIES)
        self.dtlb.access_line(page)
        if not self.l1d.access_line(line):
            self._counters.record("l2_cache", dies_active=NUM_DIES)
            if not self.l2.access_line(line):
                self._counters.record("dram", dies_active=NUM_DIES)
        self.l1d.install_line(line + 1)
        self.l2.install_line(line + 1)


def build_hierarchy(counters: ActivityCounters, config) -> MemoryHierarchy:
    """Construct the hierarchy from a :class:`~repro.cpu.config.CPUConfig`."""
    return MemoryHierarchy(
        counters=counters,
        l1i=SetAssociativeCache("l1i", config.l1i_size, config.l1i_assoc, config.line_bytes),
        l1d=SetAssociativeCache("l1d", config.l1d_size, config.l1d_assoc, config.line_bytes),
        l2=SetAssociativeCache("l2", config.l2_size, config.l2_assoc, config.line_bytes),
        itlb=TLB("itlb", config.itlb_entries, config.tlb_assoc, config.page_bytes),
        dtlb=TLB("dtlb", config.dtlb_entries, config.tlb_assoc, config.page_bytes),
        l1_latency=config.l1_latency,
        l2_latency=config.l2_latency,
        dram_cycles=config.dram_cycles,
        tlb_miss_penalty=config.tlb_miss_penalty,
    )
