"""Dual-core chip model (the paper's two-core Figure 9/10 scenario).

The evaluation chip carries two cores over a shared L2.  The timing model
is per-core; sharing is modelled by capacity partitioning: when two cores
run concurrently, each sees half the shared L2 (the paper runs identical
instances on both cores, whose disjoint address spaces split the cache
symmetrically).  The result bundles both cores' runs for the power and
thermal models, which accept one breakdown per core — including
*heterogeneous* pairings, where the two cores run different applications
and the thermal map becomes asymmetric.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.cpu.config import CPUConfig
from repro.cpu.pipeline import simulate
from repro.cpu.results import SimulationResult
from repro.isa.trace import Trace


@dataclass
class DualCoreRun:
    """Both cores' simulation results."""

    core0: SimulationResult
    core1: SimulationResult

    @property
    def results(self) -> Tuple[SimulationResult, SimulationResult]:
        return self.core0, self.core1

    @property
    def throughput_ipns(self) -> float:
        """Chip throughput: combined instructions per nanosecond."""
        return self.core0.ipns + self.core1.ipns

    @property
    def slower_core_time_ns(self) -> float:
        """Wall-clock time of the longer-running core."""
        return max(self.core0.time_ns, self.core1.time_ns)

    def summary(self) -> str:
        return "\n".join([
            f"core0: {self.core0.summary()}",
            f"core1: {self.core1.summary()}",
            f"chip throughput: {self.throughput_ipns:.2f} IPns",
        ])


def simulate_dual_core(
    trace0: Trace,
    trace1: Trace,
    config: CPUConfig,
    warmup: int = 0,
    shared_l2: bool = True,
) -> DualCoreRun:
    """Run two traces on the two-core chip.

    With ``shared_l2`` (the default), each core is simulated against its
    capacity share of the L2 — half each, the symmetric-partition
    approximation for two concurrently active cores with disjoint
    working sets.
    """
    core_config = config
    if shared_l2:
        half = max(config.l2_size // 2, config.line_bytes * config.l2_assoc)
        core_config = replace(config, l2_size=half)
    return DualCoreRun(
        core0=simulate(trace0, core_config, warmup=warmup),
        core1=simulate(trace1, core_config, warmup=warmup),
    )
