"""Hybrid branch direction predictor, BTB, and return-address stack.

Table 1 specifies a 10KB bimodal/local/global hybrid.  We implement the
three components plus a majority combiner (each component is trained on
every branch): a bimodal table, a gshare global predictor, and a
two-level local-history predictor.  The BTB and indirect BTB are
set-associative target caches; returns use a return-address stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.activity import ActivityCounters, NUM_DIES
from repro.core.btb_memoization import MemoizedBTB
from repro.core.direction_split import SplitDirectionPredictorActivity
from repro.cpu.caches import SetAssociativeCache
from repro.isa.opcodes import OpClass


class _CounterTable:
    """A table of 2-bit saturating counters."""

    def __init__(self, size: int):
        if size < 1 or size & (size - 1):
            raise ValueError(f"table size must be a power of two, got {size}")
        self._mask = size - 1
        self._table = [1] * size  # weakly not-taken

    def predict(self, index: int) -> bool:
        return self._table[index & self._mask] >= 2

    def update(self, index: int, taken: bool) -> None:
        index &= self._mask
        count = self._table[index]
        if taken and count < 3:
            self._table[index] = count + 1
        elif not taken and count > 0:
            self._table[index] = count - 1


@dataclass
class BranchStats:
    """Direction and target prediction outcome counters."""

    conditional_branches: int = 0
    direction_mispredicts: int = 0
    btb_lookups: int = 0
    btb_misses: int = 0
    ras_returns: int = 0
    ras_mispredicts: int = 0

    @property
    def direction_accuracy(self) -> float:
        if not self.conditional_branches:
            return 0.0
        return 1.0 - self.direction_mispredicts / self.conditional_branches

    @property
    def btb_hit_rate(self) -> float:
        if not self.btb_lookups:
            return 0.0
        return 1.0 - self.btb_misses / self.btb_lookups


class HybridPredictor:
    """Tournament bimodal/local/global hybrid direction predictor.

    Two chooser tables select, per branch, first between the global
    (gshare) and local two-level components, and then between that winner
    and the bimodal component — so a branch is predicted by whichever
    component has been right for it most recently.
    """

    def __init__(
        self,
        bimodal_entries: int = 4096,
        global_entries: int = 4096,
        local_histories: int = 1024,
        local_entries: int = 1024,
        history_bits: int = 12,
        local_history_bits: int = 10,
    ):
        self._bimodal = _CounterTable(bimodal_entries)
        self._gshare = _CounterTable(global_entries)
        self._local = _CounterTable(local_entries)
        self._choose_gl = _CounterTable(global_entries)   # >=2: pick global
        self._choose_xb = _CounterTable(global_entries)   # >=2: pick winner over bimodal
        self._local_history: List[int] = [0] * local_histories
        self._local_hist_mask = local_histories - 1
        self._local_bits_mask = (1 << local_history_bits) - 1
        self._ghr = 0
        self._ghr_mask = (1 << history_bits) - 1

    def _indices(self, pc: int):
        base = pc >> 2
        bim = base
        glob = base ^ self._ghr
        lhist = self._local_history[base & self._local_hist_mask]
        loc = lhist ^ (base & self._local_bits_mask)
        return bim, glob, loc

    def _components(self, pc: int):
        bim, glob, loc = self._indices(pc)
        return (
            (bim, glob, loc),
            self._bimodal.predict(bim),
            self._gshare.predict(glob),
            self._local.predict(loc),
        )

    def predict(self, pc: int) -> bool:
        (bim, _glob, _loc), p_bim, p_glob, p_loc = self._components(pc)
        winner_gl = p_glob if self._choose_gl.predict(bim) else p_loc
        return winner_gl if self._choose_xb.predict(bim) else p_bim

    def update(self, pc: int, taken: bool) -> None:
        (bim, glob, loc), p_bim, p_glob, p_loc = self._components(pc)
        winner_gl = p_glob if self._choose_gl.predict(bim) else p_loc
        # Train choosers only on disagreement.
        if p_glob != p_loc:
            self._choose_gl.update(bim, p_glob == taken)
        if winner_gl != p_bim:
            self._choose_xb.update(bim, winner_gl == taken)
        self._bimodal.update(bim, taken)
        self._gshare.update(glob, taken)
        self._local.update(loc, taken)
        self._ghr = ((self._ghr << 1) | int(taken)) & self._ghr_mask
        slot = (pc >> 2) & self._local_hist_mask
        self._local_history[slot] = (
            (self._local_history[slot] << 1) | int(taken)
        ) & self._local_bits_mask


@dataclass(frozen=True)
class FrontEndOutcome:
    """What the front end decides for one control instruction."""

    predicted_taken: bool
    target_known: bool
    mispredicted: bool
    extra_bubbles: int


class FrontEndPredictor:
    """The complete front-end control-flow machinery.

    When ``thermal_herding`` is enabled, BTB hits go through the target
    memoization model (far targets cost a one-cycle prediction stall) and
    the direction arrays charge split direction/hysteresis activity.
    """

    def __init__(
        self,
        counters: ActivityCounters,
        btb_entries: int = 2048,
        btb_assoc: int = 4,
        ibtb_entries: int = 512,
        ibtb_assoc: int = 4,
        ras_depth: int = 16,
        thermal_herding: bool = False,
    ):
        self._counters = counters
        self.direction = HybridPredictor()
        self.btb = SetAssociativeCache("btb", btb_entries * 4, btb_assoc, 4)
        self.ibtb = SetAssociativeCache("ibtb", ibtb_entries * 4, ibtb_assoc, 4)
        self._ras: List[int] = []
        self._ras_depth = ras_depth
        self._thermal_herding = thermal_herding
        self.memoized_btb = MemoizedBTB(counters) if thermal_herding else None
        self.split_arrays = SplitDirectionPredictorActivity(counters) if thermal_herding else None
        self.stats = BranchStats()

    # ------------------------------------------------------------------ #

    def _record_direction_activity(self, update: bool) -> None:
        if self.split_arrays is not None:
            if update:
                self.split_arrays.record_update()
            else:
                self.split_arrays.record_prediction()
        else:
            self._counters.record("dir_predictor", dies_active=NUM_DIES)

    def _btb_lookup(self, cache: SetAssociativeCache, module: str,
                    pc: int, target: Optional[int]) -> FrontEndOutcome:
        """Common BTB/iBTB hit-miss handling for a taken transfer."""
        self.stats.btb_lookups += 1
        hit = cache.access(pc)
        bubbles = 0
        if hit and self.memoized_btb is not None and target is not None:
            lookup = self.memoized_btb.read_target(pc, target)
            bubbles += lookup.stall_cycles
        elif hit:
            self._counters.record(module, dies_active=NUM_DIES)
        else:
            self.stats.btb_misses += 1
            self._counters.record(module, dies_active=NUM_DIES)
        return FrontEndOutcome(
            predicted_taken=True,
            target_known=hit,
            mispredicted=False,
            extra_bubbles=bubbles,
        )

    # ------------------------------------------------------------------ #

    def process(self, op: OpClass, pc: int, taken: bool, target: Optional[int]) -> FrontEndOutcome:
        """Predict one control instruction and train all structures.

        The returned outcome tells the timing model whether the fetch
        stream was redirected correctly (``mispredicted`` False) and how
        many front-end bubble cycles to charge.
        """
        if op is OpClass.BRANCH:
            return self._process_conditional(pc, taken, target)
        if op is OpClass.RETURN:
            return self._process_return(pc, target)
        if op is OpClass.CALL:
            self._ras.append(pc + 4)
            if len(self._ras) > self._ras_depth:
                self._ras.pop(0)
            return self._btb_lookup(self.btb, "btb", pc, target)
        # Unconditional direct jump.
        return self._btb_lookup(self.btb, "btb", pc, target)

    def _process_conditional(self, pc: int, taken: bool, target: Optional[int]) -> FrontEndOutcome:
        self.stats.conditional_branches += 1
        self._record_direction_activity(update=False)
        predicted_taken = self.direction.predict(pc)
        self.direction.update(pc, taken)
        self._record_direction_activity(update=True)

        mispredicted = predicted_taken != taken
        if mispredicted:
            self.stats.direction_mispredicts += 1
            return FrontEndOutcome(
                predicted_taken=predicted_taken,
                target_known=False,
                mispredicted=True,
                extra_bubbles=0,
            )
        if not taken:
            return FrontEndOutcome(
                predicted_taken=False,
                target_known=True,
                mispredicted=False,
                extra_bubbles=0,
            )
        return self._btb_lookup(self.btb, "btb", pc, target)

    def _process_return(self, pc: int, target: Optional[int]) -> FrontEndOutcome:
        self.stats.ras_returns += 1
        predicted = self._ras.pop() if self._ras else None
        if predicted is not None and predicted == target:
            # RAS hit; the iBTB is still probed in parallel.
            self._counters.record("ibtb", dies_active=NUM_DIES)
            return FrontEndOutcome(
                predicted_taken=True, target_known=True,
                mispredicted=False, extra_bubbles=0,
            )
        self.stats.ras_mispredicts += 1
        return FrontEndOutcome(
            predicted_taken=True, target_known=False,
            mispredicted=True, extra_bubbles=0,
        )
