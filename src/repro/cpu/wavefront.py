"""Batched wavefront pre-computation for the columnar timing loop.

The reference timing loop interleaves two kinds of work per instruction:
*timing-dependent* scoreboard updates (when does this instruction fetch,
dispatch, issue, complete?) and *timing-independent* microarchitectural
state evolution (branch predictor tables, cache LRU stacks, width
memoization bits, activity accounting).  The second kind never reads a
cycle number — predictor outcomes, hit/miss walks, PAM/partial-value
encodings, and per-module activity depend only on the instruction stream
and the structural configuration.  This module computes all of it ahead
of the loop, in two shared walks plus vectorized column algebra:

* :func:`frontend_walk` — replays the hybrid direction predictor, BTB,
  and return-address stack over just the control instructions, producing
  per-instruction misprediction/lookup/hit masks and the derived
  ``new_line`` fetch-group mask.  Keyed by the front-end structure
  parameters, so one walk serves every configuration that shares them
  (all six paper configurations do).

* :func:`memory_walk` — replays the I/D TLBs and L1I/L1D/L2 LRU state
  over the union of fetch-group starts and memory operations, producing
  miss masks.  Latencies are *not* baked in: hit/miss behaviour is
  latency-independent, so one walk serves every clock/latency variant.

* :func:`build_plan` — converts the walk outputs into the per-config
  column values the slimmed scalar loop consumes (fetch-stall cycles,
  load access cycles, BTB memoization bubbles) and precomputes every
  *static* piece of the result: branch/cache stats, herding tallies, and
  the per-module activity whose counts don't depend on dynamic width
  state.  The loop returns a handful of dynamic tallies (register-file
  read splits, ALU/L1D width outcomes, scheduler broadcast dies) and
  :meth:`WavefrontPlan.build_activity` assembles the final
  :class:`~repro.core.activity.ActivityCounters` — byte-identical to
  eager recording, including module *creation order*, which is
  reconstructed from first-occurrence positions (instruction index ×
  within-instruction event rank).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.activity import ActivityCounters, ModuleActivity
from repro.cpu.branch_predictor import BranchStats, HybridPredictor
from repro.cpu.caches import CacheStats, SetAssociativeCache, TLB
from repro.cpu.predecode import (
    BRANCH_CODE,
    CALL_CODE,
    PreDecodedTrace,
    RETURN_CODE,
)

_U16 = np.uint64(16)

# Within-instruction event ranks.  The reference loop touches modules in
# a fixed order inside one instruction; a module's creation position is
# ``first_instruction_index * 32 + rank``, which totally orders first
# touches across the trace (load-path and store-path events never occur
# on the same instruction, so sharing ranks 14-16 between them is safe).
_R_ITLB = 0
_R_L1I = 1
_R_L2_FETCH = 2
_R_DRAM_FETCH = 3
_R_DIRPRED = 4
_R_BTB = 6
_R_RENAME = 7
_R_FETCHQ = 8
_R_RF_READ = 9
_R_EXEC_UNIT = 10
_R_DTLB_LOAD = 11
_R_L2_LOAD = 12
_R_DRAM_LOAD = 13
_R_MEM_A = 14
_R_MEM_B = 15
_R_MEM_C = 16
_R_BYPASS = 17
_R_SCHED = 18
_R_RF_WRITE = 19
_R_ROB = 20
_R_DTLB_STORE = 21
_R_L2_STORE = 22
_R_DRAM_STORE = 23
_R_DC_STORE = 24


class FrontendWalk:
    """Per-instruction front-end outcomes, shared across configurations."""

    __slots__ = (
        "key", "new_line", "dir_mispred", "mispredicted",
        "btb_lookup", "btb_hit", "ras_hit",
    )

    def __init__(self, key, new_line, dir_mispred, mispredicted,
                 btb_lookup, btb_hit, ras_hit):
        self.key = key
        self.new_line = new_line
        self.dir_mispred = dir_mispred
        self.mispredicted = mispredicted
        self.btb_lookup = btb_lookup
        self.btb_hit = btb_hit
        self.ras_hit = ras_hit


class MemoryWalk:
    """Per-instruction hierarchy miss outcomes (latency-independent)."""

    __slots__ = (
        "itlb_miss", "l1i_miss", "il2_miss",
        "dtlb_miss", "l1d_miss", "dl2_miss",
    )

    def __init__(self, itlb_miss, l1i_miss, il2_miss,
                 dtlb_miss, l1d_miss, dl2_miss):
        self.itlb_miss = itlb_miss
        self.l1i_miss = l1i_miss
        self.il2_miss = il2_miss
        self.dtlb_miss = dtlb_miss
        self.l1d_miss = l1d_miss
        self.dl2_miss = dl2_miss


def frontend_walk(pre: PreDecodedTrace, cfg) -> FrontendWalk:
    """Replay direction predictor + BTB + RAS over control instructions.

    Replicates :meth:`repro.cpu.branch_predictor.FrontEndPredictor.process`
    exactly — same table indices, same update order, same RAS bounding —
    but touches only the control indices and emits boolean columns
    instead of per-call outcome objects.
    """
    key = (cfg.btb_entries, cfg.btb_assoc, cfg.ras_depth)
    walk = pre.frontend_walks.get(key)
    if walk is not None:
        return walk

    cols = pre.np_cols
    n = pre.n
    codes = pre.codes
    pcs = pre.pcs
    takens = pre.takens
    targets = pre.targets

    direction = HybridPredictor()
    predict = direction.predict
    update = direction.update
    btb_access = SetAssociativeCache("btb", cfg.btb_entries * 4,
                                     cfg.btb_assoc, 4).access
    ras: List[int] = []
    ras_depth = cfg.ras_depth

    dir_mis = [False] * n
    mispred = [False] * n
    lookup = [False] * n
    btb_hit = [False] * n
    ras_hit = [False] * n

    for i in np.flatnonzero(cols["is_control"]).tolist():
        code = codes[i]
        pc = pcs[i]
        if code == BRANCH_CODE:
            taken = takens[i]
            predicted = predict(pc)
            update(pc, taken)
            if predicted != taken:
                dir_mis[i] = True
                mispred[i] = True
            elif taken:
                lookup[i] = True
                if btb_access(pc):
                    btb_hit[i] = True
                else:
                    mispred[i] = True
        elif code == RETURN_CODE:
            predicted = ras.pop() if ras else None
            if predicted is not None and predicted == targets[i]:
                ras_hit[i] = True
            else:
                mispred[i] = True
        else:  # CALL or JUMP: unconditional, always a BTB lookup
            if code == CALL_CODE:
                ras.append(pc + 4)
                if len(ras) > ras_depth:
                    ras.pop(0)
            lookup[i] = True
            if btb_access(pc):
                btb_hit[i] = True
            elif takens[i]:
                mispred[i] = True

    mispred_arr = np.array(mispred, dtype=bool)
    # A taken or mispredicted control instruction redirects fetch: the
    # next instruction starts a new fetch group regardless of its line.
    redirect = cols["is_control"] & (cols["taken"] | mispred_arr)
    fl = cols["fetch_lines"]
    new_line = np.empty(n, dtype=bool)
    new_line[0] = True  # the reference loop starts with current_line = -1
    new_line[1:] = (fl[1:] != fl[:-1]) | redirect[:-1]

    walk = FrontendWalk(
        key=key,
        new_line=new_line,
        dir_mispred=np.array(dir_mis, dtype=bool),
        mispredicted=mispred_arr,
        btb_lookup=np.array(lookup, dtype=bool),
        btb_hit=np.array(btb_hit, dtype=bool),
        ras_hit=np.array(ras_hit, dtype=bool),
    )
    pre.frontend_walks[key] = walk
    return walk


def memory_walk(pre: PreDecodedTrace, cfg, fe: FrontendWalk,
                prewarm: bool) -> MemoryWalk:
    """Replay TLB/L1I/L1D/L2 LRU evolution, recording per-access misses.

    One pass in program order over the union of fetch-group starts and
    memory operations — the exact access/install sequence of the
    hierarchy's ``*_line`` paths, including the next-line prefetch
    installs and the L2 prewarm preamble.  Latency parameters don't
    affect hit/miss behaviour, so the walk is shared across clock and
    latency variants (keyed by structure + the front-end walk that
    determined the fetch groups).
    """
    key = fe.key + (
        prewarm, cfg.line_bytes, cfg.page_bytes,
        cfg.l1i_size, cfg.l1i_assoc, cfg.l1d_size, cfg.l1d_assoc,
        cfg.l2_size, cfg.l2_assoc,
        cfg.itlb_entries, cfg.dtlb_entries, cfg.tlb_assoc,
    )
    walk = pre.memory_walks.get(key)
    if walk is not None:
        return walk

    cols = pre.np_cols
    n = pre.n
    l1i = SetAssociativeCache("l1i", cfg.l1i_size, cfg.l1i_assoc, cfg.line_bytes)
    l1d = SetAssociativeCache("l1d", cfg.l1d_size, cfg.l1d_assoc, cfg.line_bytes)
    l2 = SetAssociativeCache("l2", cfg.l2_size, cfg.l2_assoc, cfg.line_bytes)
    itlb = TLB("itlb", cfg.itlb_entries, cfg.tlb_assoc, cfg.page_bytes)
    dtlb = TLB("dtlb", cfg.dtlb_entries, cfg.tlb_assoc, cfg.page_bytes)
    if prewarm:
        l2_install = l2.install_line
        for line in pre.prewarm_lines(cfg.line_bytes):
            l2_install(line)

    pc_lines, pc_pages, mem_lines, mem_pages = pre.geometry(
        cfg.line_bytes, cfg.page_bytes
    )
    itlb_access = itlb.access_line
    l1i_access = l1i.access_line
    l1d_access = l1d.access_line
    dtlb_access = dtlb.access_line
    l2_access = l2.access_line
    l1i_install = l1i.install_line
    l1d_install = l1d.install_line
    l2_install = l2.install_line

    new_line = fe.new_line.tolist()
    is_memory = pre.is_memory

    itlb_miss = [False] * n
    l1i_miss = [False] * n
    il2_miss = [False] * n
    dtlb_miss = [False] * n
    l1d_miss = [False] * n
    dl2_miss = [False] * n

    touched = fe.new_line | cols["is_memory"]
    for i in np.flatnonzero(touched).tolist():
        if new_line[i]:
            if not itlb_access(pc_pages[i]):
                itlb_miss[i] = True
            line = pc_lines[i]
            if not l1i_access(line):
                l1i_miss[i] = True
                if not l2_access(line):
                    il2_miss[i] = True
            l1i_install(line + 1)
            l2_install(line + 1)
        if is_memory[i]:
            if not dtlb_access(mem_pages[i]):
                dtlb_miss[i] = True
            mline = mem_lines[i]
            if not l1d_access(mline):
                l1d_miss[i] = True
                if not l2_access(mline):
                    dl2_miss[i] = True
            l1d_install(mline + 1)
            l2_install(mline + 1)

    walk = MemoryWalk(
        itlb_miss=np.array(itlb_miss, dtype=bool),
        l1i_miss=np.array(l1i_miss, dtype=bool),
        il2_miss=np.array(il2_miss, dtype=bool),
        dtlb_miss=np.array(dtlb_miss, dtype=bool),
        l1d_miss=np.array(l1d_miss, dtype=bool),
        dl2_miss=np.array(dl2_miss, dtype=bool),
    )
    pre.memory_walks[key] = walk
    return walk


def _first(mask: np.ndarray, warmup: int) -> Optional[int]:
    """First index >= warmup where ``mask`` holds, or None."""
    sub = mask[warmup:]
    idx = int(np.argmax(sub))
    if not sub[idx]:
        return None
    return warmup + idx


def _pos(*pairs) -> Optional[int]:
    """Minimum first-touch position over ``(first_index, rank)`` pairs."""
    best = None
    for first, rank in pairs:
        if first is None:
            continue
        pos = first * 32 + rank
        if best is None or pos < best:
            best = pos
    return best


class WavefrontPlan:
    """Everything the slim scalar loop and result assembly consume."""

    __slots__ = (
        "n", "warmup", "th",
        # loop columns (plain lists, full trace length)
        "new_line", "fetch_extra", "bubbles", "mispredicted",
        "load_cycles", "load_dram", "memory_miss",
        "dc_load_comp", "pidx", "w0", "w1",
        # static result pieces
        "branch_stats", "cache_stats", "btb_memo_stalls", "wp_predictions",
        "pam_broadcasts", "pam_herded_count", "dc_loads",
        "sched_broadcasts", "memo_btb_lookups", "memo_btb_far",
        # static activity scalars
        "_static", "_firsts",
    )

    def __init__(self, pre: PreDecodedTrace, cfg, warmup: int,
                 fe: FrontendWalk, mem: MemoryWalk):
        cols = pre.np_cols
        n = pre.n
        th = cfg.thermal_herding
        self.n = n
        self.warmup = warmup
        self.th = th

        NL = fe.new_line
        LKP = fe.btb_lookup
        HIT = fe.btb_hit
        RASH = fe.ras_hit
        COND = cols["is_cond"]
        RET = cols["is_return"]
        LD = cols["is_load"]
        ST = cols["is_store"]
        MEM = cols["is_memory"]
        INT = cols["is_intdp"]
        # The execute stage's unit-activity chain: integer-datapath
        # non-memory ops use the partitioned ALU, memory ops the AGU
        # (both the "alu" module), and only non-integer non-memory FP ops
        # touch the FPU.
        INTM = INT | MEM
        FPX = cols["is_fp"] & ~INTM
        DST = cols["has_dst"]
        RL = cols["result_low"]
        HT = cols["has_target"]
        LM, IL2, ITM = mem.l1i_miss, mem.il2_miss, mem.itlb_miss
        DM, DL2, DTM = mem.l1d_miss, mem.dl2_miss, mem.dtlb_miss

        # ---- per-config latency columns for the loop ---- #
        l2_lat = cfg.l2_latency
        dram_c = cfg.dram_cycles
        tlb_pen = cfg.tlb_miss_penalty
        self.new_line = NL.tolist()
        self.fetch_extra = (
            LM.astype(np.int64) * l2_lat
            + IL2.astype(np.int64) * dram_c
            + ITM.astype(np.int64) * tlb_pen
        ).tolist()
        self.load_cycles = (
            cfg.l1_latency
            + DM.astype(np.int64) * l2_lat
            + DL2.astype(np.int64) * dram_c
            + DTM.astype(np.int64) * tlb_pen
        ).tolist()
        self.load_dram = (LD & DL2).tolist()
        self.memory_miss = (LD & (DM | DTM)).tolist()
        self.mispredicted = fe.mispredicted.tolist()
        self.w0, self.w1 = pre.writers()

        if th:
            NEAR = (cols["target"] >> _U16) == (cols["pc"] >> _U16)
            BUB = LKP & HIT & HT & ~NEAR
            self.bubbles = BUB.astype(np.int64).tolist()
            self.dc_load_comp = pre.dc_columns(cfg.dcache_encoding.value)[0]
        else:
            BUB = None
            self.bubbles = [0] * n
            self.dc_load_comp = None
        self.pidx = None  # set by the caller for the dynamic predictor kind

        # ---- windowed sums / firsts for the static result pieces ---- #
        def S(mask) -> int:
            return int(np.count_nonzero(mask[warmup:]))

        s_nl = S(NL)
        s_ld = S(LD)
        s_st = S(ST)
        s_cond = S(COND)
        s_lkp = S(LKP)
        s_dst = S(DST)
        s_alu = S(INTM)
        s_fp = S(FPX)
        s_mem = s_ld + s_st
        s_l2_fetch = S(NL & LM)
        s_l2_load = S(LD & DM)
        s_l2_store = S(ST & DM)
        s_dram_fetch = S(NL & IL2)
        s_dram_load = S(LD & DL2)
        s_dram_store = S(ST & DL2)

        self.branch_stats = BranchStats(
            conditional_branches=s_cond,
            direction_mispredicts=S(COND & fe.dir_mispred),
            btb_lookups=s_lkp,
            btb_misses=S(LKP & ~HIT),
            ras_returns=S(RET),
            ras_mispredicts=S(RET & ~RASH),
        )
        self.cache_stats = {
            "l1i": CacheStats(accesses=s_nl, misses=S(NL & LM)),
            "l1d": CacheStats(accesses=s_mem, misses=s_l2_load + s_l2_store),
            "l2": CacheStats(
                accesses=s_l2_fetch + s_l2_load + s_l2_store,
                misses=s_dram_fetch + s_dram_load + s_dram_store,
            ),
            "itlb": CacheStats(accesses=s_nl, misses=S(NL & ITM)),
            "dtlb": CacheStats(accesses=s_mem, misses=S(MEM & DTM)),
        }

        self.wp_predictions = S(INT) if th else 0
        if th:
            pamh = np.array(pre.pam_herded(), dtype=bool)
            self.pam_broadcasts = s_mem
            self.pam_herded_count = S(MEM & pamh)
            self.dc_loads = s_ld
            self.sched_broadcasts = s_dst
            self.memo_btb_lookups = S(LKP & HIT & HT)
            self.memo_btb_far = S(BUB)
            self.btb_memo_stalls = self.memo_btb_far
        else:
            pamh = None
            self.pam_broadcasts = 0
            self.pam_herded_count = 0
            self.dc_loads = 0
            self.sched_broadcasts = 0
            self.memo_btb_lookups = 0
            self.memo_btb_far = 0
            self.btb_memo_stalls = 0

        # ---- static activity scalars + first-touch indices ---- #
        store_comp = None
        if th:
            sc = np.array(pre.dc_columns(cfg.dcache_encoding.value)[1], dtype=bool)
            store_comp = S(ST & sc)
        self._static = {
            "s_nl": s_nl, "s_ld": s_ld, "s_st": s_st, "s_cond": s_cond,
            "s_lkp": s_lkp, "s_dst": s_dst, "s_alu": s_alu, "s_fp": s_fp,
            "s_mem_ops": s_mem,
            "s_l2": s_l2_fetch + s_l2_load + s_l2_store,
            "s_dram": s_dram_fetch + s_dram_load + s_dram_store,
            "s_rash": S(RASH),
            "s_near": S(LKP & HIT & HT & NEAR) if th else 0,
            "s_dst_low": S(DST & INT & RL),
            "s_wlow": S(DST & RL),
            "s_fill": s_l2_load,
            "s_pam_ld": S(LD & pamh) if th else 0,
            "s_pam_st": S(ST & pamh) if th else 0,
            "s_store_comp": store_comp if th else 0,
        }
        self._firsts = {
            "nl": _first(NL, warmup),
            "cond": _first(COND, warmup),
            "lkp": _first(LKP, warmup),
            "rash": _first(RASH, warmup),
            "ld": _first(LD, warmup),
            "st": _first(ST, warmup),
            "dst": _first(DST, warmup),
            "int": _first(INTM, warmup),
            "fp": _first(FPX, warmup),
            "l2_fetch": _first(NL & LM, warmup),
            "l2_load": _first(LD & DM, warmup),
            "l2_store": _first(ST & DM, warmup),
            "dram_fetch": _first(NL & IL2, warmup),
            "dram_load": _first(LD & DL2, warmup),
            "dram_store": _first(ST & DL2, warmup),
        }

    # ------------------------------------------------------------------ #

    def build_activity(
        self,
        rf1: int, rf4: int, first_rf: int,
        alu1: int, alu4: int,
        l1d1: int, l1d4: int,
        sched_die: List[int],
    ) -> ActivityCounters:
        """Assemble the final activity counters from static sums plus the
        loop's dynamic tallies, in reference creation order."""
        st = self._static
        fi = self._firsts
        warmup = self.warmup
        th = self.th
        entries: List[Tuple[int, str, ModuleActivity]] = []

        def rec(pos: Optional[int], name: str, c1: int, c4: int) -> None:
            if pos is None or (c1 == 0 and c4 == 0):
                return
            entries.append((pos, name, ModuleActivity(
                total=c1 + c4, top_only=c1, per_die=[c1 + c4, c4, c4, c4],
            )))

        rec(_pos((fi["nl"], _R_ITLB)), "itlb", 0, st["s_nl"])
        rec(_pos((fi["nl"], _R_L1I)), "l1_icache", 0, st["s_nl"])
        rec(_pos((fi["l2_fetch"], _R_L2_FETCH), (fi["l2_load"], _R_L2_LOAD),
                 (fi["l2_store"], _R_L2_STORE)), "l2_cache", 0, st["s_l2"])
        rec(_pos((fi["dram_fetch"], _R_DRAM_FETCH),
                 (fi["dram_load"], _R_DRAM_LOAD),
                 (fi["dram_store"], _R_DRAM_STORE)), "dram", 0, st["s_dram"])

        s_cond = st["s_cond"]
        if th:
            if s_cond:
                # Split arrays: predictions touch dies 0-1, updates 0-3.
                entries.append((fi["cond"] * 32 + _R_DIRPRED, "dir_predictor",
                                ModuleActivity(
                                    total=6 * s_cond,
                                    top_only=2 * s_cond,
                                    per_die=[2 * s_cond, 2 * s_cond,
                                             s_cond, s_cond],
                                )))
            near = st["s_near"]
            rec(_pos((fi["lkp"], _R_BTB)), "btb", near, st["s_lkp"] - near)
        else:
            rec(_pos((fi["cond"], _R_DIRPRED)), "dir_predictor", 0, 2 * s_cond)
            rec(_pos((fi["lkp"], _R_BTB)), "btb", 0, st["s_lkp"])
        rec(_pos((fi["rash"], _R_BTB)), "ibtb", 0, st["s_rash"])

        insts = self.n - warmup
        rec(warmup * 32 + _R_RENAME, "rename", 0, insts)
        rec(warmup * 32 + _R_FETCHQ, "fetch_queue", 0, insts)

        # Register file: dynamic reads + static writes.
        first_rf_idx = first_rf if first_rf >= 0 else None
        if th:
            w1c = st["s_wlow"]
            w4c = st["s_dst"] - w1c
        else:
            w1c = 0
            w4c = st["s_dst"]
        rec(_pos((first_rf_idx, _R_RF_READ), (fi["dst"], _R_RF_WRITE)),
            "register_file", rf1 + w1c, rf4 + w4c)

        if th:
            rec(_pos((fi["int"], _R_EXEC_UNIT)), "alu",
                alu1, alu4 + st["s_mem_ops"])
        else:
            rec(_pos((fi["int"], _R_EXEC_UNIT)), "alu", 0, st["s_alu"])
        rec(_pos((fi["fp"], _R_EXEC_UNIT)), "fpu", 0, st["s_fp"])

        rec(_pos((fi["ld"], _R_DTLB_LOAD), (fi["st"], _R_DTLB_STORE)),
            "dtlb", 0, st["s_mem_ops"])

        if th:
            # PAM: loads probe the store queue, stores probe the load queue.
            rec(_pos((fi["ld"], _R_MEM_A)), "store_queue",
                st["s_pam_ld"], st["s_ld"] - st["s_pam_ld"])
            rec(_pos((fi["st"], _R_MEM_A)), "load_queue",
                st["s_pam_st"], st["s_st"] - st["s_pam_st"])
            # L1D data array: dynamic load records + static fills/stores.
            dc1 = l1d1 + st["s_store_comp"]
            dc4 = l1d4 + st["s_fill"] + (st["s_st"] - st["s_store_comp"])
            rec(_pos((fi["ld"], _R_MEM_B), (fi["st"], _R_DC_STORE)),
                "l1_dcache", dc1, dc4)
        else:
            rec(_pos((fi["ld"], _R_MEM_A), (fi["st"], _R_DC_STORE)),
                "l1_dcache", 0, st["s_mem_ops"])
            rec(_pos((fi["ld"], _R_MEM_B), (fi["st"], _R_MEM_A)),
                "load_queue", 0, st["s_mem_ops"])
            rec(_pos((fi["ld"], _R_MEM_C), (fi["st"], _R_MEM_B)),
                "store_queue", 0, st["s_mem_ops"])

        s_dst = st["s_dst"]
        if th:
            low = st["s_dst_low"]
            rec(_pos((fi["dst"], _R_BYPASS)), "bypass", low, s_dst - low)
            total = sum(sched_die)
            if s_dst and total:
                entries.append((fi["dst"] * 32 + _R_SCHED, "scheduler",
                                ModuleActivity(
                                    total=total,
                                    top_only=sched_die[0],
                                    per_die=list(sched_die),
                                )))
            rec(_pos((fi["dst"], _R_ROB)), "rob", low, s_dst - low)
        else:
            rec(_pos((fi["dst"], _R_BYPASS)), "bypass", 0, s_dst)
            rec(_pos((fi["dst"], _R_SCHED)), "scheduler", 0, s_dst)
            rec(_pos((fi["dst"], _R_ROB)), "rob", 0, s_dst)

        entries.sort(key=lambda entry: entry[0])
        counters = ActivityCounters()
        modules = counters.modules()
        for _pos_key, name, activity in entries:
            modules[name] = activity
        return counters


def build_plan(pre: PreDecodedTrace, cfg, warmup: int,
               prewarm: bool) -> WavefrontPlan:
    """Run (or reuse) both walks and assemble the per-config plan."""
    fe = frontend_walk(pre, cfg)
    mem = memory_walk(pre, cfg, fe, prewarm)
    return WavefrontPlan(pre, cfg, warmup, fe, mem)


# ---------------------------------------------------------------------- #
# Interval power extraction
# ---------------------------------------------------------------------- #


class IntervalCapture:
    """Cumulative dynamic-tally snapshots at N-instruction boundaries.

    Armed via :meth:`TimingSimulator.run_compiled`'s ``capture``
    parameter: the loop records its running width-dependent tallies
    (register-file read splits, ALU/L1D width outcomes, scheduler
    broadcast dies) and the commit cycle at the last instruction of each
    interval.  The un-armed hot path pays one boolean list index per
    instruction; snapshots are O(intervals), not O(instructions).
    Interval deltas fall out as vectorized diffs of the snapshots, so
    they sum *exactly* to the aggregate tallies by construction.
    """

    __slots__ = (
        "interval_insts", "warmup", "ends", "cycle_base", "_rows", "_table",
    )

    def __init__(self, interval_insts: int):
        if interval_insts <= 0:
            raise ValueError(
                f"interval_insts must be positive, got {interval_insts}"
            )
        self.interval_insts = int(interval_insts)
        self.warmup = 0
        self.ends: Optional[np.ndarray] = None
        self.cycle_base = 0
        self._rows: List[Tuple[int, ...]] = []
        self._table: Optional[np.ndarray] = None

    def prepare(self, n: int, warmup: int) -> List[bool]:
        """Boundary marks for a trace of ``n`` instructions.

        Intervals cover the measured window ``[warmup, n)`` in chunks of
        ``interval_insts`` (the last chunk may be short).  Returns a
        plain bool list the loop indexes once per instruction.
        """
        span = n - warmup
        if span <= 0:
            raise ValueError(f"warmup ({warmup}) leaves no instructions")
        step = self.interval_insts
        self.warmup = warmup
        self.ends = np.minimum(np.arange(step, span + step, step), span)
        self._rows = []
        self._table = None
        marks = [False] * n
        for end in self.ends:
            marks[warmup + int(end) - 1] = True
        return marks

    def record(self, rf1: int, rf4: int, alu1: int, alu4: int,
               l1d1: int, l1d4: int, sched_die: List[int],
               commit_cycle: int) -> None:
        """Snapshot the running tallies at one interval boundary."""
        self._rows.append((
            rf1, rf4, alu1, alu4, l1d1, l1d4,
            sched_die[0], sched_die[1], sched_die[2], sched_die[3],
            commit_cycle,
        ))

    def finish(self, cycle_base: int) -> None:
        """Seal the capture once the loop has run."""
        self.cycle_base = cycle_base
        self._table = np.array(self._rows, dtype=np.int64)
        if self._table.shape[0] != len(self.ends):
            raise RuntimeError(
                f"captured {self._table.shape[0]} snapshots for "
                f"{len(self.ends)} intervals"
            )

    _COLS = {
        "rf1": 0, "rf4": 1, "alu1": 2, "alu4": 3, "l1d1": 4, "l1d4": 5,
        "sd0": 6, "sd1": 7, "sd2": 8, "sd3": 9,
    }

    def deltas(self, name: str) -> np.ndarray:
        """Per-interval deltas of one cumulative tally column."""
        if self._table is None:
            raise RuntimeError("capture not finished")
        return np.diff(self._table[:, self._COLS[name]], prepend=0)

    def cycle_deltas(self) -> np.ndarray:
        """Commit cycles attributed to each interval (sums to the run's
        total cycle count)."""
        if self._table is None:
            raise RuntimeError("capture not finished")
        return np.diff(self._table[:, 10], prepend=self.cycle_base)


class IntervalActivitySeries:
    """Per-interval activity buckets for one (trace, config) run.

    ``counters[j]`` holds the j-th interval's :class:`ActivityCounters`
    with the *same module set and creation order* as the aggregate run
    result; summing any module across intervals reproduces the aggregate
    counts exactly, and a one-interval series equals the aggregate.
    """

    __slots__ = ("interval_insts", "insts", "cycles", "counters")

    def __init__(self, interval_insts: int, insts: np.ndarray,
                 cycles: np.ndarray, counters: List[ActivityCounters]):
        self.interval_insts = interval_insts
        self.insts = insts
        self.cycles = cycles
        self.counters = counters

    def __len__(self) -> int:
        return len(self.counters)


def build_interval_series(
    pre: PreDecodedTrace,
    cfg,
    warmup: int,
    prewarm: bool,
    capture: IntervalCapture,
    aggregate: ActivityCounters,
) -> IntervalActivitySeries:
    """Bucket per-module activity into the capture's intervals.

    The static activity columns (everything
    :meth:`WavefrontPlan.build_activity` derives from precomputed masks)
    are binned with one ``np.add.reduceat`` per mask over the interval
    boundaries — no per-instruction Python loop; the dynamic
    width-dependent splits come from the capture's snapshot diffs.  The
    per-interval formulas mirror ``build_activity`` exactly, so buckets
    sum to the aggregate counters bit-for-bit.  ``aggregate`` (the run
    result's counters) fixes the module set and creation order.
    """
    fe = frontend_walk(pre, cfg)
    mem = memory_walk(pre, cfg, fe, prewarm)
    cols = pre.np_cols
    th = cfg.thermal_herding
    ends = capture.ends
    nintervals = len(ends)
    starts = np.concatenate(([0], ends[:-1]))

    def B(mask: np.ndarray) -> np.ndarray:
        return np.add.reduceat(mask[warmup:].astype(np.int64), starts)

    NL = fe.new_line
    LKP = fe.btb_lookup
    HIT = fe.btb_hit
    RASH = fe.ras_hit
    COND = cols["is_cond"]
    LD = cols["is_load"]
    ST = cols["is_store"]
    MEM = cols["is_memory"]
    INT = cols["is_intdp"]
    INTM = INT | MEM
    FPX = cols["is_fp"] & ~INTM
    DST = cols["has_dst"]
    RL = cols["result_low"]
    HT = cols["has_target"]
    LM, IL2 = mem.l1i_miss, mem.il2_miss
    DM, DL2 = mem.l1d_miss, mem.dl2_miss

    lengths = np.diff(ends, prepend=0)
    zeros = np.zeros(nintervals, dtype=np.int64)

    b_nl = B(NL)
    b_ld = B(LD)
    b_st = B(ST)
    b_dst = B(DST)
    b_mem = B(MEM)
    b_cond = B(COND)
    b_lkp = B(LKP)
    b_l2 = B(NL & LM) + B(LD & DM) + B(ST & DM)
    b_dram = B(NL & IL2) + B(LD & DL2) + B(ST & DL2)

    rf1 = capture.deltas("rf1")
    rf4 = capture.deltas("rf4")
    alu1 = capture.deltas("alu1")
    alu4 = capture.deltas("alu4")
    l1d1 = capture.deltas("l1d1")
    l1d4 = capture.deltas("l1d4")
    sd = [capture.deltas(f"sd{die}") for die in range(4)]

    if th:
        NEAR = (cols["target"] >> _U16) == (cols["pc"] >> _U16)
        pamh = np.array(pre.pam_herded(), dtype=bool)
        sc = np.array(pre.dc_columns(cfg.dcache_encoding.value)[1], dtype=bool)
        b_near = B(LKP & HIT & HT & NEAR)
        b_wlow = B(DST & RL)
        b_dst_low = B(DST & INT & RL)
        b_pam_ld = B(LD & pamh)
        b_pam_st = B(ST & pamh)
        b_store_comp = B(ST & sc)
        b_fill = B(LD & DM)
        pairs = {
            "btb": (b_near, b_lkp - b_near),
            "register_file": (rf1 + b_wlow, rf4 + (b_dst - b_wlow)),
            "alu": (alu1, alu4 + b_mem),
            "store_queue": (b_pam_ld, b_ld - b_pam_ld),
            "load_queue": (b_pam_st, b_st - b_pam_st),
            "l1_dcache": (l1d1 + b_store_comp,
                          l1d4 + b_fill + (b_st - b_store_comp)),
            "bypass": (b_dst_low, b_dst - b_dst_low),
            "rob": (b_dst_low, b_dst - b_dst_low),
        }
    else:
        pairs = {
            "dir_predictor": (zeros, 2 * b_cond),
            "btb": (zeros, b_lkp),
            "register_file": (rf1, rf4 + b_dst),
            "alu": (zeros, B(INTM)),
            "store_queue": (zeros, b_mem),
            "load_queue": (zeros, b_mem),
            "l1_dcache": (zeros, b_mem),
            "bypass": (zeros, b_dst),
            "rob": (zeros, b_dst),
            "scheduler": (zeros, b_dst),
        }
    pairs.update({
        "itlb": (zeros, b_nl),
        "l1_icache": (zeros, b_nl),
        "l2_cache": (zeros, b_l2),
        "dram": (zeros, b_dram),
        "ibtb": (zeros, B(RASH)),
        "rename": (zeros, lengths),
        "fetch_queue": (zeros, lengths),
        "fpu": (zeros, B(FPX)),
        "dtlb": (zeros, b_mem),
    })

    counters: List[ActivityCounters] = []
    names = list(aggregate.modules().keys())
    for j in range(nintervals):
        bucket = ActivityCounters()
        modules = bucket.modules()
        for name in names:
            if th and name == "dir_predictor":
                c = int(b_cond[j])
                modules[name] = ModuleActivity(
                    total=6 * c, top_only=2 * c,
                    per_die=[2 * c, 2 * c, c, c],
                )
                continue
            if th and name == "scheduler":
                die_counts = [int(sd[die][j]) for die in range(4)]
                modules[name] = ModuleActivity(
                    total=sum(die_counts), top_only=die_counts[0],
                    per_die=die_counts,
                )
                continue
            c1 = int(pairs[name][0][j])
            c4 = int(pairs[name][1][j])
            modules[name] = ModuleActivity(
                total=c1 + c4, top_only=c1, per_die=[c1 + c4, c4, c4, c4],
            )
        counters.append(bucket)

    return IntervalActivitySeries(
        interval_insts=capture.interval_insts,
        insts=lengths,
        cycles=capture.cycle_deltas(),
        counters=counters,
    )
