"""Out-of-order scoreboard timing model.

The simulator assigns each committed trace instruction a fetch, dispatch,
issue, completion, and commit cycle, subject to:

* fetch bandwidth, I-cache/ITLB misses, branch redirects, BTB bubbles;
* dispatch bandwidth and ROB/RS/LQ/SQ/IFQ occupancy (modelled with
  free-at heaps: an allocation waits for the earliest-freed entry);
* register dependences through a ready-cycle scoreboard (bypass has no
  extra latency, matching an aggressive bypass network);
* functional-unit structural hazards and issue bandwidth;
* memory latencies from the cache/TLB hierarchy;
* with Thermal Herding enabled, all the width-misprediction penalties of
  Section 3: register-read group stalls, ALU input stalls and output
  re-executions, D-cache read stalls, and BTB memoization bubbles.

Operand sourcing rule: an operand whose producer completes after this
instruction dispatched arrives through the bypass network, so its width
misprediction is caught by the ALU (one-cycle input stall); operands read
from the register file are checked against the memoization bits at
dispatch and charge the *group* at most one stall cycle (Section 3.1).
"""

from __future__ import annotations

import heapq
import os
from bisect import bisect_right, insort
from collections import deque
from typing import Callable, Dict, List, Optional, Union

from repro.core.activity import ActivityCounters, BatchedActivityCounters, NUM_DIES
from repro.core.alu import PartitionedALU
from repro.core.bypass import BypassNetwork
from repro.core.dcache_encoding import PartialValueCache
from repro.core.lsq_pam import PartialAddressMemoization
from repro.core.register_file import PartitionedRegisterFile
from repro.core.scheduler_allocation import EntryStackedScheduler
from repro.core.width_prediction import WidthPredictor, WidthPredictorStats
from repro.cpu.branch_predictor import FrontEndPredictor
from repro.cpu.caches import build_hierarchy
from repro.cpu.config import CPUConfig
from repro.cpu.predecode import PreDecodedTrace, predecode
from repro.cpu.results import SimulationResult, StallBreakdown
from repro.cpu.wavefront import build_plan
from repro.isa.compiled import CompiledTrace, OPCLASS_LIST
from repro.isa.instruction import TraceInstruction
from repro.isa.opcodes import OpClass, OP_LATENCY
from repro.isa.trace import Trace
from repro.isa.values import is_low_width

#: Timing-model version, part of the on-disk result-cache key.  Bump on
#: any change that alters simulation outcomes so stale entries never hit.
#: The columnar path (run_compiled) is byte-identical to the reference
#: loop by construction and test, so it shares this version.
SIMULATOR_VERSION = 1

#: Set to ``0``/``off`` to force the reference object-path loop instead
#: of the columnar pre-decoded loop (used by CI to prove byte-identity).
ENV_COLUMNAR = "REPRO_COLUMNAR"


def columnar_enabled() -> bool:
    """Whether :func:`simulate` uses the columnar fast path (default on)."""
    return os.environ.get(ENV_COLUMNAR, "1").strip().lower() not in (
        "0", "off", "no", "false"
    )

#: Fault-injection hook: when set, called with each instruction index at
#: the top of the simulation loop.  Armed inside worker processes by the
#: fault harness (:mod:`repro.experiments.faults`) to kill or hang a
#: simulation *mid-flight* — after activity state has started to
#: accumulate — so recovery is exercised against partially-written
#: state, not just clean task entry.  ``None`` (the production default)
#: costs one local-variable branch per instruction.
FAULT_HOOK: Optional[Callable[[int], None]] = None


class _Pool:
    """A pool of identical functional units, tracked by next-free cycle."""

    def __init__(self, units: int):
        if units < 1:
            raise ValueError(f"pool needs at least one unit, got {units}")
        self._free = [0] * units  # min-heap of next-free cycles

    def acquire(self, earliest: int, busy: int = 1) -> int:
        """Reserve the unit that frees soonest; returns the start cycle."""
        start = max(earliest, self._free[0])
        heapq.heapreplace(self._free, start + busy)
        return start

    def earliest_free(self) -> int:
        return self._free[0]


def _build_pools(cfg: CPUConfig):
    """Functional-unit pools plus the OpClass -> pool issue map.

    Shared by :meth:`TimingSimulator.run` and
    :meth:`TimingSimulator.run_compiled`.  LOAD stays a special case
    (either memory port, whichever frees sooner) handled inline by the
    issue stage.
    """
    pools = {
        "int_alu": _Pool(cfg.int_alu_units),
        "int_shift": _Pool(cfg.int_shift_units),
        "int_mul": _Pool(cfg.int_mul_units),
        "fp_add": _Pool(cfg.fp_add_units),
        "fp_mul": _Pool(cfg.fp_mul_units),
        "fp_div": _Pool(cfg.fp_div_units),
        "ld_st": _Pool(cfg.load_store_ports),
        "ld_only": _Pool(cfg.load_only_ports),
    }
    pool_for_op = {
        OpClass.STORE: pools["ld_st"],
        OpClass.ISHIFT: pools["int_shift"],
        OpClass.IMUL: pools["int_mul"],
        OpClass.FADD: pools["fp_add"],
        OpClass.FMUL: pools["fp_mul"],
        OpClass.FDIV: pools["fp_div"],
    }
    for op in OpClass:
        pool_for_op.setdefault(op, pools["int_alu"])
    return pools, pool_for_op


class TimingSimulator:
    """Replays one trace under one configuration."""

    def __init__(self, config: CPUConfig, batched: bool = False):
        self.config = config.resolved()
        # The columnar loop (run_compiled) uses batched activity counters
        # and repackages them as plain counters in the result; the
        # reference loop records eagerly.
        self.counters = BatchedActivityCounters() if batched else ActivityCounters()
        self.hierarchy = build_hierarchy(self.counters, self.config)
        self.frontend = FrontEndPredictor(
            self.counters,
            btb_entries=self.config.btb_entries,
            btb_assoc=self.config.btb_assoc,
            ibtb_entries=self.config.ibtb_entries,
            ibtb_assoc=self.config.ibtb_assoc,
            ras_depth=self.config.ras_depth,
            thermal_herding=self.config.thermal_herding,
        )
        th = self.config.thermal_herding
        self.width_predictor = self._make_width_predictor() if th else None
        self.register_file = PartitionedRegisterFile(self.counters) if th else None
        self.alu = PartitionedALU(self.counters) if th else None
        self.bypass = BypassNetwork(self.counters) if th else None
        self.scheduler = (
            EntryStackedScheduler(self.counters, entries=self.config.rs_size,
                                  policy=self.config.scheduler_policy)
            if th else None
        )
        self.pam = PartialAddressMemoization(self.counters) if th else None
        self.dcache_model = (
            PartialValueCache(self.counters, scheme=self.config.dcache_encoding)
            if th else None
        )
        self.stalls = StallBreakdown()

    def _make_width_predictor(self):
        """Instantiate the configured width predictor variant."""
        from repro.core.static_width import OracleWidthPredictor, StaticWidthPredictor
        from repro.cpu.config import WidthPredictorKind

        kind = self.config.width_predictor_kind
        if kind is WidthPredictorKind.ORACLE:
            return OracleWidthPredictor()
        if kind is WidthPredictorKind.STATIC:
            # The profile is filled in at the start of run() (it needs the
            # trace); start with an empty, all-full-width profile.
            return StaticWidthPredictor({})
        return WidthPredictor(
            self.config.width_predictor_entries, self.config.width_counter_bits
        )

    # ------------------------------------------------------------------ #

    def _reset_measurement(self) -> None:
        """Reset all measured statistics at the warmup boundary.

        Microarchitectural *state* (caches, predictor tables, memoization
        bits) is deliberately preserved — that is the point of warmup.
        """
        from repro.core.width_prediction import WidthPredictorStats
        from repro.cpu.branch_predictor import BranchStats
        from repro.cpu.caches import CacheStats

        self.counters.clear()
        self.stalls = StallBreakdown()
        self.frontend.stats = BranchStats()
        for cache in (self.hierarchy.l1i, self.hierarchy.l1d, self.hierarchy.l2,
                      self.hierarchy.itlb, self.hierarchy.dtlb):
            cache.stats = CacheStats()
        if self.width_predictor is not None:
            self.width_predictor.stats = WidthPredictorStats()
        if self.pam is not None:
            self.pam.broadcasts = 0
            self.pam.herded = 0
        if self.dcache_model is not None:
            self.dcache_model.loads = 0
            self.dcache_model.herded_loads = 0
            self.dcache_model.unsafe_stalls = 0
        if self.scheduler is not None:
            self.scheduler.broadcasts = 0
            self.scheduler.broadcast_die_sum = 0
        if self.frontend.memoized_btb is not None:
            self.frontend.memoized_btb.lookups = 0
            self.frontend.memoized_btb.far_target_stalls = 0
        if self.frontend.split_arrays is not None:
            self.frontend.split_arrays.predictions = 0
            self.frontend.split_arrays.updates = 0
        if self.alu is not None:
            self.alu.input_stalls = 0
            self.alu.reexecutions = 0

    def _prewarm(self, trace: Trace) -> None:
        """Install reused lines into the L2 before timing starts.

        A finite trace window cannot warm a 4 MB L2 the way minutes of
        real execution do, so steady-state residency is approximated from
        reuse: any line the trace touches at least twice would have been
        resident in a long-running simulation (the workloads are
        stationary), while single-touch lines (streaming or pointer-chase
        traffic over large footprints) would miss in steady state too.
        """
        line = self.hierarchy.l2.line_bytes
        region_shift = 16  # 64 KB regions
        access_counts: Dict[int, int] = {}
        region_accesses: Dict[int, int] = {}
        for inst in trace:
            for addr in (inst.pc, inst.mem_addr):
                if addr is None:
                    continue
                tag = addr // line
                access_counts[tag] = access_counts.get(tag, 0) + 1
                region = addr >> region_shift
                region_accesses[region] = region_accesses.get(region, 0) + 1
        # Region-level statistics distinguish three stationary behaviours:
        # * hot regions (access/line ratio >= 2, e.g. stacks and hot sets)
        #   are fully resident;
        # * revisited pools (a meaningful fraction of a region's lines are
        #   reused even if most are touched once in this short window,
        #   e.g. a bounded pointer-chase structure) are resident too;
        # * single-pass streams and vast sparse footprints (no reuse at
        #   all) keep missing, exactly as they would in steady state.
        region_lines: Dict[int, int] = {}
        region_reused: Dict[int, int] = {}
        for tag, count in access_counts.items():
            region = (tag * line) >> region_shift
            region_lines[region] = region_lines.get(region, 0) + 1
            if count >= 2:
                region_reused[region] = region_reused.get(region, 0) + 1
        for tag, count in access_counts.items():
            region = (tag * line) >> region_shift
            lines_here = region_lines[region]
            ratio = region_accesses[region] / lines_here
            reuse_fraction = region_reused.get(region, 0) / lines_here
            if count >= 2 or ratio >= 2.0 or reuse_fraction >= 0.025:
                self.hierarchy.l2.install(tag * line)

    def run(self, trace: Trace, warmup: int = 0, prewarm: bool = True) -> SimulationResult:
        """Simulate ``trace``; the first ``warmup`` instructions warm the
        caches and predictors but are excluded from all reported metrics."""
        cfg = self.config
        counters = self.counters
        if warmup >= len(trace):
            raise ValueError(
                f"warmup ({warmup}) must be smaller than the trace ({len(trace)})"
            )
        if prewarm:
            self._prewarm(trace)
        if cfg.thermal_herding:
            from repro.core.static_width import StaticWidthPredictor, build_width_profile
            if isinstance(self.width_predictor, StaticWidthPredictor):
                # Profile-based static hints: profile the whole trace first.
                self.width_predictor = StaticWidthPredictor(build_width_profile(trace))

        # Fetch state
        next_fetch_floor = 0
        fetch_cycle = 0
        fetched_in_cycle = 0
        current_line = -1
        redirect_pending = False

        # Dispatch state
        dispatch_floor = 0
        last_dispatch_cycle = -1
        dispatched_in_cycle = 0

        # Resource free-at heaps
        rob_heap: List[int] = []
        rs_heap: List[int] = []
        lq_heap: List[int] = []
        sq_heap: List[int] = []
        ifq_ring: List[int] = []  # dispatch cycles of the last ifq_size insts

        # Issue state.  issued_in_cycle is pruned as the dispatch floor
        # advances (see the issue stage) so it never holds one entry per
        # simulated cycle for the whole trace.
        issued_in_cycle: Dict[int, int] = {}
        issue_prune_at = 4096
        pools, pool_for_op = _build_pools(cfg)
        ld_st_pool, ld_only_pool = pools["ld_st"], pools["ld_only"]
        # Miss-status holding registers bound memory-level parallelism:
        # at most mshr_entries DRAM misses may be in flight at once.
        mshr = _Pool(cfg.mshr_entries)

        # Register scoreboard: cycle each architectural register is ready.
        reg_ready: Dict[int, int] = {}

        # Commit state
        last_commit_cycle = 0
        committed_in_cycle = 0

        th = cfg.thermal_herding
        cycle_base = 0

        # Approximate CPI stack: commit-to-commit gaps attributed to each
        # instruction's dominant timing constraint.
        cpi_stack: Dict[str, int] = {}
        prev_commit_for_stack = 0

        fault_hook = FAULT_HOOK

        for index, inst in enumerate(trace):
            if fault_hook is not None:
                fault_hook(index)
            if index == warmup and warmup:
                self._reset_measurement()
                cycle_base = last_commit_cycle
                cpi_stack = {}
                prev_commit_for_stack = last_commit_cycle
            op = inst.op
            stalls_before = self.stalls.total

            # ---------------- FETCH ---------------- #
            line = inst.pc >> 6
            new_line = line != current_line or redirect_pending
            if fetched_in_cycle >= cfg.fetch_width or new_line:
                fetch_cycle += 1
                fetched_in_cycle = 0
            fetch_cycle = max(fetch_cycle, next_fetch_floor)
            # IFQ back-pressure: fetch may only run ifq_size ahead of dispatch.
            if len(ifq_ring) >= cfg.ifq_size:
                fetch_cycle = max(fetch_cycle, ifq_ring[-cfg.ifq_size])
            frontend_miss = False
            if new_line:
                access = self.hierarchy.instruction_fetch(inst.pc)
                if access.cycles > self.hierarchy.l1_latency:
                    # Miss: bubble until the line arrives.
                    fetch_cycle += access.cycles - self.hierarchy.l1_latency
                    frontend_miss = True
                current_line = line
                redirect_pending = False
            fetched_in_cycle += 1
            next_fetch_floor = max(next_fetch_floor, fetch_cycle)

            # Front-end control flow.
            frontend_bubbles = 0
            mispredicted = False
            if op.is_control:
                outcome = self.frontend.process(op, inst.pc, inst.taken, inst.target)
                mispredicted = outcome.mispredicted or (inst.taken and not outcome.target_known)
                frontend_bubbles = outcome.extra_bubbles
                if inst.taken and not mispredicted and op is not OpClass.RETURN \
                        and not outcome.target_known:
                    frontend_bubbles += cfg.btb_miss_bubble
                if inst.taken:
                    redirect_pending = True
                if frontend_bubbles:
                    next_fetch_floor = max(next_fetch_floor, fetch_cycle + frontend_bubbles)
                    if self.frontend.memoized_btb is not None:
                        self.stalls.btb_memoization_stalls += outcome.extra_bubbles

            # ---------------- DECODE / WIDTH PREDICT ---------------- #
            counters.record("rename", dies_active=NUM_DIES)
            counters.record("fetch_queue", dies_active=NUM_DIES)
            predicted_low = False
            actual_low = False
            operands_low = inst.operands_are_low_width
            result_low = is_low_width(inst.result) if inst.writes_register else True
            if th and op.is_integer_datapath:
                # A load/store's prediction concerns its *data* value (the
                # address path is covered by PAM, Section 3.5/3.6); an ALU
                # op's prediction covers its operands and result.
                if op is OpClass.LOAD:
                    actual_low = is_low_width(
                        inst.mem_value if inst.mem_value is not None else inst.result
                    )
                elif op is OpClass.STORE:
                    actual_low = is_low_width(
                        inst.mem_value if inst.mem_value is not None else 0
                    )
                else:
                    actual_low = inst.is_low_width
                prime = getattr(self.width_predictor, "prime", None)
                if prime is not None:  # oracle variant
                    prime(actual_low)
                predicted_low = self.width_predictor.predict_low_width(inst.pc)

            # ---------------- DISPATCH ---------------- #
            dispatch_cycle = max(fetch_cycle + cfg.front_depth, dispatch_floor)
            if dispatch_cycle == last_dispatch_cycle and dispatched_in_cycle >= cfg.decode_width:
                dispatch_cycle += 1
            if rob_heap and len(rob_heap) >= cfg.rob_size:
                dispatch_cycle = max(dispatch_cycle, heapq.heappop(rob_heap))
            if rs_heap and len(rs_heap) >= cfg.rs_size:
                dispatch_cycle = max(dispatch_cycle, heapq.heappop(rs_heap))
            if op is OpClass.LOAD and len(lq_heap) >= cfg.lq_size:
                dispatch_cycle = max(dispatch_cycle, heapq.heappop(lq_heap))
            if op is OpClass.STORE and len(sq_heap) >= cfg.sq_size:
                dispatch_cycle = max(dispatch_cycle, heapq.heappop(sq_heap))

            # Register file read; decide which operands come via bypass.
            ready = 0
            bypass_sourced = False
            for src in inst.srcs:
                src_ready = reg_ready.get(src, 0)
                if src_ready > ready:
                    ready = src_ready
                if src_ready > dispatch_cycle:
                    bypass_sourced = True

            if th and op.is_integer_datapath and inst.srcs:
                if op.is_memory:
                    # Memory ops read full-width address operands; the data
                    # operand of a store follows its memoization bit.  The
                    # width prediction covers the *data* path only, so no
                    # register-read misprediction is possible here.
                    reads = [
                        (src, value, self.register_file.value_is_low(src, value))
                        for src, value in zip(inst.srcs, inst.src_values)
                    ]
                    self.register_file.read_group(reads)
                    effective_low = predicted_low
                elif not bypass_sourced:
                    reads = [
                        (src, value, predicted_low)
                        for src, value in zip(inst.srcs, inst.src_values)
                    ]
                    access = self.register_file.read_group(reads)
                    if access.stall:
                        # One stall for the whole dispatch group.
                        self.stalls.rf_group_stalls += 1
                        self.width_predictor.correct_prediction(inst.pc)
                        dispatch_cycle += 1
                        effective_low = False
                    else:
                        effective_low = predicted_low
                else:
                    effective_low = predicted_low
            else:
                if inst.srcs and not bypass_sourced:
                    counters.record("register_file", dies_active=NUM_DIES)
                effective_low = predicted_low

            if dispatch_cycle != last_dispatch_cycle:
                dispatched_in_cycle = 0
                last_dispatch_cycle = dispatch_cycle
            dispatched_in_cycle += 1
            dispatch_floor = dispatch_cycle
            ifq_ring.append(dispatch_cycle)
            if len(ifq_ring) > cfg.ifq_size * 2:
                del ifq_ring[: cfg.ifq_size]

            # Scheduler entry allocation: chronological occupancy is the
            # number of already-dispatched instructions still waiting to
            # issue at this instruction's dispatch cycle.
            if th:
                occupancy = 1 + sum(1 for c in rs_heap if c > dispatch_cycle)
                self.scheduler.die_for_occupancy(occupancy)

            # ---------------- ISSUE ---------------- #
            earliest = max(dispatch_cycle + 1, ready)

            alu_stall = 0
            reexecute = False
            if th and op.is_integer_datapath and not op.is_memory:
                execution = self.alu.execute(
                    predicted_low=effective_low,
                    operands_low=operands_low,
                    result_low=result_low,
                )
                alu_stall = execution.input_stall_cycles if bypass_sourced else 0
                reexecute = execution.reexecute
                if alu_stall:
                    self.stalls.alu_input_stalls += alu_stall
                if reexecute:
                    self.stalls.alu_reexecutions += 1
            elif op.is_memory:
                # Address generation is a dedicated full-width AGU.
                counters.record("alu", dies_active=NUM_DIES)
            elif op.is_integer_datapath:
                counters.record("alu", dies_active=NUM_DIES)
            elif op.is_fp:
                counters.record("fpu", dies_active=NUM_DIES)

            earliest += alu_stall
            if op is OpClass.LOAD:
                # A load may use either memory port; pick the one free sooner.
                pool = (ld_only_pool
                        if ld_st_pool.earliest_free() > ld_only_pool.earliest_free()
                        else ld_st_pool)
            else:
                pool = pool_for_op[op]
            busy = OP_LATENCY[op] if op is OpClass.FDIV else 1
            issue_cycle = pool.acquire(earliest, busy=busy)
            while issued_in_cycle.get(issue_cycle, 0) >= cfg.issue_width:
                issue_cycle += 1
            issued_in_cycle[issue_cycle] = issued_in_cycle.get(issue_cycle, 0) + 1
            if len(issued_in_cycle) >= issue_prune_at:
                # Every future issue probes a cycle >= dispatch_floor + 1
                # (issue_cycle >= earliest >= dispatch_cycle + 1, and the
                # dispatch floor never decreases), so entries at or below
                # the floor are dead: drop them.  The threshold adapts so
                # a large in-flight window cannot trigger a rebuild per
                # instruction.
                issued_in_cycle = {
                    cycle: count
                    for cycle, count in issued_in_cycle.items()
                    if cycle > dispatch_floor
                }
                issue_prune_at = max(4096, 2 * len(issued_in_cycle))


            # ---------------- EXECUTE / COMPLETE ---------------- #
            latency = OP_LATENCY[op]
            memory_miss = False
            if op is OpClass.LOAD:
                assert inst.mem_addr is not None
                access = self.hierarchy.load(inst.mem_addr)
                memory_miss = access.level != "l1" or access.tlb_miss
                if access.level == "dram":
                    # Wait for a free MSHR before the miss can go out.
                    miss_start = mshr.acquire(issue_cycle + 1, busy=access.cycles)
                    latency += miss_start - (issue_cycle + 1)
                latency += access.cycles
                if th:
                    self.pam.load_broadcast(inst.mem_addr)
                    outcome = self.dcache_model.record_load(
                        inst.mem_addr,
                        inst.mem_value if inst.mem_value is not None else 0,
                        predicted_low=effective_low,
                    )
                    if outcome.stall_cycles:
                        self.stalls.dcache_width_stalls += outcome.stall_cycles
                        latency += outcome.stall_cycles
                    if access.level != "l1":
                        self.dcache_model.record_fill()
                else:
                    counters.record("l1_dcache", dies_active=NUM_DIES)
                    counters.record("load_queue", dies_active=NUM_DIES)
                    counters.record("store_queue", dies_active=NUM_DIES)
            elif op is OpClass.STORE and th:
                self.pam.store_broadcast(inst.mem_addr)
            elif op is OpClass.STORE:
                counters.record("load_queue", dies_active=NUM_DIES)
                counters.record("store_queue", dies_active=NUM_DIES)

            if reexecute:
                latency += OP_LATENCY[op]
            complete_cycle = issue_cycle + latency

            # Result broadcast: bypass + scheduler wakeup + RF/ROB write.
            if inst.writes_register:
                reg_ready[inst.dst] = complete_cycle
                if th:
                    self.bypass.broadcast(result_low if op.is_integer_datapath else False)
                    wakeup_occupancy = sum(1 for c in rs_heap if c > complete_cycle)
                    self.scheduler.broadcast_with_occupancy(wakeup_occupancy)
                    self.register_file.write(inst.dst, inst.result)
                    self.counters.record(
                        "rob", dies_active=1 if (op.is_integer_datapath and result_low) else NUM_DIES
                    )
                else:
                    counters.record("bypass", dies_active=NUM_DIES)
                    counters.record("scheduler", dies_active=NUM_DIES)
                    counters.record("register_file", dies_active=NUM_DIES)
                    counters.record("rob", dies_active=NUM_DIES)

            # Train the width predictor on the architectural outcome.
            if th and op.is_integer_datapath:
                self.width_predictor.record_and_train(inst.pc, predicted_low, actual_low)

            # Branch resolution.
            if op.is_control and mispredicted:
                next_fetch_floor = max(
                    next_fetch_floor, complete_cycle + cfg.redirect_penalty
                )
                redirect_pending = True

            # ---------------- COMMIT ---------------- #
            commit_cycle = max(complete_cycle + 1, last_commit_cycle)
            if commit_cycle == last_commit_cycle and committed_in_cycle >= cfg.commit_width:
                commit_cycle += 1
            if commit_cycle != last_commit_cycle:
                committed_in_cycle = 0
                last_commit_cycle = commit_cycle
            committed_in_cycle += 1

            # CPI-stack attribution for this instruction's commit gap.
            stall_total_now = self.stalls.total
            if th and stall_total_now != stalls_before:
                category = "width"
            elif op.is_control and mispredicted:
                category = "branch"
            elif memory_miss:
                category = "memory"
            elif frontend_miss:
                category = "frontend"
            elif ready > dispatch_cycle + 1:
                category = "dependency"
            elif issue_cycle > earliest:
                category = "structural"
            else:
                category = "base"
            gap = commit_cycle - prev_commit_for_stack
            if gap > 0:
                cpi_stack[category] = cpi_stack.get(category, 0) + gap
            prev_commit_for_stack = commit_cycle

            if op is OpClass.STORE:
                assert inst.mem_addr is not None
                self.hierarchy.store(inst.mem_addr)
                if th:
                    self.dcache_model.record_store(
                        inst.mem_addr,
                        inst.mem_value if inst.mem_value is not None else 0,
                    )
                else:
                    counters.record("l1_dcache", dies_active=NUM_DIES)

            heapq.heappush(rob_heap, commit_cycle)
            heapq.heappush(rs_heap, issue_cycle + 1)
            if op is OpClass.LOAD:
                heapq.heappush(lq_heap, commit_cycle)
            elif op is OpClass.STORE:
                heapq.heappush(sq_heap, commit_cycle)

        total_cycles = (last_commit_cycle - cycle_base) if trace.instructions else 0
        herding = self._herding_metrics()
        return SimulationResult(
            benchmark=trace.name,
            benchmark_class=trace.benchmark_class,
            config_name=cfg.name,
            clock_ghz=cfg.clock_ghz,
            instructions=len(trace) - warmup,
            cycles=max(total_cycles, 1),
            activity=counters,
            branch_stats=self.frontend.stats,
            cache_stats={
                "l1i": self.hierarchy.l1i.stats,
                "l1d": self.hierarchy.l1d.stats,
                "l2": self.hierarchy.l2.stats,
                "itlb": self.hierarchy.itlb.stats,
                "dtlb": self.hierarchy.dtlb.stats,
            },
            width_stats=self.width_predictor.stats if th else None,
            stalls=self.stalls,
            herding=herding,
            cpi_stack=cpi_stack,
        )

    # ------------------------------------------------------------------ #

    def run_compiled(self, pre: PreDecodedTrace, warmup: int = 0,
                     prewarm: bool = True,
                     capture: Optional["IntervalCapture"] = None
                     ) -> SimulationResult:
        """The batched wavefront twin of :meth:`run`.

        Everything per-instruction that does not depend on dynamic cycle
        counts is precomputed by :mod:`repro.cpu.wavefront` into plan
        columns (front-end outcomes, cache-miss latencies, BTB bubbles)
        and static result pieces (branch/cache stats, herding tallies,
        position-ordered activity counts).  The loop below keeps only the
        genuinely serial resources: free-at queues for ROB/RS/LQ/SQ
        entries, per-cycle fetch/dispatch/issue/commit bandwidth, MSHR
        waits, the dependency scoreboard, and the width-state machines
        whose decisions feed timing (predictor counters, register
        memoization bits, L1D encodings).  It performs no activity
        recording and no model method calls; the handful of
        width-dependent activity splits are tallied in locals and merged
        with the static counts by
        :meth:`~repro.cpu.wavefront.WavefrontPlan.build_activity`, which
        reproduces the reference loop's module creation order.  The
        returned :class:`SimulationResult` pickles byte-identically to
        :meth:`run`'s (the equivalence tests enforce this).

        ``capture`` (an :class:`~repro.cpu.wavefront.IntervalCapture`)
        snapshots the running dynamic tallies at interval boundaries for
        interval power extraction; when None the loop pays a single
        boolean check per instruction and the result is unchanged.
        """
        cfg = self.config
        n = pre.n
        if warmup >= n:
            raise ValueError(
                f"warmup ({warmup}) must be smaller than the trace ({n})"
            )
        th = cfg.thermal_herding
        plan = build_plan(pre, cfg, warmup, prewarm)

        # Plan columns: the timing consequences of precomputed outcomes.
        col_new_line = plan.new_line
        col_fetch_extra = plan.fetch_extra
        col_bubbles = plan.bubbles
        col_mispred = plan.mispredicted
        col_load_cycles = plan.load_cycles
        col_load_dram = plan.load_dram
        col_memory_miss = plan.memory_miss
        col_dc_comp = plan.dc_load_comp
        writers0, writers1 = pre.writers()

        # Trace columns.
        pcs = pre.pcs
        codes = pre.codes
        col_is_memory = pre.is_memory
        col_is_intdp = pre.is_intdp
        col_is_load = pre.is_load
        col_is_store = pre.is_store
        col_srcs = pre.srcs
        col_svals_low = pre.svals_low
        col_dsts = pre.dsts
        col_operands_low = pre.operands_low
        col_result_low = pre.result_low
        col_actual_low = pre.actual_low
        col_latency = pre.latency
        col_busy = pre.busy

        # Hoisted config scalars.
        fetch_width = cfg.fetch_width
        ifq_size = cfg.ifq_size
        front_depth = cfg.front_depth
        decode_width = cfg.decode_width
        rob_size = cfg.rob_size
        rs_size = cfg.rs_size
        lq_size = cfg.lq_size
        sq_size = cfg.sq_size
        issue_width = cfg.issue_width
        commit_width = cfg.commit_width
        redirect_penalty = cfg.redirect_penalty

        # Width-state machines, inlined.  Predictor counters, the sticky
        # full-width overrides of the static profile, and the register
        # memoization bits all evolve *with* loop state (stalls consult
        # them, corrections write them back), so they stay in the loop —
        # as plain dict/list operations instead of model calls.
        dynamic_kind = static_kind = oracle_kind = False
        wp_table: List[int] = []
        wp_index: List[int] = []
        wp_threshold = wp_max = 0
        wp_profile_get = None
        wp_merged: Dict[int, bool] = {}
        top_first = True
        sched_cap = 1
        if th:
            from repro.core.scheduler_allocation import AllocationPolicy
            from repro.core.static_width import StaticWidthPredictor
            from repro.cpu.config import WidthPredictorKind

            kind = cfg.width_predictor_kind
            if kind is WidthPredictorKind.ORACLE:
                oracle_kind = True
            elif isinstance(self.width_predictor, StaticWidthPredictor):
                static_kind = True
                self.width_predictor = StaticWidthPredictor(pre.width_profile())
                # Profile lookups and the sticky full-width overrides
                # merge into one dict: a correction pins its PC to False.
                wp_merged = dict(pre.width_profile())
                wp_profile_get = wp_merged.get
            else:
                dynamic_kind = True
                wp = self.width_predictor
                wp_table = wp._table
                wp_threshold = wp._threshold
                wp_max = wp._max_count
                wp_index = pre.pred_index(wp._mask)
            top_first = cfg.scheduler_policy is AllocationPolicy.TOP_FIRST
            sched_cap = rs_size // 4

        # Fetch state
        next_fetch_floor = 0
        fetch_cycle = 0
        fetched_in_cycle = 0

        # Dispatch state
        dispatch_floor = 0
        last_dispatch_cycle = -1
        dispatched_in_cycle = 0

        # Resource free-at queues.  ROB/LQ/SQ free-at cycles are produced
        # in non-decreasing order, so FIFO popleft == heappop; RS free-at
        # cycles are not monotonic, so a bisect-sorted list keeps pop-min
        # O(1) and turns occupancy counts into binary searches.
        rob_q = deque()
        rs_list: List[int] = []
        lq_q = deque()
        sq_q = deque()
        ifq_ring: List[int] = []  # dispatch cycles of the trailing window

        # Issue state (same pruning discipline as the reference loop).
        issued_in_cycle: Dict[int, int] = {}
        issue_prune_at = 4096
        pools, pool_for_op = _build_pools(cfg)
        pool_by_code = [pool_for_op[op] for op in OPCLASS_LIST]
        ld_st_pool, ld_only_pool = pools["ld_st"], pools["ld_only"]
        ld_st_free = ld_st_pool.earliest_free
        ld_only_free = ld_only_pool.earliest_free
        mshr_acquire = _Pool(cfg.mshr_entries).acquire

        # Dependency scoreboard: completion cycle per producing
        # instruction.  The writer columns map each source operand slot to
        # its producer index, replacing the per-register ready dict.
        completes = [0] * n
        # Register width memoization bits (the partitioned register
        # file's lazily installed state).
        memo: Dict[int, bool] = {}
        memo_get = memo.get

        # Commit state
        last_commit_cycle = 0
        committed_in_cycle = 0
        cycle_base = 0

        # Dynamic tallies: stall counters, width-dependent activity
        # splits, and predictor outcome counts — everything the static
        # plan cannot know.  All reset at the warmup boundary.
        rf_group_stalls = 0
        alu_input_stalls = 0
        alu_reexecutions = 0
        dcache_width_stalls = 0
        btb_memoization_stalls = 0
        rf1 = rf4 = 0
        first_rf = -1
        alu1 = alu4 = 0
        l1d1 = l1d4 = 0
        dc_herded = dc_unsafe = 0
        wp_hits = wp_unsafe = wp_safe = 0
        sched_die = [0, 0, 0, 0]
        sched_rr = 0  # persists across the warmup boundary, like the model

        cpi_stack: Dict[str, int] = {}
        prev_commit_for_stack = 0

        fault_hook = FAULT_HOOK
        capture_marks = capture.prepare(n, warmup) if capture is not None else None

        for index in range(n):
            if fault_hook is not None:
                fault_hook(index)
            if index == warmup and warmup:
                rf_group_stalls = 0
                alu_input_stalls = 0
                alu_reexecutions = 0
                dcache_width_stalls = 0
                btb_memoization_stalls = 0
                rf1 = rf4 = 0
                first_rf = -1
                alu1 = alu4 = 0
                l1d1 = l1d4 = 0
                dc_herded = dc_unsafe = 0
                wp_hits = wp_unsafe = wp_safe = 0
                sched_die = [0, 0, 0, 0]
                cycle_base = last_commit_cycle
                cpi_stack = {}
                prev_commit_for_stack = last_commit_cycle
            stalled = False

            # ---------------- FETCH ---------------- #
            new_line = col_new_line[index]
            if new_line or fetched_in_cycle >= fetch_width:
                fetch_cycle += 1
                fetched_in_cycle = 0
            if fetch_cycle < next_fetch_floor:
                fetch_cycle = next_fetch_floor
            if len(ifq_ring) >= ifq_size:
                floor = ifq_ring[-ifq_size]
                if fetch_cycle < floor:
                    fetch_cycle = floor
            frontend_miss = False
            if new_line:
                extra = col_fetch_extra[index]
                if extra:
                    fetch_cycle += extra
                    frontend_miss = True
            fetched_in_cycle += 1
            if next_fetch_floor < fetch_cycle:
                next_fetch_floor = fetch_cycle

            # Front-end bubbles (memoized-BTB far targets; herding only).
            bubbles = col_bubbles[index]
            if bubbles:
                floor = fetch_cycle + bubbles
                if next_fetch_floor < floor:
                    next_fetch_floor = floor
                btb_memoization_stalls += bubbles
                stalled = True

            # ---------------- DECODE / WIDTH PREDICT ---------------- #
            intdp = col_is_intdp[index]
            predict_width = th and intdp
            if predict_width:
                actual_low = col_actual_low[index]
                if dynamic_kind:
                    predicted_low = wp_table[wp_index[index]] < wp_threshold
                elif oracle_kind:
                    predicted_low = actual_low
                else:
                    predicted_low = wp_profile_get(pcs[index], False)
            else:
                predicted_low = False

            # ---------------- DISPATCH ---------------- #
            dispatch_cycle = fetch_cycle + front_depth
            if dispatch_cycle < dispatch_floor:
                dispatch_cycle = dispatch_floor
            if (dispatch_cycle == last_dispatch_cycle
                    and dispatched_in_cycle >= decode_width):
                dispatch_cycle += 1
            if rob_q and len(rob_q) >= rob_size:
                freed = rob_q.popleft()
                if freed > dispatch_cycle:
                    dispatch_cycle = freed
            if rs_list and len(rs_list) >= rs_size:
                freed = rs_list.pop(0)
                if freed > dispatch_cycle:
                    dispatch_cycle = freed
            is_load = col_is_load[index]
            is_store = col_is_store[index]
            if is_load and len(lq_q) >= lq_size:
                freed = lq_q.popleft()
                if freed > dispatch_cycle:
                    dispatch_cycle = freed
            if is_store and len(sq_q) >= sq_size:
                freed = sq_q.popleft()
                if freed > dispatch_cycle:
                    dispatch_cycle = freed

            # Dependencies through the writer columns.
            w = writers0[index]
            ready = completes[w] if w >= 0 else 0
            w = writers1[index]
            if w >= 0:
                other = completes[w]
                if other > ready:
                    ready = other
            bypass_sourced = ready > dispatch_cycle

            # Register file read: width memoization bits + group stalls.
            srcs = col_srcs[index]
            effective_low = predicted_low
            if predict_width and srcs:
                if is_load or is_store:
                    # Memory ops read full-width address operands; each
                    # read follows its operand's memoization bit, so no
                    # register-read misprediction is possible here.
                    for src, vlow in zip(srcs, col_svals_low[index]):
                        m = memo_get(src)
                        if m is None:
                            memo[src] = m = vlow
                        if m:
                            rf1 += 1
                        else:
                            rf4 += 1
                    if first_rf < 0:
                        first_rf = index
                elif not bypass_sourced:
                    group_stall = False
                    for src, vlow in zip(srcs, col_svals_low[index]):
                        m = memo_get(src)
                        if m is None:
                            memo[src] = m = vlow
                        if predicted_low and m:
                            rf1 += 1
                        else:
                            rf4 += 1
                            if predicted_low:
                                group_stall = True
                    if first_rf < 0:
                        first_rf = index
                    if group_stall:
                        # One stall for the whole dispatch group; correct
                        # the in-flight prediction (Section 3.1).
                        rf_group_stalls += 1
                        stalled = True
                        if dynamic_kind:
                            wp_table[wp_index[index]] = wp_max
                        elif static_kind:
                            wp_merged[pcs[index]] = False
                        dispatch_cycle += 1
                        effective_low = False
            elif srcs and not bypass_sourced:
                rf4 += 1
                if first_rf < 0:
                    first_rf = index

            if dispatch_cycle != last_dispatch_cycle:
                dispatched_in_cycle = 0
                last_dispatch_cycle = dispatch_cycle
            dispatched_in_cycle += 1
            dispatch_floor = dispatch_cycle
            ifq_ring.append(dispatch_cycle)
            if len(ifq_ring) > ifq_size * 2:
                del ifq_ring[:ifq_size]

            # ---------------- ISSUE ---------------- #
            earliest = dispatch_cycle + 1
            if ready > earliest:
                earliest = ready

            alu_stall = 0
            reexecute = False
            is_memory = col_is_memory[index]
            if predict_width and not is_memory:
                # Partitioned ALU width gating, inlined.
                if not effective_low:
                    alu4 += 1
                elif not col_operands_low[index]:
                    alu4 += 1
                    if bypass_sourced:
                        alu_stall = 1
                        alu_input_stalls += 1
                        stalled = True
                elif not col_result_low[index]:
                    # Output misprediction: a wasted low-width pass, then
                    # a full-width re-execution.
                    alu1 += 1
                    alu4 += 1
                    reexecute = True
                    alu_reexecutions += 1
                    stalled = True
                else:
                    alu1 += 1

            earliest += alu_stall
            if is_load:
                pool = (ld_only_pool
                        if ld_st_free() > ld_only_free()
                        else ld_st_pool)
            else:
                pool = pool_by_code[codes[index]]
            issue_cycle = pool.acquire(earliest, col_busy[index])
            count = issued_in_cycle.get(issue_cycle, 0)
            while count >= issue_width:
                issue_cycle += 1
                count = issued_in_cycle.get(issue_cycle, 0)
            issued_in_cycle[issue_cycle] = count + 1
            if len(issued_in_cycle) >= issue_prune_at:
                # Entries at or below the dispatch floor are dead: every
                # future probe targets a cycle > dispatch_floor.
                issued_in_cycle = {
                    cycle: issued
                    for cycle, issued in issued_in_cycle.items()
                    if cycle > dispatch_floor
                }
                issue_prune_at = max(4096, 2 * len(issued_in_cycle))

            # ---------------- EXECUTE ---------------- #
            latency = col_latency[index]
            memory_miss = False
            if is_load:
                access_cycles = col_load_cycles[index]
                memory_miss = col_memory_miss[index]
                if col_load_dram[index]:
                    miss_start = mshr_acquire(issue_cycle + 1, access_cycles)
                    latency += miss_start - (issue_cycle + 1)
                latency += access_cycles
                if th:
                    # Partial-value-encoded L1D read, inlined.
                    if effective_low:
                        if col_dc_comp[index]:
                            l1d1 += 1
                            dc_herded += 1
                        else:
                            l1d4 += 1
                            dc_unsafe += 1
                            dcache_width_stalls += 1
                            stalled = True
                            latency += 1
                    else:
                        l1d4 += 1

            if reexecute:
                latency += col_latency[index]
            complete_cycle = issue_cycle + latency

            # Result broadcast.
            dst = col_dsts[index]
            if dst is not None:
                completes[index] = complete_cycle
                if th:
                    memo[dst] = col_result_low[index]
                    # Entry-stacked scheduler wakeup gating, inlined: the
                    # broadcast wakes the dies holding still-busy entries
                    # (occupancy == RS free-at cycles past completion).
                    occ = len(rs_list) - bisect_right(rs_list, complete_cycle)
                    if top_first:
                        if occ == 0:
                            dies = 1
                        else:
                            dies = -(-occ // sched_cap)
                        for die in range(dies):
                            sched_die[die] += 1
                    else:
                        if occ == 0:
                            dies = 1
                        elif occ < 4:
                            dies = occ
                        else:
                            dies = 4
                        for offset in range(dies):
                            sched_die[(sched_rr + offset) & 3] += 1
                        sched_rr = (sched_rr + 1) & 3

            # Width predictor training (after any in-flight correction).
            if predict_width:
                if predicted_low == actual_low:
                    wp_hits += 1
                elif predicted_low:
                    wp_unsafe += 1
                else:
                    wp_safe += 1
                if dynamic_kind:
                    ti = wp_index[index]
                    counter = wp_table[ti]
                    if actual_low:
                        if counter > 0:
                            wp_table[ti] = counter - 1
                    elif counter < wp_max:
                        wp_table[ti] = counter + 1

            # Branch resolution.
            mispredicted = col_mispred[index]
            if mispredicted:
                floor = complete_cycle + redirect_penalty
                if next_fetch_floor < floor:
                    next_fetch_floor = floor

            # ---------------- COMMIT ---------------- #
            commit_cycle = complete_cycle + 1
            if commit_cycle < last_commit_cycle:
                commit_cycle = last_commit_cycle
            if (commit_cycle == last_commit_cycle
                    and committed_in_cycle >= commit_width):
                commit_cycle += 1
            if commit_cycle != last_commit_cycle:
                committed_in_cycle = 0
                last_commit_cycle = commit_cycle
            committed_in_cycle += 1

            # CPI-stack attribution.
            if stalled:
                category = "width"
            elif mispredicted:
                category = "branch"
            elif memory_miss:
                category = "memory"
            elif frontend_miss:
                category = "frontend"
            elif ready > dispatch_cycle + 1:
                category = "dependency"
            elif issue_cycle > earliest:
                category = "structural"
            else:
                category = "base"
            gap = commit_cycle - prev_commit_for_stack
            if gap > 0:
                cpi_stack[category] = cpi_stack.get(category, 0) + gap
            prev_commit_for_stack = commit_cycle

            rob_q.append(commit_cycle)
            insort(rs_list, issue_cycle + 1)
            if is_load:
                lq_q.append(commit_cycle)
            elif is_store:
                sq_q.append(commit_cycle)

            if capture_marks is not None and capture_marks[index]:
                capture.record(rf1, rf4, alu1, alu4, l1d1, l1d4,
                               sched_die, last_commit_cycle)

        if capture is not None:
            capture.finish(cycle_base)

        # ---------------- RESULT ASSEMBLY ---------------- #
        self.stalls = StallBreakdown(
            rf_group_stalls=rf_group_stalls,
            alu_input_stalls=alu_input_stalls,
            alu_reexecutions=alu_reexecutions,
            dcache_width_stalls=dcache_width_stalls,
            btb_memoization_stalls=btb_memoization_stalls,
        )
        activity = plan.build_activity(
            rf1, rf4, first_rf, alu1, alu4, l1d1, l1d4, sched_die
        )
        self.counters = activity
        self.frontend.stats = plan.branch_stats
        if th:
            predictions = plan.wp_predictions
            if oracle_kind:
                self.width_predictor.stats = WidthPredictorStats(
                    predictions=predictions, correct=predictions
                )
            else:
                self.width_predictor.stats = WidthPredictorStats(
                    predictions=predictions,
                    correct=wp_hits,
                    unsafe_mispredictions=wp_unsafe,
                    safe_mispredictions=wp_safe,
                )
            self.pam.broadcasts = plan.pam_broadcasts
            self.pam.herded = plan.pam_herded_count
            self.dcache_model.loads = plan.dc_loads
            self.dcache_model.herded_loads = dc_herded
            self.dcache_model.unsafe_stalls = dc_unsafe
            self.scheduler.broadcasts = plan.sched_broadcasts
            self.scheduler.broadcast_die_sum = (
                sched_die[0] + sched_die[1] + sched_die[2] + sched_die[3]
            )
            memoized = self.frontend.memoized_btb
            memoized.lookups = plan.memo_btb_lookups
            memoized.far_target_stalls = plan.memo_btb_far

        total_cycles = (last_commit_cycle - cycle_base) if n else 0
        herding = self._herding_metrics()
        return SimulationResult(
            benchmark=pre.name,
            benchmark_class=pre.benchmark_class,
            config_name=cfg.name,
            clock_ghz=cfg.clock_ghz,
            instructions=n - warmup,
            cycles=max(total_cycles, 1),
            activity=activity,
            branch_stats=plan.branch_stats,
            cache_stats=plan.cache_stats,
            width_stats=self.width_predictor.stats if th else None,
            stalls=self.stalls,
            herding=herding,
            cpi_stack=cpi_stack,
        )

    # ------------------------------------------------------------------ #

    def _herding_metrics(self) -> Dict[str, float]:
        metrics: Dict[str, float] = {}
        if self.pam is not None:
            metrics["pam_herded"] = self.pam.herded_fraction
        if self.dcache_model is not None:
            metrics["dcache_herded_loads"] = self.dcache_model.herded_load_fraction
        if self.scheduler is not None:
            metrics["scheduler_dies_per_broadcast"] = self.scheduler.mean_dies_per_broadcast
        if self.frontend.memoized_btb is not None:
            metrics["btb_herded"] = self.frontend.memoized_btb.herded_fraction
        for name, module in self.counters.modules().items():
            if module.total:
                metrics[f"herded::{name}"] = module.herded_fraction
        return metrics


def simulate(trace: Union[Trace, CompiledTrace], config: CPUConfig,
             warmup: int = 0) -> SimulationResult:
    """Convenience wrapper: run ``trace`` under ``config``.

    ``warmup`` instructions at the head of the trace warm caches and
    predictors without contributing to the reported metrics (the trace
    analogue of SimPoint's warmed simulation points).

    Accepts either an object-form :class:`Trace` or a
    :class:`~repro.isa.compiled.CompiledTrace`.  By default the columnar
    fast path is used (compiling object traces on first use); setting
    ``REPRO_COLUMNAR=0`` forces the reference loop, which produces
    byte-identical results by construction.  A trace the columnar layout
    cannot represent falls back to the reference loop transparently.
    """
    if isinstance(trace, Trace):
        if columnar_enabled():
            compiled = trace.compiled()
            if compiled is not None:
                return TimingSimulator(config, batched=True).run_compiled(
                    predecode(compiled), warmup=warmup
                )
        return TimingSimulator(config).run(trace, warmup=warmup)
    if columnar_enabled():
        return TimingSimulator(config, batched=True).run_compiled(
            predecode(trace), warmup=warmup
        )
    return TimingSimulator(config).run(trace.to_trace(), warmup=warmup)
