"""Processor configuration (Table 1) and the paper's five configurations.

Figure 8 evaluates:

* ``Base``  — the planar baseline at 2.66 GHz.
* ``TH``    — Thermal Herding techniques at the baseline frequency
  (isolates the IPC cost of width mispredictions).
* ``Pipe``  — the 3D pipeline optimizations at the baseline frequency
  (shorter branch-resolution pipeline, faster L2 in cycles).
* ``Fast``  — the baseline microarchitecture at the 3D clock frequency
  (isolates the IPC cost of relatively slower DRAM).
* ``3D``    — everything combined: Thermal Herding + pipeline
  optimizations + 3D clock frequency.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

import enum

from repro.circuits.frequency import derive_frequencies
from repro.core.dcache_encoding import EncodingScheme
from repro.core.scheduler_allocation import AllocationPolicy


class WidthPredictorKind(enum.Enum):
    """Which width predictor drives the Thermal Herding datapath."""

    DYNAMIC = "dynamic"   # the paper's PC-indexed two-bit counters
    STATIC = "static"     # profile-based static hints (ablation)
    ORACLE = "oracle"     # always correct (upper bound)


@dataclass(frozen=True)
class CPUConfig:
    """All microarchitectural and feature parameters of one configuration."""

    name: str = "base"
    clock_ghz: float = 2.66

    # widths (Table 1)
    fetch_width: int = 4
    decode_width: int = 4
    commit_width: int = 4
    issue_width: int = 6

    # window sizes (Table 1)
    rob_size: int = 96
    rs_size: int = 32
    lq_size: int = 32
    sq_size: int = 20
    ifq_size: int = 16

    # functional units (Table 1)
    int_alu_units: int = 3
    int_shift_units: int = 2
    int_mul_units: int = 1
    fp_add_units: int = 1
    fp_mul_units: int = 1
    fp_div_units: int = 1
    load_store_ports: int = 1
    load_only_ports: int = 1

    # memory hierarchy (Table 1)
    l1i_size: int = 32 << 10
    l1i_assoc: int = 8
    l1d_size: int = 32 << 10
    l1d_assoc: int = 8
    line_bytes: int = 64
    l1_latency: int = 3
    l2_size: int = 4 << 20
    l2_assoc: int = 16
    l2_latency: int = 12
    dram_latency_ns: float = 100.0
    itlb_entries: int = 128
    dtlb_entries: int = 256
    tlb_assoc: int = 4
    tlb_miss_penalty: int = 30
    page_bytes: int = 4096
    #: outstanding DRAM misses (memory-level parallelism bound)
    mshr_entries: int = 8

    # front end (Table 1)
    btb_entries: int = 2048
    btb_assoc: int = 4
    ibtb_entries: int = 512
    ibtb_assoc: int = 4
    ras_depth: int = 16
    front_depth: int = 8          # fetch -> dispatch pipeline stages
    redirect_penalty: int = 4     # execute -> fetch redirect latency
    btb_miss_bubble: int = 2      # decode-computed target for direct branches

    # Thermal Herding features
    thermal_herding: bool = False
    width_predictor_entries: int = 4096
    width_counter_bits: int = 2
    width_predictor_kind: WidthPredictorKind = WidthPredictorKind.DYNAMIC
    dcache_encoding: EncodingScheme = EncodingScheme.TWO_BIT
    scheduler_policy: AllocationPolicy = AllocationPolicy.TOP_FIRST

    # 3D pipeline optimizations (Section 3.8)
    pipeline_optimized: bool = False

    def resolved(self) -> "CPUConfig":
        """Apply the pipeline-optimization deltas, returning a new config."""
        if not self.pipeline_optimized:
            return self
        return replace(
            self,
            l2_latency=max(self.l2_latency - 2, 1),
            front_depth=max(self.front_depth - 1, 1),
            redirect_penalty=max(self.redirect_penalty - 1, 1),
        )

    @property
    def dram_cycles(self) -> int:
        """Main memory latency in cycles at this configuration's clock."""
        return max(1, round(self.dram_latency_ns * self.clock_ghz))

    @property
    def branch_mispredict_min_cycles(self) -> int:
        """Minimum branch misprediction penalty (Table 1 reports 14)."""
        resolved = self.resolved()
        return resolved.front_depth + resolved.redirect_penalty + 2


@dataclass(frozen=True)
class ProcessorConfiguration:
    """A named configuration plus its role in the evaluation."""

    config: CPUConfig
    description: str = ""


def _derived_3d_clock() -> float:
    """The 3D clock frequency derived from the circuit models."""
    return derive_frequencies().f3d_ghz


def _derived_2d_clock() -> float:
    return derive_frequencies().f2d_ghz


def baseline_config() -> CPUConfig:
    """``Base``: the planar 2.66 GHz processor."""
    return CPUConfig(name="base", clock_ghz=2.66)


def thermal_herding_config() -> CPUConfig:
    """``TH``: Thermal Herding at the baseline clock (IPC isolation)."""
    return replace(baseline_config(), name="th", thermal_herding=True)


def pipeline_config() -> CPUConfig:
    """``Pipe``: 3D pipeline optimizations at the baseline clock."""
    return replace(baseline_config(), name="pipe", pipeline_optimized=True)


def fast_config() -> CPUConfig:
    """``Fast``: baseline microarchitecture at the 3D clock."""
    return replace(baseline_config(), name="fast", clock_ghz=round(_derived_3d_clock(), 2))


def full_3d_config() -> CPUConfig:
    """``3D``: Thermal Herding + pipeline optimizations + 3D clock."""
    return replace(
        baseline_config(),
        name="3d",
        clock_ghz=round(_derived_3d_clock(), 2),
        thermal_herding=True,
        pipeline_optimized=True,
    )


def paper_configurations() -> Dict[str, ProcessorConfiguration]:
    """The five configurations of Figure 8, keyed by their paper labels."""
    return {
        "Base": ProcessorConfiguration(baseline_config(), "planar baseline, 2.66 GHz"),
        "TH": ProcessorConfiguration(thermal_herding_config(), "Thermal Herding at 2.66 GHz"),
        "Pipe": ProcessorConfiguration(pipeline_config(), "pipeline optimizations at 2.66 GHz"),
        "Fast": ProcessorConfiguration(fast_config(), "baseline uarch at the 3D clock"),
        "3D": ProcessorConfiguration(full_3d_config(), "full 3D Thermal Herding processor"),
    }
