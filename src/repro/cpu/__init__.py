"""Cycle-level out-of-order CPU timing model (the SimpleScalar/MASE substitute).

The simulator replays committed-instruction traces through a scoreboard
model of a Core 2-class out-of-order pipeline (Table 1 of the paper):
4-wide fetch/decode/commit, 6-wide issue, 96-entry ROB, 32-entry RS,
32/20-entry load/store queues, a 10KB hybrid branch predictor with
2K-entry BTB, 32KB L1 caches, a 4MB L2, and TLBs.  Structural hazards,
dependence stalls, branch mispredictions, cache/TLB misses, and all the
Thermal Herding width-misprediction penalties are modelled per
instruction; per-module switching activity is accumulated for the power
and thermal models.
"""

from repro.cpu.config import (
    CPUConfig,
    ProcessorConfiguration,
    baseline_config,
    thermal_herding_config,
    pipeline_config,
    fast_config,
    full_3d_config,
    paper_configurations,
)
from repro.cpu.caches import SetAssociativeCache, TLB, MemoryHierarchy, CacheStats
from repro.cpu.branch_predictor import HybridPredictor, FrontEndPredictor, BranchStats
from repro.cpu.results import SimulationResult
from repro.cpu.pipeline import TimingSimulator, simulate

__all__ = [
    "CPUConfig",
    "ProcessorConfiguration",
    "baseline_config",
    "thermal_herding_config",
    "pipeline_config",
    "fast_config",
    "full_3d_config",
    "paper_configurations",
    "SetAssociativeCache",
    "TLB",
    "MemoryHierarchy",
    "CacheStats",
    "HybridPredictor",
    "FrontEndPredictor",
    "BranchStats",
    "SimulationResult",
    "TimingSimulator",
    "simulate",
]
