"""Clock frequency derivation from the two critical loops.

Section 5.1.1: the wakeup-select loop and the ALU+bypass loop determine
the achievable cycle time in both the planar and 3D designs.  The paper's
planar baseline runs at 2.66 GHz; the 3D design reaches 3.93 GHz (a 47.9 %
increase) because both loops lose a large fraction of their wire delay.

We derive frequencies the same way: cycle time = max(loop latencies); the
model constants in :mod:`repro.circuits.blocks` put the planar loops at
~376 ps (2.66 GHz at 65 nm), so the derived planar frequency lands on the
paper's baseline without an explicit fudge factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.circuits.blocks import BlockModel, build_block_models

#: The loops that bound cycle time (bold rows of Table 2).
CRITICAL_LOOP_NAMES = ("wakeup_select_loop", "alu_bypass_loop")


@dataclass(frozen=True)
class CriticalLoops:
    """Latencies of the frequency-determining loops."""

    wakeup_select_2d_ps: float
    wakeup_select_3d_ps: float
    alu_bypass_2d_ps: float
    alu_bypass_3d_ps: float

    @property
    def cycle_2d_ps(self) -> float:
        return max(self.wakeup_select_2d_ps, self.alu_bypass_2d_ps)

    @property
    def cycle_3d_ps(self) -> float:
        return max(self.wakeup_select_3d_ps, self.alu_bypass_3d_ps)


@dataclass(frozen=True)
class FrequencyPlan:
    """Derived clock frequencies for the evaluated configurations."""

    f2d_ghz: float
    f3d_ghz: float
    loops: CriticalLoops

    @property
    def speedup(self) -> float:
        """Clock frequency ratio 3D / 2D."""
        return self.f3d_ghz / self.f2d_ghz


def extract_loops(blocks: Dict[str, BlockModel]) -> CriticalLoops:
    """Pull the two critical loops out of the block set."""
    missing = [name for name in CRITICAL_LOOP_NAMES if name not in blocks]
    if missing:
        raise KeyError(f"block set is missing critical loops: {missing}")
    ws = blocks["wakeup_select_loop"].timing
    ab = blocks["alu_bypass_loop"].timing
    return CriticalLoops(
        wakeup_select_2d_ps=ws.latency_2d_ps,
        wakeup_select_3d_ps=ws.latency_3d_ps,
        alu_bypass_2d_ps=ab.latency_2d_ps,
        alu_bypass_3d_ps=ab.latency_3d_ps,
    )


def derive_frequencies(blocks: Dict[str, BlockModel] = None) -> FrequencyPlan:
    """Compute the planar and 3D clock frequencies from the loop models."""
    blocks = blocks if blocks is not None else build_block_models()
    loops = extract_loops(blocks)
    f2d = 1e3 / loops.cycle_2d_ps  # ps -> GHz
    f3d = 1e3 / loops.cycle_3d_ps
    return FrequencyPlan(f2d_ghz=f2d, f3d_ghz=f3d, loops=loops)
