"""Technology scaling of the 3D benefit.

Section 1 motivates 3D with the poor scaling of wire delay relative to
gate delay.  This module defines neighbouring technology nodes around
the paper's 65 nm point and re-derives the 3D frequency benefit at each:
as wires worsen relative to gates (smaller nodes), the wire-dominated
loops gain more from stacking.

Scaling rules (classical, first-order):

* FO4 delay scales with feature size (~0.7x per node);
* wire R/um grows ~1/s^2 for unrepeated local wires (thinner, narrower),
  partially mitigated for repeated global wires — repeated wire ps/mm
  *worsens* slightly each node;
* geometry (cell sizes, pitches) scales with s.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List

from repro.circuits.blocks import build_block_models
from repro.circuits.frequency import derive_frequencies
from repro.circuits.technology import TECH_65NM, Technology


def scaled_technology(node_nm: float, base: Technology = TECH_65NM) -> Technology:
    """First-order scaling of the 65 nm technology point to ``node_nm``."""
    if node_nm <= 0:
        raise ValueError(f"node must be positive, got {node_nm}")
    s = node_nm / 65.0
    return replace(
        base,
        name=f"ptm-{node_nm:g}nm",
        fo4_delay_ps=base.fo4_delay_ps * s,
        wire_r_per_um=base.wire_r_per_um / (s * s),
        wire_c_per_um=base.wire_c_per_um,          # capacitance/um ~ constant
        repeated_wire_ps_per_mm=base.repeated_wire_ps_per_mm / (s ** 0.5),
        gate_cap_ff=base.gate_cap_ff * s,
        sram_cell_w_um=base.sram_cell_w_um * s,
        sram_cell_h_um=base.sram_cell_h_um * s,
        d2d_via_delay_ps=base.d2d_via_delay_ps * (s ** 0.5),
    )


#: Technology nodes evaluated by the scaling study.
SCALING_NODES = (90.0, 65.0, 45.0)


@dataclass
class ScalingPoint:
    """The 3D benefit at one technology node."""

    node_nm: float
    f2d_ghz: float
    f3d_ghz: float

    @property
    def frequency_gain(self) -> float:
        return self.f3d_ghz / self.f2d_ghz - 1.0


@dataclass
class ScalingResult:
    """The full node sweep."""

    points: List[ScalingPoint]

    def gain_by_node(self) -> Dict[float, float]:
        return {p.node_nm: p.frequency_gain for p in self.points}

    def format(self) -> str:
        lines = [
            "3D frequency benefit vs technology node",
            f"{'node':>6s} {'f2D GHz':>8s} {'f3D GHz':>8s} {'gain':>7s}",
        ]
        for p in self.points:
            lines.append(
                f"{p.node_nm:5.0f}n {p.f2d_ghz:8.2f} {p.f3d_ghz:8.2f} "
                f"{p.frequency_gain:6.1%}"
            )
        lines.append("wire delay worsens relative to gates at smaller nodes,")
        lines.append("so the wire-removing 3D organization gains more")
        return "\n".join(lines)


def run_scaling(nodes=SCALING_NODES) -> ScalingResult:
    """Derive the 2D/3D frequencies at each node."""
    points = []
    for node in nodes:
        tech = scaled_technology(node)
        plan = derive_frequencies(build_block_models(tech))
        points.append(
            ScalingPoint(node_nm=node, f2d_ghz=plan.f2d_ghz, f3d_ghz=plan.f3d_ghz)
        )
    return ScalingResult(points=points)
