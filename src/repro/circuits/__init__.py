"""Circuit latency and energy models (the HSpice substitute).

The paper derives per-block worst-case latencies and per-access energies
from HSpice simulations of static-CMOS designs in a 65 nm predictive
technology, for both planar (2D) and 4-die 3D implementations.  This
package replaces those simulations with analytical models in the CACTI /
logical-effort tradition:

* :mod:`~repro.circuits.technology` — 65 nm process constants and the
  die-to-die via parameters of Section 4.
* :mod:`~repro.circuits.wires` — repeated and unrepeated RC wire delay
  and switching energy.
* :mod:`~repro.circuits.logical_effort` — gate-chain delays in FO4 units.
* :mod:`~repro.circuits.arrays` — an SRAM array model with the paper's 3D
  partitioning modes (word-partitioned, entry-stacked, folded).
* :mod:`~repro.circuits.blocks` — one model per processor block,
  reproducing Table 2 (2D vs 3D latency) and supplying per-access
  energies to the power model.
* :mod:`~repro.circuits.frequency` — clock frequency derivation from the
  wakeup-select and ALU+bypass critical loops (Section 5.1.1).
"""

from repro.circuits.technology import Technology, TECH_65NM
from repro.circuits.wires import wire_delay_ps, wire_energy_pj, repeated_wire_delay_ps
from repro.circuits.logical_effort import gate_chain_delay_ps, fo4_ps
from repro.circuits.arrays import ArrayModel, PartitionMode, ArrayTiming
from repro.circuits.blocks import BlockModel, BlockTiming, build_block_models
from repro.circuits.frequency import (
    CriticalLoops,
    derive_frequencies,
    FrequencyPlan,
)

__all__ = [
    "Technology",
    "TECH_65NM",
    "wire_delay_ps",
    "wire_energy_pj",
    "repeated_wire_delay_ps",
    "gate_chain_delay_ps",
    "fo4_ps",
    "ArrayModel",
    "PartitionMode",
    "ArrayTiming",
    "BlockModel",
    "BlockTiming",
    "build_block_models",
    "CriticalLoops",
    "derive_frequencies",
    "FrequencyPlan",
]
