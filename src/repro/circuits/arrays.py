"""CACTI-style SRAM array latency/energy model with 3D partitioning.

An array access is decoder -> wordline -> bitline -> sense -> way mux ->
output routing.  The 3D partitioning modes correspond to the organizations
in the paper:

* ``WORD_PARTITIONED`` — each die holds a 16-bit word of every entry
  (register file, ROB, L1D data, LQ/SQ data, BTB targets).  Wordlines
  shrink by the die count; bitlines are unchanged; output routing shrinks
  with the footprint; control crosses one d2d via.
* ``ENTRY_STACKED`` — entries are distributed across dies (instruction
  scheduler RS entries, TLBs).  Bitlines and decoders shrink by the die
  count; the input must be broadcast through one via hop.
* ``FOLDED`` — the generic 3D array fold used for caches and predictor
  tables (prior-work organization): both dimensions shrink by sqrt(dies).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.circuits.logical_effort import decoder_depth_fo4, mux_depth_fo4
from repro.circuits.technology import Technology, TECH_65NM
from repro.circuits.wires import wire_delay_ps, wire_energy_pj

#: Sense amplifier delay (FO4) and bitline low-swing energy factor.
_SENSE_FO4 = 2.0
_BITLINE_SWING = 0.18
#: Maximum subarray dimensions before banking splits the array.
_MAX_ROWS = 256
_MAX_COLS = 512


class PartitionMode(enum.Enum):
    """How an array is implemented across the 3D stack."""

    PLANAR = "planar"
    WORD_PARTITIONED = "word"
    ENTRY_STACKED = "entry"
    FOLDED = "folded"


@dataclass(frozen=True)
class ArrayTiming:
    """Result of an array timing/energy evaluation.

    ``energy_full_pj`` is the per-access energy with all dies active;
    ``energy_top_pj`` is the energy when only the top die is accessed
    (equal to ``energy_full_pj`` for planar arrays and modes that cannot
    gate by die).
    """

    latency_ps: float
    energy_full_pj: float
    energy_top_pj: float
    area_mm2: float
    footprint_mm2: float


@dataclass(frozen=True)
class ArrayModel:
    """Geometry description of one SRAM structure."""

    name: str
    entries: int
    bits_per_entry: int
    read_ports: int = 1
    write_ports: int = 1
    assoc: int = 1
    dies: int = 4
    tech: Technology = TECH_65NM

    def __post_init__(self) -> None:
        if self.entries < 1 or self.bits_per_entry < 1:
            raise ValueError(f"{self.name}: entries and bits_per_entry must be >= 1")
        if self.dies < 1:
            raise ValueError(f"{self.name}: dies must be >= 1")

    # ------------------------------------------------------------------ #

    @property
    def _ports(self) -> int:
        return self.read_ports + self.write_ports

    def _cell_dims_um(self) -> tuple:
        scale = 1.0 + self.tech.port_pitch_factor * (self._ports - 1)
        return self.tech.sram_cell_w_um * scale, self.tech.sram_cell_h_um * scale

    def evaluate(self, mode: PartitionMode = PartitionMode.PLANAR) -> ArrayTiming:
        """Latency and energy for the chosen partitioning."""
        if mode is PartitionMode.PLANAR:
            return self._evaluate_slice(self.entries, self.bits_per_entry, dies_active=1,
                                        via_hops=0, footprint_divisor=1)
        if self.dies == 1:
            # A "3D" mode on a single die degenerates to planar.
            return self.evaluate(PartitionMode.PLANAR)
        if mode is PartitionMode.WORD_PARTITIONED:
            bits = max(1, self.bits_per_entry // self.dies)
            return self._evaluate_slice(self.entries, bits, dies_active=self.dies,
                                        via_hops=1, footprint_divisor=self.dies)
        if mode is PartitionMode.ENTRY_STACKED:
            entries = max(1, self.entries // self.dies)
            return self._evaluate_slice(entries, self.bits_per_entry, dies_active=self.dies,
                                        via_hops=1, footprint_divisor=self.dies)
        if mode is PartitionMode.FOLDED:
            fold = math.sqrt(self.dies)
            entries = max(1, int(round(self.entries / fold)))
            bits = max(1, int(round(self.bits_per_entry / fold)))
            return self._evaluate_slice(entries, bits, dies_active=self.dies,
                                        via_hops=1, footprint_divisor=self.dies)
        raise ValueError(f"unknown partition mode: {mode}")

    # ------------------------------------------------------------------ #

    def _geometry(self, entries: int, bits: int):
        """Subarray dimensions and routing span for a (entries x bits) slice."""
        cell_w, cell_h = self._cell_dims_um()
        row_banks = max(1, math.ceil(entries / _MAX_ROWS))
        col_banks = max(1, math.ceil(bits / _MAX_COLS))
        sub_rows = math.ceil(entries / row_banks)
        sub_cols = math.ceil(bits / col_banks)
        area_um2 = (entries * cell_h) * (bits * cell_w) * 1.2  # 20% overhead
        routing_um = math.sqrt(area_um2)  # H-tree spans ~the array diameter
        return sub_rows, sub_cols, cell_w, cell_h, area_um2, routing_um

    def _latency_ps(self, entries: int, bits: int, via_hops: int) -> float:
        tech = self.tech
        sub_rows, sub_cols, cell_w, cell_h, _area, routing_um = self._geometry(entries, bits)
        decoder_ps = decoder_depth_fo4(sub_rows) * tech.fo4_delay_ps
        wordline_ps = wire_delay_ps(sub_cols * cell_w, tech) + tech.fo4_delay_ps
        bitline_ps = wire_delay_ps(sub_rows * cell_h, tech) * 0.5 + _SENSE_FO4 * tech.fo4_delay_ps
        bank_count = max(1, math.ceil(entries / _MAX_ROWS)) * max(1, math.ceil(bits / _MAX_COLS))
        mux_ps = mux_depth_fo4(max(self.assoc, bank_count)) * tech.fo4_delay_ps
        routing_ps = wire_delay_ps(routing_um, tech)
        return decoder_ps + wordline_ps + bitline_ps + mux_ps + routing_ps + via_hops * tech.d2d_via_delay_ps

    def _access_energy_pj(self, wl_scale: float, bl_scale: float,
                          route_scale: float, bits_fraction: float,
                          via_bits: int) -> float:
        """Energy of one access, decomposed into wire components.

        The planar access is decode + wordline + bitlines + global routing;
        3D modes scale each component by how much the corresponding wires
        shrink, and ``bits_fraction`` scales the bit-dependent components
        for partial (top-die-only) accesses.
        """
        tech = self.tech
        sub_rows, sub_cols, cell_w, cell_h, _area, routing_um = self._geometry(
            self.entries, self.bits_per_entry
        )
        wl_energy = wire_energy_pj(sub_cols * cell_w, tech) * wl_scale
        bl_energy = (
            wire_energy_pj(sub_rows * cell_h, tech)
            * _BITLINE_SWING * sub_cols * bl_scale * bits_fraction
        )
        bus_bits = min(self.bits_per_entry, 64)
        # Global routing (H-tree, I/O buses, multi-port operand delivery)
        # dominates large-array access energy in 2D.
        route_energy = (
            wire_energy_pj(routing_um, tech) * bus_bits / 3.0
            * route_scale * bits_fraction * self._ports ** 0.3
        )
        decode_energy = 0.02 * math.log2(max(self.entries, 2))
        via_energy = via_bits * (tech.d2d_via_cap_ff * 1e-15 * tech.vdd ** 2) * 1e12
        # One access uses one port; extra ports cost through the larger
        # port-scaled cell geometry (longer wires), not a multiplier here.
        return wl_energy + bl_energy + route_energy + decode_energy + via_energy

    def _evaluate_slice(self, entries: int, bits: int, dies_active: int,
                        via_hops: int, footprint_divisor: int) -> ArrayTiming:
        """Evaluate latency/energy for the chosen slice geometry."""
        tech = self.tech
        latency = self._latency_ps(entries, bits, via_hops)
        _r, _c, cell_w, cell_h, _a, _rt = self._geometry(entries, bits)
        slice_area_mm2 = (entries * cell_h) * (bits * cell_w) * 1.2 / 1e6

        bus_bits = min(self.bits_per_entry, 64)
        if dies_active == 1 and via_hops == 0:
            # Planar: every component at full scale.
            energy_full = self._access_energy_pj(1.0, 1.0, 1.0, 1.0, 0)
            energy_top = energy_full
        elif entries < self.entries and bits == self.bits_per_entry:
            # ENTRY_STACKED: bitlines shrink by the die count, routing by
            # the footprint fold; wordline unchanged (full row per die).
            energy_full = self._access_energy_pj(1.0, 1.0 / self.dies, 0.5, 1.0, bus_bits)
            energy_top = energy_full
        elif bits < self.bits_per_entry and entries == self.entries:
            # WORD_PARTITIONED: a full access reads the same cells across
            # all dies (no bitline saving) but global routing halves; a
            # top-only access reads a quarter of the bits.
            energy_full = self._access_energy_pj(1.0, 1.0, 0.5, 1.0, bus_bits)
            energy_top = self._access_energy_pj(0.25, 1.0, 0.5, 1.0 / self.dies, bus_bits // 4)
        else:
            # FOLDED: both dimensions shrink by sqrt(dies).
            fold = math.sqrt(self.dies)
            energy_full = self._access_energy_pj(0.8, 1.0 / fold, 0.5, 1.0, bus_bits)
            energy_top = energy_full
        total_area = slice_area_mm2 * dies_active
        footprint = total_area / footprint_divisor
        return ArrayTiming(
            latency_ps=latency,
            energy_full_pj=energy_full,
            energy_top_pj=energy_top,
            area_mm2=total_area,
            footprint_mm2=footprint,
        )
