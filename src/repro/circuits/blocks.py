"""Per-block latency and energy models for the 2D and 3D processors.

Every microarchitectural block the paper times (Table 2) has a model here
that yields a :class:`BlockTiming` with the planar latency/energy, the
4-die 3D latency/energy, and the 3D "top die only" energy used when
Thermal Herding gates the lower dies.  Array-style blocks reuse
:class:`~repro.circuits.arrays.ArrayModel`; the critical loops
(wakeup-select, ALU+bypass) and the rename logic are modelled explicitly
since their wire structure determines the clock frequency result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.circuits.arrays import ArrayModel, PartitionMode
from repro.circuits.technology import Technology, TECH_65NM
from repro.circuits.wires import wire_delay_ps, wire_energy_pj

#: Datapath bit pitch (um) of the 64-bit integer cluster.
_BIT_PITCH_UM = 16.0
#: Height of one reservation-station entry (um) along the tag bus.
_RS_ENTRY_HEIGHT_UM = 58.0
#: Execution-cluster result-bus span in 2D (um).
_BYPASS_SPAN_2D_UM = 2800.0
#: Operand distribution wire in 2D (um); becomes a via hop in 3D.
_OPERAND_DIST_2D_UM = 500.0
#: Pipeline latch + setup overhead charged to every loop (FO4).
_LATCH_FO4 = 0.45


@dataclass(frozen=True)
class BlockTiming:
    """Evaluated 2D/3D latency and energy of one block."""

    name: str
    latency_2d_ps: float
    latency_3d_ps: float
    energy_2d_pj: float
    energy_3d_pj: float
    energy_3d_top_pj: float
    area_2d_mm2: float
    footprint_3d_mm2: float
    mode: PartitionMode

    @property
    def improvement(self) -> float:
        """Fractional 3D latency improvement (positive = faster)."""
        return 1.0 - self.latency_3d_ps / self.latency_2d_ps

    @property
    def energy_saving(self) -> float:
        """Fractional 3D full-access energy saving."""
        return 1.0 - self.energy_3d_pj / self.energy_2d_pj


@dataclass(frozen=True)
class BlockModel:
    """A named block plus its evaluated timing."""

    name: str
    timing: BlockTiming
    description: str = ""


def _array_block(name: str, array: ArrayModel, mode: PartitionMode,
                 description: str = "") -> BlockModel:
    planar = array.evaluate(PartitionMode.PLANAR)
    stacked = array.evaluate(mode)
    timing = BlockTiming(
        name=name,
        latency_2d_ps=planar.latency_ps,
        latency_3d_ps=stacked.latency_ps,
        energy_2d_pj=planar.energy_full_pj,
        energy_3d_pj=stacked.energy_full_pj,
        energy_3d_top_pj=stacked.energy_top_pj,
        area_2d_mm2=planar.area_mm2,
        footprint_3d_mm2=stacked.footprint_mm2,
        mode=mode,
    )
    return BlockModel(name=name, timing=timing, description=description)


# --------------------------------------------------------------------- #
# Custom loop models
# --------------------------------------------------------------------- #

def _adder_timings(tech: Technology) -> Dict[str, float]:
    """64-bit Kogge-Stone adder, 2D and word-partitioned 3D.

    Logic depth is unchanged by stacking; only the long wires of the last
    prefix levels shrink (they become d2d via hops), which is why the
    paper reports only a small adder speedup.
    """
    logic_ps = 8.5 * tech.fo4_delay_ps
    # Prefix wires with spans of 16 and 32 bit pitches dominate 2D wiring.
    span16 = 16 * _BIT_PITCH_UM
    span32 = 32 * _BIT_PITCH_UM
    wire_2d = wire_delay_ps(span16, tech) + wire_delay_ps(span32, tech)
    # 3D: 16 bits per die; the long prefix levels map to via hops on a
    # gray-code die ordering, plus residual short wires.
    wire_3d = tech.d2d_via_delay_ps + 6.0
    gates = 2000
    gate_energy = gates * tech.gate_cap_ff * 1e-15 * tech.vdd ** 2 * 1e12 * 0.25
    wire_energy_2d = wire_energy_pj(span16 + span32, tech) * 8
    wire_energy_3d = wire_energy_pj(64 * _BIT_PITCH_UM / 4, tech) * 8
    return {
        "latency_2d": logic_ps + wire_2d,
        "latency_3d": logic_ps + wire_3d,
        "energy_2d": gate_energy + wire_energy_2d,
        "energy_3d": gate_energy + wire_energy_3d,
        "energy_3d_top": (gate_energy + wire_energy_3d) * 0.28,
    }


def _adder_block(tech: Technology) -> BlockModel:
    t = _adder_timings(tech)
    timing = BlockTiming(
        name="int_adder",
        latency_2d_ps=t["latency_2d"],
        latency_3d_ps=t["latency_3d"],
        energy_2d_pj=t["energy_2d"],
        energy_3d_pj=t["energy_3d"],
        energy_3d_top_pj=t["energy_3d_top"],
        area_2d_mm2=0.08,
        footprint_3d_mm2=0.02,
        mode=PartitionMode.WORD_PARTITIONED,
    )
    return BlockModel("int_adder", timing, "64-bit Kogge-Stone adder")


def _alu_bypass_block(tech: Technology) -> BlockModel:
    """The ALU + result-bypass critical loop (Section 5.1.1).

    2D: adder + full-cluster result bus + operand distribution + operand
    mux + latch.  3D: the cluster footprint compacts (the paper quarters
    both bypass dimensions), the operand distribution becomes a via hop.
    """
    adder = _adder_timings(tech)
    mux_ps = 1.0 * tech.fo4_delay_ps
    latch_ps = _LATCH_FO4 * tech.fo4_delay_ps

    bus_2d = wire_delay_ps(_BYPASS_SPAN_2D_UM, tech)
    dist_2d = wire_delay_ps(_OPERAND_DIST_2D_UM, tech)
    latency_2d = adder["latency_2d"] + bus_2d + dist_2d + mux_ps + latch_ps

    bus_3d = wire_delay_ps(_BYPASS_SPAN_2D_UM / 4.0, tech) + tech.d2d_via_delay_ps
    dist_3d = tech.d2d_via_delay_ps
    latency_3d = adder["latency_3d"] + bus_3d + dist_3d + mux_ps + latch_ps

    # Bypass energy: result bus wires for 64 bits (2D) vs 16 bits per die.
    bus_energy_2d = wire_energy_pj(_BYPASS_SPAN_2D_UM, tech) * 64
    bus_energy_3d = wire_energy_pj(_BYPASS_SPAN_2D_UM / 4.0, tech) * 64
    timing = BlockTiming(
        name="alu_bypass_loop",
        latency_2d_ps=latency_2d,
        latency_3d_ps=latency_3d,
        energy_2d_pj=adder["energy_2d"] + bus_energy_2d,
        energy_3d_pj=adder["energy_3d"] + bus_energy_3d,
        energy_3d_top_pj=(adder["energy_3d"] + bus_energy_3d) * 0.28,
        area_2d_mm2=2.6,
        footprint_3d_mm2=0.65,
        mode=PartitionMode.WORD_PARTITIONED,
    )
    return BlockModel("alu_bypass_loop", timing, "execute + result bypass loop")


def _wakeup_select_block(tech: Technology, rs_entries: int = 32) -> BlockModel:
    """The instruction scheduler wakeup-select critical loop.

    2D: tag broadcast down all RS entries, CAM compare, ready logic,
    select tree over all entries, grant wire back.  3D (entry-stacked):
    a quarter of the entries per die shortens the broadcast bus and the
    per-die select; a final cross-die select level goes through vias.
    """
    fo4 = tech.fo4_delay_ps
    bus_2d_um = rs_entries * _RS_ENTRY_HEIGHT_UM
    broadcast_2d = wire_delay_ps(bus_2d_um, tech)
    compare_ps = (3.0 + math.log(2 * rs_entries, 4)) * fo4
    ready_ps = 2.0 * fo4
    select_2d = math.log2(rs_entries) * 1.2 * fo4
    grant_2d = wire_delay_ps(bus_2d_um / 2.0, tech)
    latency_2d = broadcast_2d + compare_ps + ready_ps + select_2d + grant_2d

    per_die = max(1, rs_entries // 4)
    bus_3d_um = per_die * _RS_ENTRY_HEIGHT_UM
    broadcast_3d = wire_delay_ps(bus_3d_um, tech) + tech.d2d_via_delay_ps
    # The tag driver must still be sized for the via load plus four dies of
    # comparators (through per-die buffers), so the compare stage keeps the
    # planar electrical effort.
    compare_3d = compare_ps
    # Per-die pre-select plus one cross-die arbitration level through vias.
    select_3d = (math.log2(per_die) * 1.2 + 1.0) * fo4 + tech.d2d_via_delay_ps
    grant_3d = wire_delay_ps(bus_3d_um / 2.0, tech)
    latency_3d = broadcast_3d + compare_3d + ready_ps + select_3d + grant_3d

    # Tag broadcast energy: the wakeup CAM is a notorious power-density
    # hotspot — tag bus wires, 2 comparators per entry, ready/request
    # logic, and the select tree, all switching at full clock rate.
    cam_pj_2d = wire_energy_pj(bus_2d_um, tech) * 8 + rs_entries * 0.22
    # 3D: each die's tag driver sees a quarter of the wire load, and the
    # request/grant/select wiring folds with the footprint; comparator
    # energy is unchanged.  Net ~0.45x per full (ungated) broadcast.
    cam_pj_3d = cam_pj_2d * 0.45
    timing = BlockTiming(
        name="wakeup_select_loop",
        latency_2d_ps=latency_2d,
        latency_3d_ps=latency_3d,
        energy_2d_pj=cam_pj_2d,
        energy_3d_pj=cam_pj_3d,
        energy_3d_top_pj=cam_pj_3d * 0.30,
        area_2d_mm2=0.75,
        footprint_3d_mm2=0.19,
        mode=PartitionMode.ENTRY_STACKED,
    )
    return BlockModel("wakeup_select_loop", timing, "scheduler wakeup-select loop")


def _rename_block(tech: Technology, width: int = 4) -> BlockModel:
    """Rename / intra-group dependency check logic (Section 3.7)."""
    fo4 = tech.fo4_delay_ps
    compare_ps = (4.0 + math.log2(width)) * fo4
    wire_2d = wire_delay_ps(700.0, tech)
    wire_3d = wire_delay_ps(700.0 / 2.0, tech) + tech.d2d_via_delay_ps
    comparators = width * (width - 1) // 2 * 2
    energy = comparators * 0.15
    timing = BlockTiming(
        name="rename",
        latency_2d_ps=compare_ps + wire_2d,
        latency_3d_ps=compare_ps + wire_3d,
        energy_2d_pj=energy + wire_energy_pj(700.0, tech) * 8,
        energy_3d_pj=energy + wire_energy_pj(350.0, tech) * 8,
        energy_3d_top_pj=(energy + wire_energy_pj(350.0, tech) * 8) * 0.55,
        area_2d_mm2=0.5,
        footprint_3d_mm2=0.125,
        mode=PartitionMode.ENTRY_STACKED,
    )
    return BlockModel("rename", timing, "rename + dependency check")


# --------------------------------------------------------------------- #
# The full block set
# --------------------------------------------------------------------- #

def _bypass_block(tech: Technology) -> BlockModel:
    """Energy-only view of the bypass network (the wires of Section 3.3).

    A 0.35 switching factor models the fraction of the 64 result wires
    that actually toggle on an average broadcast.
    """
    bus_energy_2d = wire_energy_pj(_BYPASS_SPAN_2D_UM, tech) * 64 * 0.24
    bus_energy_3d = wire_energy_pj(_BYPASS_SPAN_2D_UM / 4.0, tech) * 64 * 0.24
    timing = BlockTiming(
        name="bypass",
        latency_2d_ps=wire_delay_ps(_BYPASS_SPAN_2D_UM, tech),
        latency_3d_ps=wire_delay_ps(_BYPASS_SPAN_2D_UM / 4.0, tech) + tech.d2d_via_delay_ps,
        energy_2d_pj=bus_energy_2d,
        energy_3d_pj=bus_energy_3d,
        energy_3d_top_pj=bus_energy_3d * 0.28,
        area_2d_mm2=0.9,
        footprint_3d_mm2=0.22,
        mode=PartitionMode.WORD_PARTITIONED,
    )
    return BlockModel("bypass", timing, "result bypass wires")


def _fpu_block(tech: Technology) -> BlockModel:
    """Floating point cluster: word-partitioned like the integer units but
    with no width gating (FP values are not on the predicted datapath)."""
    adder = _adder_timings(tech)
    scale = 3.0  # mantissa datapath + rounding + control vs one int adder
    timing = BlockTiming(
        name="fpu",
        latency_2d_ps=adder["latency_2d"] * 1.8,
        latency_3d_ps=adder["latency_3d"] * 1.8,
        energy_2d_pj=adder["energy_2d"] * scale,
        energy_3d_pj=adder["energy_3d"] * scale,
        energy_3d_top_pj=adder["energy_3d"] * scale,
        area_2d_mm2=1.4,
        footprint_3d_mm2=0.35,
        mode=PartitionMode.WORD_PARTITIONED,
    )
    return BlockModel("fpu", timing, "floating point execution cluster")


def build_block_models(tech: Technology = TECH_65NM, dies: int = 4) -> Dict[str, BlockModel]:
    """Build all block models (Table 1 configuration sizes)."""
    blocks: Dict[str, BlockModel] = {}

    def add(model: BlockModel) -> None:
        blocks[model.name] = model

    add(_adder_block(tech))
    add(_alu_bypass_block(tech))
    add(_wakeup_select_block(tech))
    add(_rename_block(tech))
    add(_bypass_block(tech))
    add(_fpu_block(tech))

    add(_array_block(
        "register_file",
        ArrayModel("register_file", entries=96, bits_per_entry=64,
                   read_ports=8, write_ports=4, dies=dies, tech=tech),
        PartitionMode.WORD_PARTITIONED,
        "physical register file (word-partitioned, memoization bits on top die)",
    ))
    add(_array_block(
        "rob",
        ArrayModel("rob", entries=96, bits_per_entry=76,
                   read_ports=4, write_ports=4, dies=dies, tech=tech),
        PartitionMode.WORD_PARTITIONED,
        "reorder buffer holding architectural values",
    ))
    add(_array_block(
        "l1_icache",
        ArrayModel("l1_icache", entries=512, bits_per_entry=512,
                   assoc=8, dies=dies, tech=tech),
        PartitionMode.FOLDED,
        "32KB 8-way instruction cache (prior-work 3D fold)",
    ))
    add(_array_block(
        "l1_dcache",
        ArrayModel("l1_dcache", entries=512, bits_per_entry=512,
                   read_ports=2, write_ports=1, assoc=8, dies=dies, tech=tech),
        PartitionMode.WORD_PARTITIONED,
        "32KB 8-way data cache (word-partitioned data array)",
    ))
    add(_array_block(
        "l2_cache",
        ArrayModel("l2_cache", entries=65536, bits_per_entry=512,
                   assoc=16, dies=dies, tech=tech),
        PartitionMode.FOLDED,
        "4MB 16-way unified L2",
    ))
    add(_array_block(
        "itlb",
        ArrayModel("itlb", entries=128, bits_per_entry=64,
                   assoc=4, dies=dies, tech=tech),
        PartitionMode.ENTRY_STACKED,
        "128-entry ITLB",
    ))
    add(_array_block(
        "dtlb",
        ArrayModel("dtlb", entries=256, bits_per_entry=64,
                   read_ports=2, assoc=4, dies=dies, tech=tech),
        PartitionMode.ENTRY_STACKED,
        "256-entry DTLB",
    ))
    add(_array_block(
        "btb",
        ArrayModel("btb", entries=2048, bits_per_entry=84,
                   assoc=4, dies=dies, tech=tech),
        PartitionMode.WORD_PARTITIONED,
        "2K-entry BTB (low target bits + memoization bit on top die)",
    ))
    add(_array_block(
        "ibtb",
        ArrayModel("ibtb", entries=512, bits_per_entry=84,
                   assoc=4, dies=dies, tech=tech),
        PartitionMode.WORD_PARTITIONED,
        "512-entry indirect BTB",
    ))
    add(_array_block(
        "dir_predictor",
        ArrayModel("dir_predictor", entries=5120, bits_per_entry=16,
                   dies=dies, tech=tech),
        PartitionMode.FOLDED,
        "10KB hybrid direction predictor (direction/hysteresis split)",
    ))
    add(_array_block(
        "load_queue",
        ArrayModel("load_queue", entries=32, bits_per_entry=128,
                   read_ports=2, write_ports=2, dies=dies, tech=tech),
        PartitionMode.WORD_PARTITIONED,
        "32-entry load queue (word-partitioned, PAM broadcasts)",
    ))
    add(_array_block(
        "store_queue",
        ArrayModel("store_queue", entries=20, bits_per_entry=128,
                   read_ports=2, write_ports=2, dies=dies, tech=tech),
        PartitionMode.WORD_PARTITIONED,
        "20-entry store queue (word-partitioned, PAM broadcasts)",
    ))
    add(_array_block(
        "fetch_queue",
        ArrayModel("fetch_queue", entries=16, bits_per_entry=128,
                   read_ports=4, write_ports=4, dies=dies, tech=tech),
        PartitionMode.ENTRY_STACKED,
        "16-entry instruction fetch queue",
    ))
    return blocks


def table2(blocks: Dict[str, BlockModel] = None) -> str:
    """Render the Table 2 equivalent: 2D vs 3D latency per block."""
    blocks = blocks or build_block_models()
    header = f"{'Block':<22s} {'2D (ps)':>9s} {'3D (ps)':>9s} {'improvement':>12s}"
    lines = [header, "-" * len(header)]
    for name, model in sorted(blocks.items()):
        t = model.timing
        marker = " *" if name in ("wakeup_select_loop", "alu_bypass_loop") else ""
        lines.append(
            f"{name:<22s} {t.latency_2d_ps:9.1f} {t.latency_3d_ps:9.1f} "
            f"{t.improvement:11.1%}{marker}"
        )
    lines.append("* frequency-determining critical loop")
    return "\n".join(lines)
