"""Gate-chain delay estimates in the logical-effort style.

We do not re-derive transistor sizing; for the block models it suffices to
express logic depth in FO4-equivalent stages and convert with the
technology's FO4 delay.  ``gate_chain_delay_ps`` additionally applies the
logical-effort observation that a path driving a large electrical effort
needs ~log4(H) extra stages.
"""

from __future__ import annotations

import math

from repro.circuits.technology import Technology, TECH_65NM


def fo4_ps(tech: Technology = TECH_65NM) -> float:
    """The technology FO4 delay in ps."""
    return tech.fo4_delay_ps


def gate_chain_delay_ps(
    logic_depth_fo4: float,
    fanout: float = 1.0,
    tech: Technology = TECH_65NM,
) -> float:
    """Delay of a logic path of ``logic_depth_fo4`` FO4 stages.

    ``fanout`` is the electrical effort at the path output (e.g. a tag
    broadcast driving N comparators); each factor-of-4 of fanout costs
    roughly one additional FO4.
    """
    if logic_depth_fo4 < 0:
        raise ValueError(f"logic depth must be non-negative, got {logic_depth_fo4}")
    if fanout < 1.0:
        raise ValueError(f"fanout must be >= 1, got {fanout}")
    extra_stages = math.log(fanout, 4) if fanout > 1.0 else 0.0
    return (logic_depth_fo4 + extra_stages) * tech.fo4_delay_ps


def decoder_depth_fo4(entries: int) -> float:
    """Logic depth of a row decoder for ``entries`` rows, in FO4."""
    if entries < 2:
        return 1.0
    # Predecode + final NOR: ~0.7 FO4 per address bit plus 2 fixed stages.
    return 2.0 + 0.7 * math.log2(entries)


def mux_depth_fo4(ways: int) -> float:
    """Logic depth of a ``ways``-input select mux, in FO4."""
    if ways < 2:
        return 0.5
    return 1.0 + 0.5 * math.log2(ways)
