"""Wire delay and energy models.

Two regimes:

* short, unrepeated wires obey the distributed-RC (Elmore) quadratic,
  ``t = 0.38 * R * C * L^2``;
* long wires are optimally repeated and scale linearly with length.

The crossover length is where the two estimates meet; below it we charge
the quadratic, above it the linear model plus a fixed repeater-insertion
overhead folded into the per-mm constant.
"""

from __future__ import annotations

from repro.circuits.technology import Technology, TECH_65NM


def unrepeated_wire_delay_ps(length_um: float, tech: Technology = TECH_65NM) -> float:
    """Distributed-RC delay of an unrepeated wire of ``length_um``."""
    if length_um < 0:
        raise ValueError(f"wire length must be non-negative, got {length_um}")
    return tech.wire_rc_ps_per_um2 * length_um * length_um


def repeated_wire_delay_ps(length_um: float, tech: Technology = TECH_65NM) -> float:
    """Delay of an optimally repeated wire of ``length_um``."""
    if length_um < 0:
        raise ValueError(f"wire length must be non-negative, got {length_um}")
    return tech.repeated_wire_ps_per_mm * (length_um / 1000.0)


def wire_delay_ps(length_um: float, tech: Technology = TECH_65NM) -> float:
    """Best-achievable wire delay: min of the two regimes."""
    return min(
        unrepeated_wire_delay_ps(length_um, tech),
        repeated_wire_delay_ps(length_um, tech),
    )


def wire_cap_ff(length_um: float, tech: Technology = TECH_65NM) -> float:
    """Total capacitance of a wire of ``length_um`` (fF)."""
    if length_um < 0:
        raise ValueError(f"wire length must be non-negative, got {length_um}")
    return tech.wire_c_per_um * length_um


def wire_energy_pj(length_um: float, tech: Technology = TECH_65NM, activity: float = 1.0) -> float:
    """Switching energy of one full-swing transition on the wire (pJ).

    ``E = C * Vdd^2`` (the 1/2 CV^2 charge plus the 1/2 CV^2 dissipated in
    the driver on the complementary transition).
    """
    if not 0.0 <= activity <= 1.0:
        raise ValueError(f"activity must be in [0, 1], got {activity}")
    cap_f = wire_cap_ff(length_um, tech) * 1e-15
    return cap_f * tech.vdd * tech.vdd * activity * 1e12
