"""65 nm process and 3D-stack technology constants.

Values follow the paper's methodology section: 65 nm predictive technology
models for transistors, Intel 130 nm wire parameters extrapolated to 65 nm,
die-to-die via pitches of 1 um (face-to-face) and 2 um (backside), 5 um to
cross between two die faces and 20 um to cross a back-to-back interface,
and a reported d2d via delay under one FO4.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Technology:
    """Process constants used by the delay/energy models."""

    name: str
    #: supply voltage (V)
    vdd: float
    #: fanout-of-4 inverter delay (ps)
    fo4_delay_ps: float
    #: wire resistance per um (ohm/um), intermediate metal
    wire_r_per_um: float
    #: wire capacitance per um (fF/um), intermediate metal
    wire_c_per_um: float
    #: optimally repeated wire delay (ps/mm)
    repeated_wire_ps_per_mm: float
    #: effective switched capacitance of one gate input (fF)
    gate_cap_ff: float
    #: SRAM cell dimensions (um) for a single-port 6T cell
    sram_cell_w_um: float
    sram_cell_h_um: float
    #: extra cell pitch per additional port (dimensionless multiplier/port)
    port_pitch_factor: float
    #: d2d via traversal delay (ps); the paper cites < 1 FO4
    d2d_via_delay_ps: float
    #: d2d via capacitance (fF)
    d2d_via_cap_ff: float
    #: distance crossed at a face-to-face interface (um)
    f2f_distance_um: float
    #: distance crossed at a back-to-back interface (um)
    b2b_distance_um: float
    #: d2d via pitch (um), face-to-face
    f2f_via_pitch_um: float
    #: d2d via pitch (um), backside
    b2b_via_pitch_um: float

    @property
    def wire_rc_ps_per_um2(self) -> float:
        """Distributed-RC coefficient: 0.38 * R * C, in ps/um^2."""
        # R in ohm/um, C in fF/um -> R*C in ohm*fF/um^2 = 1e-15 s/um^2;
        # multiply by 1e12/1e-15... keep units: ohm * fF = 1e-15 s, i.e.
        # 1e-3 ps, so the product in ps/um^2 is R*C*1e-3.
        return 0.38 * self.wire_r_per_um * self.wire_c_per_um * 1e-3


#: The 65 nm technology point used throughout the reproduction.  The FO4
#: delay (16 ps) puts the baseline 2.66 GHz cycle at ~23.5 FO4, consistent
#: with a Core 2-class design.
TECH_65NM = Technology(
    name="ptm-65nm",
    vdd=1.1,
    fo4_delay_ps=16.0,
    wire_r_per_um=1.8,
    wire_c_per_um=0.20,
    repeated_wire_ps_per_mm=55.0,
    gate_cap_ff=1.2,
    sram_cell_w_um=1.2,
    sram_cell_h_um=0.9,
    port_pitch_factor=0.55,
    d2d_via_delay_ps=12.0,
    d2d_via_cap_ff=2.5,
    f2f_distance_um=5.0,
    b2b_distance_um=20.0,
    f2f_via_pitch_um=1.0,
    b2b_via_pitch_um=2.0,
)
