"""Command-line interface for the reproduction.

Usage::

    python -m repro table2
    python -m repro figure8  [--fast]
    python -m repro figure9  [--fast]
    python -m repro figure10 [--fast]
    python -m repro density  [--fast]
    python -m repro width    [--fast]
    python -m repro dvfs     [--fast]
    python -m repro roadmap  [--fast]
    python -m repro leakage  [--fast]
    python -m repro pairing  [--fast]
    python -m repro report   [--fast] [-o report.md]
    python -m repro simulate BENCHMARK [--config 3D] [--length N]
    python -m repro trace BENCHMARK [--length N] [-o trace.jsonl.gz]
    python -m repro list

``--fast`` runs a reduced benchmark set at shorter trace lengths.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.experiments import (
    ExperimentContext,
    ExperimentSettings,
    run_figure8,
    run_figure9,
    run_figure10,
    run_power_density,
    run_table2,
    run_width_stats,
)
from repro.experiments.dvfs import run_dvfs
from repro.experiments.report import generate_report
from repro.experiments.leakage import run_leakage_feedback
from repro.experiments.pairing import run_pairing
from repro.experiments.roadmap import run_roadmap

FAST_SETTINGS = ExperimentSettings(
    trace_length=8_000,
    warmup=2_500,
    benchmarks=("mpeg2", "mcf", "susan", "yacr2", "swim", "adpcm"),
    thermal_grid=48,
)


def _context(args) -> ExperimentContext:
    settings = FAST_SETTINGS if args.fast else ExperimentSettings()
    return ExperimentContext(settings)


def _cmd_table2(args) -> int:
    print(run_table2().format())
    return 0


def _cmd_figure8(args) -> int:
    print(run_figure8(_context(args)).format())
    return 0


def _cmd_figure9(args) -> int:
    print(run_figure9(_context(args)).format())
    return 0


def _cmd_figure10(args) -> int:
    print(run_figure10(_context(args)).format())
    return 0


def _cmd_density(args) -> int:
    print(run_power_density(_context(args)).format())
    return 0


def _cmd_width(args) -> int:
    print(run_width_stats(_context(args)).format())
    return 0


def _cmd_dvfs(args) -> int:
    print(run_dvfs(_context(args)).format())
    return 0


def _cmd_roadmap(args) -> int:
    print(run_roadmap(_context(args)).format())
    return 0


def _cmd_leakage(args) -> int:
    print(run_leakage_feedback(_context(args)).format())
    return 0


def _cmd_pairing(args) -> int:
    print(run_pairing(_context(args)).format())
    return 0


def _cmd_report(args) -> int:
    text = generate_report(_context(args))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as stream:
            stream.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_simulate(args) -> int:
    from repro.cpu.pipeline import simulate
    from repro.experiments.context import _all_configurations
    from repro.workloads.suite import generate

    configs = _all_configurations()
    if args.config not in configs:
        print(f"unknown config {args.config!r}; choose from {', '.join(configs)}",
              file=sys.stderr)
        return 2
    trace = generate(args.benchmark, length=args.length)
    result = simulate(trace, configs[args.config], warmup=args.length // 3)
    print(result.summary())
    for metric, value in sorted(result.herding.items()):
        if not metric.startswith("herded::"):
            print(f"  {metric}: {value:.3f}")
    return 0


def _cmd_trace(args) -> int:
    from repro.isa.serialization import save_trace
    from repro.workloads.suite import generate

    trace = generate(args.benchmark, length=args.length)
    output = args.output or f"{args.benchmark}.trace.jsonl.gz"
    save_trace(trace, output)
    stats = trace.stats()
    print(f"wrote {output} ({len(trace)} instructions)")
    print(stats.format())
    return 0


def _cmd_list(args) -> int:
    from repro.workloads.suite import BENCHMARKS
    for name, spec in BENCHMARKS.items():
        print(f"{name:<12s} {spec.benchmark_class.value}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Thermal Herding (HPCA 2007) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add(name, fn, help_text, fast=True):
        p = sub.add_parser(name, help=help_text)
        if fast:
            p.add_argument("--fast", action="store_true",
                           help="reduced benchmark set / shorter traces")
        p.set_defaults(fn=fn)
        return p

    add("table2", _cmd_table2, "Table 2: block latencies and frequencies", fast=False)
    add("figure8", _cmd_figure8, "Figure 8: performance of the five configs")
    add("figure9", _cmd_figure9, "Figure 9: power of the three processors")
    add("figure10", _cmd_figure10, "Figure 10: thermal maps")
    add("density", _cmd_density, "Section 5.3: iso-power density experiment")
    add("width", _cmd_width, "Section 3.8: width prediction accuracy")
    add("dvfs", _cmd_dvfs, "frequency-for-temperature sweep")
    add("roadmap", _cmd_roadmap, "Figure 2 roadmap design points")
    add("leakage", _cmd_leakage, "leakage-temperature feedback fixed point")
    add("pairing", _cmd_pairing, "heterogeneous core pairing thermals")

    report = add("report", _cmd_report, "full markdown report of all experiments")
    report.add_argument("-o", "--output", help="write the report to a file")

    sim = add("simulate", _cmd_simulate, "simulate one benchmark", fast=False)
    sim.add_argument("benchmark")
    sim.add_argument("--config", default="3D")
    sim.add_argument("--length", type=int, default=20_000)

    trace = add("trace", _cmd_trace, "generate and save a trace", fast=False)
    trace.add_argument("benchmark")
    trace.add_argument("--length", type=int, default=20_000)
    trace.add_argument("-o", "--output")

    add("list", _cmd_list, "list the benchmark suite", fast=False)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
