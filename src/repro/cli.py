"""Command-line interface for the reproduction.

Usage::

    python -m repro table2
    python -m repro figure8  [--fast] [--jobs N]
    python -m repro figure9  [--fast] [--jobs N]
    python -m repro figure10 [--fast] [--jobs N]
    python -m repro density  [--fast] [--jobs N]
    python -m repro width    [--fast] [--jobs N]
    python -m repro dvfs     [--fast] [--jobs N]
    python -m repro roadmap  [--fast] [--jobs N]
    python -m repro leakage  [--fast] [--jobs N]
    python -m repro pairing  [--fast] [--jobs N]
    python -m repro sensitivity [--fast] [--jobs N]
    python -m repro transient   [--fast] [--jobs N]
    python -m repro interval    [--fast] [--jobs N]
    python -m repro stacking    [--fast] [--jobs N]
    python -m repro mechanisms
    python -m repro report   [--fast] [--jobs N] [-o report.md]
                             [--stats stats.json] [--log-json events.jsonl]
    python -m repro metrics  [--out metrics.json]
    python -m repro simulate BENCHMARK [--config 3D] [--length N]
    python -m repro trace BENCHMARK [--length N] [-o trace.jsonl.gz]
    python -m repro cache [info|list|clear|prune]
    python -m repro list

``--fast`` runs a reduced benchmark set at shorter trace lengths.
``--jobs N`` (or ``REPRO_JOBS``) fans simulations out across N worker
processes; results are also persisted in ``.repro_cache/`` so warm
reruns simulate nothing (``REPRO_CACHE=0`` opts out).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.experiments import (
    ExperimentContext,
    ExperimentSettings,
    run_figure8,
    run_figure9,
    run_figure10,
    run_power_density,
    run_table2,
    run_width_stats,
)
from repro.experiments.dvfs import run_dvfs
from repro.experiments.report import generate_report, stats_payload
from repro.experiments.leakage import run_leakage_feedback
from repro.experiments.pairing import run_pairing
from repro.experiments.roadmap import run_roadmap

FAST_SETTINGS = ExperimentSettings(
    trace_length=8_000,
    warmup=2_500,
    benchmarks=("mpeg2", "mcf", "susan", "yacr2", "swim", "adpcm"),
    thermal_grid=48,
)


def _context(args) -> ExperimentContext:
    settings = FAST_SETTINGS if args.fast else ExperimentSettings()
    return ExperimentContext(settings, jobs=getattr(args, "jobs", None))


def _cmd_table2(args) -> int:
    print(run_table2().format())
    return 0


def _cmd_figure8(args) -> int:
    print(run_figure8(_context(args)).format())
    return 0


def _cmd_figure9(args) -> int:
    print(run_figure9(_context(args)).format())
    return 0


def _cmd_figure10(args) -> int:
    print(run_figure10(_context(args)).format())
    return 0


def _cmd_density(args) -> int:
    print(run_power_density(_context(args)).format())
    return 0


def _cmd_width(args) -> int:
    print(run_width_stats(_context(args)).format())
    return 0


def _cmd_dvfs(args) -> int:
    print(run_dvfs(_context(args)).format())
    return 0


def _cmd_roadmap(args) -> int:
    print(run_roadmap(_context(args)).format())
    return 0


def _cmd_leakage(args) -> int:
    print(run_leakage_feedback(_context(args)).format())
    return 0


def _cmd_pairing(args) -> int:
    print(run_pairing(_context(args)).format())
    return 0


def _cmd_sensitivity(args) -> int:
    from repro.experiments.sensitivity import run_sensitivity
    print(run_sensitivity(_context(args)).format())
    return 0


def _cmd_transient(args) -> int:
    from repro.experiments.transient_response import run_transient_response
    print(run_transient_response(_context(args)).format())
    return 0


def _cmd_interval(args) -> int:
    from repro.experiments.interval import run_interval
    print(run_interval(_context(args)).format())
    return 0


def _cmd_stacking(args) -> int:
    from repro.experiments.stacking_order import run_stacking_order
    print(run_stacking_order(_context(args)).format())
    return 0


def _cmd_mechanisms(args) -> int:
    from repro.experiments.mechanisms import run_mechanisms
    print(run_mechanisms().format())
    return 0


def _cmd_cache(args) -> int:
    from repro.experiments.cache import ResultCache

    cache = ResultCache()
    if args.action == "clear":
        tmp_count = len(cache.tmp_files())
        removed = cache.clear()
        print(f"removed {removed} cached results and {tmp_count} temp "
              f"file(s) from {cache.root}")
    elif args.action == "prune":
        pruned = cache.prune()
        print(f"evicted {pruned['evicted']} entries over the size cap, "
              f"removed {pruned['stale_dirs']} stale schema dir(s), "
              f"{pruned['tmp_files']} temp file(s), "
              f"{pruned['claims']} abandoned claim(s)")
        print(f"cache size now {pruned['size_bytes'] / 1024:.1f} KiB "
              f"(ledger {pruned['ledger_bytes'] / 1024:.1f} KiB, "
              f"evictions_size={cache.evictions_size})")
    elif args.action == "list":
        entries = cache.entries()
        listed = 0
        for path in entries:
            try:
                size = path.stat().st_size
            except OSError:
                continue  # evicted by a concurrent prune mid-listing
            listed += 1
            print(f"{path.name.split('.')[0]}  {size / 1024:7.1f} KiB")
        print(f"{listed} entries, {cache.size_bytes() / 1024:.1f} KiB total")
    else:
        swept = cache.sweep_tmp()
        print(cache.describe())
        print(f"stale temp files swept: {swept}")
    return 0


def _cmd_report(args) -> int:
    import time

    context = _context(args)
    profiler = None
    if getattr(args, "profile", None):
        import cProfile

        profiler = cProfile.Profile()
    start = time.perf_counter()
    if profiler is not None:
        profiler.enable()
    text = generate_report(context)
    if profiler is not None:
        profiler.disable()
    wall_s = time.perf_counter() - start
    if profiler is not None:
        # Stats go to stderr so a report printed to stdout stays clean.
        import pstats

        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(args.profile)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as stream:
            stream.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    if args.stats or args.log_json:
        import json

        # Run telemetry plus the cache/ledger metrics section — see
        # repro.experiments.report.stats_payload.
        payload = stats_payload(context, wall_s, args.fast)
        if args.stats:
            with open(args.stats, "w", encoding="utf-8") as stream:
                json.dump(payload, stream, indent=2)
                stream.write("\n")
            print(f"wrote {args.stats}")
        if args.log_json:
            # One robustness event per line, closed by a summary record —
            # greppable in CI logs, streamable into log pipelines.  Every
            # line carries ts/run_id/batch_id for correlation with
            # external job-runner logs.
            from datetime import datetime, timezone

            with open(args.log_json, "w", encoding="utf-8") as stream:
                for event in context.stats.events:
                    stream.write(json.dumps(event, sort_keys=True) + "\n")
                summary = {
                    "event": "summary",
                    "ts": datetime.now(timezone.utc).isoformat(
                        timespec="milliseconds"),
                    "batch_id": None,
                    **payload,
                }
                stream.write(json.dumps(summary, sort_keys=True) + "\n")
            print(f"wrote {args.log_json} "
                  f"({len(context.stats.events)} robustness events)")
    return 0


def _cmd_metrics(args) -> int:
    import json

    from repro.experiments.metrics import metrics_snapshot

    text = json.dumps(metrics_snapshot(), indent=2, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as stream:
            stream.write(text)
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_simulate(args) -> int:
    from repro.cpu.pipeline import simulate
    from repro.experiments.context import _all_configurations
    from repro.workloads.suite import generate

    configs = _all_configurations()
    if args.config not in configs:
        print(f"unknown config {args.config!r}; choose from {', '.join(configs)}",
              file=sys.stderr)
        return 2
    trace = generate(args.benchmark, length=args.length)
    result = simulate(trace, configs[args.config], warmup=args.length // 3)
    print(result.summary())
    for metric, value in sorted(result.herding.items()):
        if not metric.startswith("herded::"):
            print(f"  {metric}: {value:.3f}")
    return 0


def _cmd_trace(args) -> int:
    from repro.isa.serialization import save_trace
    from repro.workloads.suite import generate

    trace = generate(args.benchmark, length=args.length)
    output = args.output or f"{args.benchmark}.trace.jsonl.gz"
    save_trace(trace, output)
    stats = trace.stats()
    print(f"wrote {output} ({len(trace)} instructions)")
    print(stats.format())
    return 0


def _cmd_list(args) -> int:
    from repro.workloads.suite import BENCHMARKS
    for name, spec in BENCHMARKS.items():
        print(f"{name:<12s} {spec.benchmark_class.value}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Thermal Herding (HPCA 2007) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add(name, fn, help_text, fast=True):
        p = sub.add_parser(name, help=help_text)
        if fast:
            p.add_argument("--fast", action="store_true",
                           help="reduced benchmark set / shorter traces")
            p.add_argument("-j", "--jobs", type=int, default=None, metavar="N",
                           help="simulation worker processes "
                                "(default: $REPRO_JOBS or all cores)")
        p.set_defaults(fn=fn)
        return p

    add("table2", _cmd_table2, "Table 2: block latencies and frequencies", fast=False)
    add("figure8", _cmd_figure8, "Figure 8: performance of the five configs")
    add("figure9", _cmd_figure9, "Figure 9: power of the three processors")
    add("figure10", _cmd_figure10, "Figure 10: thermal maps")
    add("density", _cmd_density, "Section 5.3: iso-power density experiment")
    add("width", _cmd_width, "Section 3.8: width prediction accuracy")
    add("dvfs", _cmd_dvfs, "frequency-for-temperature sweep")
    add("roadmap", _cmd_roadmap, "Figure 2 roadmap design points")
    add("leakage", _cmd_leakage, "leakage-temperature feedback fixed point")
    add("pairing", _cmd_pairing, "heterogeneous core pairing thermals")
    add("sensitivity", _cmd_sensitivity, "packaging-parameter thermal sensitivity")
    add("transient", _cmd_transient, "transient step-response of both stacks")
    add("interval", _cmd_interval,
        "interval power/thermal co-simulation with DTM throttling")
    add("stacking", _cmd_stacking, "die stacking-order ablation")
    add("mechanisms", _cmd_mechanisms,
        "per-mechanism microbenchmark validation", fast=False)

    report = add("report", _cmd_report, "full markdown report of all experiments")
    report.add_argument("-o", "--output", help="write the report to a file")
    report.add_argument("--stats", metavar="FILE",
                        help="write wall-clock and simulation/thermal-solve "
                             "counters as JSON (for benchmark tracking)")
    report.add_argument("--log-json", metavar="FILE", dest="log_json",
                        help="write per-event robustness telemetry (retries, "
                             "pool restarts, serial fallbacks) as JSON lines")
    report.add_argument("--profile", nargs="?", const=30, default=None,
                        type=int, metavar="N",
                        help="run report generation under cProfile and print "
                             "the top N cumulative-time entries to stderr "
                             "(default 30)")

    metrics = add("metrics", _cmd_metrics,
                  "machine-readable cache/ledger/solver metrics snapshot",
                  fast=False)
    metrics.add_argument("--out", metavar="FILE",
                         help="write the JSON snapshot to a file instead "
                              "of stdout")

    cache = add("cache", _cmd_cache, "inspect or clear the on-disk result cache",
                fast=False)
    cache.add_argument("action", nargs="?", default="info",
                       choices=("info", "list", "clear", "prune"),
                       help="what to do (default: info); prune enforces "
                            "the REPRO_CACHE_MAX_MB size cap and sweeps "
                            "abandoned temp/claim files")

    sim = add("simulate", _cmd_simulate, "simulate one benchmark", fast=False)
    sim.add_argument("benchmark")
    sim.add_argument("--config", default="3D")
    sim.add_argument("--length", type=int, default=20_000)

    trace = add("trace", _cmd_trace, "generate and save a trace", fast=False)
    trace.add_argument("benchmark")
    trace.add_argument("--length", type=int, default=20_000)
    trace.add_argument("-o", "--output")

    add("list", _cmd_list, "list the benchmark suite", fast=False)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Output was piped to a consumer that exited early (e.g. `| head`).
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
