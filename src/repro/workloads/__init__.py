"""Synthetic workload generation.

The paper evaluates 106 application traces drawn from SPECint2000,
SPECfp2000, MediaBench, MiBench, the Wisconsin pointer-intensive codes,
and BioBench/BioPerf.  Those binaries and their reference inputs are not
redistributable, so this package provides *synthetic* workload generators:
each benchmark class is a parameter set (instruction mix, value-width
behaviour, memory footprint and locality, branch behaviour) from which a
structured synthetic program is built and then functionally emulated to
produce a committed-instruction trace with *real* register values, memory
addresses and branch outcomes.  The statistical properties the paper's
techniques exploit — narrow integer values, upper-address-bit locality,
partial-value locality, near branch targets — therefore emerge from actual
emulated values rather than being injected as labels.
"""

from repro.workloads.parameters import (
    WorkloadParameters,
    BenchmarkClass,
    CLASS_PARAMETERS,
)
from repro.workloads.memory_model import MemoryModel, Region, AccessPattern
from repro.workloads.program import SyntheticProgram, build_program
from repro.workloads.emulator import Emulator, generate_trace
from repro.workloads.validation import (
    CLASS_EXPECTATIONS,
    ClassExpectations,
    validate_suite,
    validate_trace,
)
from repro.workloads.suite import (
    BENCHMARKS,
    BenchmarkSpec,
    benchmark_names,
    benchmarks_in_class,
    generate,
    standard_suite,
)

__all__ = [
    "WorkloadParameters",
    "BenchmarkClass",
    "CLASS_PARAMETERS",
    "MemoryModel",
    "Region",
    "AccessPattern",
    "SyntheticProgram",
    "build_program",
    "Emulator",
    "generate_trace",
    "BENCHMARKS",
    "BenchmarkSpec",
    "benchmark_names",
    "benchmarks_in_class",
    "generate",
    "standard_suite",
    "CLASS_EXPECTATIONS",
    "ClassExpectations",
    "validate_suite",
    "validate_trace",
]
