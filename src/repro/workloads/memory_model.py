"""Functional data-memory model for the workload emulator.

Addresses live in three regions with realistic upper-bit structure:

* ``stack``  — high canonical addresses (``0x7FFF_FFFF_xxxx``); all stack
  accesses share the same upper 48 bits, which feeds the partial address
  memoization (PAM) statistics of Section 3.5.
* ``heap``   — a mid-range region sized by the workload footprint.
* ``global`` — a small low region for program globals.

Values are materialized lazily on first read, drawn from the per-class
data-value distribution, so the 2-bit L1D partial-value encoding (Section
3.6) sees the zero / all-ones / near-pointer / wide mix the paper relies
on.  Values written by the program persist and are returned verbatim on
subsequent reads.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict

from repro.isa.values import to_unsigned, upper_bits

#: Access granularity: 8-byte words.
WORD_BYTES = 8

STACK_BASE = 0x7FFF_FFFF_0000
STACK_SIZE = 64 << 10
HEAP_BASE = 0x2AAA_0000_0000
GLOBAL_BASE = 0x0000_0060_0000
GLOBAL_SIZE = 128 << 10


class AccessPattern(enum.Enum):
    """How a static memory instruction walks its region."""

    STACK = "stack"         # small sp-relative offsets
    SEQUENTIAL = "seq"      # unit-stride walk of the footprint
    STRIDED = "strided"     # cacheline-skipping stride
    RANDOM = "random"       # uniform over the footprint
    CHASE = "chase"         # address comes from the previously loaded value


@dataclass(frozen=True)
class Region:
    """A contiguous address region."""

    name: str
    base: int
    size: int

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size

    def align(self, offset: int) -> int:
        """Word-aligned address at ``offset`` bytes into the region (wraps)."""
        return self.base + (offset % self.size) // WORD_BYTES * WORD_BYTES


class MemoryModel:
    """Lazy-initializing word-granular data memory.

    Parameters
    ----------
    value_dist:
        Probability weights for the value kinds ``zero``, ``small_pos``,
        ``small_neg``, ``near_pointer`` and ``wide`` used to materialize
        never-written words.
    footprint_bytes:
        Heap region size.
    rng:
        Dedicated random stream (determinism: one stream per concern).
    """

    def __init__(self, value_dist: Dict[str, float], footprint_bytes: int, rng: random.Random):
        self._rng = rng
        self._storage: Dict[int, int] = {}
        #: value kind per 4 KB page — real data structures are homogeneous
        #: (an array of doubles is uniformly wide), which is what makes
        #: per-PC width prediction work.
        self._page_kinds: Dict[int, str] = {}
        self._kind_seed = rng.getrandbits(32)
        kinds = ["zero", "small_pos", "small_neg", "near_pointer", "wide"]
        self._kinds = kinds
        self._weights = [max(value_dist.get(k, 0.0), 0.0) for k in kinds]
        if sum(self._weights) <= 0:
            raise ValueError("value_dist must contain at least one positive weight")
        self.stack = Region("stack", STACK_BASE, STACK_SIZE)
        self.heap = Region("heap", HEAP_BASE, max(footprint_bytes, WORD_BYTES * 16))
        self.globals = Region("global", GLOBAL_BASE, GLOBAL_SIZE)

    def read(self, addr: int) -> int:
        """Read the 64-bit word at ``addr``, materializing it if untouched."""
        addr = self._align(addr)
        value = self._storage.get(addr)
        if value is None:
            value = self._materialize(addr)
            self._storage[addr] = value
        return value

    def write(self, addr: int, value: int) -> None:
        """Write the 64-bit word at ``addr``."""
        self._storage[self._align(addr)] = to_unsigned(value)

    def touched_words(self) -> int:
        """Number of distinct words read or written so far."""
        return len(self._storage)

    @staticmethod
    def _align(addr: int) -> int:
        return addr & ~(WORD_BYTES - 1)

    def _page_kind(self, addr: int) -> str:
        """The (sticky, deterministic) value kind of the page holding addr."""
        page = addr >> 12
        kind = self._page_kinds.get(page)
        if kind is None:
            page_rng = random.Random((page * 0x9E3779B1) ^ self._kind_seed)
            kind = page_rng.choices(self._kinds, weights=self._weights, k=1)[0]
            self._page_kinds[page] = kind
        return kind

    def _materialize(self, addr: int) -> int:
        kind = self._page_kind(addr)
        if kind == "zero":
            return 0
        if kind == "small_pos":
            return self._rng.randrange(1, 1 << 15)
        if kind == "small_neg":
            return to_unsigned(-self._rng.randrange(1, 1 << 15))
        if kind == "near_pointer":
            # A pointer to a nearby object: same upper 48 bits as the
            # holding address (the heap-data-structure case of Section 3.6).
            upper = upper_bits(addr) << 16
            return upper | self._rng.randrange(0, 1 << 16) & ~0x7
        # wide: a 64-bit value with populated upper bits
        return self._rng.getrandbits(64) | (1 << 48)
