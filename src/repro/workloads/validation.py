"""Workload characterization validation.

The benchmark classes only stand in for the paper's suites if their
emergent statistics stay inside the bands the evaluation depends on
(value widths, memory intensity, branch behaviour).  This module encodes
those bands and checks generated traces against them — used by the test
suite and available to users tuning their own workload parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.isa.trace import Trace, TraceStats
from repro.workloads.parameters import BenchmarkClass

Band = Tuple[float, float]


@dataclass(frozen=True)
class ClassExpectations:
    """Statistic bands one benchmark class must stay inside."""

    low_width_results: Band
    memory_fraction: Band
    branch_fraction: Band
    near_targets: Band = (0.80, 1.0)

    def check(self, stats: TraceStats) -> List[str]:
        """Violations (empty when the trace fits the class)."""
        violations = []

        def verify(label: str, value: float, band: Band) -> None:
            low, high = band
            if not low <= value <= high:
                violations.append(
                    f"{label} = {value:.3f} outside [{low:.2f}, {high:.2f}]"
                )

        verify("low_width_results", stats.low_width_result_fraction,
               self.low_width_results)
        verify("memory_fraction", stats.memory_fraction, self.memory_fraction)
        verify("branch_fraction", stats.branch_fraction, self.branch_fraction)
        verify("near_targets", stats.near_target_fraction, self.near_targets)
        return violations


#: Expected statistic bands per class — wide enough for seed variance,
#: tight enough to catch regressions in the generator.
CLASS_EXPECTATIONS: Dict[BenchmarkClass, ClassExpectations] = {
    BenchmarkClass.SPECINT: ClassExpectations(
        low_width_results=(0.35, 0.85),
        memory_fraction=(0.15, 0.50),
        branch_fraction=(0.05, 0.30),
    ),
    BenchmarkClass.SPECFP: ClassExpectations(
        low_width_results=(0.08, 0.70),
        memory_fraction=(0.20, 0.55),
        branch_fraction=(0.02, 0.20),
    ),
    BenchmarkClass.MEDIABENCH: ClassExpectations(
        low_width_results=(0.45, 0.95),
        memory_fraction=(0.10, 0.45),
        branch_fraction=(0.02, 0.25),
    ),
    BenchmarkClass.MIBENCH: ClassExpectations(
        low_width_results=(0.50, 0.95),
        memory_fraction=(0.10, 0.45),
        branch_fraction=(0.03, 0.30),
    ),
    BenchmarkClass.POINTER: ClassExpectations(
        low_width_results=(0.15, 0.65),
        memory_fraction=(0.18, 0.55),
        branch_fraction=(0.05, 0.35),
    ),
    BenchmarkClass.BIO: ClassExpectations(
        low_width_results=(0.45, 0.90),
        memory_fraction=(0.12, 0.50),
        branch_fraction=(0.04, 0.32),
    ),
}


def validate_trace(
    trace: Trace,
    expectations: Optional[ClassExpectations] = None,
) -> List[str]:
    """Check a trace against its class's bands; returns violations."""
    if expectations is None:
        try:
            klass = BenchmarkClass(trace.benchmark_class)
        except ValueError:
            raise ValueError(
                f"trace class {trace.benchmark_class!r} is not a known suite; "
                f"pass expectations explicitly"
            )
        expectations = CLASS_EXPECTATIONS[klass]
    return expectations.check(trace.stats())


def validate_suite(traces: List[Trace]) -> Dict[str, List[str]]:
    """Validate many traces; returns {trace name: violations} (non-empty only).

    Trace names are not guaranteed unique: users can generate the same
    benchmark twice with different parameters.  Repeated names are
    disambiguated as ``name#2``, ``name#3``, … (in input order) so a
    later duplicate never silently overwrites an earlier trace's
    violations, and each duplicate's report notes the name clash.
    """
    report: Dict[str, List[str]] = {}
    occurrences: Dict[str, int] = {}
    for trace in traces:
        count = occurrences.get(trace.name, 0) + 1
        occurrences[trace.name] = count
        violations = validate_trace(trace)
        if not violations:
            continue
        key = trace.name if count == 1 else f"{trace.name}#{count}"
        if count > 1:
            violations = violations + [
                f"duplicate trace name {trace.name!r} (occurrence {count})"
            ]
        report[key] = violations
    return report
