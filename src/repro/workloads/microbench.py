"""Hand-built microbenchmarks targeting individual herding mechanisms.

Each kernel is a deterministic looped trace (via
:class:`~repro.isa.builder.TraceBuilder`) crafted to trigger exactly one
Thermal Herding mechanism, so its stalls and herding counters can be
validated in isolation — the microarchitectural unit tests of the paper's
Section 3.  All kernels loop over fixed PCs so the width predictor, BTB,
and branch predictor see repeatable static instructions:

* ``narrow_alu``   — all-narrow arithmetic: maximal gating, no stalls.
* ``width_flip``   — a PC alternating narrow/wide results: width
  mispredictions and ALU re-executions.
* ``wide_operands``— narrow results from wide operands: register-read
  group stalls (unsafe at the RF).
* ``pointer_chase``— serial dependent loads at one PC.
* ``stack_burst``  — stack stores/loads with shared upper bits: PAM herds.
* ``far_branches`` — calls into a far code region: BTB memoization stalls.
* ``wide_loads``   — one load PC trained narrow, then fed wide literals:
  D-cache width stalls.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.isa.builder import TraceBuilder
from repro.isa.trace import Trace

HEAP = 0x2AAA_0000_0000
STACK = 0x7FFF_FFFF_8000
FAR_CODE = 0x7F00_0000_0000
WIDE = 0x0123_4567_0000_0000


def _loop(builder: TraceBuilder, iterations: int, body) -> TraceBuilder:
    """Run ``body(builder, i)`` at fixed PCs with a back-edge branch."""
    start = builder.next_pc
    for i in range(iterations):
        body(builder, i)
        last = i == iterations - 1
        builder.branch(taken=not last, target=None if last else start, srcs=(0,))
    return builder


def narrow_alu(iterations: int = 64) -> Trace:
    """Dependent narrow adds: everything stays on the top die."""
    builder = TraceBuilder("narrow_alu")

    def body(b: TraceBuilder, i: int) -> None:
        b.alu(1, (i + 3) & 0xFFF, srcs=(1,))
        b.alu(2, 7)

    return _loop(builder, iterations, body).build()


def width_flip(iterations: int = 64) -> Trace:
    """One loop PC alternates narrow and wide results each iteration.

    The 2-bit width predictor can never settle, so this kernel maximizes
    width mispredictions (both safe and unsafe).
    """
    builder = TraceBuilder("width_flip")

    def body(b: TraceBuilder, i: int) -> None:
        wide = i % 2 == 1
        b.alu(1, WIDE | i if wide else i + 1)
        b.alu(2, 5, srcs=(2,))

    return _loop(builder, iterations, body).build()


def wide_operands(iterations: int = 64) -> Trace:
    """Narrow results computed FROM wide operands.

    The consumer's result is narrow (training the predictor low) but its
    register operand is wide, so low predictions are unsafe at the
    register file (Section 3.1's group stall).  Spacer instructions push
    the consumer past the bypass window so the operand really comes from
    the register file.
    """
    builder = TraceBuilder("wide_operands")

    def body(b: TraceBuilder, i: int) -> None:
        # The producer alternates narrow/wide at a fixed PC, keeping the
        # predictor unsettled; spacers push the consumer out of the
        # bypass window so the wide operand is read from the RF.
        b.alu(5, (WIDE | (i + 1)) if i % 2 else 3)
        for k in range(12):
            b.alu(2, (i + k) & 0xFF, srcs=(2,))
        b.alu(1, 3, srcs=(5,))

    return _loop(builder, iterations, body).build()


def pointer_chase(iterations: int = 64, stride_lines: int = 9) -> Trace:
    """Serial dependent loads at one PC walking a strided pointer ring."""
    builder = TraceBuilder("pointer_chase")
    addr = HEAP

    def body(b: TraceBuilder, i: int) -> None:
        nonlocal addr
        next_addr = HEAP + ((i + 1) * stride_lines * 64) % (1 << 16)
        b.load(1, addr=addr, value=next_addr, srcs=(1,))
        addr = next_addr

    return _loop(builder, iterations, body).build()


def stack_burst(iterations: int = 64) -> Trace:
    """Bursts of stack traffic: PAM herds almost every broadcast."""
    builder = TraceBuilder("stack_burst")

    def body(b: TraceBuilder, i: int) -> None:
        slot = STACK + (i % 16) * 8
        b.store(addr=slot, value=i & 0x7FF, srcs=(1, 2))
        b.load(3, addr=slot, value=i & 0x7FF, srcs=(1,))

    return _loop(builder, iterations, body).build()


def far_branches(iterations: int = 48) -> Trace:
    """Calls into a far code region: the BTB memoization bit misses."""
    builder = TraceBuilder("far_branches")
    start = builder.next_pc
    for i in range(iterations):
        builder.call(FAR_CODE)
        builder.alu(1, i & 0xFF)            # leaf body at FAR_CODE
        builder.ret(start + 4)
        builder.alu(2, 5)                   # back at start + 4
        last = i == iterations - 1
        builder.branch(taken=not last, target=None if last else start, srcs=(2,))
    return builder.build()


def wide_loads(iterations: int = 64) -> Trace:
    """One load PC trained narrow for half the run, then wide literals.

    The second half's loads are unsafe under the (trained-low) width
    prediction, and their values are not trivially encodable, so each
    pays the D-cache width-misprediction stall (Section 3.6).
    """
    builder = TraceBuilder("wide_loads")

    def body(b: TraceBuilder, i: int) -> None:
        narrow_phase = i < iterations // 2
        value = (i & 0xFF) + 1 if narrow_phase else (WIDE | (i + 1))
        # Fresh lines in the wide phase: their encoding bits are computed
        # from the wide values (LITERAL), not inherited from the narrow
        # phase's lines.
        slot = (i % 8) if narrow_phase else (8 + i % 8)
        b.load(1, addr=HEAP + slot * 64, value=value, srcs=(2,))
        b.alu(2, 1, srcs=(2,))

    return _loop(builder, iterations, body).build()


#: All kernels by name.
KERNELS: Dict[str, Callable[[], Trace]] = {
    "narrow_alu": narrow_alu,
    "width_flip": width_flip,
    "wide_operands": wide_operands,
    "pointer_chase": pointer_chase,
    "stack_burst": stack_burst,
    "far_branches": far_branches,
    "wide_loads": wide_loads,
}


def all_kernels() -> List[Trace]:
    """Instantiate every kernel at its default size."""
    return [build() for build in KERNELS.values()]
