"""Per-class workload parameters.

Each :class:`BenchmarkClass` mirrors one of the paper's benchmark suites.
The parameters control the synthetic program builder and the value
distributions of the functional emulator; they were chosen so the emergent
trace statistics match the qualitative behaviour the paper reports:

* SPECint-like: integer heavy, mostly-narrow values, medium footprints.
* SPECfp-like: FP heavy, load heavy, very large footprints (memory bound —
  the class with the smallest 3D speedup in Figure 8).
* MediaBench-like: compute intensive, very narrow values, small footprints
  (mpeg2 is the paper's peak-power application).
* MiBench-like: embedded kernels, narrow values (susan shows the largest
  power saving; patricia the largest speedup).
* Pointer-intensive: full-width pointer traffic with strong upper-address
  locality, memory intensive (yacr2 shows the smallest power saving and is
  the thermal worst case under Thermal Herding).
* Bio-like: integer sequence processing, narrow values, medium footprints.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict


class BenchmarkClass(enum.Enum):
    """The six benchmark suites of the paper's evaluation."""

    SPECINT = "SPECint2000"
    SPECFP = "SPECfp2000"
    MEDIABENCH = "MediaBench"
    MIBENCH = "MiBench"
    POINTER = "Pointer"
    BIO = "Bio"


@dataclass(frozen=True)
class WorkloadParameters:
    """Knobs for the synthetic program builder and emulator.

    Fractions need not sum exactly to one; the builder normalizes the
    relevant groups.
    """

    #: fraction of non-control, non-memory instructions that are FP
    fp_fraction: float = 0.0
    #: of FP ops: add / mul / div split
    fp_add_share: float = 0.6
    fp_mul_share: float = 0.35
    #: loads per instruction and stores per instruction
    load_fraction: float = 0.22
    store_fraction: float = 0.10
    #: conditional branches per instruction
    branch_fraction: float = 0.14
    #: call/return pairs per instruction
    call_fraction: float = 0.01
    #: of integer ALU ops, share executing on the shifter / multiplier
    shift_share: float = 0.12
    mul_share: float = 0.03

    #: probability weights for integer value kinds (see program builder):
    #: counters/small constants (narrow), accumulators (mostly narrow),
    #: pointer arithmetic (wide), wide constants/logic (wide)
    narrow_value_weight: float = 0.60
    accum_value_weight: float = 0.20
    pointer_value_weight: float = 0.12
    wide_value_weight: float = 0.08

    #: data memory footprint in bytes (drives cache/DRAM miss rates)
    footprint_bytes: int = 1 << 20
    #: fraction of memory ops that hit the stack region
    stack_access_fraction: float = 0.30
    #: fraction of heap accesses that are dependent pointer chases
    chase_fraction: float = 0.05
    #: fraction of heap accesses that walk sequentially (vs random)
    sequential_fraction: float = 0.60
    #: random accesses draw from a hot subset this often (temporal locality)
    hot_fraction: float = 0.95
    #: size of each hot subset for random accesses
    hot_bytes: int = 24 << 10
    #: sequential/strided cursors wrap within a stream buffer of this size
    #: (re-traversal of bounded buffers, e.g. video frames / FP grids)
    stream_bytes: int = 8 << 10
    #: pointer chases are confined to a linked-structure pool of this size
    chase_pool_bytes: int = 64 << 10
    #: byte stride of STRIDED cursors (>=128 defeats the next-line prefetcher)
    stride_bytes: int = 64

    #: distribution of *stored data values* (drives the L1D partial-value
    #: encoding statistics): zero / small positive / small negative /
    #: near pointer (upper bits equal address) / wide
    value_dist: Dict[str, float] = field(
        default_factory=lambda: {
            "zero": 0.25,
            "small_pos": 0.35,
            "small_neg": 0.08,
            "near_pointer": 0.12,
            "wide": 0.20,
        }
    )

    #: taken bias of data-dependent (non-loop) branches; loop back edges
    #: are predictable by construction
    branch_bias: float = 0.75
    #: fraction of data-dependent branches that are essentially random
    hard_branch_fraction: float = 0.10
    #: fraction of regular branches that follow a periodic (learnable)
    #: pattern instead of a biased coin
    periodic_branch_fraction: float = 0.75
    #: probability that a periodic branch deviates from its pattern
    branch_noise: float = 0.02
    #: mean loop trip count (geometric); longer loops = more predictable
    mean_trip_count: float = 24.0
    #: number of distinct loops (static code size driver)
    loop_count: int = 12
    #: mean instructions per loop body
    body_size: int = 16
    #: fraction of taken control transfers whose target lies in a far code
    #: region (different upper 48 PC bits) — exercises BTB memoization misses
    far_target_fraction: float = 0.02


#: Default parameters per benchmark class.
CLASS_PARAMETERS: Dict[BenchmarkClass, WorkloadParameters] = {
    BenchmarkClass.SPECINT: WorkloadParameters(
        fp_fraction=0.01,
        load_fraction=0.24,
        store_fraction=0.11,
        branch_fraction=0.16,
        narrow_value_weight=0.58,
        accum_value_weight=0.20,
        pointer_value_weight=0.13,
        wide_value_weight=0.09,
        footprint_bytes=6 << 20,
        stack_access_fraction=0.35,
        branch_bias=0.80,
        hard_branch_fraction=0.06,
        mean_trip_count=18.0,
        loop_count=16,
        body_size=18,
    ),
    BenchmarkClass.SPECFP: WorkloadParameters(
        fp_fraction=0.38,
        load_fraction=0.30,
        store_fraction=0.12,
        branch_fraction=0.08,
        narrow_value_weight=0.45,
        accum_value_weight=0.15,
        pointer_value_weight=0.25,
        wide_value_weight=0.15,
        footprint_bytes=64 << 20,
        stack_access_fraction=0.10,
        sequential_fraction=0.55,
        hot_fraction=0.88,
        stream_bytes=4 << 20,
        stride_bytes=64,
        branch_bias=0.90,
        hard_branch_fraction=0.03,
        mean_trip_count=64.0,
        loop_count=10,
        body_size=24,
        value_dist={
            "zero": 0.15,
            "small_pos": 0.20,
            "small_neg": 0.05,
            "near_pointer": 0.10,
            "wide": 0.50,
        },
    ),
    BenchmarkClass.MEDIABENCH: WorkloadParameters(
        fp_fraction=0.04,
        load_fraction=0.22,
        store_fraction=0.10,
        branch_fraction=0.11,
        shift_share=0.22,
        narrow_value_weight=0.76,
        accum_value_weight=0.14,
        pointer_value_weight=0.06,
        wide_value_weight=0.04,
        footprint_bytes=512 << 10,
        stack_access_fraction=0.20,
        sequential_fraction=0.85,
        branch_bias=0.87,
        hard_branch_fraction=0.04,
        mean_trip_count=48.0,
        loop_count=8,
        body_size=22,
        value_dist={
            "zero": 0.30,
            "small_pos": 0.45,
            "small_neg": 0.10,
            "near_pointer": 0.03,
            "wide": 0.12,
        },
    ),
    BenchmarkClass.MIBENCH: WorkloadParameters(
        fp_fraction=0.02,
        load_fraction=0.21,
        store_fraction=0.09,
        branch_fraction=0.14,
        shift_share=0.18,
        narrow_value_weight=0.74,
        accum_value_weight=0.15,
        pointer_value_weight=0.07,
        wide_value_weight=0.04,
        footprint_bytes=256 << 10,
        stack_access_fraction=0.30,
        branch_bias=0.84,
        hard_branch_fraction=0.05,
        mean_trip_count=32.0,
        loop_count=10,
        body_size=14,
        value_dist={
            "zero": 0.32,
            "small_pos": 0.42,
            "small_neg": 0.08,
            "near_pointer": 0.04,
            "wide": 0.14,
        },
    ),
    BenchmarkClass.POINTER: WorkloadParameters(
        fp_fraction=0.01,
        load_fraction=0.30,
        store_fraction=0.12,
        branch_fraction=0.15,
        narrow_value_weight=0.40,
        accum_value_weight=0.15,
        pointer_value_weight=0.32,
        wide_value_weight=0.13,
        footprint_bytes=24 << 20,
        stack_access_fraction=0.18,
        chase_fraction=0.30,
        sequential_fraction=0.25,
        hot_fraction=0.95,
        chase_pool_bytes=256 << 10,
        branch_bias=0.78,
        hard_branch_fraction=0.08,
        mean_trip_count=14.0,
        loop_count=14,
        body_size=12,
        value_dist={
            "zero": 0.18,
            "small_pos": 0.22,
            "small_neg": 0.05,
            "near_pointer": 0.38,
            "wide": 0.17,
        },
    ),
    BenchmarkClass.BIO: WorkloadParameters(
        fp_fraction=0.03,
        load_fraction=0.25,
        store_fraction=0.08,
        branch_fraction=0.15,
        shift_share=0.16,
        narrow_value_weight=0.70,
        accum_value_weight=0.16,
        pointer_value_weight=0.09,
        wide_value_weight=0.05,
        footprint_bytes=4 << 20,
        stack_access_fraction=0.22,
        sequential_fraction=0.70,
        branch_bias=0.80,
        hard_branch_fraction=0.05,
        mean_trip_count=40.0,
        loop_count=12,
        body_size=16,
        value_dist={
            "zero": 0.28,
            "small_pos": 0.40,
            "small_neg": 0.07,
            "near_pointer": 0.08,
            "wide": 0.17,
        },
    ),
}
