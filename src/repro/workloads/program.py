"""Synthetic static program builder.

A synthetic program is a set of loops plus a pool of small leaf functions,
with fixed PCs, fixed register assignments, and per-instruction *value
kinds* that tell the emulator how to compute real 64-bit results.  Because
the static structure is fixed, dynamic re-execution of the same PCs gives
the branch predictor, BTB, and width predictor realistic learnable
behaviour — the properties the paper measures (97 % width prediction
accuracy, near branch targets, PAM address locality) emerge rather than
being injected.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.isa.opcodes import OpClass
from repro.isa.registers import NUM_FP_REGS, FP_REG_BASE, STACK_POINTER_REG
from repro.workloads.memory_model import AccessPattern
from repro.workloads.parameters import WorkloadParameters

#: Main code region (all loops and near leaf functions live here).
CODE_BASE = 0x0000_0040_0000
#: Far code region with different upper 48 PC bits (library-call stand-in);
#: taken transfers landing here defeat the BTB target memoization bit.
FAR_CODE_BASE = 0x7F00_0000_0000
INST_BYTES = 4


class ValueKind(enum.Enum):
    """How the emulator computes an instruction's result value."""

    COUNTER = "counter"          # dst = dst + 1 (reset at loop entry) — narrow
    STRIDE = "stride"            # dst = dst + small stride — narrow
    CONST_SMALL = "const_small"  # dst = fixed |imm| < 2^15 — narrow
    CONST_WIDE = "const_wide"    # dst = fixed 64-bit immediate — wide
    ACCUM = "accum"              # dst = dst + src — usually narrow
    LOGIC = "logic"              # dst = src1 op src2 — width follows inputs
    ADDR_UPDATE = "addr_update"  # dst = next address of a memory cursor — wide
    FP_OP = "fp_op"              # floating point; not on the int datapath


@dataclass
class InstTemplate:
    """One static instruction."""

    pc: int
    op: OpClass
    value_kind: Optional[ValueKind] = None
    dst: Optional[int] = None
    srcs: Tuple[int, ...] = ()
    #: fixed immediate for CONST_* kinds; stride for STRIDE/ADDR_UPDATE
    immediate: int = 0
    #: memory instructions: access pattern and cursor identity
    pattern: Optional[AccessPattern] = None
    cursor_id: Optional[int] = None
    #: branches: probability of being taken; back edges are handled by
    #: trip counts instead
    taken_bias: float = 0.5
    #: branches: period of a deterministic pattern (0 = biased coin);
    #: the branch is taken except on the last occurrence of each period
    pattern_period: int = 0
    is_back_edge: bool = False
    #: forward branches: number of following templates skipped when taken
    skip_count: int = 0
    #: calls: index of the callee leaf function
    callee: Optional[int] = None


@dataclass
class Loop:
    """A loop: preamble (run once per entry), body, back edge, exit jump.

    The preamble initializes the loop's counter/stride registers with
    real instructions so the committed trace's dataflow is exact; the
    exit jump transfers control to whatever loop runs next, keeping the
    committed path sequential (``inst.next_pc == next inst.pc``).
    """

    start_pc: int
    body: List[InstTemplate]
    back_edge: InstTemplate
    mean_trip_count: float
    preamble: List[InstTemplate] = field(default_factory=list)
    exit_jump: Optional[InstTemplate] = None

    @property
    def entry_pc(self) -> int:
        return self.preamble[0].pc if self.preamble else self.body[0].pc


@dataclass
class LeafFunction:
    """A small straight-line callee ending in a return."""

    entry_pc: int
    body: List[InstTemplate]
    ret: InstTemplate
    far: bool = False


@dataclass
class SyntheticProgram:
    """The complete static program."""

    loops: List[Loop]
    leaves: List[LeafFunction]
    parameters: WorkloadParameters
    #: total number of memory cursors allocated (emulator state size)
    cursor_count: int = 0

    def static_instruction_count(self) -> int:
        count = sum(
            len(loop.preamble) + len(loop.body) + 2  # back edge + exit jump
            for loop in self.loops
        )
        count += sum(len(leaf.body) + 1 for leaf in self.leaves)
        return count


class _Builder:
    """Stateful helper that lays out PCs and allocates registers/cursors."""

    def __init__(self, params: WorkloadParameters, rng: random.Random):
        self.params = params
        self.rng = rng
        self.next_pc = CODE_BASE
        self.next_far_pc = FAR_CODE_BASE
        self.cursor_count = 0

    def take_pc(self, far: bool = False) -> int:
        if far:
            pc = self.next_far_pc
            self.next_far_pc += INST_BYTES
        else:
            pc = self.next_pc
            self.next_pc += INST_BYTES
        return pc

    def take_cursor(self) -> int:
        cursor = self.cursor_count
        self.cursor_count += 1
        return cursor


def build_program(params: WorkloadParameters, seed: int) -> SyntheticProgram:
    """Construct a synthetic program from class parameters and a seed."""
    rng = random.Random(seed)
    builder = _Builder(params, rng)

    leaves = _build_leaves(builder)
    loops = [_build_loop(builder, leaves) for _ in range(params.loop_count)]
    return SyntheticProgram(
        loops=loops,
        leaves=leaves,
        parameters=params,
        cursor_count=builder.cursor_count,
    )


def _build_leaves(builder: _Builder) -> List[LeafFunction]:
    """A pool of leaf functions; a few live in the far code region."""
    rng = builder.rng
    leaves = []
    leaf_count = max(3, builder.params.loop_count // 2)
    for i in range(leaf_count):
        far = rng.random() < builder.params.far_target_fraction * 4
        body: List[InstTemplate] = []
        size = rng.randrange(3, 8)
        # Leaf bodies are simple narrow arithmetic on callee-saved regs.
        for _ in range(size):
            pc = builder.take_pc(far=far)
            dst = rng.randrange(0, 8)
            body.append(
                InstTemplate(
                    pc=pc,
                    op=OpClass.IALU,
                    value_kind=ValueKind.CONST_SMALL,
                    dst=dst,
                    immediate=rng.randrange(1, 1 << 12),
                )
            )
        ret = InstTemplate(pc=builder.take_pc(far=far), op=OpClass.RETURN, taken_bias=1.0)
        leaves.append(LeafFunction(entry_pc=body[0].pc, body=body, ret=ret, far=far))
    return leaves


def _pick_int_op(builder: _Builder) -> OpClass:
    r = builder.rng.random()
    if r < builder.params.mul_share:
        return OpClass.IMUL
    if r < builder.params.mul_share + builder.params.shift_share:
        return OpClass.ISHIFT
    return OpClass.IALU


def _pick_fp_op(builder: _Builder) -> OpClass:
    r = builder.rng.random()
    if r < builder.params.fp_add_share:
        return OpClass.FADD
    if r < builder.params.fp_add_share + builder.params.fp_mul_share:
        return OpClass.FMUL
    return OpClass.FDIV


def _pick_value_kind(builder: _Builder) -> ValueKind:
    p = builder.params
    kinds = [ValueKind.COUNTER, ValueKind.ACCUM, ValueKind.ADDR_UPDATE, ValueKind.CONST_WIDE]
    weights = [p.narrow_value_weight, p.accum_value_weight, p.pointer_value_weight, p.wide_value_weight]
    kind = builder.rng.choices(kinds, weights=weights, k=1)[0]
    if kind is ValueKind.COUNTER and builder.rng.random() < 0.5:
        kind = ValueKind.CONST_SMALL if builder.rng.random() < 0.5 else ValueKind.STRIDE
    if kind is ValueKind.ACCUM and builder.rng.random() < 0.4:
        kind = ValueKind.LOGIC
    return kind


def _pick_pattern(builder: _Builder) -> AccessPattern:
    p = builder.params
    r = builder.rng.random()
    if r < p.stack_access_fraction:
        return AccessPattern.STACK
    r = builder.rng.random()
    if r < p.chase_fraction:
        return AccessPattern.CHASE
    r = builder.rng.random()
    if r < p.sequential_fraction:
        return AccessPattern.SEQUENTIAL
    return AccessPattern.STRIDED if builder.rng.random() < 0.25 else AccessPattern.RANDOM


def _build_loop(builder: _Builder, leaves: List[LeafFunction]) -> Loop:
    """Build one loop body.

    Register convention inside a loop: a window of integer registers
    [0, 24) is used for produced values (cyclically), register 24-29 hold
    loop-carried pointers, STACK_POINTER_REG holds the stack pointer.
    """
    rng = builder.rng
    p = builder.params
    body: List[InstTemplate] = []
    size = max(6, int(rng.gauss(p.body_size, p.body_size / 4)))
    reg_cycle = 0
    recent_dsts: List[int] = [0, 1]

    def next_dst() -> int:
        nonlocal reg_cycle
        dst = reg_cycle % 24
        reg_cycle += 1
        recent_dsts.append(dst)
        if len(recent_dsts) > 8:
            recent_dsts.pop(0)
        return dst

    def pick_src() -> int:
        return rng.choice(recent_dsts)

    emitted = 0
    while emitted < size:
        r = rng.random()
        if r < p.load_fraction:
            emitted += _emit_memory(builder, body, OpClass.LOAD, next_dst, pick_src)
        elif r < p.load_fraction + p.store_fraction:
            emitted += _emit_memory(builder, body, OpClass.STORE, next_dst, pick_src)
        elif r < p.load_fraction + p.store_fraction + p.branch_fraction:
            # Forward conditional branch skipping 1-3 templates; the actual
            # skip distance is clamped after layout.  Regular branches are
            # either periodic (learnable by two-level predictors) or a
            # biased coin; hard branches are essentially random.
            hard = rng.random() < p.hard_branch_fraction
            period = 0
            if hard:
                bias = 0.5 + rng.uniform(-0.06, 0.06)
            elif rng.random() < p.periodic_branch_fraction:
                bias = p.branch_bias
                period = rng.randrange(2, 10)
            else:
                bias = p.branch_bias + rng.uniform(-0.08, 0.08)
            body.append(
                InstTemplate(
                    pc=builder.take_pc(),
                    op=OpClass.BRANCH,
                    srcs=(pick_src(),),
                    taken_bias=min(max(bias, 0.02), 0.98),
                    pattern_period=period,
                    skip_count=rng.randrange(1, 4),
                )
            )
            emitted += 1
        elif r < p.load_fraction + p.store_fraction + p.branch_fraction + p.call_fraction:
            callee = rng.randrange(len(leaves))
            body.append(
                InstTemplate(
                    pc=builder.take_pc(),
                    op=OpClass.CALL,
                    taken_bias=1.0,
                    callee=callee,
                )
            )
            emitted += 1
        elif rng.random() < p.fp_fraction:
            fp_dst = FP_REG_BASE + rng.randrange(NUM_FP_REGS)
            fp_srcs = (
                FP_REG_BASE + rng.randrange(NUM_FP_REGS),
                FP_REG_BASE + rng.randrange(NUM_FP_REGS),
            )
            body.append(
                InstTemplate(
                    pc=builder.take_pc(),
                    op=_pick_fp_op(builder),
                    value_kind=ValueKind.FP_OP,
                    dst=fp_dst,
                    srcs=fp_srcs,
                )
            )
            emitted += 1
        else:
            kind = _pick_value_kind(builder)
            dst = next_dst()
            srcs: Tuple[int, ...] = ()
            immediate = 0
            if kind is ValueKind.ACCUM:
                srcs = (dst, pick_src())
            elif kind is ValueKind.LOGIC:
                srcs = (pick_src(), pick_src())
            elif kind is ValueKind.STRIDE:
                srcs = (dst,)
                immediate = rng.randrange(1, 64)
            elif kind is ValueKind.COUNTER:
                srcs = (dst,)
                immediate = 1
            elif kind is ValueKind.CONST_SMALL:
                immediate = rng.randrange(0, 1 << 14)
            elif kind is ValueKind.CONST_WIDE:
                immediate = rng.getrandbits(64) | (1 << 50)
            elif kind is ValueKind.ADDR_UPDATE:
                # A standalone pointer computation not tied to a memory op.
                immediate = rng.choice([8, 16, 64])
            body.append(
                InstTemplate(
                    pc=builder.take_pc(),
                    op=_pick_int_op(builder),
                    value_kind=kind,
                    dst=dst,
                    srcs=srcs,
                    immediate=immediate,
                    pattern=AccessPattern.RANDOM if kind is ValueKind.ADDR_UPDATE else None,
                    cursor_id=builder.take_cursor() if kind is ValueKind.ADDR_UPDATE else None,
                )
            )
            emitted += 1

    # Clamp forward-branch skip counts so they never skip past the body end.
    for i, template in enumerate(body):
        if template.op is OpClass.BRANCH and template.skip_count:
            template.skip_count = min(template.skip_count, len(body) - 1 - i)

    back_edge = InstTemplate(
        pc=builder.take_pc(),
        op=OpClass.BRANCH,
        srcs=(0,),
        is_back_edge=True,
        taken_bias=1.0,
    )

    # Preamble: real initialization instructions for the loop-carried
    # counter/stride registers (one per distinct register).
    preamble: List[InstTemplate] = []
    seen_resets = set()
    for template in body:
        if template.value_kind in (ValueKind.COUNTER, ValueKind.STRIDE) \
                and template.dst is not None and template.dst not in seen_resets:
            seen_resets.add(template.dst)
            init = 0 if template.value_kind is ValueKind.COUNTER else rng.randrange(0, 256)
            preamble.append(
                InstTemplate(
                    pc=builder.take_pc(),
                    op=OpClass.IALU,
                    value_kind=ValueKind.CONST_SMALL,
                    dst=template.dst,
                    immediate=init,
                )
            )
    exit_jump = InstTemplate(pc=builder.take_pc(), op=OpClass.JUMP, taken_bias=1.0)

    # Re-sequence PCs so memory order is preamble -> body -> back edge ->
    # exit jump (the allocated PC set is unchanged, only permuted).
    ordered = preamble + body + [back_edge, exit_jump]
    for template, pc in zip(ordered, sorted(t.pc for t in ordered)):
        template.pc = pc

    mean_trips = max(2.0, rng.gauss(p.mean_trip_count, p.mean_trip_count / 3))
    return Loop(
        start_pc=body[0].pc,
        body=body,
        back_edge=back_edge,
        mean_trip_count=mean_trips,
        preamble=preamble,
        exit_jump=exit_jump,
    )


def _emit_memory(builder, body, op, next_dst, pick_src) -> int:
    """Emit an address-update + memory-op pair (or a single chase load)."""
    rng = builder.rng
    pattern = _pick_pattern(builder)
    cursor = builder.take_cursor()
    pointer_reg = 24 + rng.randrange(6) if pattern is not AccessPattern.STACK else STACK_POINTER_REG

    count = 0
    if pattern is AccessPattern.CHASE and op is OpClass.LOAD:
        # Pointer chase: the load's own result becomes the next address.
        body.append(
            InstTemplate(
                pc=builder.take_pc(),
                op=op,
                dst=pointer_reg,
                srcs=(pointer_reg,),
                pattern=pattern,
                cursor_id=cursor,
            )
        )
        return 1

    if pattern is not AccessPattern.STACK:
        stride = {
            AccessPattern.SEQUENTIAL: 8,
            AccessPattern.STRIDED: builder.params.stride_bytes,
            AccessPattern.RANDOM: 0,
            AccessPattern.CHASE: 0,
        }[pattern]
        body.append(
            InstTemplate(
                pc=builder.take_pc(),
                op=OpClass.IALU,
                value_kind=ValueKind.ADDR_UPDATE,
                dst=pointer_reg,
                srcs=(pointer_reg,),
                immediate=stride,
                pattern=pattern,
                cursor_id=cursor,
            )
        )
        count += 1

    if op is OpClass.LOAD:
        body.append(
            InstTemplate(
                pc=builder.take_pc(),
                op=op,
                dst=next_dst(),
                srcs=(pointer_reg,),
                pattern=pattern,
                cursor_id=cursor,
            )
        )
    else:
        body.append(
            InstTemplate(
                pc=builder.take_pc(),
                op=op,
                srcs=(pointer_reg, pick_src()),
                pattern=pattern,
                cursor_id=cursor,
            )
        )
    return count + 1
