"""Phase behaviour and SimPoint-style representative sampling.

The paper picks simulation points with SimPoint 2.0: profile a long run
into fixed-size intervals, describe each interval by its basic-block
vector (BBV), cluster the vectors, and simulate one representative
interval per cluster weighted by cluster size.  This module implements
that pipeline over our traces:

* :func:`basic_block_vectors` — per-interval execution-frequency vectors
  keyed by branch-delimited basic blocks;
* :class:`KMeans` — a small, deterministic k-means (no sklearn offline);
* :func:`choose_simpoints` — cluster the BBVs and return the
  representative interval of each cluster plus its weight;
* :func:`sample_trace` — stitch the representative intervals into a
  reduced trace whose statistics approximate the full run.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.isa.instruction import TraceInstruction
from repro.isa.trace import Trace


def basic_block_vectors(
    trace: Trace,
    interval: int = 2_000,
) -> Tuple[np.ndarray, List[int]]:
    """Per-interval basic-block execution vectors.

    A basic block is identified by its leader PC (the target of a control
    transfer or the instruction after one).  Returns the (intervals x
    blocks) matrix, L1-normalized per row, and the interval start indices.
    """
    if interval < 1:
        raise ValueError(f"interval must be positive, got {interval}")
    block_ids: Dict[int, int] = {}
    rows: List[Dict[int, int]] = []
    current: Dict[int, int] = {}
    starts: List[int] = [0]

    leader = True
    count_in_interval = 0
    for index, inst in enumerate(trace):
        if leader:
            block = block_ids.setdefault(inst.pc, len(block_ids))
            current[block] = current.get(block, 0) + 1
        leader = inst.op.is_control
        count_in_interval += 1
        if count_in_interval >= interval:
            rows.append(current)
            current = {}
            count_in_interval = 0
            if index + 1 < len(trace):
                starts.append(index + 1)
    if current:
        rows.append(current)

    matrix = np.zeros((len(rows), max(len(block_ids), 1)))
    for row_index, row in enumerate(rows):
        for block, count in row.items():
            matrix[row_index, block] = count
        total = matrix[row_index].sum()
        if total:
            matrix[row_index] /= total
    return matrix, starts[: len(rows)]


class KMeans:
    """Deterministic k-means with k-means++-style seeding."""

    def __init__(self, k: int, seed: int = 0, max_iters: int = 50):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.seed = seed
        self.max_iters = max_iters
        self.centroids: np.ndarray = np.empty(0)
        self.labels: np.ndarray = np.empty(0, dtype=int)

    def fit(self, data: np.ndarray) -> "KMeans":
        n = data.shape[0]
        if n == 0:
            raise ValueError("cannot cluster an empty matrix")
        k = min(self.k, n)
        rng = random.Random(self.seed)

        # k-means++ seeding.
        centroids = [data[rng.randrange(n)]]
        while len(centroids) < k:
            distances = np.min(
                [((data - c) ** 2).sum(axis=1) for c in centroids], axis=0
            )
            total = distances.sum()
            if total <= 0:
                centroids.append(data[rng.randrange(n)])
                continue
            pick = rng.random() * total
            cumulative = np.cumsum(distances)
            centroids.append(data[int(np.searchsorted(cumulative, pick))])
        centers = np.array(centroids)

        labels = np.zeros(n, dtype=int)
        for _ in range(self.max_iters):
            distances = ((data[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
            new_labels = distances.argmin(axis=1)
            if (new_labels == labels).all() and _ > 0:
                break
            labels = new_labels
            for cluster in range(k):
                members = data[labels == cluster]
                if len(members):
                    centers[cluster] = members.mean(axis=0)
        self.centroids = centers
        self.labels = labels
        return self


@dataclass(frozen=True)
class SimPoint:
    """One representative interval."""

    interval_index: int
    start_instruction: int
    weight: float


def choose_simpoints(
    trace: Trace,
    interval: int = 2_000,
    max_clusters: int = 4,
    seed: int = 0,
) -> List[SimPoint]:
    """Cluster the trace's BBVs and pick one representative per cluster."""
    matrix, starts = basic_block_vectors(trace, interval=interval)
    model = KMeans(k=max_clusters, seed=seed).fit(matrix)
    points: List[SimPoint] = []
    n = matrix.shape[0]
    for cluster in range(model.centroids.shape[0]):
        members = np.flatnonzero(model.labels == cluster)
        if not len(members):
            continue
        centroid = model.centroids[cluster]
        distances = ((matrix[members] - centroid) ** 2).sum(axis=1)
        representative = int(members[distances.argmin()])
        points.append(
            SimPoint(
                interval_index=representative,
                start_instruction=starts[representative],
                weight=len(members) / n,
            )
        )
    points.sort(key=lambda p: p.interval_index)
    return points


def sample_trace(
    trace: Trace,
    points: Sequence[SimPoint],
    interval: int = 2_000,
) -> Trace:
    """Concatenate the representative intervals into a reduced trace."""
    if not points:
        raise ValueError("need at least one simpoint")
    instructions: List[TraceInstruction] = []
    for point in points:
        start = point.start_instruction
        instructions.extend(trace.instructions[start:start + interval])
    return Trace(
        name=f"{trace.name}@simpoints",
        instructions=instructions,
        benchmark_class=trace.benchmark_class,
        seed=trace.seed,
    )


def weighted_metric(points: Sequence[SimPoint], values: Sequence[float]) -> float:
    """SimPoint-weighted combination of per-interval metric values."""
    if len(points) != len(values):
        raise ValueError("points and values must align")
    total_weight = sum(p.weight for p in points)
    if total_weight <= 0:
        return 0.0
    return sum(p.weight * v for p, v in zip(points, values)) / total_weight
