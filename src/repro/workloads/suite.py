"""The benchmark suite: named synthetic stand-ins for the paper's traces.

The paper uses 106 traces across six suites.  We provide four named
benchmarks per suite (24 total), each a perturbation of its class
parameters, including stand-ins for the applications the paper calls out
by name:

* ``mpeg2`` (MediaBench) — compute-bound; the paper's peak-power app.
* ``yacr2`` (Pointer) — memory-intensive; smallest power saving (15 %) and
  the thermal worst case under Thermal Herding.
* ``susan`` (MiBench) — image smoothing; largest power saving (30 %).
* ``mcf`` (SPECint) — memory bound; smallest speedup (7 %).
* ``crafty`` (SPECint) — large speedup (65 %).
* ``patricia`` (MiBench) — largest speedup (77 %).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.isa.trace import Trace
from repro.workloads.emulator import generate_trace, workload_fingerprint
from repro.workloads.parameters import (
    BenchmarkClass,
    CLASS_PARAMETERS,
    WorkloadParameters,
)


@dataclass(frozen=True)
class BenchmarkSpec:
    """A named benchmark: class parameters plus per-benchmark overrides."""

    name: str
    benchmark_class: BenchmarkClass
    seed: int
    overrides: Dict[str, object] = dataclasses.field(default_factory=dict)

    def parameters(self) -> WorkloadParameters:
        base = CLASS_PARAMETERS[self.benchmark_class]
        if not self.overrides:
            return base
        return dataclasses.replace(base, **self.overrides)


def _spec(name, klass, seed, **overrides) -> BenchmarkSpec:
    return BenchmarkSpec(name=name, benchmark_class=klass, seed=seed, overrides=overrides)


#: All benchmarks keyed by name.
BENCHMARKS: Dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in [
        # --- SPECint2000-like -------------------------------------------
        _spec("gzip", BenchmarkClass.SPECINT, 101,
              footprint_bytes=2 << 20, narrow_value_weight=0.66),
        _spec("crafty", BenchmarkClass.SPECINT, 102,
              footprint_bytes=1 << 20, branch_fraction=0.17,
              narrow_value_weight=0.64, shift_share=0.20),
        _spec("mcf", BenchmarkClass.SPECINT, 103,
              footprint_bytes=160 << 20, chase_fraction=0.45,
              chase_pool_bytes=8 << 20,
              sequential_fraction=0.10, load_fraction=0.33,
              pointer_value_weight=0.30, narrow_value_weight=0.40),
        _spec("gcc", BenchmarkClass.SPECINT, 104,
              footprint_bytes=8 << 20, branch_fraction=0.18,
              hard_branch_fraction=0.10),
        # --- SPECfp2000-like --------------------------------------------
        _spec("swim", BenchmarkClass.SPECFP, 201,
              footprint_bytes=96 << 20, fp_fraction=0.42,
              stride_bytes=192, hot_fraction=0.60),
        _spec("art", BenchmarkClass.SPECFP, 202,
              footprint_bytes=48 << 20, load_fraction=0.34,
              stream_bytes=512 << 10),
        _spec("equake", BenchmarkClass.SPECFP, 203,
              footprint_bytes=40 << 20, chase_fraction=0.12,
              sequential_fraction=0.50),
        _spec("applu", BenchmarkClass.SPECFP, 204,
              footprint_bytes=80 << 20, fp_fraction=0.40,
              stride_bytes=64, hot_fraction=0.80, mean_trip_count=96.0),
        # --- MediaBench-like --------------------------------------------
        _spec("mpeg2", BenchmarkClass.MEDIABENCH, 301,
              footprint_bytes=768 << 10, narrow_value_weight=0.78,
              branch_fraction=0.08, hard_branch_fraction=0.02,
              body_size=26, mean_trip_count=64.0),
        _spec("jpeg", BenchmarkClass.MEDIABENCH, 302,
              footprint_bytes=512 << 10, shift_share=0.24),
        _spec("adpcm", BenchmarkClass.MEDIABENCH, 303,
              footprint_bytes=64 << 10, narrow_value_weight=0.84,
              branch_fraction=0.13, hard_branch_fraction=0.08),
        _spec("g721", BenchmarkClass.MEDIABENCH, 304,
              footprint_bytes=96 << 10, shift_share=0.26,
              narrow_value_weight=0.80, hard_branch_fraction=0.08,
              branch_fraction=0.14),
        # --- MiBench-like -----------------------------------------------
        _spec("susan", BenchmarkClass.MIBENCH, 401,
              footprint_bytes=384 << 10, narrow_value_weight=0.82,
              sequential_fraction=0.90, branch_fraction=0.10,
              mean_trip_count=72.0),
        _spec("patricia", BenchmarkClass.MIBENCH, 402,
              footprint_bytes=512 << 10, narrow_value_weight=0.76,
              branch_fraction=0.09, hard_branch_fraction=0.03,
              body_size=22, mean_trip_count=56.0),
        _spec("dijkstra", BenchmarkClass.MIBENCH, 403,
              footprint_bytes=256 << 10, chase_fraction=0.15),
        _spec("qsort", BenchmarkClass.MIBENCH, 404,
              footprint_bytes=1 << 20, hard_branch_fraction=0.14,
              branch_bias=0.68),
        # --- Pointer-intensive-like -------------------------------------
        _spec("yacr2", BenchmarkClass.POINTER, 501,
              footprint_bytes=32 << 20, chase_fraction=0.35,
              chase_pool_bytes=2 << 20, hot_fraction=0.80,
              load_fraction=0.33, narrow_value_weight=0.36),
        _spec("ft", BenchmarkClass.POINTER, 502,
              footprint_bytes=16 << 20, chase_fraction=0.40),
        _spec("ks", BenchmarkClass.POINTER, 503,
              footprint_bytes=8 << 20, sequential_fraction=0.35),
        _spec("tsp", BenchmarkClass.POINTER, 504,
              footprint_bytes=12 << 20, chase_fraction=0.25,
              branch_fraction=0.16),
        # --- Bio-like ----------------------------------------------------
        _spec("blast", BenchmarkClass.BIO, 601,
              footprint_bytes=12 << 20, load_fraction=0.27),
        _spec("hmmer", BenchmarkClass.BIO, 602,
              footprint_bytes=2 << 20, narrow_value_weight=0.74,
              mean_trip_count=56.0),
        _spec("fasta", BenchmarkClass.BIO, 603,
              footprint_bytes=6 << 20, sequential_fraction=0.80),
        _spec("clustalw", BenchmarkClass.BIO, 604,
              footprint_bytes=3 << 20, branch_fraction=0.16),
    ]
}


def benchmark_names() -> List[str]:
    """All benchmark names, stable order."""
    return list(BENCHMARKS)


def benchmarks_in_class(klass: BenchmarkClass) -> List[str]:
    """Benchmark names belonging to one suite."""
    return [name for name, spec in BENCHMARKS.items() if spec.benchmark_class is klass]


def generate(name: str, length: int = 20_000, seed: Optional[int] = None) -> Trace:
    """Generate the trace for a named benchmark.

    ``seed`` overrides the spec's default seed (useful for variance
    studies); the default makes every call reproducible.
    """
    spec = BENCHMARKS.get(name)
    if spec is None:
        raise KeyError(f"unknown benchmark {name!r}; known: {', '.join(BENCHMARKS)}")
    return generate_trace(
        name=name,
        params=spec.parameters(),
        length=length,
        seed=spec.seed if seed is None else seed,
        benchmark_class=spec.benchmark_class.value,
    )


def fingerprint(name: str, length: int = 20_000, seed: Optional[int] = None) -> str:
    """Content hash of the trace :func:`generate` would produce.

    Resolves the spec's parameters and effective seed exactly the way
    :func:`generate` does, so equal fingerprints mean byte-identical
    traces; used to key the on-disk compiled-trace store.
    """
    spec = BENCHMARKS.get(name)
    if spec is None:
        raise KeyError(f"unknown benchmark {name!r}; known: {', '.join(BENCHMARKS)}")
    return workload_fingerprint(
        name=name,
        params=spec.parameters(),
        length=length,
        seed=spec.seed if seed is None else seed,
        benchmark_class=spec.benchmark_class.value,
    )


def standard_suite(length: int = 20_000) -> List[Trace]:
    """Generate every benchmark at the given length."""
    return [generate(name, length=length) for name in BENCHMARKS]
