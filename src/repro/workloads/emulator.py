"""Functional emulator: synthetic program -> committed-instruction trace.

The emulator walks a :class:`~repro.workloads.program.SyntheticProgram`,
maintaining a real architectural register file and a lazy data memory, and
emits :class:`~repro.isa.instruction.TraceInstruction` records.  All value
widths, address upper bits, and branch targets in the trace are therefore
*computed*, which is what lets the Thermal Herding statistics emerge
naturally downstream.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import random
from typing import Dict, List, Optional

from repro.isa.instruction import TraceInstruction
from repro.isa.opcodes import OpClass
from repro.isa.registers import TOTAL_REGS, STACK_POINTER_REG, ZERO_REG
from repro.isa.trace import Trace
from repro.isa.values import to_unsigned
from repro.workloads.memory_model import (
    AccessPattern,
    MemoryModel,
    STACK_BASE,
    STACK_SIZE,
    WORD_BYTES,
)
from repro.workloads.parameters import WorkloadParameters
from repro.workloads.program import (
    InstTemplate,
    LeafFunction,
    Loop,
    SyntheticProgram,
    ValueKind,
    build_program,
)

#: Trace-generator version, part of the on-disk result-cache key.  Bump on
#: any change that alters generated traces so stale entries never hit.
GENERATOR_VERSION = 1

_MASK64 = (1 << 64) - 1


class Emulator:
    """Walks a synthetic program and produces a trace."""

    def __init__(self, program: SyntheticProgram, seed: int):
        self._program = program
        self._params = program.parameters
        # Independent random streams: control flow, memory values, layout.
        self._flow_rng = random.Random(seed ^ 0xC0FFEE)
        mem_rng = random.Random(seed ^ 0xDA7A)
        self._memory = MemoryModel(
            value_dist=self._params.value_dist,
            footprint_bytes=self._params.footprint_bytes,
            rng=mem_rng,
        )
        self._regs: List[int] = [0] * TOTAL_REGS
        self._regs[STACK_POINTER_REG] = STACK_BASE + STACK_SIZE // 2
        # Initialize pointer registers into the heap so first uses are sane.
        for reg in range(24, 30):
            self._regs[reg] = self._memory.heap.align(mem_rng.randrange(0, self._params.footprint_bytes))
        self._cursors: Dict[int, int] = {}
        self._branch_counts: Dict[int, int] = {}
        self._out: List[TraceInstruction] = []
        self._limit = 0

    def run(self, length: int) -> List[TraceInstruction]:
        """Emit at least ``length`` instructions, then truncate to ``length``."""
        if length <= 0:
            raise ValueError(f"trace length must be positive, got {length}")
        self._out = []
        self._limit = length
        loops = self._program.loops
        loop_order = list(range(len(loops)))
        previous: Optional[int] = None
        while len(self._out) < length:
            self._flow_rng.shuffle(loop_order)
            for index in loop_order:
                if previous is not None:
                    # Keep the committed path sequential across loops.
                    self._emit_exit_jump(loops[previous], loops[index].entry_pc)
                    if len(self._out) >= length:
                        break
                self._run_loop(loops[index])
                previous = index
                if len(self._out) >= length:
                    break
        del self._out[length:]
        return self._out

    def _emit_exit_jump(self, loop, target: int) -> None:
        assert loop.exit_jump is not None
        self._out.append(
            TraceInstruction(
                pc=loop.exit_jump.pc,
                op=OpClass.JUMP,
                taken=True,
                target=target,
            )
        )

    # ------------------------------------------------------------------ #

    def _run_loop(self, loop: Loop) -> None:
        trips = 1 + self._geometric(loop.mean_trip_count)
        for template in loop.preamble:
            if len(self._out) >= self._limit:
                return
            self._execute(template)
        for trip in range(trips):
            if len(self._out) >= self._limit:
                return
            self._run_body(loop.body, loop.back_edge.pc)
            last_trip = trip == trips - 1
            self._emit_branch(loop.back_edge, taken=not last_trip, target=loop.start_pc)

    def _run_body(self, body: List[InstTemplate], back_edge_pc: int) -> None:
        i = 0
        while i < len(body) and len(self._out) < self._limit:
            template = body[i]
            if template.op is OpClass.BRANCH and not template.is_back_edge:
                taken = self._branch_outcome(template)
                skip = template.skip_count if taken else 0
                if taken:
                    landing = i + skip + 1
                    target = body[landing].pc if landing < len(body) else back_edge_pc
                else:
                    target = None
                self._emit_branch(template, taken=taken, target=target)
                i += skip + 1
                continue
            if template.op is OpClass.CALL:
                assert template.callee is not None
                self._run_call(template, self._program.leaves[template.callee])
                i += 1
                continue
            self._execute(template)
            i += 1

    def _run_call(self, call: InstTemplate, leaf: LeafFunction) -> None:
        self._out.append(
            TraceInstruction(
                pc=call.pc,
                op=OpClass.CALL,
                taken=True,
                target=leaf.entry_pc,
            )
        )
        for template in leaf.body:
            if len(self._out) >= self._limit:
                return
            self._execute(template)
        self._out.append(
            TraceInstruction(
                pc=leaf.ret.pc,
                op=OpClass.RETURN,
                taken=True,
                target=call.pc + 4,
            )
        )

    def _branch_outcome(self, template: InstTemplate) -> bool:
        """Outcome of a forward conditional branch.

        Periodic branches are taken except on the last occurrence of each
        period (with a small noise probability); others are biased coins.
        """
        if template.pattern_period:
            count = self._branch_counts.get(template.pc, 0)
            self._branch_counts[template.pc] = count + 1
            taken = (count % template.pattern_period) != template.pattern_period - 1
            if self._flow_rng.random() < self._params.branch_noise:
                taken = not taken
            return taken
        return self._flow_rng.random() < template.taken_bias

    # ------------------------------------------------------------------ #

    def _emit_branch(self, template: InstTemplate, taken: bool, target: int) -> None:
        src_values = tuple(self._regs[s] for s in template.srcs)
        self._out.append(
            TraceInstruction(
                pc=template.pc,
                op=OpClass.BRANCH,
                srcs=template.srcs,
                src_values=src_values,
                taken=taken,
                target=target if taken else None,
            )
        )

    def _execute(self, template: InstTemplate) -> None:
        if template.op is OpClass.LOAD:
            self._execute_load(template)
        elif template.op is OpClass.STORE:
            self._execute_store(template)
        else:
            self._execute_alu(template)

    def _execute_alu(self, template: InstTemplate) -> None:
        src_values = tuple(self._regs[s] for s in template.srcs)
        result = self._compute(template, src_values)
        if template.dst is not None and template.dst != ZERO_REG:
            self._regs[template.dst] = result
        self._out.append(
            TraceInstruction(
                pc=template.pc,
                op=template.op,
                srcs=template.srcs,
                dst=template.dst,
                result=result,
                src_values=src_values,
            )
        )

    def _compute(self, template: InstTemplate, src_values) -> int:
        kind = template.value_kind
        if kind is ValueKind.COUNTER or kind is ValueKind.STRIDE:
            return (src_values[0] + max(template.immediate, 1)) & _MASK64
        if kind is ValueKind.CONST_SMALL or kind is ValueKind.CONST_WIDE:
            return to_unsigned(template.immediate)
        if kind is ValueKind.ACCUM:
            return (src_values[0] + src_values[1]) & _MASK64
        if kind is ValueKind.LOGIC:
            if template.pc & 4:
                return src_values[0] ^ src_values[1]
            return src_values[0] & src_values[1]
        if kind is ValueKind.ADDR_UPDATE:
            assert template.cursor_id is not None
            return self._advance_cursor(template)
        if kind is ValueKind.FP_OP:
            # FP bit patterns: wide, but not on the integer datapath.
            mixed = (src_values[0] * 0x9E3779B97F4A7C15 + src_values[1]) & _MASK64
            return mixed | (0x3FF << 52)
        return 0

    # ------------------------------------------------------------------ #

    def _advance_cursor(self, template: InstTemplate) -> int:
        """Advance a memory cursor and return the new heap address."""
        cursor_id = template.cursor_id
        assert cursor_id is not None
        heap = self._memory.heap
        if template.pattern in (AccessPattern.SEQUENTIAL, AccessPattern.STRIDED):
            # Each cursor walks a bounded stream buffer and wraps, modelling
            # repeated traversal of frames/grids/arrays.
            advance = self._cursors.get(cursor_id, 0)
            advance += template.immediate or WORD_BYTES
            self._cursors[cursor_id] = advance
            stream = min(self._params.stream_bytes, heap.size)
            base = (cursor_id * (stream // 2)) % max(heap.size - stream, 1)
            return heap.align(base + advance % stream)
        # RANDOM: temporal locality — most accesses land in one of a few
        # shared hot subsets; the rest roam the full footprint.
        params = self._params
        if self._flow_rng.random() < params.hot_fraction:
            hot = min(params.hot_bytes, heap.size)
            base = (cursor_id % 4) * hot
            return heap.align(base + self._flow_rng.randrange(0, hot))
        return heap.align(self._flow_rng.randrange(0, heap.size))

    def _effective_address(self, template: InstTemplate) -> int:
        if template.pattern is AccessPattern.STACK:
            offset = ((template.cursor_id or 0) * 16) % (STACK_SIZE // 4)
            return self._regs[STACK_POINTER_REG] - offset & ~(WORD_BYTES - 1)
        heap = self._memory.heap
        pointer = self._regs[template.srcs[0]]
        if template.pattern is AccessPattern.CHASE:
            # Chases walk a bounded linked structure: small pools are
            # revisited (cache resident) while mcf-scale pools stay memory
            # bound.  The register usually holds a pool pointer already
            # (see the chase-load successor rule); anything else is hashed
            # into the pool.
            pool = min(self._params.chase_pool_bytes, heap.size)
            if heap.base <= pointer < heap.base + pool:
                return pointer & ~(WORD_BYTES - 1)
            mixed = (pointer * 0x9E3779B97F4A7C15) & _MASK64
            return (heap.base + mixed % pool) & ~(WORD_BYTES - 1)
        # Pointer register already holds a heap address (from ADDR_UPDATE);
        # clamp it into the heap to stay valid.
        if heap.contains(pointer):
            return pointer & ~(WORD_BYTES - 1)
        return heap.align(pointer)

    def _execute_load(self, template: InstTemplate) -> None:
        src_values = tuple(self._regs[s] for s in template.srcs)
        addr = self._effective_address(template)
        value = self._memory.read(addr)
        result = value
        if template.pattern is AccessPattern.CHASE:
            # A chase node must hold a pointer to its successor.  When the
            # materialized value is not a pool pointer, derive a stable
            # successor from the node's own address (each node then has a
            # distinct, stationary next-node — a real linked structure),
            # and persist it.
            heap = self._memory.heap
            pool = min(self._params.chase_pool_bytes, heap.size)
            if not (heap.base <= value < heap.base + pool):
                mixed = (addr * 0x9E3779B97F4A7C15) & _MASK64
                result = (heap.base + mixed % pool) & ~(WORD_BYTES - 1)
                self._memory.write(addr, result)
                value = result
        if template.dst is not None and template.dst != ZERO_REG:
            self._regs[template.dst] = result
        self._out.append(
            TraceInstruction(
                pc=template.pc,
                op=OpClass.LOAD,
                srcs=template.srcs,
                dst=template.dst,
                result=result,
                src_values=src_values,
                mem_addr=addr,
                mem_value=value,
            )
        )

    def _execute_store(self, template: InstTemplate) -> None:
        src_values = tuple(self._regs[s] for s in template.srcs)
        addr = self._effective_address(template)
        value = src_values[1] if len(src_values) > 1 else 0
        self._memory.write(addr, value)
        self._out.append(
            TraceInstruction(
                pc=template.pc,
                op=OpClass.STORE,
                srcs=template.srcs,
                src_values=src_values,
                mem_addr=addr,
                mem_value=value,
            )
        )

    def _geometric(self, mean: float) -> int:
        """Geometric sample with the given mean (>= 0)."""
        if mean <= 1.0:
            return 0
        p = 1.0 / mean
        count = 0
        while self._flow_rng.random() > p and count < 10_000:
            count += 1
        return count


def workload_fingerprint(
    name: str,
    params: WorkloadParameters,
    length: int,
    seed: int,
    benchmark_class: str = "unknown",
) -> str:
    """Content hash identifying the trace :func:`generate_trace` would emit.

    Covers everything generation depends on — the parameters, the seed,
    the requested length, and :data:`GENERATOR_VERSION` — so it can key a
    persistent store of generated (compiled) traces: equal fingerprints
    guarantee byte-identical traces, and any generator change invalidates
    every stored entry via the version bump.
    """
    payload = {
        "generator": GENERATOR_VERSION,
        "name": name,
        "benchmark_class": benchmark_class,
        "length": length,
        "seed": seed,
        "params": dataclasses.asdict(params),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def generate_trace(
    name: str,
    params: WorkloadParameters,
    length: int,
    seed: int,
    benchmark_class: str = "unknown",
) -> Trace:
    """Build a program from ``params``/``seed`` and emulate ``length`` insts."""
    program = build_program(params, seed)
    emulator = Emulator(program, seed)
    instructions = emulator.run(length)
    return Trace(
        name=name,
        instructions=instructions,
        benchmark_class=benchmark_class,
        seed=seed,
    )
