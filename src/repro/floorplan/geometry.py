"""Floorplan geometry primitives."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle in millimetres."""

    x: float
    y: float
    w: float
    h: float

    def __post_init__(self) -> None:
        if self.w <= 0 or self.h <= 0:
            raise ValueError(f"rectangle must have positive dimensions, got {self.w}x{self.h}")

    @property
    def area_mm2(self) -> float:
        return self.w * self.h

    @property
    def center(self) -> Tuple[float, float]:
        return self.x + self.w / 2.0, self.y + self.h / 2.0

    def overlaps(self, other: "Rect", tolerance: float = 1e-9) -> bool:
        return not (
            self.x + self.w <= other.x + tolerance
            or other.x + other.w <= self.x + tolerance
            or self.y + self.h <= other.y + tolerance
            or other.y + other.h <= self.y + tolerance
        )


@dataclass(frozen=True)
class Block:
    """A named floorplan block on a specific die (die 0 = top)."""

    name: str
    rect: Rect
    die: int = 0

    @property
    def area_mm2(self) -> float:
        return self.rect.area_mm2


@dataclass
class Floorplan:
    """A complete chip floorplan across one or more dies."""

    name: str
    width_mm: float
    height_mm: float
    dies: int
    blocks: List[Block] = field(default_factory=list)

    def add(self, block: Block) -> None:
        if not 0 <= block.die < self.dies:
            raise ValueError(f"block {block.name} on die {block.die}, but floorplan has {self.dies}")
        self.blocks.append(block)

    def blocks_on_die(self, die: int) -> List[Block]:
        return [b for b in self.blocks if b.die == die]

    def find(self, name: str, die: Optional[int] = None) -> Block:
        for block in self.blocks:
            if block.name == name and (die is None or block.die == die):
                return block
        raise KeyError(f"no block named {name!r}" + (f" on die {die}" if die is not None else ""))

    def total_block_area(self) -> float:
        return sum(b.area_mm2 for b in self.blocks)

    def fingerprint(self) -> Tuple:
        """Hashable content snapshot of the floorplan geometry.

        Used as a cache key by the rasterizer's block-mask memo and the
        persistent thermal-result cache; adding or changing blocks
        yields a different fingerprint, so stale entries never match.
        """
        return (
            self.name,
            self.width_mm,
            self.height_mm,
            self.dies,
            tuple(
                (b.name, b.die, b.rect.x, b.rect.y, b.rect.w, b.rect.h)
                for b in self.blocks
            ),
        )

    def block_names(self) -> List[str]:
        seen: Dict[str, None] = {}
        for block in self.blocks:
            seen.setdefault(block.name, None)
        return list(seen)

    def validate(self) -> None:
        """Check all blocks fit the die outline and do not overlap."""
        for block in self.blocks:
            r = block.rect
            if r.x < -1e-9 or r.y < -1e-9 or r.x + r.w > self.width_mm + 1e-9 \
                    or r.y + r.h > self.height_mm + 1e-9:
                raise ValueError(
                    f"block {block.name} ({r}) exceeds the {self.width_mm}x{self.height_mm} outline"
                )
        for die in range(self.dies):
            on_die = self.blocks_on_die(die)
            for i, a in enumerate(on_die):
                for b in on_die[i + 1:]:
                    if a.rect.overlaps(b.rect):
                        raise ValueError(f"blocks {a.name} and {b.name} overlap on die {die}")
