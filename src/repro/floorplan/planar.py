"""The planar (2D) two-core floorplan of Figure 7(a)."""

from __future__ import annotations

from repro.floorplan.core_layout import layout_core
from repro.floorplan.geometry import Block, Floorplan, Rect

#: Planar core dimensions (mm); a Core 2-class 65 nm core with L1s.
CORE_WIDTH_MM = 5.0
CORE_HEIGHT_MM = 4.4
#: Shared L2 strip below the cores.
L2_HEIGHT_MM = 5.0


def planar_floorplan(core_count: int = 2) -> Floorplan:
    """Two cores side by side over a shared 4MB L2."""
    if core_count < 1:
        raise ValueError(f"core_count must be >= 1, got {core_count}")
    width = CORE_WIDTH_MM * core_count
    height = CORE_HEIGHT_MM + L2_HEIGHT_MM
    plan = Floorplan(name="planar-2d", width_mm=width, height_mm=height, dies=1)
    for core in range(core_count):
        for block in layout_core(
            prefix=f"core{core}.",
            origin_x=core * CORE_WIDTH_MM,
            origin_y=0.0,
            width=CORE_WIDTH_MM,
            height=CORE_HEIGHT_MM,
            die=0,
        ):
            plan.add(block)
    plan.add(
        Block(
            name="l2_cache",
            rect=Rect(x=0.0, y=CORE_HEIGHT_MM, w=width, h=L2_HEIGHT_MM),
            die=0,
        )
    )
    plan.validate()
    return plan
