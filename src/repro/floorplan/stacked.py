"""The 4-die stacked floorplan of Figure 7(b).

Every partitioned block occupies the same (x, y) region on all four dies
— that is the point of the partitioning: a block's four slices are
vertically adjacent, connected by d2d vias.  The footprint of each
dimension halves, giving the ~4x footprint reduction the paper reports,
and the cores/L2 are re-packed to reduce whitespace.
"""

from __future__ import annotations

from repro.floorplan.core_layout import layout_core
from repro.floorplan.geometry import Block, Floorplan, Rect
from repro.floorplan.planar import CORE_WIDTH_MM, CORE_HEIGHT_MM, L2_HEIGHT_MM

#: Linear fold per dimension (4 dies => each dimension halves).
FOLD = 2.0


def stacked_floorplan(core_count: int = 2, dies: int = 4) -> Floorplan:
    """Two folded cores side by side over the folded shared L2, x4 dies."""
    if core_count < 1:
        raise ValueError(f"core_count must be >= 1, got {core_count}")
    if dies < 1:
        raise ValueError(f"dies must be >= 1, got {dies}")
    core_w = CORE_WIDTH_MM / FOLD
    core_h = CORE_HEIGHT_MM / FOLD
    l2_h = L2_HEIGHT_MM / FOLD
    width = core_w * core_count
    height = core_h + l2_h
    plan = Floorplan(name="stacked-3d", width_mm=width, height_mm=height, dies=dies)
    for die in range(dies):
        for core in range(core_count):
            for block in layout_core(
                prefix=f"core{core}.",
                origin_x=core * core_w,
                origin_y=0.0,
                width=core_w,
                height=core_h,
                die=die,
            ):
                plan.add(block)
        plan.add(
            Block(
                name="l2_cache",
                rect=Rect(x=0.0, y=core_h, w=width, h=l2_h),
                die=die,
            )
        )
    plan.validate()
    return plan
