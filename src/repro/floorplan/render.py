"""ASCII floorplan rendering (the Figure 7 counterpart).

Draws a die's blocks as labelled regions on a character grid and
summarizes the area budget — used by the figure7 experiment and handy
when editing the layout tables.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.floorplan.geometry import Block, Floorplan


def _label_chars(names: List[str]) -> Dict[str, str]:
    """Assign each block name a single drawing character."""
    palette = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
    mapping: Dict[str, str] = {}
    for index, name in enumerate(names):
        mapping[name] = palette[index % len(palette)]
    return mapping


def render_die_ascii(
    floorplan: Floorplan,
    die: int = 0,
    width_chars: int = 64,
) -> str:
    """Render one die's floorplan as a labelled ASCII map with a legend."""
    if width_chars < 8:
        raise ValueError(f"width_chars must be >= 8, got {width_chars}")
    blocks = floorplan.blocks_on_die(die)
    if not blocks:
        raise ValueError(f"no blocks on die {die}")
    # Character cell aspect ~2:1, so halve the row count.
    height_chars = max(
        4, int(width_chars * floorplan.height_mm / floorplan.width_mm / 2)
    )
    dx = floorplan.width_mm / width_chars
    dy = floorplan.height_mm / height_chars

    chars = _label_chars([b.name for b in blocks])
    grid = [[" "] * width_chars for _ in range(height_chars)]
    for block in blocks:
        r = block.rect
        x0 = int(r.x / dx)
        x1 = max(x0 + 1, min(width_chars, int(round((r.x + r.w) / dx))))
        y0 = int(r.y / dy)
        y1 = max(y0 + 1, min(height_chars, int(round((r.y + r.h) / dy))))
        for j in range(y0, y1):
            for i in range(x0, x1):
                grid[j][i] = chars[block.name]

    lines = ["+" + "-" * width_chars + "+"]
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width_chars + "+")
    lines.append("legend:")
    for block in blocks:
        lines.append(
            f"  {chars[block.name]} {block.name:<24s} {block.area_mm2:6.2f} mm^2"
        )
    return "\n".join(lines)


def area_summary(floorplan: Floorplan) -> str:
    """Chip dimensions and per-die area accounting."""
    lines = [
        f"{floorplan.name}: {floorplan.width_mm:.1f} x {floorplan.height_mm:.1f} mm "
        f"({floorplan.width_mm * floorplan.height_mm:.1f} mm^2 footprint, "
        f"{floorplan.dies} die)",
    ]
    for die in range(floorplan.dies):
        total = sum(b.area_mm2 for b in floorplan.blocks_on_die(die))
        lines.append(f"  die {die}: {total:6.1f} mm^2 of blocks")
    return "\n".join(lines)
