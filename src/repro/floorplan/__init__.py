"""Floorplans for the planar processor and the 4-die 3D stack (Figure 7).

The planar chip places two cores over a shared L2; the 3D floorplan folds
every block's footprint by the die count, shrinking the chip to roughly a
quarter of the planar area, with each partitioned block present on all
four dies.  Block areas come from the circuit models so power density is
consistent between the power and thermal analyses.
"""

from repro.floorplan.geometry import Rect, Block, Floorplan
from repro.floorplan.planar import planar_floorplan
from repro.floorplan.stacked import stacked_floorplan

__all__ = [
    "Rect",
    "Block",
    "Floorplan",
    "planar_floorplan",
    "stacked_floorplan",
]
