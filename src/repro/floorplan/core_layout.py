"""Relative block layout of one core.

The layout is a slicing arrangement: horizontal rows, each split into
blocks by width fractions.  Block names match the activity-module names
used by the timing and power models; ``decode``, ``agu`` and
``core_misc`` are filler regions that receive only their area share of
clock and leakage power.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.floorplan.geometry import Block, Rect

#: (row height fraction, [(block name, width fraction), ...])
CORE_ROWS: List[Tuple[float, List[Tuple[str, float]]]] = [
    (0.24, [
        ("l1_icache", 0.40),
        ("itlb", 0.10),
        ("fetch_queue", 0.15),
        ("btb", 0.12),
        ("ibtb", 0.08),
        ("dir_predictor", 0.15),
    ]),
    (0.22, [
        ("decode", 0.15),
        ("rename", 0.16),
        ("scheduler", 0.15),
        ("rob", 0.22),
        ("register_file", 0.32),
    ]),
    (0.26, [
        ("alu", 0.19),
        ("bypass", 0.15),
        ("fpu", 0.30),
        ("agu", 0.10),
        ("load_queue", 0.12),
        ("store_queue", 0.14),
    ]),
    (0.28, [
        ("l1_dcache", 0.52),
        ("dtlb", 0.12),
        ("core_misc", 0.36),
    ]),
]

#: Names of filler blocks with no activity of their own.
FILLER_BLOCKS = ("decode", "agu", "core_misc")


def layout_core(prefix: str, origin_x: float, origin_y: float,
                width: float, height: float, die: int = 0) -> List[Block]:
    """Instantiate the relative core layout at an absolute position.

    Block names are prefixed with ``prefix`` (e.g. ``core0.``).
    """
    blocks: List[Block] = []
    y = origin_y
    for row_height_frac, row in CORE_ROWS:
        row_height = row_height_frac * height
        x = origin_x
        for name, width_frac in row:
            block_width = width_frac * width
            blocks.append(
                Block(
                    name=f"{prefix}{name}",
                    rect=Rect(x=x, y=y, w=block_width, h=row_height),
                    die=die,
                )
            )
            x += block_width
        y += row_height
    return blocks
