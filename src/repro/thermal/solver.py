"""Finite-volume steady-state 3D heat conduction solver.

The grid covers the *heat spreader* footprint (larger than the chip, as
in HotSpot); the TIM and die layers exist only over the centred chip
region — cells outside it are filled with a near-insulating material so
lateral spreading happens in the copper spreader, not in thin silicon.

Every layer is discretized into the same (ny, nx) grid.  Lateral
conduction uses harmonic-mean conductances between neighbouring cells;
vertical conduction couples vertically adjacent cells of neighbouring
layers through the series resistance of the two half-layers.  The top of
the spreader is coupled to ambient through the sink's convection
resistance; all other outer faces are adiabatic.

The system matrix depends only on geometry, so it is LU-factorized once
per *geometry* and shared process-wide: solvers with identical stacks,
floorplan footprints, and grid resolutions (DVFS sweeps, stacking-order
ablations, transient runs, repeated contexts) reuse one factorization
instead of paying SuperLU per instance.  Assembly itself is vectorized —
whole-layer conductance arrays emitted as concatenated COO triplets —
with the original cell-by-cell loop kept as ``_build_reference`` for the
equivalence test.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.sparse import coo_matrix, csc_matrix
from scipy.sparse.linalg import factorized, splu

from repro.floorplan.geometry import Floorplan
from repro.thermal.stack import ThermalStack

#: Bump when the discretization or boundary conditions change; part of
#: every persistent thermal-result cache key.
THERMAL_MODEL_VERSION = 1

#: Conductivity of the filler outside the chip region (underfill/air mix).
_FILLER_K = 0.05
#: Default spreader side (mm); HotSpot's default spreader is 30 mm.
DEFAULT_SPREADER_MM = 24.0


@dataclass
class FactorizationStats:
    """Process-wide factorization-cache bookkeeping (observable in tests)."""

    factorizations: int = 0
    cache_hits: int = 0


#: Counters for the module-level factorization cache.
FACTORIZATION_STATS = FactorizationStats()


@dataclass
class _Factorization:
    """One cached conductance matrix and its LU backsubstitution."""

    matrix: csc_matrix
    solve: Callable
    conv_per_cell: float


#: Geometry-keyed LRU of factorized conductance matrices.
_FACTORIZATION_CACHE: "OrderedDict[Tuple, _Factorization]" = OrderedDict()
#: Distinct geometries kept factorized at once.
FACTORIZATION_CACHE_CAP = 16


def clear_factorization_cache() -> None:
    """Drop all cached factorizations and reset the counters.

    Also drops the transient solver's step-matrix cache: every step
    matrix embeds a conductance matrix assembled here, so any site that
    resets steady factorization state (workers, tests, benchmarks) must
    reset the derived step factorizations with it.
    """
    _FACTORIZATION_CACHE.clear()
    FACTORIZATION_STATS.factorizations = 0
    FACTORIZATION_STATS.cache_hits = 0
    from repro.thermal import transient

    transient.clear_step_cache()


def _factorize(matrix: csc_matrix) -> Callable:
    """LU-factorize ``matrix``, preferring SuperLU's symmetric-pattern
    ordering (the conductance matrix is symmetric positive definite, and
    MMD_AT_PLUS_A fills in ~4x less than the default COLAMD here)."""
    try:
        lu = splu(matrix, permc_spec="MMD_AT_PLUS_A",
                  options={"SymmetricMode": True})
        return lu.solve
    except (RuntimeError, ValueError, TypeError):
        return factorized(matrix)


@dataclass
class ThermalResult:
    """Solved temperature field plus block-level summaries."""

    stack_name: str
    nx: int
    ny: int
    #: per-layer (ny, nx) temperature grids over the spreader footprint, K
    layer_temps: List[np.ndarray]
    #: layer index of each power die
    die_layers: Dict[int, int]
    #: per-(block, die) peak temperature, K
    block_peak: Dict[Tuple[str, int], float]
    #: per-(block, die) mean temperature, K
    block_mean: Dict[Tuple[str, int], float]

    @property
    def peak_temperature(self) -> float:
        """Hottest cell across the die layers."""
        return max(float(self.layer_temps[l].max()) for l in self.die_layers.values())

    def hottest_block(self) -> Tuple[str, int, float]:
        """(name, die, K) of the hottest block."""
        (name, die), temp = max(self.block_peak.items(), key=lambda kv: kv[1])
        return name, die, temp

    def die_peak(self, die: int) -> float:
        return float(self.layer_temps[self.die_layers[die]].max())

    def format_hotspots(self, top: int = 8) -> str:
        """The hottest blocks, one per line."""
        ranked = sorted(self.block_peak.items(), key=lambda kv: -kv[1])[:top]
        lines = [f"{'block':<26s} {'die':>3s} {'peak K':>8s}"]
        for (name, die), temp in ranked:
            lines.append(f"{name:<26s} {die:3d} {temp:8.1f}")
        return "\n".join(lines)


class ThermalSolver:
    """Solves one stack/floorplan combination at grid resolution nx x ny."""

    def __init__(
        self,
        stack: ThermalStack,
        floorplan: Floorplan,
        nx: int = 48,
        ny: int = 48,
        spreader_mm: float = DEFAULT_SPREADER_MM,
    ):
        if floorplan.dies != stack.die_count:
            raise ValueError(
                f"floorplan has {floorplan.dies} dies but stack has {stack.die_count}"
            )
        self.stack = stack
        self.floorplan = floorplan
        self.nx = nx
        self.ny = ny
        #: the constructor argument, kept so an identical solver can be
        #: rebuilt elsewhere (the supervised-subprocess thermal path)
        self.spreader_mm = spreader_mm
        self.spreader_w_mm = max(spreader_mm, floorplan.width_mm)
        self.spreader_h_mm = max(spreader_mm, floorplan.height_mm)
        #: chip offset within the spreader footprint (centred), mm
        self.chip_x0_mm = (self.spreader_w_mm - floorplan.width_mm) / 2.0
        self.chip_y0_mm = (self.spreader_h_mm - floorplan.height_mm) / 2.0
        self._solve_fn: Optional[Callable] = None
        self._conv_per_cell: Optional[float] = None
        # Chip cell window within the spreader grid (shared by the
        # material mask and the power-map embedding).
        dx = self.spreader_w_mm / nx
        dy = self.spreader_h_mm / ny
        self._chip_x0 = int(round(self.chip_x0_mm / dx))
        self._chip_y0 = int(round(self.chip_y0_mm / dy))
        self._chip_nx = max(2, int(round(floorplan.width_mm / dx)))
        self._chip_ny = max(2, int(round(floorplan.height_mm / dy)))
        self._chip_nx = min(self._chip_nx, nx - self._chip_x0)
        self._chip_ny = min(self._chip_ny, ny - self._chip_y0)
        #: layer index of each power die (geometry is immutable per solver)
        self._die_layer_map: Dict[int, int] = {
            layer.power_die: l
            for l, layer in enumerate(stack.layers)
            if layer.power_die is not None
        }

    # ------------------------------------------------------------------ #

    def matrix_key(self) -> Tuple:
        """Hashable fingerprint of everything the conductance matrix
        depends on; solvers sharing it share one LU factorization."""
        return (
            tuple(
                (layer.thickness_m, layer.material.conductivity_w_mk)
                for layer in self.stack.layers
            ),
            self.stack.convection_k_per_w,
            self.nx,
            self.ny,
            self.spreader_w_mm,
            self.spreader_h_mm,
            self._chip_x0,
            self._chip_y0,
            self._chip_nx,
            self._chip_ny,
        )

    def geometry_id(self) -> str:
        """Short stable digest of :meth:`matrix_key`, for logs and events
        (the full key is an unwieldy nested tuple)."""
        digest = hashlib.sha256(repr(self.matrix_key()).encode("utf-8"))
        return digest.hexdigest()[:12]

    def result_key(self) -> Tuple:
        """:meth:`matrix_key` plus everything else a solved
        :class:`ThermalResult` depends on (used by persistent caches)."""
        return (
            THERMAL_MODEL_VERSION,
            self.matrix_key(),
            self.stack.ambient_k,
            self.stack.name,
            tuple(sorted(self._die_layer_map.items())),
            self.floorplan.fingerprint(),
        )

    # ------------------------------------------------------------------ #

    def _cell_k(self, layer_index: int) -> np.ndarray:
        """Per-cell conductivity map for one layer."""
        layer = self.stack.layers[layer_index]
        k = np.full((self.ny, self.nx), layer.material.conductivity_w_mk)
        if layer_index == 0:
            return k  # the spreader spans the full footprint
        outside = np.ones((self.ny, self.nx), dtype=bool)
        outside[self._chip_y0:self._chip_y0 + self._chip_ny,
                self._chip_x0:self._chip_x0 + self._chip_nx] = False
        k[outside] = _FILLER_K
        return k

    def _build(self) -> None:
        """Bind this solver to the (possibly shared) factorized system."""
        key = self.matrix_key()
        entry = _FACTORIZATION_CACHE.get(key)
        if entry is None:
            matrix, conv_per_cell = self._assemble()
            entry = _Factorization(matrix, _factorize(matrix), conv_per_cell)
            FACTORIZATION_STATS.factorizations += 1
            _FACTORIZATION_CACHE[key] = entry
            while len(_FACTORIZATION_CACHE) > FACTORIZATION_CACHE_CAP:
                _FACTORIZATION_CACHE.popitem(last=False)
        else:
            FACTORIZATION_STATS.cache_hits += 1
            _FACTORIZATION_CACHE.move_to_end(key)
        #: the assembled conductance matrix G (kept for the transient solver)
        self.conductance_matrix = entry.matrix
        self._solve_fn = entry.solve
        self._conv_per_cell = entry.conv_per_cell

    def _assemble(self) -> Tuple[csc_matrix, float]:
        """Vectorized conductance-matrix assembly.

        Harmonic-mean lateral conductances and vertical series
        resistances are computed as whole-layer (ny, nx) arrays and
        emitted as concatenated COO index/value arrays.  The diagonal is
        accumulated in the same per-cell order as the reference loop
        assembler, so the result is bit-identical to
        :meth:`_build_reference`.
        """
        nx, ny = self.nx, self.ny
        layers = self.stack.layers
        nl = len(layers)
        n = nl * ny * nx
        dx = self.spreader_w_mm * 1e-3 / nx
        dy = self.spreader_h_mm * 1e-3 / ny
        cell_area = dx * dy
        spreader_area = self.spreader_w_mm * self.spreader_h_mm * 1e-6

        k = np.stack([self._cell_k(l) for l in range(nl)])  # (nl, ny, nx)
        idx = np.arange(n).reshape(nl, ny, nx)
        thickness = np.array([layer.thickness_m for layer in layers])

        # Harmonic-mean lateral conductances between x/y neighbours.
        kl, kr = k[:, :, :-1], k[:, :, 1:]
        g_x = 2.0 * kl * kr / (kl + kr) * (thickness[:, None, None] * dy) / dx
        ku, kd = k[:, :-1, :], k[:, 1:, :]
        g_y = 2.0 * ku * kd / (ku + kd) * (thickness[:, None, None] * dx) / dy

        # Series resistance of the two half-layers between vertical
        # neighbours, over the cell footprint.
        half = thickness[:, None, None] / (2.0 * k)
        g_v = 1.0 / ((half[:-1] + half[1:]) / cell_area)  # (nl-1, ny, nx)

        conv_total = 1.0 / self.stack.convection_k_per_w
        conv_per_cell = conv_total * (cell_area / spreader_area)

        # Diagonal accumulation mirrors the reference loop's per-cell
        # order: vertical-from-above, y-up, x-left, x-right, y-down,
        # vertical-to-below, then the layer-0 convection term.
        diag = np.zeros((nl, ny, nx))
        for l in range(nl):
            diag[l, 1:, :] += g_y[l]
            diag[l, :, 1:] += g_x[l]
            diag[l, :, :-1] += g_x[l]
            diag[l, :-1, :] += g_y[l]
            if l + 1 < nl:
                diag[l] += g_v[l]
                diag[l + 1] += g_v[l]
        diag[0] += conv_per_cell

        a_x, b_x = idx[:, :, :-1].ravel(), idx[:, :, 1:].ravel()
        a_y, b_y = idx[:, :-1, :].ravel(), idx[:, 1:, :].ravel()
        a_v, b_v = idx[:-1].ravel(), idx[1:].ravel()
        rows = np.concatenate([a_x, b_x, a_y, b_y, a_v, b_v, idx.ravel()])
        cols = np.concatenate([b_x, a_x, b_y, a_y, b_v, a_v, idx.ravel()])
        vx, vy, vv = -g_x.ravel(), -g_y.ravel(), -g_v.ravel()
        vals = np.concatenate([vx, vx, vy, vy, vv, vv, diag.ravel()])
        matrix = coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsc()
        return matrix, conv_per_cell

    def _build_reference(self) -> Tuple[csc_matrix, float]:
        """The original cell-by-cell loop assembler.

        Kept solely as the oracle for the loop-vs-vectorized equivalence
        test; production code paths use :meth:`_assemble`.
        """
        nx, ny = self.nx, self.ny
        layers = self.stack.layers
        nl = len(layers)
        n = nl * ny * nx
        dx = self.spreader_w_mm * 1e-3 / nx
        dy = self.spreader_h_mm * 1e-3 / ny
        cell_area = dx * dy
        spreader_area = self.spreader_w_mm * self.spreader_h_mm * 1e-6

        def index(layer: int, j: int, i: int) -> int:
            return (layer * ny + j) * nx + i

        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        diag = np.zeros(n)

        def couple(a: int, b: int, conductance: float) -> None:
            rows.append(a)
            cols.append(b)
            vals.append(-conductance)
            rows.append(b)
            cols.append(a)
            vals.append(-conductance)
            diag[a] += conductance
            diag[b] += conductance

        k_maps = [self._cell_k(l) for l in range(nl)]
        for l, layer in enumerate(layers):
            t = layer.thickness_m
            k = k_maps[l]
            for j in range(ny):
                for i in range(nx):
                    a = index(l, j, i)
                    if i + 1 < nx:
                        k_h = 2.0 * k[j, i] * k[j, i + 1] / (k[j, i] + k[j, i + 1])
                        couple(a, index(l, j, i + 1), k_h * (t * dy) / dx)
                    if j + 1 < ny:
                        k_h = 2.0 * k[j, i] * k[j + 1, i] / (k[j, i] + k[j + 1, i])
                        couple(a, index(l, j + 1, i), k_h * (t * dx) / dy)
            if l + 1 < nl:
                below = layers[l + 1]
                k_below = k_maps[l + 1]
                for j in range(ny):
                    for i in range(nx):
                        r_vertical = (
                            t / (2.0 * k[j, i])
                            + below.thickness_m / (2.0 * k_below[j, i])
                        ) / cell_area
                        couple(index(l, j, i), index(l + 1, j, i), 1.0 / r_vertical)

        # Convection boundary at the top of the spreader: the sink's total
        # resistance distributed uniformly over the spreader area.
        conv_total = 1.0 / self.stack.convection_k_per_w
        conv_per_cell = conv_total * (cell_area / spreader_area)
        for j in range(ny):
            for i in range(nx):
                diag[index(0, j, i)] += conv_per_cell

        rows.extend(range(n))
        cols.extend(range(n))
        vals.extend(diag)
        matrix = coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsc()
        return matrix, conv_per_cell

    # ------------------------------------------------------------------ #

    def _embed(self, chip_grid: np.ndarray) -> np.ndarray:
        """Place a chip-resolution power grid into the spreader grid.

        ``chip_grid`` must be rasterized at :meth:`chip_grid_shape`.
        """
        if chip_grid.shape != (self._chip_ny, self._chip_nx):
            raise ValueError(
                f"power grid shape {chip_grid.shape} != chip grid "
                f"({self._chip_ny}, {self._chip_nx})"
            )
        full = np.zeros((self.ny, self.nx))
        full[self._chip_y0:self._chip_y0 + self._chip_ny,
             self._chip_x0:self._chip_x0 + self._chip_nx] = chip_grid
        return full

    def chip_grid_shape(self) -> Tuple[int, int]:
        """(ny, nx) resolution for chip-region power maps."""
        return self._chip_ny, self._chip_nx

    def _die_layers(self) -> Dict[int, int]:
        return dict(self._die_layer_map)

    def _rhs_for(self, die_power_grids: Sequence[np.ndarray]) -> np.ndarray:
        nx, ny = self.nx, self.ny
        layers = self.stack.layers
        if len(die_power_grids) != self.stack.die_count:
            raise ValueError(
                f"expected {self.stack.die_count} power grids, got {len(die_power_grids)}"
            )
        rhs = np.zeros(len(layers) * ny * nx)
        for die, l in self._die_layer_map.items():
            full = self._embed(die_power_grids[die])
            rhs[l * ny * nx:(l + 1) * ny * nx] += full.ravel()
        rhs[: ny * nx] += self._conv_per_cell * self.stack.ambient_k
        return rhs

    def _result_from(self, temps: np.ndarray) -> ThermalResult:
        nx, ny = self.nx, self.ny
        layer_temps = [
            temps[l * ny * nx:(l + 1) * ny * nx].reshape(ny, nx)
            for l in range(len(self.stack.layers))
        ]
        die_layers = self._die_layers()
        block_peak, block_mean = self._block_temps(layer_temps, die_layers)
        return ThermalResult(
            stack_name=self.stack.name,
            nx=nx,
            ny=ny,
            layer_temps=layer_temps,
            die_layers=die_layers,
            block_peak=block_peak,
            block_mean=block_mean,
        )

    def solve(self, die_power_grids: Sequence[np.ndarray]) -> ThermalResult:
        """Solve for per-die chip-region power grids (W per cell)."""
        return self.solve_many([die_power_grids])[0]

    def solve_many(
        self, batches: Sequence[Sequence[np.ndarray]]
    ) -> List[ThermalResult]:
        """Solve several power maps against the one LU factorization.

        All right-hand sides are backsubstituted in a single call, so the
        factorization cost — and most of the per-solve overhead — is paid
        once for the whole batch.
        """
        if not batches:
            return []
        if self._solve_fn is None:
            self._build()
        rhs = np.stack([self._rhs_for(batch) for batch in batches], axis=1)
        temps = self._solve_fn(rhs)
        return [self._result_from(np.asarray(temps[:, i]).ravel())
                for i in range(len(batches))]

    def _block_temps(self, layer_temps, die_layers):
        nx, ny = self.nx, self.ny
        dx = self.spreader_w_mm / nx
        dy = self.spreader_h_mm / ny
        block_peak: Dict[Tuple[str, int], float] = {}
        block_mean: Dict[Tuple[str, int], float] = {}
        for block in self.floorplan.blocks:
            grid = layer_temps[die_layers[block.die]]
            r = block.rect
            bx = r.x + self.chip_x0_mm
            by = r.y + self.chip_y0_mm
            x0 = max(0, int(bx / dx))
            x1 = max(x0 + 1, min(nx, int(np.ceil((bx + r.w) / dx))))
            y0 = max(0, int(by / dy))
            y1 = max(y0 + 1, min(ny, int(np.ceil((by + r.h) / dy))))
            region = grid[y0:y1, x0:x1]
            key = (block.name, block.die)
            block_peak[key] = float(region.max())
            block_mean[key] = float(region.mean())
        return block_peak, block_mean
