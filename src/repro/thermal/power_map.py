"""Floorplan power rasterization.

``build_power_map`` combines per-core power breakdowns into per-(block,
die) watts; ``rasterize`` turns those into per-die grids for the solver.
Clock network and leakage power are distributed across all blocks (all
dies for a 3D stack) proportionally to area — the clock tree and the
leaking transistors are everywhere.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.floorplan.geometry import Floorplan
from repro.power.model import PowerBreakdown, StackKind

BlockDieKey = Tuple[str, int]


def build_power_map(
    floorplan: Floorplan,
    core_breakdowns: Sequence[PowerBreakdown],
) -> Dict[BlockDieKey, float]:
    """Per-(block name, die) watts for the whole chip.

    ``core_breakdowns[i]`` supplies the power of ``core{i}.*`` blocks;
    the shared L2 receives every core's L2 power.  Clock and leakage are
    spread area-proportionally over all blocks.
    """
    watts: Dict[BlockDieKey, float] = {
        (block.name, block.die): 0.0 for block in floorplan.blocks
    }

    shared_total = 0.0
    for core_index, breakdown in enumerate(core_breakdowns):
        prefix = f"core{core_index}."
        for module_name, module in breakdown.modules.items():
            if module_name == "l2_cache":
                target = "l2_cache"
            else:
                target = prefix + module_name
            for die, die_watts in enumerate(module.per_die):
                key = (target, die)
                if key in watts:
                    watts[key] += die_watts
                else:
                    # Module missing from the floorplan: spread it later.
                    shared_total += die_watts
        shared_total += breakdown.clock_watts + breakdown.leakage_watts

    total_area = floorplan.total_block_area()
    for block in floorplan.blocks:
        watts[(block.name, block.die)] += shared_total * block.area_mm2 / total_area
    return watts


def rasterize(
    floorplan: Floorplan,
    watts: Dict[BlockDieKey, float],
    nx: int,
    ny: int,
) -> List[np.ndarray]:
    """Per-die (ny, nx) power grids in watts.

    Each block's power is distributed uniformly over the grid cells it
    overlaps, with partial cells weighted by overlap area.
    """
    if nx < 2 or ny < 2:
        raise ValueError(f"grid must be at least 2x2, got {nx}x{ny}")
    dx = floorplan.width_mm / nx
    dy = floorplan.height_mm / ny
    grids = [np.zeros((ny, nx)) for _ in range(floorplan.dies)]
    for block in floorplan.blocks:
        power = watts.get((block.name, block.die), 0.0)
        if power <= 0.0:
            continue
        r = block.rect
        x0 = max(0, int(r.x / dx))
        x1 = min(nx, int(np.ceil((r.x + r.w) / dx)))
        y0 = max(0, int(r.y / dy))
        y1 = min(ny, int(np.ceil((r.y + r.h) / dy)))
        density = power / r.area_mm2
        grid = grids[block.die]
        for j in range(y0, y1):
            cell_y0, cell_y1 = j * dy, (j + 1) * dy
            overlap_y = min(cell_y1, r.y + r.h) - max(cell_y0, r.y)
            if overlap_y <= 0:
                continue
            for i in range(x0, x1):
                cell_x0, cell_x1 = i * dx, (i + 1) * dx
                overlap_x = min(cell_x1, r.x + r.w) - max(cell_x0, r.x)
                if overlap_x <= 0:
                    continue
                grid[j, i] += density * overlap_x * overlap_y
    return grids
