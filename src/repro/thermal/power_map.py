"""Floorplan power rasterization.

``build_power_map`` combines per-core power breakdowns into per-(block,
die) watts; ``rasterize`` turns those into per-die grids for the solver.
Clock network and leakage power are distributed across all blocks (all
dies for a 3D stack) proportionally to area — the clock tree and the
leaking transistors are everywhere.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.floorplan.geometry import Floorplan
from repro.power.model import PowerBreakdown, StackKind

BlockDieKey = Tuple[str, int]


def build_power_map(
    floorplan: Floorplan,
    core_breakdowns: Sequence[PowerBreakdown],
) -> Dict[BlockDieKey, float]:
    """Per-(block name, die) watts for the whole chip.

    ``core_breakdowns[i]`` supplies the power of ``core{i}.*`` blocks;
    the shared L2 receives every core's L2 power.  Clock and leakage are
    spread area-proportionally over all blocks.
    """
    watts: Dict[BlockDieKey, float] = {
        (block.name, block.die): 0.0 for block in floorplan.blocks
    }

    shared_total = 0.0
    for core_index, breakdown in enumerate(core_breakdowns):
        prefix = f"core{core_index}."
        for module_name, module in breakdown.modules.items():
            if module_name == "l2_cache":
                target = "l2_cache"
            else:
                target = prefix + module_name
            for die, die_watts in enumerate(module.per_die):
                key = (target, die)
                if key in watts:
                    watts[key] += die_watts
                else:
                    # Module missing from the floorplan: spread it later.
                    shared_total += die_watts
        shared_total += breakdown.clock_watts + breakdown.leakage_watts

    total_area = floorplan.total_block_area()
    for block in floorplan.blocks:
        watts[(block.name, block.die)] += shared_total * block.area_mm2 / total_area
    return watts


#: One precomputed block footprint: (die, row slice, column slice,
#: per-cell fraction of the block's area).
_BlockMask = Tuple[int, slice, slice, np.ndarray]

#: (floorplan fingerprint, nx, ny) -> per-block masks, LRU-bounded.
_MASK_CACHE: "OrderedDict[Tuple, List[_BlockMask]]" = OrderedDict()
_MASK_CACHE_CAP = 8


def clear_mask_cache() -> None:
    """Drop all memoized rasterization masks."""
    _MASK_CACHE.clear()


def _block_masks(floorplan: Floorplan, nx: int, ny: int) -> List[_BlockMask]:
    """Fractional cell-overlap weights for every block, memoized.

    Each block's weights grid sums to 1 (its full area lands on the
    grid), so scaling by the block's watts conserves power exactly.
    """
    key = (floorplan.fingerprint(), nx, ny)
    masks = _MASK_CACHE.get(key)
    if masks is not None:
        _MASK_CACHE.move_to_end(key)
        return masks
    dx = floorplan.width_mm / nx
    dy = floorplan.height_mm / ny
    edges_x = np.arange(nx + 1) * dx
    edges_y = np.arange(ny + 1) * dy
    masks = []
    for block in floorplan.blocks:
        r = block.rect
        x0 = max(0, int(r.x / dx))
        x1 = min(nx, int(np.ceil((r.x + r.w) / dx)))
        y0 = max(0, int(r.y / dy))
        y1 = min(ny, int(np.ceil((r.y + r.h) / dy)))
        overlap_x = np.minimum(edges_x[x0 + 1:x1 + 1], r.x + r.w) \
            - np.maximum(edges_x[x0:x1], r.x)
        overlap_y = np.minimum(edges_y[y0 + 1:y1 + 1], r.y + r.h) \
            - np.maximum(edges_y[y0:y1], r.y)
        np.clip(overlap_x, 0.0, None, out=overlap_x)
        np.clip(overlap_y, 0.0, None, out=overlap_y)
        weights = overlap_y[:, None] * overlap_x[None, :] / r.area_mm2
        masks.append((block.die, slice(y0, y1), slice(x0, x1), weights))
    _MASK_CACHE[key] = masks
    while len(_MASK_CACHE) > _MASK_CACHE_CAP:
        _MASK_CACHE.popitem(last=False)
    return masks


def rasterize(
    floorplan: Floorplan,
    watts: Dict[BlockDieKey, float],
    nx: int,
    ny: int,
) -> List[np.ndarray]:
    """Per-die (ny, nx) power grids in watts.

    Each block's power is distributed uniformly over the grid cells it
    overlaps, with partial cells weighted by overlap area.  The overlap
    weights depend only on (floorplan, nx, ny), so they are computed
    once with clipped coordinate grids and reused across every
    rasterization of the same floorplan at the same resolution.
    """
    if nx < 2 or ny < 2:
        raise ValueError(f"grid must be at least 2x2, got {nx}x{ny}")
    grids = [np.zeros((ny, nx)) for _ in range(floorplan.dies)]
    masks = _block_masks(floorplan, nx, ny)
    for block, (die, rows, cols, weights) in zip(floorplan.blocks, masks):
        power = watts.get((block.name, block.die), 0.0)
        if power <= 0.0:
            continue
        grids[die][rows, cols] += power * weights
    return grids
