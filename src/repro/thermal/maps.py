"""Thermal map rendering utilities.

ASCII renderings of temperature grids and per-block summaries, the
terminal counterpart of Figure 10's heat maps.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.thermal.solver import ThermalResult

#: Intensity ramp from coolest to hottest.
SHADES = " .:-=+*#%@"


def render_grid(
    grid: np.ndarray,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
    row_stride: int = 2,
) -> str:
    """Render a temperature grid as ASCII shades.

    ``row_stride`` halves the vertical resolution by default so the map
    is roughly square in a terminal's character aspect ratio.
    """
    if grid.ndim != 2:
        raise ValueError(f"expected a 2D grid, got shape {grid.shape}")
    if row_stride < 1:
        raise ValueError(f"row_stride must be >= 1, got {row_stride}")
    lo = float(grid.min()) if lo is None else lo
    hi = float(grid.max()) if hi is None else hi
    span = max(hi - lo, 1e-9)
    lines = []
    for row in grid[::row_stride]:
        chars = []
        for value in row:
            level = int((value - lo) / span * (len(SHADES) - 1))
            chars.append(SHADES[max(0, min(level, len(SHADES) - 1))])
        lines.append("".join(chars))
    return "\n".join(lines)


def render_die(result: ThermalResult, die: int, row_stride: int = 2) -> str:
    """Render one die layer of a thermal result with a scale line."""
    grid = result.layer_temps[result.die_layers[die]]
    lo, hi = float(grid.min()), float(grid.max())
    body = render_grid(grid, lo, hi, row_stride=row_stride)
    return f"die {die}: {lo:.1f} K ({SHADES[0]!r}) .. {hi:.1f} K ({SHADES[-1]!r})\n{body}"


def render_stack(result: ThermalResult, row_stride: int = 2) -> str:
    """Render every die of a stack, top (heat sink side) first."""
    sections = [
        render_die(result, die, row_stride=row_stride)
        for die in sorted(result.die_layers)
    ]
    return "\n\n".join(sections)


def hotspot_table(
    result: ThermalResult,
    top: int = 10,
    reference_k: Optional[float] = None,
) -> str:
    """Tabulate the hottest blocks, optionally with deltas to a reference."""
    ranked: List[Tuple[Tuple[str, int], float]] = sorted(
        result.block_peak.items(), key=lambda kv: -kv[1]
    )[:top]
    header = f"{'block':<26s} {'die':>3s} {'peak K':>8s}"
    if reference_k is not None:
        header += f" {'delta':>7s}"
    lines = [header, "-" * len(header)]
    for (name, die), temp in ranked:
        row = f"{name:<26s} {die:3d} {temp:8.1f}"
        if reference_k is not None:
            row += f" {temp - reference_k:+7.1f}"
        lines.append(row)
    return "\n".join(lines)
