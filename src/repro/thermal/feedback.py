"""Leakage-temperature feedback (thermal-electrical fixed point).

Subthreshold leakage grows roughly exponentially with temperature; the
paper holds leakage constant (20 % of the baseline total), which is
conservative at the baseline temperature but optimistic in a hot 3D
stack.  This module iterates the coupled system:

    T = solve(P_dynamic + P_leak(T)),
    P_leak(T) = P_leak_ref * exp((T - T_ref) / T_e)

to a fixed point, exposing both the converged temperatures and the
leakage amplification.  ``T_e`` (the e-folding temperature) of ~35 K
corresponds to the commonly quoted "leakage doubles every ~25 K".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.thermal.solver import ThermalResult, ThermalSolver

#: Leakage e-folding temperature (K): doubles every ~24 K.
DEFAULT_EFOLD_K = 35.0


#: Exponent clamp: leakage scaling saturates at e^3 ~ 20x per cell.
_MAX_EXPONENT = 3.0
#: Peak temperature above which the loop declares thermal runaway.
RUNAWAY_K = 500.0


@dataclass
class FeedbackResult:
    """Converged thermal solution plus leakage bookkeeping."""

    result: ThermalResult
    iterations: int
    converged: bool
    runaway: bool
    leakage_ref_watts: float
    leakage_final_watts: float

    @property
    def leakage_amplification(self) -> float:
        if self.leakage_ref_watts <= 0:
            return 1.0
        return self.leakage_final_watts / self.leakage_ref_watts


def solve_with_leakage_feedback(
    solver: ThermalSolver,
    dynamic_grids: Sequence[np.ndarray],
    leakage_grids: Sequence[np.ndarray],
    reference_k: float,
    efold_k: float = DEFAULT_EFOLD_K,
    max_iterations: int = 20,
    tolerance_k: float = 0.05,
) -> FeedbackResult:
    """Iterate temperature and leakage to a fixed point.

    ``leakage_grids`` hold the per-die leakage power *at* ``reference_k``
    (the temperature the designer budgeted leakage for); the loop scales
    each cell's leakage by ``exp((T_cell - reference_k) / efold_k)`` and
    re-solves until the peak moves less than ``tolerance_k``.
    """
    if efold_k <= 0:
        raise ValueError(f"efold_k must be positive, got {efold_k}")
    if len(dynamic_grids) != len(leakage_grids):
        raise ValueError("dynamic and leakage grids must align per die")

    leak_ref = float(sum(g.sum() for g in leakage_grids))
    die_layers = {
        layer.power_die: None
        for layer in solver.stack.layers
        if layer.power_die is not None
    }
    if len(dynamic_grids) != len(die_layers):
        raise ValueError(
            f"expected {len(die_layers)} per-die grids, got {len(dynamic_grids)}"
        )

    scaled = [np.asarray(g, dtype=float).copy() for g in leakage_grids]
    result: Optional[ThermalResult] = None
    previous_peak = float("inf")
    converged = False
    runaway = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        total = [d + l for d, l in zip(dynamic_grids, scaled)]
        result = solver.solve(total)
        peak = result.peak_temperature
        if peak > RUNAWAY_K:
            runaway = True
            break
        if abs(peak - previous_peak) < tolerance_k:
            converged = True
            break
        previous_peak = peak
        # Re-scale leakage from each die's temperature field (sampled at
        # the die layer over the chip window), damped 50 % in log space
        # for stable convergence near the runaway boundary.
        for die, grid in enumerate(leakage_grids):
            layer = result.die_layers[die]
            temps = result.layer_temps[layer]
            window = temps[
                solver._chip_y0:solver._chip_y0 + solver._chip_ny,
                solver._chip_x0:solver._chip_x0 + solver._chip_nx,
            ]
            exponent = np.clip((window - reference_k) / efold_k, -5.0, _MAX_EXPONENT)
            target = np.asarray(grid) * np.exp(exponent)
            scaled[die] = np.sqrt(scaled[die] * target + 1e-300)

    assert result is not None
    leak_final = float(sum(g.sum() for g in scaled))
    return FeedbackResult(
        result=result,
        iterations=iterations,
        converged=converged,
        runaway=runaway,
        leakage_ref_watts=leak_ref,
        leakage_final_watts=leak_final,
    )


def uniform_leakage_grids(
    solver: ThermalSolver,
    total_leakage_watts: float,
) -> List[np.ndarray]:
    """Leakage distributed uniformly over the chip area of every die."""
    ny, nx = solver.chip_grid_shape()
    dies = solver.stack.die_count
    per_cell = total_leakage_watts / (dies * nx * ny)
    return [np.full((ny, nx), per_cell) for _ in range(dies)]
