"""Thermal material library.

Conductivities in W/(m.K); volumetric heat capacities in J/(m^3.K) are
carried for completeness (a transient solver would need them; the
steady-state solver uses only k).

The d2d bond layer follows the paper's Section 4 assumption: fully
populated d2d vias whose width is half the pitch, i.e. 25 % copper
occupancy; the remainder is modelled as underfill/air.  The TIM is a
phase-change metallic alloy (far better than thermal grease).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Material:
    """A homogeneous, isotropic thermal material."""

    name: str
    conductivity_w_mk: float
    heat_capacity_j_m3k: float = 1.6e6

    def __post_init__(self) -> None:
        if self.conductivity_w_mk <= 0:
            raise ValueError(f"{self.name}: conductivity must be positive")


SILICON = Material("silicon", conductivity_w_mk=120.0, heat_capacity_j_m3k=1.75e6)
COPPER = Material("copper", conductivity_w_mk=400.0, heat_capacity_j_m3k=3.55e6)
#: Phase-change metallic alloy TIM [38]: far above grease (~1-4 W/mK).
TIM_ALLOY = Material("tim-alloy", conductivity_w_mk=50.0, heat_capacity_j_m3k=1.5e6)
#: d2d via layer: 25% copper + 75% underfill (k ~ 0.5): 0.25*400 + 0.75*0.5.
D2D_BOND = Material("d2d-bond", conductivity_w_mk=100.4, heat_capacity_j_m3k=2.0e6)
#: Package/board path below the bottom die (weak secondary heat path).
PACKAGE = Material("package", conductivity_w_mk=2.0, heat_capacity_j_m3k=1.2e6)
