"""3D steady-state thermal model (the HotSpot 3.0.2 substitute).

The chip is discretized into a grid per layer; layers run from the heat
spreader (top, convectively coupled to ambient through the heat sink)
down through the TIM and the die stack.  Fourier conduction is solved as
a sparse linear system (finite volumes), exactly the physics of HotSpot's
grid model.  For 3D stacks the die-to-die interface layers use the
paper's assumption of fully-populated d2d vias at 25 % copper occupancy,
and the TIM is a phase-change metallic alloy.
"""

from repro.thermal.materials import Material, SILICON, COPPER, TIM_ALLOY, D2D_BOND
from repro.thermal.stack import LayerSpec, ThermalStack, planar_stack, stacked_3d_stack
from repro.thermal.power_map import build_power_map, rasterize
from repro.thermal.solver import ThermalSolver, ThermalResult
from repro.thermal.transient import TransientThermalSolver, TransientResult
from repro.thermal.feedback import (
    FeedbackResult,
    solve_with_leakage_feedback,
    uniform_leakage_grids,
)
from repro.thermal.maps import hotspot_table, render_die, render_grid, render_stack

__all__ = [
    "Material",
    "SILICON",
    "COPPER",
    "TIM_ALLOY",
    "D2D_BOND",
    "LayerSpec",
    "ThermalStack",
    "planar_stack",
    "stacked_3d_stack",
    "build_power_map",
    "rasterize",
    "ThermalSolver",
    "ThermalResult",
    "TransientThermalSolver",
    "TransientResult",
    "FeedbackResult",
    "solve_with_leakage_feedback",
    "uniform_leakage_grids",
    "hotspot_table",
    "render_die",
    "render_grid",
    "render_stack",
]
