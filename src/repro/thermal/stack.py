"""Layer stacks for the planar processor and the 4-die 3D stack.

Layers are ordered from the heat sink downward.  ``power_die`` marks a
layer as the active silicon of a die: the solver injects that die's
power map into it.  Die 0 is the die adjacent to the heat sink, matching
the Thermal Herding convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.thermal.materials import (
    COPPER,
    D2D_BOND,
    Material,
    PACKAGE,
    SILICON,
    TIM_ALLOY,
)

#: Sink-to-ambient convection resistance (K/W), HotSpot's r_convec analogue.
#: Calibrated so the planar baseline at 90 W peaks near the paper's 360 K.
DEFAULT_CONVECTION_K_PER_W = 0.17
#: Ambient (into-sink) temperature, K — HotSpot's default 318.15 K.
DEFAULT_AMBIENT_K = 318.15


@dataclass(frozen=True)
class LayerSpec:
    """One layer of the stack."""

    name: str
    material: Material
    thickness_m: float
    #: index of the die whose power map is injected here, or None
    power_die: Optional[int] = None

    def __post_init__(self) -> None:
        if self.thickness_m <= 0:
            raise ValueError(f"layer {self.name}: thickness must be positive")


@dataclass
class ThermalStack:
    """A full stack: layers (sink side first) plus boundary conditions."""

    name: str
    layers: List[LayerSpec]
    convection_k_per_w: float = DEFAULT_CONVECTION_K_PER_W
    ambient_k: float = DEFAULT_AMBIENT_K

    @property
    def die_count(self) -> int:
        return sum(1 for layer in self.layers if layer.power_die is not None)

    def validate(self) -> None:
        dies = sorted(
            layer.power_die for layer in self.layers if layer.power_die is not None
        )
        if dies != list(range(len(dies))):
            raise ValueError(f"power dies must be 0..n-1 exactly once, got {dies}")


def planar_stack(convection_k_per_w: float = DEFAULT_CONVECTION_K_PER_W) -> ThermalStack:
    """Spreader / TIM / bulk die / package."""
    stack = ThermalStack(
        name="planar",
        layers=[
            LayerSpec("spreader", COPPER, 1.0e-3),
            LayerSpec("tim", TIM_ALLOY, 50e-6),
            LayerSpec("die0", SILICON, 300e-6, power_die=0),
            LayerSpec("package", PACKAGE, 500e-6),
        ],
        convection_k_per_w=convection_k_per_w,
    )
    stack.validate()
    return stack


def stacked_3d_stack(convection_k_per_w: float = DEFAULT_CONVECTION_K_PER_W) -> ThermalStack:
    """Spreader / TIM / 4 thinned dies with F2F-B2B-F2F bonds / package.

    Die 0 (top, nearest the sink) keeps substantial bulk for mechanical
    support; lower dies are thinned to ~12 um (Section 4 cites current
    technology thinning to 12 um).  Face-to-face interfaces cross 5 um;
    the back-to-back interface crosses 20 um.
    """
    stack = ThermalStack(
        name="stacked-3d",
        layers=[
            LayerSpec("spreader", COPPER, 1.0e-3),
            LayerSpec("tim", TIM_ALLOY, 50e-6),
            LayerSpec("die0", SILICON, 150e-6, power_die=0),
            LayerSpec("bond01-f2f", D2D_BOND, 5e-6),
            LayerSpec("die1", SILICON, 12e-6, power_die=1),
            LayerSpec("bond12-b2b", D2D_BOND, 20e-6),
            LayerSpec("die2", SILICON, 12e-6, power_die=2),
            LayerSpec("bond23-f2f", D2D_BOND, 5e-6),
            LayerSpec("die3", SILICON, 12e-6, power_die=3),
            LayerSpec("package", PACKAGE, 500e-6),
        ],
        convection_k_per_w=convection_k_per_w,
    )
    stack.validate()
    return stack
