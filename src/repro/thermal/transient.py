"""Transient thermal solver (implicit Euler over the grid model).

HotSpot offers both steady-state and transient analysis; the paper's
results are steady state, but transient behaviour matters for herding's
headroom claims (how fast a hotspot forms when activity migrates).  The
transient solver reuses the steady solver's conductance matrix ``G`` and
adds per-cell heat capacities ``C``:

    C dT/dt = -G T + P(t)  ->  (C/dt + G) T_{n+1} = (C/dt) T_n + P_{n+1}

Implicit Euler is unconditionally stable, so time steps can span
milliseconds.  The step matrix ``(C/dt + G)`` is LU-factorized once per
(geometry, heat capacities, dt) and shared process-wide, exactly like
the steady solver's factorization cache.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np
from scipy.sparse import coo_matrix

from repro.thermal.solver import FactorizationStats, ThermalSolver, _factorize

#: (steady matrix key, per-layer heat capacities, dt) -> step backsolve.
_STEP_CACHE: "OrderedDict[Tuple, Callable]" = OrderedDict()
_STEP_CACHE_CAP = 8

#: Counters for the step-matrix factorization cache.
STEP_FACTORIZATION_STATS = FactorizationStats()


def clear_step_cache() -> None:
    """Drop all cached step factorizations and reset the counters."""
    _STEP_CACHE.clear()
    STEP_FACTORIZATION_STATS.factorizations = 0
    STEP_FACTORIZATION_STATS.cache_hits = 0


@dataclass
class TransientResult:
    """Temperature evolution over the integration window."""

    times_s: List[float]
    #: peak die temperature at each time step
    peak_k: List[float]
    #: final full per-layer temperature grids
    final_layer_temps: List[np.ndarray]

    @property
    def final_peak(self) -> float:
        return self.peak_k[-1] if self.peak_k else 0.0

    def time_to_reach(self, threshold_k: float) -> Optional[float]:
        """First time the peak crosses ``threshold_k`` (None if never)."""
        for t, peak in zip(self.times_s, self.peak_k):
            if peak >= threshold_k:
                return t
        return None


class TransientThermalSolver:
    """Implicit-Euler transient solver sharing a ThermalSolver's geometry."""

    def __init__(self, steady: ThermalSolver, dt_s: float = 1e-3):
        if dt_s <= 0:
            raise ValueError(f"dt must be positive, got {dt_s}")
        self.steady = steady
        self.dt_s = dt_s
        if steady._solve_fn is None:
            steady._build()
        self._capacity = self._cell_capacities()
        self._cap_over_dt = self._capacity / dt_s
        key = (
            steady.matrix_key(),
            tuple(
                layer.material.heat_capacity_j_m3k
                for layer in steady.stack.layers
            ),
            dt_s,
        )
        step_solve = _STEP_CACHE.get(key)
        if step_solve is None:
            n = len(self._capacity)
            capacity_matrix = coo_matrix(
                (self._cap_over_dt, (range(n), range(n))), shape=(n, n)
            ).tocsc()
            step_solve = _factorize(
                (capacity_matrix + steady.conductance_matrix).tocsc()
            )
            STEP_FACTORIZATION_STATS.factorizations += 1
            _STEP_CACHE[key] = step_solve
            while len(_STEP_CACHE) > _STEP_CACHE_CAP:
                _STEP_CACHE.popitem(last=False)
        else:
            STEP_FACTORIZATION_STATS.cache_hits += 1
            _STEP_CACHE.move_to_end(key)
        self._step_solve = step_solve

    def _cell_capacities(self) -> np.ndarray:
        """Heat capacity (J/K) of every grid cell, layer by layer."""
        nx, ny = self.steady.nx, self.steady.ny
        dx = self.steady.spreader_w_mm * 1e-3 / nx
        dy = self.steady.spreader_h_mm * 1e-3 / ny
        caps = []
        for layer in self.steady.stack.layers:
            volume = dx * dy * layer.thickness_m
            caps.append(np.full(ny * nx, layer.material.heat_capacity_j_m3k * volume))
        return np.concatenate(caps)

    # ------------------------------------------------------------------ #

    def run(
        self,
        power_fn: Callable[[float], Sequence[np.ndarray]],
        duration_s: float,
        initial_k: Optional[float] = None,
    ) -> TransientResult:
        """Integrate from a uniform initial temperature.

        ``power_fn(t)`` returns the per-die chip power grids (at the
        steady solver's :meth:`~ThermalSolver.chip_grid_shape`) at time t.
        """
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        steady = self.steady
        nx, ny = steady.nx, steady.ny
        layers = steady.stack.layers
        n = len(layers) * ny * nx
        ambient = steady.stack.ambient_k
        temps = np.full(n, initial_k if initial_k is not None else ambient)

        die_layers = steady._die_layer_map

        times: List[float] = []
        peaks: List[float] = []
        steps = max(1, int(round(duration_s / self.dt_s)))
        conv = steady._conv_per_cell
        for step in range(1, steps + 1):
            t = step * self.dt_s
            grids = power_fn(t)
            rhs = np.zeros(n)
            for die, layer_index in die_layers.items():
                full = steady._embed(np.asarray(grids[die]))
                rhs[layer_index * ny * nx:(layer_index + 1) * ny * nx] += full.ravel()
            rhs[: ny * nx] += conv * ambient
            rhs += self._cap_over_dt * temps
            temps = self._step_solve(rhs)
            times.append(t)
            die_peak = max(
                temps[l * ny * nx:(l + 1) * ny * nx].max()
                for l in die_layers.values()
            )
            peaks.append(float(die_peak))

        final = [
            temps[l * ny * nx:(l + 1) * ny * nx].reshape(ny, nx)
            for l in range(len(layers))
        ]
        return TransientResult(times_s=times, peak_k=peaks, final_layer_temps=final)
