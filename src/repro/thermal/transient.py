"""Transient thermal solver (implicit Euler over the grid model).

HotSpot offers both steady-state and transient analysis; the paper's
results are steady state, but transient behaviour matters for herding's
headroom claims (how fast a hotspot forms when activity migrates).  The
transient solver reuses the steady solver's conductance matrix ``G`` and
adds per-cell heat capacities ``C``:

    C dT/dt = -G T + P(t)  ->  (C/dt + G) T_{n+1} = (C/dt) T_n + P_{n+1}

Implicit Euler is unconditionally stable, so time steps can span
milliseconds.  The step matrix ``(C/dt + G)`` is LU-factorized once per
(geometry, heat capacities, dt) and shared process-wide, exactly like
the steady solver's factorization cache.

Two integration paths share that factorization:

* :meth:`TransientThermalSolver.run_many` steps K runs in lock-step with
  an ``(n, K)`` right-hand-side matrix — SuperLU back-substitutes all
  columns in one call, so the per-step sparse-solve overhead is paid
  once per step instead of once per run per step.  RHS assembly is fully
  vectorized: the per-die chip-window embed is a precomputed index
  scatter, not a per-step :meth:`~ThermalSolver._embed` loop.
* :meth:`TransientThermalSolver.run_reference` retains the original
  scalar per-run loop as the ground-truth reference; the batched path is
  pinned byte-identical to it in tests on the reference workloads.  (On
  very large grids SuperLU's blocked nrhs>1 kernel may reorder the
  back-substitution accumulation relative to per-column solves,
  perturbing interior temperatures at the ~1e-13 K level; the die-peak
  series has stayed exact in every observed case.)
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np
from scipy.sparse import coo_matrix

from repro.thermal.solver import FactorizationStats, ThermalSolver, _factorize

#: (steady matrix key, per-layer heat capacities, dt) -> step backsolve.
_STEP_CACHE: "OrderedDict[Tuple, Callable]" = OrderedDict()
_STEP_CACHE_CAP = 8

#: Counters for the step-matrix factorization cache.
STEP_FACTORIZATION_STATS = FactorizationStats()


def clear_step_cache() -> None:
    """Drop all cached step factorizations and reset the counters."""
    _STEP_CACHE.clear()
    STEP_FACTORIZATION_STATS.factorizations = 0
    STEP_FACTORIZATION_STATS.cache_hits = 0


def step_matrix_key(steady: ThermalSolver, dt_s: float) -> Tuple:
    """The factorization-cache key for a (geometry, capacities, dt) combo.

    Pure — does not build or factorize anything, so dispatchers can group
    runs by step matrix before any solver exists.
    """
    return (
        steady.matrix_key(),
        tuple(
            layer.material.heat_capacity_j_m3k
            for layer in steady.stack.layers
        ),
        float(dt_s),
    )


class PowerSchedule:
    """Power-versus-time input for a transient run.

    Subclasses implement :meth:`power_grids`; instances must be picklable
    so a whole group of schedules can ship to a pool worker.  The
    ``prev_peak_k`` argument enables temperature-reactive schedules
    (thermal throttling): it is the peak die temperature after the
    previous accepted step (the initial temperature before the first).
    """

    def power_grids(self, t_s: float, prev_peak_k: float) -> Sequence[np.ndarray]:
        raise NotImplementedError

    def stats(self) -> Dict[str, float]:
        """Schedule-side counters accumulated during a run (may be empty)."""
        return {}


class _CallableSchedule(PowerSchedule):
    """Adapts a plain ``power_fn(t)`` callable to the schedule protocol."""

    def __init__(self, fn: Callable[[float], Sequence[np.ndarray]]):
        self._fn = fn

    def power_grids(self, t_s: float, prev_peak_k: float) -> Sequence[np.ndarray]:
        return self._fn(t_s)


ScheduleLike = Union[PowerSchedule, Callable[[float], Sequence[np.ndarray]]]


@dataclass
class TransientResult:
    """Temperature evolution over the integration window."""

    times_s: List[float]
    #: peak die temperature at each time step
    peak_k: List[float]
    #: final full per-layer temperature grids
    final_layer_temps: List[np.ndarray]

    @property
    def final_peak(self) -> float:
        return self.peak_k[-1] if self.peak_k else 0.0

    def time_to_reach(self, threshold_k: float) -> Optional[float]:
        """First time the peak crosses ``threshold_k`` (None if never)."""
        peaks = np.asarray(self.peak_k)
        hits = np.nonzero(peaks >= threshold_k)[0]
        if hits.size == 0:
            return None
        return self.times_s[int(hits[0])]


class TransientThermalSolver:
    """Implicit-Euler transient solver sharing a ThermalSolver's geometry."""

    def __init__(self, steady: ThermalSolver, dt_s: float = 1e-3):
        if dt_s <= 0:
            raise ValueError(f"dt must be positive, got {dt_s}")
        self.steady = steady
        self.dt_s = dt_s
        if steady._solve_fn is None:
            steady._build()
        self._capacity = self._cell_capacities()
        self._cap_over_dt = self._capacity / dt_s
        key = step_matrix_key(steady, dt_s)
        step_solve = _STEP_CACHE.get(key)
        if step_solve is None:
            n = len(self._capacity)
            capacity_matrix = coo_matrix(
                (self._cap_over_dt, (range(n), range(n))), shape=(n, n)
            ).tocsc()
            step_solve = _factorize(
                (capacity_matrix + steady.conductance_matrix).tocsc()
            )
            STEP_FACTORIZATION_STATS.factorizations += 1
            _STEP_CACHE[key] = step_solve
            while len(_STEP_CACHE) > _STEP_CACHE_CAP:
                _STEP_CACHE.popitem(last=False)
        else:
            STEP_FACTORIZATION_STATS.cache_hits += 1
            _STEP_CACHE.move_to_end(key)
        self._step_solve = step_solve
        self._build_index_maps()

    def _build_index_maps(self) -> None:
        """Precompute the embed scatter and die-peak gather index views.

        The scalar reference loop zero-pads each die's chip-resolution
        power grid into the full spreader grid every step.  The batched
        path instead scatters raveled chip grids straight into the flat
        RHS through ``_chip_cells`` — the flat indices of every chip-window
        cell, concatenated die by die in ``_die_layer_map`` order.
        ``_die_cells`` gathers every cell of every die layer for the
        per-step peak reduction.
        """
        steady = self.steady
        nx, ny = steady.nx, steady.ny
        cny, cnx = steady.chip_grid_shape()
        x0, y0 = steady._chip_x0, steady._chip_y0
        yy, xx = np.mgrid[0:cny, 0:cnx]
        window = ((yy + y0) * nx + (xx + x0)).ravel()
        self._die_order = list(steady._die_layer_map.items())
        self._chip_cells = np.concatenate(
            [layer * ny * nx + window for _die, layer in self._die_order]
        )
        self._die_cells = np.concatenate(
            [
                layer * ny * nx + np.arange(ny * nx)
                for layer in sorted(set(steady._die_layer_map.values()))
            ]
        )
        self._chip_shape = (cny, cnx)

    def _cell_capacities(self) -> np.ndarray:
        """Heat capacity (J/K) of every grid cell, layer by layer."""
        nx, ny = self.steady.nx, self.steady.ny
        dx = self.steady.spreader_w_mm * 1e-3 / nx
        dy = self.steady.spreader_h_mm * 1e-3 / ny
        caps = []
        for layer in self.steady.stack.layers:
            volume = dx * dy * layer.thickness_m
            caps.append(np.full(ny * nx, layer.material.heat_capacity_j_m3k * volume))
        return np.concatenate(caps)

    # ------------------------------------------------------------------ #

    def _stack_power(self, grids: Sequence[np.ndarray]) -> np.ndarray:
        """Ravel per-die chip grids in ``_chip_cells`` order (validated)."""
        parts = []
        for die, _layer in self._die_order:
            grid = np.asarray(grids[die])
            if grid.shape != self._chip_shape:
                raise ValueError(
                    f"power grid shape {grid.shape} != chip grid {self._chip_shape}"
                )
            parts.append(grid.ravel())
        return np.concatenate(parts)

    def run(
        self,
        power_fn: ScheduleLike,
        duration_s: float,
        initial_k: Optional[float] = None,
    ) -> TransientResult:
        """Integrate one run from a uniform initial temperature.

        ``power_fn(t)`` returns the per-die chip power grids (at the
        steady solver's :meth:`~ThermalSolver.chip_grid_shape`) at time t.
        A :class:`PowerSchedule` is also accepted.  Delegates to the
        batched path with K=1; :meth:`run_reference` keeps the original
        scalar loop.
        """
        return self.run_many([power_fn], duration_s, initial_k=initial_k)[0]

    def run_many(
        self,
        schedules: Sequence[ScheduleLike],
        duration_s: float,
        initial_k: Optional[float] = None,
    ) -> List[TransientResult]:
        """Step K runs in lock-step through the shared factorization.

        Each step assembles one ``(n, K)`` RHS matrix — power scattered
        through the precomputed chip-cell indices, then the convective
        ambient term, then the ``(C/dt) * T`` history term, in
        exactly the scalar loop's addition order — and back-substitutes
        all K columns in a single SuperLU call.  RHS assembly is exactly
        the scalar loop's; results match :meth:`run_reference` to within
        the backsolve kernel's column-order rounding (byte-identical on
        the reference workloads, pinned in tests).
        """
        if not schedules:
            return []
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        scheds = [
            s if isinstance(s, PowerSchedule) else _CallableSchedule(s)
            for s in schedules
        ]
        steady = self.steady
        nx, ny = steady.nx, steady.ny
        layers = steady.stack.layers
        n = len(layers) * ny * nx
        ambient = steady.stack.ambient_k
        start = initial_k if initial_k is not None else ambient
        kruns = len(scheds)
        temps = np.full((n, kruns), start, dtype=float)
        prev_peak = np.full(kruns, float(start))

        times: List[float] = []
        steps = max(1, int(round(duration_s / self.dt_s)))
        peaks = np.empty((steps, kruns))
        conv = steady._conv_per_cell
        chip_cells = self._chip_cells
        die_cells = self._die_cells
        for step in range(1, steps + 1):
            t = step * self.dt_s
            rhs = np.zeros((n, kruns))
            for k, sched in enumerate(scheds):
                grids = sched.power_grids(t, float(prev_peak[k]))
                rhs[chip_cells, k] = self._stack_power(grids)
            rhs[: ny * nx, :] += conv * ambient
            rhs += self._cap_over_dt[:, None] * temps
            temps = np.asarray(self._step_solve(rhs))
            if temps.ndim == 1:
                temps = temps[:, None]
            times.append(t)
            prev_peak = np.maximum.reduce(temps[die_cells, :], axis=0)
            peaks[step - 1] = prev_peak

        results = []
        for k in range(kruns):
            final = [
                temps[l * ny * nx:(l + 1) * ny * nx, k].reshape(ny, nx)
                for l in range(len(layers))
            ]
            results.append(
                TransientResult(
                    times_s=list(times),
                    peak_k=[float(p) for p in peaks[:, k]],
                    final_layer_temps=final,
                )
            )
        return results

    def run_reference(
        self,
        power_fn: ScheduleLike,
        duration_s: float,
        initial_k: Optional[float] = None,
    ) -> TransientResult:
        """Ground-truth scalar loop (per-step embed, per-run solve).

        Kept verbatim from the original implementation so the batched
        path can be pinned byte-identical against it.
        """
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        sched = (
            power_fn
            if isinstance(power_fn, PowerSchedule)
            else _CallableSchedule(power_fn)
        )
        steady = self.steady
        nx, ny = steady.nx, steady.ny
        layers = steady.stack.layers
        n = len(layers) * ny * nx
        ambient = steady.stack.ambient_k
        temps = np.full(n, initial_k if initial_k is not None else ambient)
        prev_peak = float(initial_k if initial_k is not None else ambient)

        die_layers = steady._die_layer_map

        times: List[float] = []
        peaks: List[float] = []
        steps = max(1, int(round(duration_s / self.dt_s)))
        conv = steady._conv_per_cell
        for step in range(1, steps + 1):
            t = step * self.dt_s
            grids = sched.power_grids(t, prev_peak)
            rhs = np.zeros(n)
            for die, layer_index in die_layers.items():
                full = steady._embed(np.asarray(grids[die]))
                rhs[layer_index * ny * nx:(layer_index + 1) * ny * nx] += full.ravel()
            rhs[: ny * nx] += conv * ambient
            rhs += self._cap_over_dt * temps
            temps = self._step_solve(rhs)
            times.append(t)
            die_peak = max(
                temps[l * ny * nx:(l + 1) * ny * nx].max()
                for l in die_layers.values()
            )
            prev_peak = float(die_peak)
            peaks.append(prev_peak)

        final = [
            temps[l * ny * nx:(l + 1) * ny * nx].reshape(ny, nx)
            for l in range(len(layers))
        ]
        return TransientResult(times_s=times, peak_k=peaks, final_layer_temps=final)
