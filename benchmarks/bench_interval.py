"""Microbenchmark of the interval power/thermal co-simulation engine.

Two stages are timed on the fast-report workload:

* **extraction** — interval power traces for all six configurations of
  the reference benchmark (capture-armed columnar simulation, vectorized
  binning, per-interval power evaluation and rasterization), reported as
  intervals/s;
* **stepping** — a DTM policy sweep: the extracted traces drive K short
  transient runs per stack.  The batched engine (``run_many``) pays one
  step-matrix factorization per stack and one multi-RHS backsolve per
  step for all K columns; the scalar per-run loop (``run_reference``)
  runs each sweep point as a standalone transient, paying its own
  step-matrix factorization plus one backsolve per run per step.  Both
  are reported as steps/s.  Warm stepping-only passes (both paths
  reusing an already-cached factorization, isolating pure multi-RHS
  amortization) are also recorded for transparency.

The batched peak-temperature series are asserted exactly equal to the
scalar ones, final layer temps equal to within SuperLU's blocked
multi-RHS backsolve rounding (column-order accumulation in the nrhs>1
kernel can differ from per-column solves by ~1e-13 K on large grids;
the deterministic small-grid workloads in
``tests/thermal/test_batched_transient.py`` pin exact equality).  The
batched/cold-scalar throughput ratio is asserted >= 3x.  Emits a
``BENCH_interval.json`` payload that CI records next to
``BENCH_report.json`` and gates against
``benchmarks/baselines/interval_engine.json`` (extraction and batched
stepping throughput; the speedup ratio is machine-independent and
asserted here, not gated there).

Usage::

    PYTHONPATH=src python benchmarks/bench_interval.py [--out BENCH_interval.json]
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.experiments.context import (
    CONFIG_STACKS,
    ExperimentContext,
    ExperimentSettings,
)
from repro.experiments.interval import IntervalPowerSchedule, extract_interval_trace
from repro.thermal.solver import clear_factorization_cache
from repro.thermal.transient import (
    STEP_FACTORIZATION_STATS,
    TransientThermalSolver,
    clear_step_cache,
)

#: Mirrors ``repro.cli.FAST_SETTINGS`` fidelity (single benchmark).
SETTINGS = ExperimentSettings(
    trace_length=8_000,
    warmup=2_500,
    benchmarks=("mpeg2",),
    thermal_grid=48,
)
INTERVAL_INSTS = 2_000
#: Sweep points (transient runs) per stack in the stepping passes.
RUNS_PER_STACK = 8
DT_S = 20e-3
DURATION_S = 0.4

#: Tolerance for final layer temps between batched and per-column
#: backsolves: SuperLU's blocked nrhs>1 kernel reorders accumulation
#: relative to single-column solves (observed <= 2e-13 K at grid 48).
FINAL_TEMP_ATOL = 1e-9


def _schedule_sets(traces):
    """K throttle-policy variants per stack from one trace per stack."""
    per_stack = {}
    for label, trace in traces.items():
        per_stack.setdefault(CONFIG_STACKS[label], trace)
    return {
        stack: [
            IntervalPowerSchedule(trace, pass_s=0.5 + 0.1 * k)
            for k in range(RUNS_PER_STACK)
        ]
        for stack, trace in per_stack.items()
    }


def _check_identical(batched, scalar):
    worst = 0.0
    for stack, results in batched.items():
        for a, b in zip(results, scalar[stack]):
            assert a.times_s == b.times_s
            assert a.peak_k == b.peak_k, "batched peak series diverged"
            for x, y in zip(a.final_layer_temps, b.final_layer_temps):
                assert np.allclose(x, y, rtol=0.0, atol=FINAL_TEMP_ATOL), (
                    "batched final temps diverged beyond backsolve rounding"
                )
                worst = max(worst, float(np.abs(x - y).max()))
    return worst


def run(out_path: str) -> dict:
    context = ExperimentContext(SETTINGS, jobs=1, cache=None)
    context.power_model()  # calibrate outside the timed window

    clear_factorization_cache()
    t0 = time.perf_counter()
    traces = {
        label: extract_interval_trace(context, "mpeg2", label, INTERVAL_INSTS)
        for label in context.configs
    }
    t_extract = time.perf_counter() - t0
    intervals = sum(len(trace) for trace in traces.values())

    schedule_sets = _schedule_sets(traces)
    steps_per_run = int(round(DURATION_S / DT_S))
    steps = steps_per_run * RUNS_PER_STACK * len(schedule_sets)

    # Untimed warm-up: first-touch allocations (multi-RHS work arrays,
    # factor pages) land outside the timed windows for both paths.
    for stack, schedules in schedule_sets.items():
        warm = TransientThermalSolver(context.solver(stack), dt_s=DT_S)
        warm.run_many(schedules[:2], 2 * DT_S)
        warm.run_reference(schedules[0], 2 * DT_S)

    # Batched engine: one factorization per stack, one multi-RHS
    # backsolve per step for all K sweep points.
    clear_step_cache()
    t0 = time.perf_counter()
    batched = {
        stack: TransientThermalSolver(
            context.solver(stack), dt_s=DT_S
        ).run_many(schedules, DURATION_S)
        for stack, schedules in schedule_sets.items()
    }
    t_batched = time.perf_counter() - t0
    step_factorizations = STEP_FACTORIZATION_STATS.factorizations

    # Scalar per-run loop: each sweep point is a standalone transient
    # paying its own step-matrix factorization plus per-step backsolves.
    t0 = time.perf_counter()
    scalar = {}
    for stack, schedules in schedule_sets.items():
        runs = []
        for schedule in schedules:
            clear_step_cache()
            runs.append(TransientThermalSolver(
                context.solver(stack), dt_s=DT_S
            ).run_reference(schedule, DURATION_S))
        scalar[stack] = runs
    t_scalar = time.perf_counter() - t0

    # Warm stepping-only passes: both paths reuse an already-cached
    # factorization, isolating the pure per-step multi-RHS amortization
    # from the factorization sharing — recorded for transparency.
    clear_step_cache()
    warm_solvers = {
        stack: TransientThermalSolver(context.solver(stack), dt_s=DT_S)
        for stack in schedule_sets
    }
    t0 = time.perf_counter()
    for stack, schedules in schedule_sets.items():
        warm_solvers[stack].run_many(schedules, DURATION_S)
    t_batched_warm = time.perf_counter() - t0
    t0 = time.perf_counter()
    for stack, schedules in schedule_sets.items():
        for schedule in schedules:
            warm_solvers[stack].run_reference(schedule, DURATION_S)
    t_scalar_warm = time.perf_counter() - t0

    final_temp_diff = _check_identical(batched, scalar)

    speedup = t_scalar / t_batched
    assert speedup >= 3.0, (
        f"batched stepping only {speedup:.2f}x scalar (expected >= 3x)"
    )

    payload = {
        "workload": {
            "benchmark": "mpeg2",
            "configs": len(traces),
            "interval_insts": INTERVAL_INSTS,
            "grid": SETTINGS.thermal_grid,
            "runs_per_stack": RUNS_PER_STACK,
            "dt_ms": DT_S * 1e3,
            "duration_s": DURATION_S,
        },
        "stage_seconds": {
            "extract": round(t_extract, 3),
            "step_batched": round(t_batched, 3),
            "step_scalar": round(t_scalar, 3),
            "step_batched_warm": round(t_batched_warm, 3),
            "step_scalar_warm": round(t_scalar_warm, 3),
        },
        "factorizations_in_window": {
            "batched": step_factorizations,
            "scalar": RUNS_PER_STACK * len(schedule_sets),
            "warm": 0,
        },
        "intervals": intervals,
        "intervals_per_second": round(intervals / t_extract, 3),
        "steps": steps,
        "steps_per_second_batched": round(steps / t_batched, 1),
        "steps_per_second_scalar": round(steps / t_scalar, 1),
        "steps_per_second_batched_warm": round(steps / t_batched_warm, 1),
        "steps_per_second_scalar_warm": round(steps / t_scalar_warm, 1),
        "batched_speedup": round(speedup, 2),
        "multi_rhs_speedup_warm": round(t_scalar_warm / t_batched_warm, 2),
        "step_factorizations": step_factorizations,
        "peak_series_identical": True,
        "final_temp_max_abs_diff_k": final_temp_diff,
    }
    with open(out_path, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, indent=2)
        stream.write("\n")
    return payload


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_interval.json",
                        help="output JSON path (default: %(default)s)")
    args = parser.parse_args()
    payload = run(args.out)
    stages = payload["stage_seconds"]
    print(f"interval: {payload['intervals']} intervals extracted in "
          f"{stages['extract']}s ({payload['intervals_per_second']}/s)")
    print(f"stepping: {payload['steps']} steps, batched {stages['step_batched']}s "
          f"vs per-run scalar {stages['step_scalar']}s "
          f"({payload['batched_speedup']}x; warm stepping-only "
          f"{stages['step_batched_warm']}s vs {stages['step_scalar_warm']}s, "
          f"{payload['multi_rhs_speedup_warm']}x)")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
