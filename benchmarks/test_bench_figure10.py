"""Figure 10: thermal maps of the three processors.

Paper targets: 2D worst case 360 K at the scheduler; 3D without herding
+17 K; 3D with Thermal Herding +12 K (29% of the increase removed); with
a fixed app the ROB can end up cooler than planar.
"""

from benchmarks.conftest import emit
from repro.experiments import run_figure10


def test_bench_figure10(benchmark, context):
    result = benchmark.pedantic(run_figure10, args=(context,), rounds=1, iterations=1)

    lines = [result.format()]
    for label in ("Base", "3D-noTH", "3D"):
        _, thermal = result.worst_case[label]
        lines.append(f"\nhottest blocks, {label}:")
        lines.append(thermal.format_hotspots(5))
    emit("Figure 10 — thermals", "\n".join(lines))

    # Temperature ordering and magnitudes (shape).
    assert 340.0 <= result.peak_2d <= 385.0
    assert 5.0 <= result.delta_herding <= 30.0
    assert result.delta_herding < result.delta_no_herding <= 60.0
    assert 0.15 <= result.herding_delta_reduction <= 0.75

    # The planar hotspot is the instruction scheduler (allow its immediate
    # floorplan neighbours at coarse grid resolutions — the paper's map is
    # block-level and the scheduler/rename/RF row forms one hot region).
    name, _die, _t = result.worst_case["Base"][1].hottest_block()
    block = name.split(".")[-1]
    assert block in ("scheduler", "rename", "register_file"), name
