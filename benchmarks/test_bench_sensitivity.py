"""Extension bench: packaging-parameter sensitivity of the thermal result.

Shows which Section 4 assumption the +12 K Thermal Herding conclusion
leans on hardest (the phase-change TIM, by a wide margin).
"""

from benchmarks.conftest import emit
from repro.experiments.sensitivity import run_sensitivity
from repro.experiments.stacking_order import run_stacking_order


def test_bench_sensitivity(benchmark, context):
    result = benchmark.pedantic(run_sensitivity, args=(context,), rounds=1, iterations=1)
    stacking = run_stacking_order(context)
    emit("Extension — thermal sensitivity",
         result.format() + "\n\n" + stacking.format())

    assert result.spread("TIM W/mK") > result.spread("via copper fraction")
    assert stacking.penalty_k > 0
