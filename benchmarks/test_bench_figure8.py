"""Figure 8: IPC / IPns / speedup for Base, TH, Pipe, Fast, and 3D.

Paper targets: mean speedup 1.47 (min 1.07 mcf, max 1.77 patricia);
SPECfp is the lowest class (+29.5%); Fast alone loses IPC, Pipe alone
gains a little, TH alone is almost free.
"""

from benchmarks.conftest import emit
from repro.experiments import run_figure8


def test_bench_figure8(benchmark, context):
    result = benchmark.pedantic(run_figure8, args=(context,), rounds=1, iterations=1)

    lines = [result.format(), "", "per-benchmark speedups:"]
    for name, speedup in sorted(result.speedup.items(), key=lambda kv: kv[1]):
        lines.append(f"  {name:<10s} {speedup:5.2f}x")
    emit("Figure 8 — performance", "\n".join(lines))

    # Shape assertions (the paper's qualitative structure).
    assert 1.15 <= result.mean_of_means_speedup <= 1.60
    assert result.min_speedup >= 1.00
    assert result.max_speedup <= 1.90

    if "SPECfp2000" in result.class_speedup:
        others = [v for k, v in result.class_speedup.items() if k != "SPECfp2000"]
        assert result.class_speedup["SPECfp2000"] <= min(others) + 0.05

    for name in result.ipc:
        assert result.ipc[name]["Fast"] <= result.ipc[name]["Base"] + 1e-9
        assert result.ipc[name]["Pipe"] >= result.ipc[name]["Base"] - 1e-9
        assert result.ipc[name]["TH"] >= 0.93 * result.ipc[name]["Base"]
