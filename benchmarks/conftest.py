"""Shared state for the benchmark harness.

One :class:`ExperimentContext` is shared by every benchmark so that
simulation runs are performed once per session regardless of how many
figures consume them.  ``REPRO_BENCH_FAST=1`` shrinks the workload set
for quick shape checks.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentContext, ExperimentSettings

FULL_SETTINGS = ExperimentSettings(
    trace_length=20_000,
    warmup=6_000,
    benchmarks=None,        # the whole 24-benchmark suite
    thermal_grid=64,
)

FAST_SETTINGS = ExperimentSettings(
    trace_length=8_000,
    warmup=2_500,
    benchmarks=("mpeg2", "mcf", "susan", "yacr2", "swim", "adpcm"),
    thermal_grid=48,
)


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    fast = os.environ.get("REPRO_BENCH_FAST") == "1"
    return ExperimentContext(FAST_SETTINGS if fast else FULL_SETTINGS)


def emit(title: str, body: str) -> None:
    """Print a paper-style results block (visible with pytest -s)."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n", flush=True)
