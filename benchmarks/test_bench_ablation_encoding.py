"""Ablation: 2-bit partial-value encoding vs 1-bit memoization (Section 3.6).

The paper broadens "low width" for the data cache with a 2-bit encoding
(zeros / ones / same-as-address / literal).  Against a 1-bit all-zeros
memoization, the 2-bit scheme should herd more loads and suffer fewer
width-misprediction stalls, especially on pointer-heavy workloads.
"""

from dataclasses import replace

from benchmarks.conftest import emit
from repro.core.dcache_encoding import EncodingScheme
from repro.cpu.pipeline import simulate

ABLATION_BENCHMARKS = ("mpeg2", "yacr2", "mcf")


def test_bench_ablation_encoding(benchmark, context):
    def run_both():
        out = {}
        for scheme in EncodingScheme:
            config = replace(context.configs["3D"], dcache_encoding=scheme)
            out[scheme] = {
                name: simulate(context.trace(name), config,
                               warmup=context.settings.warmup)
                for name in ABLATION_BENCHMARKS
            }
        return out

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    lines = [f"{'benchmark':<10s} {'scheme':<8s} {'herded loads':>13s} {'width stalls':>13s}"]
    for name in ABLATION_BENCHMARKS:
        for scheme in EncodingScheme:
            r = results[scheme][name]
            lines.append(
                f"{name:<10s} {scheme.value:<8s} "
                f"{r.herding['dcache_herded_loads']:13.1%} "
                f"{r.stalls.dcache_width_stalls:13d}"
            )
    emit("Ablation — L1D upper-bit encoding", "\n".join(lines))

    for name in ABLATION_BENCHMARKS:
        two = results[EncodingScheme.TWO_BIT][name]
        one = results[EncodingScheme.ONE_BIT][name]
        assert (two.herding["dcache_herded_loads"]
                >= one.herding["dcache_herded_loads"]), name
    # Pointer chasing gains the most from the SAME_AS_ADDRESS encoding.
    gain = (results[EncodingScheme.TWO_BIT]["yacr2"].herding["dcache_herded_loads"]
            - results[EncodingScheme.ONE_BIT]["yacr2"].herding["dcache_herded_loads"])
    assert gain > 0.02
