"""Ablation: dynamic vs profile-static vs oracle width prediction.

The paper's dynamic two-bit predictor is compared against a
profile-based static hint (the simpler alternative in the prior work it
builds on) and a perfect oracle (the upper bound): the dynamic scheme
should be close to the oracle's herding with only a small stall cost.
"""

from dataclasses import replace

from benchmarks.conftest import emit
from repro.cpu.config import WidthPredictorKind
from repro.cpu.pipeline import simulate

ABLATION_BENCHMARKS = ("mpeg2", "crafty", "yacr2")


def test_bench_ablation_width_kind(benchmark, context):
    def run_all():
        out = {}
        for kind in WidthPredictorKind:
            config = replace(context.configs["3D"], width_predictor_kind=kind)
            out[kind] = {
                name: simulate(context.trace(name), config,
                               warmup=context.settings.warmup)
                for name in ABLATION_BENCHMARKS
            }
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [f"{'benchmark':<10s} {'kind':<8s} {'accuracy':>9s} {'stalls':>7s} {'RF herd':>8s}"]
    for name in ABLATION_BENCHMARKS:
        for kind in WidthPredictorKind:
            r = results[kind][name]
            rf = r.activity.module("register_file").herded_fraction
            lines.append(
                f"{name:<10s} {kind.value:<8s} {r.width_stats.accuracy:9.2%} "
                f"{r.stalls.total:7d} {rf:8.1%}"
            )
    emit("Ablation — width predictor kind", "\n".join(lines))

    for name in ABLATION_BENCHMARKS:
        oracle = results[WidthPredictorKind.ORACLE][name]
        dynamic = results[WidthPredictorKind.DYNAMIC][name]
        assert oracle.width_stats.accuracy == 1.0
        assert oracle.stalls.total == 0
        # Dynamic prediction approaches the oracle's herding quality.
        oracle_rf = oracle.activity.module("register_file").herded_fraction
        dynamic_rf = dynamic.activity.module("register_file").herded_fraction
        assert dynamic_rf >= oracle_rf - 0.10, name
        assert dynamic.width_stats.accuracy > 0.90, name
