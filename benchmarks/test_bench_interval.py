"""Extension bench: interval power/thermal co-simulation with DTM.

Interval power traces drive temperature-reactive throttling scenarios
through the batched transient engine.  Thermal herding keeps the 3D
stack under the ceiling with less throttling than the same stack
without herding — the paper's DTM argument, played forward in time.
"""

from benchmarks.conftest import emit
from repro.experiments.interval import run_interval


def test_bench_interval(benchmark, context):
    result = benchmark.pedantic(
        run_interval, args=(context,),
        rounds=1, iterations=1,
    )
    emit("Extension — interval power/thermal co-simulation", result.format())

    for row in result.rows:
        assert row.throttled_peak_k <= row.free_peak_k
        assert 0.0 <= row.throttle_duty <= 1.0
    assert (
        result.row("3D").throttle_duty
        <= result.row("3D-noTH").throttle_duty
    )
