"""Microbenchmark of the thermal solve engine over the report geometry set.

Times the SuperLU-dominated thermal stage a cold ``repro report --fast``
pays: the two standard packaging geometries (planar, 3D stack) plus the
distinct sensitivity-sweep geometries, each factorized and solved once at
the fast-report grid.  Three passes are measured — serial in-process
(cold LRU), the parallel geometry fan-out across the worker pool, and a
warm in-process rerun (backsubstitution only) — and the parallel results
are asserted bit-identical to the serial ones.  Emits a
``BENCH_thermal.json`` payload that CI records next to
``BENCH_report.json`` and gates against
``benchmarks/baselines/thermal_solve.json`` (serial factorization
throughput, the machine-size-independent metric; the parallel speedup is
recorded for trend lines but not gated, because it scales with cores).

Usage::

    PYTHONPATH=src python benchmarks/bench_thermal.py [--out BENCH_thermal.json] [--jobs N]
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.experiments.context import CORE_COUNT, ExperimentContext
from repro.experiments.sensitivity import SWEEPS, _stack_with
from repro.floorplan import planar_floorplan, stacked_floorplan
from repro.thermal.solver import (
    FACTORIZATION_STATS,
    ThermalSolver,
    clear_factorization_cache,
)
from repro.thermal.stack import planar_stack, stacked_3d_stack

#: The fast-report thermal resolution (mirrors ``repro.cli.FAST_SETTINGS``).
GRID = 48

#: Per-cell power density of the synthetic uniform workload, W.
CELL_WATTS = 0.02


def _geometry_set():
    """One solver per distinct geometry the fast report solves."""
    plan2d = planar_floorplan(CORE_COUNT)
    plan3d = stacked_floorplan(CORE_COUNT)
    solvers = [
        ThermalSolver(planar_stack(), plan2d, GRID, GRID),
        ThermalSolver(stacked_3d_stack(), plan3d, GRID, GRID),
    ]
    seen = {solver.matrix_key() for solver in solvers}
    for parameter, _nominal, values in SWEEPS:
        for value in values:
            convection = value if parameter == "convection K/W" else 0.17
            tim = value if parameter == "TIM W/mK" else 50.0
            copper = value if parameter == "via copper fraction" else 0.25
            solver = ThermalSolver(_stack_with(convection, tim, copper),
                                   plan3d, GRID, GRID)
            if solver.matrix_key() in seen:
                continue
            seen.add(solver.matrix_key())
            solvers.append(solver)
    return solvers


def _grids(solver: ThermalSolver):
    ny, nx = solver.chip_grid_shape()
    return [np.full((ny, nx), CELL_WATTS) for _ in range(solver.floorplan.dies)]


def _same(a, b) -> bool:
    return a.block_peak == b.block_peak and all(
        np.array_equal(x, y) for x, y in zip(a.layer_temps, b.layer_temps)
    )


def run(out_path: str, jobs: int) -> dict:
    solvers = _geometry_set()
    groups = [(solver, [_grids(solver)]) for solver in solvers]
    cells = [
        len(solver.stack.layers) * solver.ny * solver.nx for solver in solvers
    ]

    clear_factorization_cache()
    t0 = time.perf_counter()
    serial = [solver.solve_many(batches) for solver, batches in groups]
    t_serial = time.perf_counter() - t0
    factorizations = FACTORIZATION_STATS.factorizations

    t0 = time.perf_counter()
    for solver, batches in groups:
        solver.solve_many(batches)
    t_warm = time.perf_counter() - t0

    context = ExperimentContext(jobs=jobs, cache=None)
    clear_factorization_cache()  # make the fan-out do cold factorizations
    t0 = time.perf_counter()
    parallel = context.solve_thermal_groups(groups)
    t_parallel = time.perf_counter() - t0

    for serial_group, parallel_group in zip(serial, parallel):
        for a, b in zip(serial_group, parallel_group):
            assert _same(a, b), "parallel thermal result diverged from serial"

    payload = {
        "workload": {
            "geometries": len(solvers),
            "grid": GRID,
            "cells_min": min(cells),
            "cells_max": max(cells),
            "rhs_per_geometry": 1,
            "jobs": context.jobs,
        },
        "stage_seconds": {
            "serial_cold": round(t_serial, 3),
            "parallel_cold": round(t_parallel, 3),
            "serial_warm": round(t_warm, 3),
        },
        "factorizations": factorizations,
        "factorizations_per_second": round(factorizations / t_serial, 3),
        "parallel_speedup": round(t_serial / t_parallel, 2),
        "worker_groups": context.stats.thermal_worker_groups,
        "worker_factorizations": context.stats.thermal_worker_factorizations,
        "byte_identical": True,
    }
    with open(out_path, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, indent=2)
        stream.write("\n")
    return payload


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_thermal.json",
                        help="output JSON path (default: %(default)s)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for the parallel pass "
                             "(default: REPRO_JOBS or the CPU count)")
    args = parser.parse_args()
    payload = run(args.out, args.jobs)
    stages = payload["stage_seconds"]
    print(f"thermal: {payload['workload']['geometries']} geometries, "
          f"serial {stages['serial_cold']}s  "
          f"parallel {stages['parallel_cold']}s "
          f"({payload['parallel_speedup']}x on {payload['workload']['jobs']} jobs)  "
          f"warm {stages['serial_warm']}s")
    print(f"{payload['factorizations_per_second']} factorizations/s serial, "
          f"parallel results bit-identical")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
