"""Extension bench: heterogeneous core pairing on the 3D chip.

Pairing the hot compute-bound app with a memory-bound app lowers the
chip's worst-case temperature versus two hot instances — thermal-aware
scheduling on top of microarchitectural herding.
"""

from benchmarks.conftest import emit
from repro.experiments.pairing import run_pairing


def test_bench_pairing(benchmark, context):
    result = benchmark.pedantic(run_pairing, args=(context,), rounds=1, iterations=1)
    emit("Extension — heterogeneous core pairing", result.format())

    pairs = result.by_pair()
    assert pairs[("mpeg2", "mpeg2")].peak_k > pairs[("mpeg2", "mcf")].peak_k
    assert pairs[("mpeg2", "mcf")].peak_k > pairs[("mcf", "mcf")].peak_k
