"""Figure 9: total power of the three processors.

Paper targets: 90 W planar -> 72.7 W (-19%) 3D without herding ->
64.3 W (-29%) with Thermal Herding; per-app savings 15% (yacr2) to
30% (susan).
"""

from benchmarks.conftest import emit
from repro.experiments import run_figure9


def test_bench_figure9(benchmark, context):
    result = benchmark.pedantic(run_figure9, args=(context,), rounds=1, iterations=1)

    lines = [result.format(), "", "per-module power (mpeg2, per core):"]
    for label, breakdown in (("planar", result.base), ("3D-TH", result.herding)):
        top = sorted(breakdown.modules.items(), key=lambda kv: -kv[1].watts)[:6]
        row = ", ".join(f"{n}={m.watts:.2f}W" for n, m in top)
        lines.append(f"  {label}: {row}")
    emit("Figure 9 — power", "\n".join(lines))

    assert abs(result.base_chip_watts - 90.0) < 0.5
    assert 0.10 <= result.no_herding_saving <= 0.30
    assert 0.20 <= result.herding_saving <= 0.40
    assert result.herding_saving > result.no_herding_saving

    _, min_saving = result.min_saving
    _, max_saving = result.max_saving
    assert 0.05 <= min_saving <= max_saving <= 0.45
