"""Extension bench: 3D frequency benefit across technology nodes.

Section 1 motivates 3D with wires scaling worse than gates; the benefit
of removing wires should therefore *grow* at smaller nodes.
"""

from benchmarks.conftest import emit
from repro.circuits.scaling import run_scaling


def test_bench_scaling(benchmark):
    result = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    emit("Extension — technology scaling of the 3D benefit", result.format())

    gains = result.gain_by_node()
    assert gains[45.0] > gains[65.0] > gains[90.0]
    assert 0.40 <= gains[65.0] <= 0.55
