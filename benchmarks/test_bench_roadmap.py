"""Extension bench: the Figure 2 adoption roadmap (Section 2.2).

Stacked caches alone (stages b/c) capture only a modest slice of what
full 3D cores (stage d) deliver — the paper's motivation for moving the
cores themselves into the third dimension.
"""

from benchmarks.conftest import emit
from repro.experiments.roadmap import STAGES, run_roadmap


def test_bench_roadmap(benchmark, context):
    result = benchmark.pedantic(run_roadmap, args=(context,), rounds=1, iterations=1)
    emit("Extension — Figure 2 roadmap", result.format())

    assert result.speedup["planar"] == 1.0
    # Monotone improvement along the roadmap.
    order = [result.speedup[stage] for stage in STAGES]
    assert all(b >= a - 1e-9 for a, b in zip(order, order[1:]))
    # Full 3D cores dominate the cache-only stages decisively.
    assert result.speedup["3d-cores"] - 1.0 > 2 * (result.speedup["stacked-cache+"] - 1.0)
