"""Section 3.8: width prediction accuracy and herding effectiveness.

Paper target: 97% of all fetched instructions have their widths
correctly predicted.
"""

from benchmarks.conftest import emit
from repro.experiments import run_width_stats


def test_bench_width_prediction(benchmark, context):
    result = benchmark.pedantic(run_width_stats, args=(context,), rounds=1, iterations=1)
    emit("Section 3.8 — width prediction", result.format())

    assert result.mean_all_inst_accuracy >= 0.94
    for name, accuracy in result.all_inst_accuracy.items():
        assert accuracy >= 0.88, name

    # Herding metrics: loads herded in the D-cache, PAM herding present.
    assert result.mean_herding("dcache_herded_loads") >= 0.30
    assert result.mean_herding("pam_herded") >= 0.15
    assert result.mean_herding("scheduler_dies_per_broadcast") <= 2.5
