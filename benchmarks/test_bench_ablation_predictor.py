"""Ablation: width predictor table size and counter width (Section 3).

The paper uses a simple PC-indexed two-bit counter table.  This sweep
shows accuracy saturates quickly with table size (static width behaviour
is highly stable) and that two bits of hysteresis beat one.
"""

from dataclasses import replace

from benchmarks.conftest import emit
from repro.cpu.pipeline import simulate

SWEEP_BENCHMARK = "crafty"
TABLE_SIZES = (256, 1024, 4096)
COUNTER_BITS = (1, 2, 3)


def test_bench_ablation_predictor(benchmark, context):
    def run_sweep():
        out = {}
        for entries in TABLE_SIZES:
            for bits in COUNTER_BITS:
                config = replace(
                    context.configs["TH"],
                    width_predictor_entries=entries,
                    width_counter_bits=bits,
                )
                out[(entries, bits)] = simulate(
                    context.trace(SWEEP_BENCHMARK), config,
                    warmup=context.settings.warmup,
                )
        return out

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    lines = [f"{'entries':>8s} {'bits':>5s} {'accuracy':>9s} {'unsafe':>7s} {'stalls':>7s}"]
    for (entries, bits), result in sorted(results.items()):
        stats = result.width_stats
        lines.append(
            f"{entries:8d} {bits:5d} {stats.accuracy:9.2%} "
            f"{stats.unsafe_mispredictions:7d} {result.stalls.total:7d}"
        )
    emit(f"Ablation — width predictor sweep ({SWEEP_BENCHMARK})", "\n".join(lines))

    for result in results.values():
        assert result.width_stats.accuracy > 0.80

    # Bigger tables never hurt (less aliasing).
    for bits in COUNTER_BITS:
        small = results[(256, bits)].width_stats.accuracy
        large = results[(4096, bits)].width_stats.accuracy
        assert large >= small - 0.02
