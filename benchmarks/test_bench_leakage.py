"""Extension bench: electro-thermal leakage coupling.

The paper holds leakage flat at 20 % of the baseline.  Coupling leakage
to temperature (doubling every ~24 K) shows the hidden dividend of
Thermal Herding: the no-herding 3D stack's leakage inflates well past
its budget while the herded design stays essentially on budget.
"""

from benchmarks.conftest import emit
from repro.experiments.leakage import run_leakage_feedback


def test_bench_leakage(benchmark, context):
    result = benchmark.pedantic(
        run_leakage_feedback, args=(context,), rounds=1, iterations=1
    )
    emit("Extension — leakage-temperature feedback", result.format())

    assert result.outcomes["3D-noTH"][2] > result.outcomes["3D"][2]
    assert result.outcomes["3D"][2] < 1.5
