"""Microbenchmark of the result cache's sharded size ledger.

Times the cache paths a report run pays: store throughput with the
ledger appending a delta per store (unbounded), warm load throughput,
ledger compaction, a full repair scan, and store throughput under a
tight ``REPRO_CACHE_MAX_MB`` cap where every store runs ledger-driven
eviction.  Asserts the ledger invariants while doing so — the ledger
total must equal recursive disk usage exactly after each phase, and the
watermark must hold after the capped phase — so the benchmark doubles
as an exactness gate.  Emits a ``BENCH_cache.json`` payload that CI
records next to ``BENCH_report.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_cache.py [--out BENCH_cache.json]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import shutil
import tempfile
import time

from repro.experiments.cache import LEDGER_SHARDS, ResultCache

#: Stores per phase; payloads are incompressible so sizes are honest.
ENTRIES = 200
PAYLOAD_BYTES = 4096

#: The capped phase's high-water mark: holds ~1/4 of the stores, so the
#: eviction path runs on most of them.
CAP_MB = 256 / 1024


def _exact(cache: ResultCache) -> bool:
    return cache.ledger.total_bytes() == \
        cache.size_bytes() + cache.trace_store().size_bytes()


def run(out_path: str) -> dict:
    workdir = tempfile.mkdtemp(prefix="bench-cache-")
    keys = [hashlib.sha256(f"entry-{i}".encode()).hexdigest()
            for i in range(ENTRIES)]
    payloads = [os.urandom(PAYLOAD_BYTES) for _ in range(ENTRIES)]
    try:
        cache = ResultCache(os.path.join(workdir, "unbounded"))
        t0 = time.perf_counter()
        for key, blob in zip(keys, payloads):
            cache.store(key, blob)
        t_store = time.perf_counter() - t0
        assert _exact(cache), "ledger drifted from du after unbounded stores"

        t0 = time.perf_counter()
        for key in keys:
            assert cache.load(key, expected_type=bytes) is not None
        t_load = time.perf_counter() - t0

        t0 = time.perf_counter()
        compacted = cache.ledger.compact()
        t_compact = time.perf_counter() - t0
        assert _exact(cache), "compaction changed the ledger total"

        t0 = time.perf_counter()
        repaired = cache.repair_ledger()
        t_repair = time.perf_counter() - t0
        assert repaired == cache.size_bytes(), "repair scan disagrees with du"

        capped = ResultCache(os.path.join(workdir, "capped"), max_mb=CAP_MB)
        t0 = time.perf_counter()
        for key, blob in zip(keys, payloads):
            capped.store(key, blob)
        t_capped = time.perf_counter() - t0
        assert _exact(capped), "ledger drifted from du under eviction"
        assert capped.ledger.total_bytes() <= capped.max_bytes, \
            "watermark violated after the capped phase"

        payload = {
            "workload": {
                "entries": ENTRIES,
                "payload_bytes": PAYLOAD_BYTES,
                "cap_bytes": capped.max_bytes,
                "ledger_shards": LEDGER_SHARDS,
            },
            "stage_seconds": {
                "store": round(t_store, 3),
                "load": round(t_load, 3),
                "compact": round(t_compact, 4),
                "repair": round(t_repair, 4),
                "capped_store": round(t_capped, 3),
            },
            "stores_per_second": round(ENTRIES / t_store, 1),
            "loads_per_second": round(ENTRIES / t_load, 1),
            "capped_stores_per_second": round(ENTRIES / t_capped, 1),
            "ledger": {
                "appends": cache.ledger.appends + capped.ledger.appends,
                "compactions": cache.ledger.compactions
                + capped.ledger.compactions,
                "explicit_compaction_ran": bool(compacted),
                "size_evictions": capped.evictions_size,
                "exact_after_every_phase": True,  # the asserts above
                "watermark_holds": True,
            },
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    with open(out_path, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, indent=2)
        stream.write("\n")
    return payload


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_cache.json",
                        help="output JSON path (default: %(default)s)")
    args = parser.parse_args()
    payload = run(args.out)
    stages = payload["stage_seconds"]
    print(f"store {payload['stores_per_second']}/s  "
          f"load {payload['loads_per_second']}/s  "
          f"capped store {payload['capped_stores_per_second']}/s "
          f"({payload['ledger']['size_evictions']} size evictions)")
    print(f"compact {stages['compact']}s  repair {stages['repair']}s  "
          f"ledger exact after every phase")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
