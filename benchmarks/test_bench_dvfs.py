"""Extension bench: frequency-for-temperature trading (Section 5.3).

The paper (citing Black et al.) notes part of the 3D performance gain
can be converted into power/temperature reduction.  The sweep must show
a 3D operating point faster than planar *within* the planar thermal
envelope.
"""

from benchmarks.conftest import emit
from repro.experiments.dvfs import run_dvfs


def test_bench_dvfs(benchmark, context):
    result = benchmark.pedantic(
        run_dvfs, args=(context,), kwargs={"steps": 5}, rounds=1, iterations=1
    )
    emit("Extension — DVFS sweep", result.format())

    watts = [p.chip_watts for p in result.points]
    peaks = [p.peak_k for p in result.points]
    perf = [p.ipns for p in result.points]
    assert watts == sorted(watts)
    assert peaks == sorted(peaks)
    assert perf == sorted(perf)

    best = result.best_within_planar_envelope()
    assert best is not None
    assert best.ipns > 1.1 * result.planar_ipns
