"""Ablation: top-die-first vs round-robin scheduler allocation (Section 3.4).

The herding allocator should confine tag-broadcast activity to the top
die; round-robin spreads it across the stack, losing the thermal benefit
without any performance gain.
"""

from dataclasses import replace

from benchmarks.conftest import emit
from repro.core.scheduler_allocation import AllocationPolicy
from repro.cpu.pipeline import simulate

ABLATION_BENCHMARKS = ("mpeg2", "mcf", "susan")


def _run(context, policy):
    config = replace(context.configs["3D"], scheduler_policy=policy)
    out = {}
    for name in ABLATION_BENCHMARKS:
        result = simulate(context.trace(name), config, warmup=context.settings.warmup)
        out[name] = result
    return out


def test_bench_ablation_scheduler(benchmark, context):
    def run_both():
        return (
            _run(context, AllocationPolicy.TOP_FIRST),
            _run(context, AllocationPolicy.ROUND_ROBIN),
        )

    top_first, round_robin = benchmark.pedantic(run_both, rounds=1, iterations=1)

    lines = [f"{'benchmark':<10s} {'policy':<12s} {'top-die share':>14s} {'IPC':>6s}"]
    for name in ABLATION_BENCHMARKS:
        for label, results in (("top_first", top_first), ("round_robin", round_robin)):
            share = results[name].herding.get("herded::scheduler", 0.0)
            lines.append(f"{name:<10s} {label:<12s} {share:14.1%} {results[name].ipc:6.2f}")
    emit("Ablation — scheduler allocation policy", "\n".join(lines))

    for name in ABLATION_BENCHMARKS:
        top_share = top_first[name].herding.get("herded::scheduler", 0.0)
        rr_share = round_robin[name].herding.get("herded::scheduler", 0.0)
        # Herding concentrates broadcasts on the top die.
        assert top_share > rr_share + 0.2, name
        # The policy is performance neutral.
        assert abs(top_first[name].ipc - round_robin[name].ipc) < 0.02, name
