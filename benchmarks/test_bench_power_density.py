"""Section 5.3: the iso-power, iso-frequency 4x power density experiment.

Paper target: stacking the planar 90 W / 2.66 GHz design into the 3D
footprint raises the worst-case temperature by 58 K (to 418 K) — far
more than the real 3D processor, because the real one's power drops.
"""

from benchmarks.conftest import emit
from repro.experiments import run_figure10, run_power_density


def test_bench_power_density(benchmark, context):
    result = benchmark.pedantic(run_power_density, args=(context,), rounds=1, iterations=1)
    emit("Section 5.3 — iso-power density experiment", result.format())

    assert abs(result.iso_watts - result.planar_watts) < 1e-6
    assert 20.0 <= result.delta_k <= 80.0

    # The iso-power stack must be far hotter than the real 3D processor.
    figure10 = run_figure10(context)
    assert result.delta_k > figure10.delta_herding + 10.0
