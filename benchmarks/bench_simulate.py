"""Microbenchmark of the simulate pipeline: per-stage wall-clock + IPS.

Times the three stages a cold ``repro report --fast`` pays per workload —
trace generation, compilation to columnar form (+ pre-decode), and the
timing simulation itself — over the fast-report workload set (six
benchmarks x the six pinned configurations), single-process.  Emits a
``BENCH_simulate.json`` payload that CI records next to
``BENCH_report.json`` and gates against
``benchmarks/baselines/simulate_ips.json``.

One (benchmark, config) pair is additionally replayed on the reference
object path so the artifact tracks the columnar speedup over time.

Usage::

    PYTHONPATH=src python benchmarks/bench_simulate.py [--out BENCH_simulate.json]
"""

from __future__ import annotations

import argparse
import json
import time

from repro.cpu.pipeline import TimingSimulator
from repro.cpu.predecode import predecode
from repro.experiments.context import _all_configurations
from repro.workloads.suite import generate

#: The fast-report workload set (mirrors ``repro.cli.FAST_SETTINGS``).
BENCHMARKS = ("mpeg2", "mcf", "susan", "yacr2", "swim", "adpcm")
TRACE_LENGTH = 8_000
WARMUP = 2_500

#: The pair replayed on the object path for the speedup trend line.
REFERENCE_PAIR = ("mpeg2", "TH")


def run(out_path: str) -> dict:
    configs = _all_configurations()

    t0 = time.perf_counter()
    traces = {name: generate(name, length=TRACE_LENGTH) for name in BENCHMARKS}
    t_generate = time.perf_counter() - t0

    t0 = time.perf_counter()
    predecoded = {}
    compiled_bytes = 0
    for name, trace in traces.items():
        compiled = trace.compiled()
        assert compiled is not None, f"{name} did not compile"
        compiled_bytes += compiled.nbytes
        predecoded[name] = predecode(compiled)
    t_compile = time.perf_counter() - t0

    simulations = 0
    sample_stalls = None
    t0 = time.perf_counter()
    for name, pre in predecoded.items():
        for label, config in configs.items():
            result = TimingSimulator(config, batched=True).run_compiled(
                pre, warmup=WARMUP
            )
            simulations += 1
            if (name, label) == REFERENCE_PAIR:
                sample_stalls = result.stalls.as_dict()
    t_simulate = time.perf_counter() - t0

    ref_name, ref_label = REFERENCE_PAIR
    t0 = time.perf_counter()
    TimingSimulator(configs[ref_label]).run(traces[ref_name], warmup=WARMUP)
    t_object_pair = time.perf_counter() - t0
    t_columnar_pair = t_simulate / simulations  # mean per simulation

    instructions = simulations * TRACE_LENGTH
    payload = {
        "workload": {
            "benchmarks": list(BENCHMARKS),
            "configs": list(configs),
            "trace_length": TRACE_LENGTH,
            "warmup": WARMUP,
            "jobs": 1,
        },
        "stage_seconds": {
            "generate": round(t_generate, 3),
            "compile": round(t_compile, 3),
            "simulate": round(t_simulate, 3),
        },
        "simulations": simulations,
        "instructions_simulated": instructions,
        "instructions_per_second": round(instructions / t_simulate, 1),
        "compiled_trace_bytes": compiled_bytes,
        "reference_pair": {
            "pair": f"{ref_name}/{ref_label}",
            "object_path_seconds": round(t_object_pair, 3),
            "columnar_mean_seconds": round(t_columnar_pair, 3),
            "speedup": round(t_object_pair / t_columnar_pair, 2),
            "stalls": sample_stalls,
        },
    }
    with open(out_path, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, indent=2)
        stream.write("\n")
    return payload


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_simulate.json",
                        help="output JSON path (default: %(default)s)")
    args = parser.parse_args()
    payload = run(args.out)
    stages = payload["stage_seconds"]
    print(f"generate {stages['generate']}s  compile {stages['compile']}s  "
          f"simulate {stages['simulate']}s "
          f"({payload['simulations']} simulations, "
          f"{payload['instructions_per_second']:,.0f} inst/s)")
    ref = payload["reference_pair"]
    print(f"columnar speedup vs object path on {ref['pair']}: "
          f"{ref['speedup']}x")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
