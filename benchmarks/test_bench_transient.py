"""Extension bench: transient hotspot formation speed.

The 3D stack's thinned dies store less heat per watt, so its hotspots
form faster than the planar chip's — dynamic thermal management must
react sooner on stacked processors.
"""

from benchmarks.conftest import emit
from repro.experiments.transient_response import run_transient_response


def test_bench_transient(benchmark, context):
    result = benchmark.pedantic(
        run_transient_response, args=(context,),
        kwargs={"dt_s": 25e-3, "duration_s": 15.0},
        rounds=1, iterations=1,
    )
    emit("Extension — transient step response", result.format())

    assert result.planar.time_to_90pct_s is not None
    assert result.stacked.time_to_90pct_s is not None
    assert result.stacked.time_to_90pct_s < result.planar.time_to_90pct_s
