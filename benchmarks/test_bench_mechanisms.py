"""Mechanism validation: every Section 3 technique on its own kernel.

Crafted kernels isolate each herding mechanism: the table shows each
producing its own stall/herding signature and nothing else's.
"""

from benchmarks.conftest import emit
from repro.experiments.mechanisms import run_mechanisms


def test_bench_mechanisms(benchmark):
    result = benchmark.pedantic(run_mechanisms, rounds=1, iterations=1)
    emit("Mechanism validation — Section 3 techniques in isolation",
         result.format())

    runs = result.runs
    assert runs["narrow_alu"].stalls.total == 0
    assert runs["width_flip"].stalls.alu_reexecutions >= 10
    assert runs["wide_operands"].stalls.rf_group_stalls >= 1
    assert runs["stack_burst"].herding["pam_herded"] > 0.9
    assert runs["far_branches"].stalls.btb_memoization_stalls >= 20
    assert runs["wide_loads"].stalls.dcache_width_stalls >= 1
