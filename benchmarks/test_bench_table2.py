"""Table 2: 2D vs 3D block latencies and the clock frequency derivation.

Paper targets: wakeup-select -32%, ALU+bypass -36%, clock 2.66 GHz ->
3.93 GHz (+47.9%).
"""

from benchmarks.conftest import emit
from repro.experiments import run_table2


def test_bench_table2(benchmark):
    result = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    emit("Table 2 — block latencies and derived frequencies", result.format())

    assert abs(result.wakeup_improvement - 0.32) < 0.05
    assert abs(result.alu_bypass_improvement - 0.36) < 0.05
    assert abs(result.frequencies.f2d_ghz - 2.66) < 0.10
    assert 0.40 <= result.frequency_gain <= 0.55
