"""Figure 7: floorplans of the planar chip and the 4-die stack.

The 3D stack folds the planar footprint by ~4x with every partitioned
block vertically aligned across dies.
"""

from benchmarks.conftest import emit
from repro.experiments.figure7 import run_figure7


def test_bench_figure7(benchmark):
    result = benchmark.pedantic(run_figure7, rounds=1, iterations=1)
    emit("Figure 7 — floorplans", result.format())

    assert abs(result.footprint_reduction - 4.0) < 0.2
    # The same block list appears on every die of the stack.
    names_die0 = {b.name for b in result.stacked.blocks_on_die(0)}
    for die in range(1, 4):
        assert {b.name for b in result.stacked.blocks_on_die(die)} == names_die0
