"""Mechanism-isolation tests: each kernel triggers exactly its mechanism."""

import pytest

from repro.cpu.config import baseline_config, thermal_herding_config
from repro.cpu.pipeline import simulate
from repro.workloads.microbench import KERNELS, all_kernels


@pytest.fixture(scope="module")
def runs():
    config = thermal_herding_config()
    return {name: simulate(build(), config) for name, build in KERNELS.items()}


class TestKernelStructure:
    def test_all_kernels_build(self):
        for trace in all_kernels():
            assert len(trace) > 50

    def test_kernels_simulate_under_baseline(self):
        for name, build in KERNELS.items():
            result = simulate(build(), baseline_config())
            assert result.instructions == len(build()), name

    def test_committed_paths_sequential(self):
        for trace in all_kernels():
            for a, b in zip(trace, trace.instructions[1:]):
                assert a.next_pc == b.pc, trace.name


class TestNarrowAlu:
    def test_no_stalls(self, runs):
        assert runs["narrow_alu"].stalls.total == 0

    def test_alu_herded(self, runs):
        assert runs["narrow_alu"].activity.module("alu").herded_fraction > 0.9

    def test_accuracy_high(self, runs):
        assert runs["narrow_alu"].width_stats.accuracy > 0.9


class TestWidthFlip:
    def test_predictor_cannot_settle(self, runs):
        assert runs["width_flip"].width_stats.accuracy < 0.7

    def test_reexecutions_triggered(self, runs):
        assert runs["width_flip"].stalls.alu_reexecutions >= 10

    def test_worse_than_narrow(self, runs):
        assert (runs["width_flip"].activity.module("alu").herded_fraction
                < runs["narrow_alu"].activity.module("alu").herded_fraction)


class TestWideOperands:
    def test_rf_stall_happens_then_correction_holds(self, runs):
        """Section 3.1: one unsafe read stalls the group; the in-flight
        prediction correction prevents recurrences at that PC."""
        stalls = runs["wide_operands"].stalls
        assert stalls.rf_group_stalls >= 1
        assert stalls.rf_group_stalls <= 4


class TestPointerChase:
    def test_serialized_ipc(self, runs):
        """Dependent loads commit at most one per L1 latency."""
        result = runs["pointer_chase"]
        assert result.ipc < 1.0

    def test_loads_dominated(self, runs):
        result = runs["pointer_chase"]
        assert result.cache_stats["l1d"].accesses >= 60


class TestStackBurst:
    def test_pam_herds_stack_traffic(self, runs):
        assert runs["stack_burst"].herding["pam_herded"] > 0.9


class TestFarBranches:
    def test_btb_memoization_stalls(self, runs):
        assert runs["far_branches"].stalls.btb_memoization_stalls >= 20

    def test_near_kernels_have_none(self, runs):
        assert runs["narrow_alu"].stalls.btb_memoization_stalls == 0


class TestWideLoads:
    def test_dcache_width_stalls(self, runs):
        """The first wide loads after narrow training pay the stall; the
        corrected predictor then stops gating that PC."""
        assert runs["wide_loads"].stalls.dcache_width_stalls >= 1

    def test_dcache_herding_drops_in_wide_phase(self, runs):
        assert runs["wide_loads"].herding["dcache_herded_loads"] < 0.9
