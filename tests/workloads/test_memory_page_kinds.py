"""Tests for page-granular value kinds and cursor behaviours."""

import random

from repro.isa.values import is_low_width
from repro.workloads.memory_model import HEAP_BASE, MemoryModel
from repro.workloads.parameters import CLASS_PARAMETERS, BenchmarkClass


def make_model(dist, seed=7, footprint=1 << 22):
    return MemoryModel(dist, footprint, random.Random(seed))


class TestPageKinds:
    MIXED = {"zero": 0.4, "small_pos": 0.0, "small_neg": 0.0,
             "near_pointer": 0.0, "wide": 0.6}

    def test_words_within_page_share_kind(self):
        """An array page is homogeneous: all its words classify alike."""
        model = make_model(self.MIXED)
        for page in range(16):
            base = HEAP_BASE + page * 4096
            widths = {is_low_width(model.read(base + i * 8)) for i in range(32)}
            assert len(widths) == 1, f"page {page} mixed widths"

    def test_different_pages_differ(self):
        """Across many pages both kinds appear (the mix is respected)."""
        model = make_model(self.MIXED)
        kinds = set()
        for page in range(64):
            value = model.read(HEAP_BASE + page * 4096)
            kinds.add(is_low_width(value))
        assert kinds == {True, False}

    def test_page_kind_deterministic_across_instances(self):
        a = make_model(self.MIXED, seed=3)
        b = make_model(self.MIXED, seed=3)
        for page in range(16):
            addr = HEAP_BASE + page * 4096
            assert is_low_width(a.read(addr)) == is_low_width(b.read(addr))

    def test_seed_changes_page_layout(self):
        a = make_model(self.MIXED, seed=1)
        b = make_model(self.MIXED, seed=2)
        pattern_a = [is_low_width(a.read(HEAP_BASE + p * 4096)) for p in range(64)]
        pattern_b = [is_low_width(b.read(HEAP_BASE + p * 4096)) for p in range(64)]
        assert pattern_a != pattern_b

    def test_writes_override_page_kind(self):
        model = make_model({"zero": 1.0})
        addr = HEAP_BASE + 8
        model.write(addr, 0xDEAD_BEEF_0000_0001)
        assert model.read(addr) == 0xDEAD_BEEF_0000_0001


class TestClassDistributions:
    def test_all_class_dists_valid(self):
        """Every shipped class distribution constructs a memory model."""
        for klass, params in CLASS_PARAMETERS.items():
            model = make_model(params.value_dist, footprint=params.footprint_bytes
                               if params.footprint_bytes < (1 << 22) else 1 << 22)
            assert model.read(HEAP_BASE) >= 0, klass
