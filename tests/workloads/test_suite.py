"""Tests for the named benchmark suite."""

import pytest

from repro.workloads.parameters import BenchmarkClass, CLASS_PARAMETERS
from repro.workloads.suite import (
    BENCHMARKS,
    benchmark_names,
    benchmarks_in_class,
    generate,
)


class TestRegistry:
    def test_24_benchmarks(self):
        assert len(BENCHMARKS) == 24

    def test_four_per_class(self):
        for klass in BenchmarkClass:
            assert len(benchmarks_in_class(klass)) == 4

    def test_paper_named_apps_present(self):
        for name in ("mpeg2", "yacr2", "susan", "mcf", "crafty", "patricia"):
            assert name in BENCHMARKS

    def test_seeds_unique(self):
        seeds = [spec.seed for spec in BENCHMARKS.values()]
        assert len(seeds) == len(set(seeds))

    def test_overrides_are_valid_fields(self):
        for spec in BENCHMARKS.values():
            spec.parameters()  # raises on an invalid override key

    def test_names_function(self):
        assert benchmark_names() == list(BENCHMARKS)


class TestGeneration:
    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            generate("nonesuch")

    def test_generate_defaults(self):
        trace = generate("adpcm", length=500)
        assert len(trace) == 500
        assert trace.benchmark_class == "MediaBench"

    def test_seed_override_changes_trace(self):
        a = generate("adpcm", length=500)
        b = generate("adpcm", length=500, seed=999)
        assert [i.result for i in a] != [i.result for i in b]

    def test_reproducible(self):
        a = generate("gzip", length=400)
        b = generate("gzip", length=400)
        assert [i.pc for i in a] == [i.pc for i in b]


class TestClassCharacter:
    """Directional checks that the classes behave as the paper needs."""

    @pytest.fixture(scope="class")
    def stats(self):
        return {
            name: generate(name, length=5000).stats()
            for name in ("mpeg2", "susan", "mcf", "yacr2", "swim", "hmmer")
        }

    def test_media_narrower_than_pointer(self, stats):
        assert stats["mpeg2"].low_width_result_fraction > stats["yacr2"].low_width_result_fraction

    def test_fp_class_memory_heavy(self, stats):
        assert stats["swim"].memory_fraction > 0.2

    def test_mcf_memory_heavy(self, stats):
        assert stats["mcf"].memory_fraction > stats["susan"].memory_fraction

    def test_all_have_near_targets(self, stats):
        for name, s in stats.items():
            assert s.near_target_fraction > 0.8, name

    def test_footprints_ordered(self):
        assert (BENCHMARKS["mcf"].parameters().footprint_bytes
                > BENCHMARKS["mpeg2"].parameters().footprint_bytes)
