"""Tests for the functional emulator."""

import pytest

from repro.isa.opcodes import OpClass
from repro.workloads.emulator import Emulator, generate_trace
from repro.workloads.memory_model import HEAP_BASE, STACK_BASE
from repro.workloads.parameters import CLASS_PARAMETERS, BenchmarkClass
from repro.workloads.program import build_program

PARAMS = CLASS_PARAMETERS[BenchmarkClass.MEDIABENCH]


def emulate(length=2000, seed=5, params=PARAMS):
    program = build_program(params, seed)
    return Emulator(program, seed).run(length)


class TestBasics:
    def test_length_exact(self):
        assert len(emulate(1234)) == 1234

    def test_rejects_non_positive_length(self):
        program = build_program(PARAMS, 1)
        with pytest.raises(ValueError):
            Emulator(program, 1).run(0)

    def test_deterministic(self):
        a = emulate(seed=7)
        b = emulate(seed=7)
        assert [i.pc for i in a] == [i.pc for i in b]
        assert [i.result for i in a] == [i.result for i in b]

    def test_trace_wrapper(self):
        trace = generate_trace("x", PARAMS, length=500, seed=3, benchmark_class="c")
        assert trace.name == "x"
        assert trace.benchmark_class == "c"
        assert len(trace) == 500


class TestControlFlowConsistency:
    def test_taken_branches_have_targets(self):
        for inst in emulate():
            if inst.op.is_control and inst.taken:
                assert inst.target is not None

    def test_calls_enter_leaves_and_return(self):
        insts = emulate(4000)
        for i, inst in enumerate(insts):
            if inst.op is OpClass.CALL and i + 1 < len(insts):
                # The next committed instruction is at the call target.
                assert insts[i + 1].pc == inst.target

    def test_returns_resume_after_call(self):
        insts = emulate(4000)
        call_stack = []
        for inst in insts:
            if inst.op is OpClass.CALL:
                call_stack.append(inst.pc + 4)
            elif inst.op is OpClass.RETURN and call_stack:
                assert inst.target == call_stack.pop()

    def test_committed_path_is_sequential(self):
        """Each instruction's next_pc is the next instruction's pc."""
        insts = emulate(3000)
        breaks = 0
        for a, b in zip(insts, insts[1:]):
            if a.next_pc != b.pc:
                breaks += 1
        # The committed path is fully sequential by construction.
        assert breaks == 0


class TestMemoryConsistency:
    def test_addresses_in_known_regions(self):
        for inst in emulate():
            if inst.mem_addr is not None:
                in_heap = HEAP_BASE <= inst.mem_addr < STACK_BASE
                in_stack = inst.mem_addr >= STACK_BASE
                assert in_heap or in_stack

    def test_addresses_word_aligned(self):
        for inst in emulate():
            if inst.mem_addr is not None:
                assert inst.mem_addr % 8 == 0

    def test_store_to_load_value_consistency(self):
        """A load after a store to the same word sees the stored value."""
        insts = emulate(6000)
        memory = {}
        for inst in insts:
            if inst.op is OpClass.STORE:
                memory[inst.mem_addr] = inst.mem_value
            elif inst.op is OpClass.LOAD and inst.mem_addr in memory:
                assert inst.mem_value == memory[inst.mem_addr]

    def test_loads_write_their_value(self):
        for inst in emulate():
            if inst.op is OpClass.LOAD and inst.dst is not None:
                assert inst.result == inst.mem_value


class TestValueConsistency:
    def test_src_values_match_dataflow(self):
        """Register reads observe the most recent architectural write."""
        regs = {}
        checked = 0
        for inst in emulate(5000):
            for reg, value in zip(inst.srcs, inst.src_values):
                if reg in regs:
                    assert value == regs[reg], f"at pc={inst.pc:#x} reg r{reg}"
                    checked += 1
            if inst.dst is not None and inst.dst != 31:
                regs[inst.dst] = inst.result
        assert checked > 1000

    def test_results_are_64_bit(self):
        for inst in emulate():
            assert 0 <= inst.result < (1 << 64)


class TestStatisticalShape:
    def test_mediabench_is_narrow(self):
        trace = generate_trace("m", PARAMS, 6000, seed=2)
        stats = trace.stats()
        assert stats.low_width_result_fraction > 0.5

    def test_pointer_class_is_wide(self):
        params = CLASS_PARAMETERS[BenchmarkClass.POINTER]
        trace = generate_trace("p", params, 6000, seed=2)
        stats = trace.stats()
        media = generate_trace("m", PARAMS, 6000, seed=2).stats()
        assert stats.low_width_result_fraction < media.low_width_result_fraction

    def test_fp_class_has_fp_ops(self):
        params = CLASS_PARAMETERS[BenchmarkClass.SPECFP]
        trace = generate_trace("f", params, 6000, seed=2)
        from repro.isa.opcodes import OpClass as OC
        fp = sum(1 for i in trace if i.op.is_fp)
        assert fp / len(trace) > 0.10

    def test_branches_present_and_taken_biased(self):
        stats = generate_trace("m", PARAMS, 6000, seed=2).stats()
        assert 0.02 < stats.branch_fraction < 0.40
        assert stats.taken_fraction > 0.5
