"""Tests for the lazy functional memory model."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.isa.values import UpperBitsEncoding, classify_upper_bits, upper_bits
from repro.workloads.memory_model import (
    GLOBAL_BASE,
    HEAP_BASE,
    MemoryModel,
    Region,
    STACK_BASE,
    WORD_BYTES,
)

UNIFORM = {"zero": 1.0, "small_pos": 0.0, "small_neg": 0.0, "near_pointer": 0.0, "wide": 0.0}


def make_model(dist=None, footprint=1 << 20, seed=1):
    return MemoryModel(dist or UNIFORM, footprint, random.Random(seed))


class TestRegion:
    def test_contains(self):
        region = Region("r", base=100, size=50)
        assert region.contains(100)
        assert region.contains(149)
        assert not region.contains(150)
        assert not region.contains(99)

    def test_align_wraps_and_aligns(self):
        region = Region("r", base=0x1000, size=64)
        assert region.align(0) == 0x1000
        assert region.align(70) == 0x1000  # 70 % 64 = 6 -> word 0
        assert region.align(9) == 0x1008

    def test_region_layout_distinct_uppers(self):
        """Stack and heap have different upper 48 bits (PAM relies on it)."""
        assert upper_bits(STACK_BASE) != upper_bits(HEAP_BASE)
        assert upper_bits(GLOBAL_BASE) != upper_bits(STACK_BASE)


class TestMemoryModel:
    def test_read_is_sticky(self):
        model = make_model()
        addr = HEAP_BASE + 64
        assert model.read(addr) == model.read(addr)

    def test_write_then_read(self):
        model = make_model()
        model.write(HEAP_BASE, 0xABCD)
        assert model.read(HEAP_BASE) == 0xABCD

    def test_write_masks_to_64_bits(self):
        model = make_model()
        model.write(HEAP_BASE, 1 << 70 | 5)
        assert model.read(HEAP_BASE) == 5

    def test_word_alignment(self):
        model = make_model()
        model.write(HEAP_BASE + 3, 7)  # unaligned write lands on word base
        assert model.read(HEAP_BASE) == 7

    def test_touched_words(self):
        model = make_model()
        model.read(HEAP_BASE)
        model.read(HEAP_BASE + WORD_BYTES)
        model.read(HEAP_BASE)  # already touched
        assert model.touched_words() == 2

    def test_zero_distribution(self):
        model = make_model(UNIFORM)
        values = [model.read(HEAP_BASE + i * 8) for i in range(50)]
        assert all(v == 0 for v in values)

    def test_near_pointer_distribution(self):
        dist = {"zero": 0, "small_pos": 0, "small_neg": 0, "near_pointer": 1.0, "wide": 0}
        model = make_model(dist)
        for i in range(30):
            addr = HEAP_BASE + i * 8
            value = model.read(addr)
            assert classify_upper_bits(value, addr) is UpperBitsEncoding.SAME_AS_ADDRESS

    def test_small_neg_distribution(self):
        dist = {"zero": 0, "small_pos": 0, "small_neg": 1.0, "near_pointer": 0, "wide": 0}
        model = make_model(dist)
        value = model.read(HEAP_BASE)
        assert classify_upper_bits(value) is UpperBitsEncoding.ALL_ONES

    def test_wide_distribution(self):
        dist = {"zero": 0, "small_pos": 0, "small_neg": 0, "near_pointer": 0, "wide": 1.0}
        model = make_model(dist)
        for i in range(20):
            value = model.read(HEAP_BASE + i * 8)
            assert value >> 48  # upper bits populated

    def test_rejects_empty_distribution(self):
        with pytest.raises(ValueError):
            make_model({"zero": 0.0})

    def test_determinism(self):
        a = make_model(seed=42)
        b = make_model(seed=42)
        addrs = [HEAP_BASE + i * 8 for i in range(20)]
        assert [a.read(x) for x in addrs] == [b.read(x) for x in addrs]

    @given(st.integers(min_value=0, max_value=(1 << 20) - 8))
    def test_read_write_roundtrip(self, offset):
        model = make_model()
        addr = HEAP_BASE + offset
        model.write(addr, 0x1234_5678)
        assert model.read(addr) == 0x1234_5678
