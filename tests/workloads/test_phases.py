"""Tests for BBV profiling, k-means, and SimPoint sampling."""

import numpy as np
import pytest

from repro.workloads.phases import (
    KMeans,
    basic_block_vectors,
    choose_simpoints,
    sample_trace,
    weighted_metric,
    SimPoint,
)
from repro.workloads.suite import generate


@pytest.fixture(scope="module")
def trace():
    return generate("gcc", length=12_000)


class TestBBV:
    def test_shape(self, trace):
        matrix, starts = basic_block_vectors(trace, interval=2000)
        assert matrix.shape[0] == len(starts) == 6
        assert matrix.shape[1] > 10  # many distinct blocks

    def test_rows_l1_normalized(self, trace):
        matrix, _ = basic_block_vectors(trace, interval=2000)
        sums = matrix.sum(axis=1)
        assert np.allclose(sums[sums > 0], 1.0)

    def test_interval_starts_spacing(self, trace):
        _, starts = basic_block_vectors(trace, interval=3000)
        assert starts == [0, 3000, 6000, 9000]

    def test_rejects_bad_interval(self, trace):
        with pytest.raises(ValueError):
            basic_block_vectors(trace, interval=0)


class TestKMeans:
    def test_separates_obvious_clusters(self):
        data = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0], [5.1, 5.0]])
        model = KMeans(k=2, seed=1).fit(data)
        assert model.labels[0] == model.labels[1]
        assert model.labels[2] == model.labels[3]
        assert model.labels[0] != model.labels[2]

    def test_k_capped_at_n(self):
        data = np.array([[1.0], [2.0]])
        model = KMeans(k=5, seed=1).fit(data)
        assert model.centroids.shape[0] == 2

    def test_deterministic(self):
        rng = np.random.default_rng(3)
        data = rng.random((30, 4))
        a = KMeans(k=3, seed=7).fit(data)
        b = KMeans(k=3, seed=7).fit(data)
        assert (a.labels == b.labels).all()

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            KMeans(k=2).fit(np.empty((0, 3)))

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            KMeans(k=0)


class TestSimPoints:
    def test_weights_sum_to_one(self, trace):
        points = choose_simpoints(trace, interval=2000, max_clusters=3)
        assert sum(p.weight for p in points) == pytest.approx(1.0)

    def test_points_sorted_and_in_range(self, trace):
        points = choose_simpoints(trace, interval=2000, max_clusters=3)
        indices = [p.interval_index for p in points]
        assert indices == sorted(indices)
        assert all(0 <= p.start_instruction < len(trace) for p in points)

    def test_sample_trace_length(self, trace):
        points = choose_simpoints(trace, interval=2000, max_clusters=3)
        sampled = sample_trace(trace, points, interval=2000)
        assert len(sampled) == 2000 * len(points)

    def test_sample_preserves_statistics(self, trace):
        """The reduced trace approximates the full trace's width profile."""
        points = choose_simpoints(trace, interval=2000, max_clusters=4)
        sampled = sample_trace(trace, points, interval=2000)
        full = trace.stats().low_width_result_fraction
        reduced = sampled.stats().low_width_result_fraction
        assert abs(full - reduced) < 0.08

    def test_sample_requires_points(self, trace):
        with pytest.raises(ValueError):
            sample_trace(trace, [])

    def test_weighted_metric(self):
        points = [
            SimPoint(interval_index=0, start_instruction=0, weight=0.75),
            SimPoint(interval_index=1, start_instruction=100, weight=0.25),
        ]
        assert weighted_metric(points, [1.0, 2.0]) == pytest.approx(1.25)

    def test_weighted_metric_validates(self):
        points = [SimPoint(0, 0, 1.0)]
        with pytest.raises(ValueError):
            weighted_metric(points, [1.0, 2.0])
