"""Tests for workload characterization validation — and the suite itself."""

import pytest

from repro.isa.builder import TraceBuilder
from repro.workloads.parameters import BenchmarkClass
from repro.workloads.suite import BENCHMARKS, generate
from repro.workloads.validation import (
    CLASS_EXPECTATIONS,
    ClassExpectations,
    validate_suite,
    validate_trace,
)


class TestMechanics:
    def test_violation_reported(self):
        expectations = ClassExpectations(
            low_width_results=(0.99, 1.0),
            memory_fraction=(0.0, 1.0),
            branch_fraction=(0.0, 1.0),
            near_targets=(0.0, 1.0),
        )
        trace = TraceBuilder().alu(1, 1 << 40).build()
        violations = expectations.check(trace.stats())
        assert violations
        assert "low_width_results" in violations[0]

    def test_unknown_class_needs_explicit_expectations(self):
        trace = TraceBuilder().alu(1, 1).build()  # class "microbench"
        with pytest.raises(ValueError):
            validate_trace(trace)

    def test_explicit_expectations_accepted(self):
        trace = TraceBuilder().alu(1, 1).build()
        wide_open = ClassExpectations(
            low_width_results=(0.0, 1.0),
            memory_fraction=(0.0, 1.0),
            branch_fraction=(0.0, 1.0),
            near_targets=(0.0, 1.0),
        )
        assert validate_trace(trace, wide_open) == []

    def test_all_classes_have_expectations(self):
        assert set(CLASS_EXPECTATIONS) == set(BenchmarkClass)


class TestSuiteCharacterization:
    """The real check: every shipped benchmark fits its class's bands."""

    @pytest.fixture(scope="class")
    def suite(self):
        return [generate(name, length=6000) for name in BENCHMARKS]

    def test_whole_suite_validates(self, suite):
        report = validate_suite(suite)
        assert report == {}, f"workload characterization drift: {report}"

    def test_media_is_narrowest_class(self, suite):
        by_class = {}
        for trace in suite:
            by_class.setdefault(trace.benchmark_class, []).append(
                trace.stats().low_width_result_fraction
            )
        media = sum(by_class["MediaBench"]) / 4
        pointer = sum(by_class["Pointer"]) / 4
        assert media > pointer + 0.1
