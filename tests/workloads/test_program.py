"""Tests for the synthetic static program builder."""

import random

from repro.isa.opcodes import OpClass
from repro.workloads.memory_model import AccessPattern
from repro.workloads.parameters import CLASS_PARAMETERS, BenchmarkClass, WorkloadParameters
from repro.workloads.program import (
    CODE_BASE,
    FAR_CODE_BASE,
    InstTemplate,
    ValueKind,
    build_program,
)

PARAMS = CLASS_PARAMETERS[BenchmarkClass.MEDIABENCH]


def build(seed=1, params=PARAMS):
    return build_program(params, seed)


class TestStructure:
    def test_loop_count_matches_params(self):
        program = build()
        assert len(program.loops) == PARAMS.loop_count

    def test_leaves_exist(self):
        assert len(build().leaves) >= 3

    def test_static_count_positive(self):
        program = build()
        assert program.static_instruction_count() > PARAMS.loop_count * 6

    def test_deterministic(self):
        a, b = build(seed=9), build(seed=9)
        pcs_a = [t.pc for loop in a.loops for t in loop.body]
        pcs_b = [t.pc for loop in b.loops for t in loop.body]
        assert pcs_a == pcs_b

    def test_different_seeds_differ(self):
        a, b = build(seed=1), build(seed=2)
        ops_a = [t.op for loop in a.loops for t in loop.body]
        ops_b = [t.op for loop in b.loops for t in loop.body]
        assert ops_a != ops_b


class TestPCs:
    def test_pcs_unique_and_aligned(self):
        program = build()
        pcs = [t.pc for loop in program.loops for t in loop.body]
        pcs += [loop.back_edge.pc for loop in program.loops]
        for leaf in program.leaves:
            pcs += [t.pc for t in leaf.body] + [leaf.ret.pc]
        assert len(pcs) == len(set(pcs))
        assert all(pc % 4 == 0 for pc in pcs)

    def test_near_code_in_main_region(self):
        program = build()
        for loop in program.loops:
            for template in loop.body:
                assert CODE_BASE <= template.pc < FAR_CODE_BASE

    def test_far_leaves_in_far_region(self):
        # Force far leaves via a high far_target_fraction.
        import dataclasses
        params = dataclasses.replace(PARAMS, far_target_fraction=0.25)
        program = build_program(params, seed=3)
        far_leaves = [leaf for leaf in program.leaves if leaf.far]
        assert far_leaves, "expected at least one far leaf at 25% far fraction"
        for leaf in far_leaves:
            assert leaf.entry_pc >= FAR_CODE_BASE


class TestBranches:
    def test_skip_counts_stay_in_body(self):
        program = build()
        for loop in program.loops:
            for i, template in enumerate(loop.body):
                if template.op is OpClass.BRANCH:
                    assert i + template.skip_count + 1 <= len(loop.body)

    def test_back_edges_marked(self):
        program = build()
        for loop in program.loops:
            assert loop.back_edge.is_back_edge
            assert loop.back_edge.op is OpClass.BRANCH

    def test_periodic_branches_exist(self):
        program = build()
        periods = [
            t.pattern_period
            for loop in program.loops
            for t in loop.body
            if t.op is OpClass.BRANCH and t.pattern_period
        ]
        assert periods, "expected some periodic branches"
        assert all(2 <= p <= 9 for p in periods)


class TestMemoryTemplates:
    def test_memory_ops_have_cursors(self):
        program = build()
        for loop in program.loops:
            for template in loop.body:
                if template.op.is_memory:
                    assert template.pattern is not None
                    assert template.cursor_id is not None

    def test_chase_loads_self_feed(self):
        """A chase load writes its own address register."""
        program = build_program(
            CLASS_PARAMETERS[BenchmarkClass.POINTER], seed=11
        )
        chases = [
            t for loop in program.loops for t in loop.body
            if t.op is OpClass.LOAD and t.pattern is AccessPattern.CHASE
        ]
        assert chases, "pointer class should produce chase loads"
        for template in chases:
            assert template.dst == template.srcs[0]

    def test_cursor_ids_unique(self):
        program = build()
        ids = [
            t.cursor_id for loop in program.loops for t in loop.body
            if t.cursor_id is not None
        ]
        # Address-update + memory-op pairs share a cursor.
        from collections import Counter
        counts = Counter(ids)
        assert all(c <= 2 for c in counts.values())
        assert max(ids) < program.cursor_count
