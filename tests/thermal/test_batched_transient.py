"""Batched multi-RHS transient stepping vs the scalar reference loop.

The batched path (`run_many`) must be *byte-identical* to the retained
scalar reference (`run_reference`): identical floating-point addition
order in the RHS assembly and SuperLU's column-independent
back-substitution make this exact, not approximate.
"""

import numpy as np
import pytest

from repro.floorplan import planar_floorplan, stacked_floorplan
from repro.thermal import transient as tr
from repro.thermal.solver import ThermalSolver, clear_factorization_cache
from repro.thermal.stack import planar_stack, stacked_3d_stack
from repro.thermal.transient import (
    STEP_FACTORIZATION_STATS,
    PowerSchedule,
    TransientThermalSolver,
    clear_step_cache,
    step_matrix_key,
)

GRID = 20
DTS = (2e-3, 5e-3)
DURATION = 0.05


@pytest.fixture(scope="module")
def solvers():
    return {
        "planar": ThermalSolver(planar_stack(), planar_floorplan(),
                                nx=GRID, ny=GRID),
        "3d": ThermalSolver(stacked_3d_stack(), stacked_floorplan(),
                            nx=GRID, ny=GRID),
    }


class Reactive(PowerSchedule):
    """Feedback schedule: halves power once the die peak crosses a bar."""

    def __init__(self, grids, ceiling_k):
        self.grids = grids
        self.ceiling_k = ceiling_k

    def power_grids(self, t_s, prev_peak_k):
        if prev_peak_k >= self.ceiling_k:
            return [g * 0.5 for g in self.grids]
        return self.grids


def _schedules(solver):
    ny, nx = solver.chip_grid_shape()
    layers = len(solver._die_layer_map)
    base = [np.full((ny, nx), 3.0 + i) for i in range(layers)]
    ambient = solver.stack.ambient_k

    def wobble(t):
        return [g * (1.0 + 0.2 * np.sin(40.0 * t)) for g in base]

    return [
        lambda t: base,
        wobble,
        Reactive(base, ambient + 1.0),
    ]


class TestBatchedEqualsScalar:
    @pytest.mark.parametrize("kind", ["planar", "3d"])
    @pytest.mark.parametrize("dt_s", DTS)
    def test_run_many_byte_identical(self, solvers, kind, dt_s):
        solver = solvers[kind]
        transient = TransientThermalSolver(solver, dt_s=dt_s)
        batched = transient.run_many(_schedules(solver), DURATION)
        reference = [
            transient.run_reference(schedule, DURATION)
            for schedule in _schedules(solver)
        ]
        for got, want in zip(batched, reference):
            assert got.times_s == want.times_s
            assert got.peak_k == want.peak_k  # exact, not approx
            for a, b in zip(got.final_layer_temps, want.final_layer_temps):
                assert np.array_equal(a, b)

    def test_single_run_uses_batched_path(self, solvers):
        solver = solvers["planar"]
        transient = TransientThermalSolver(solver, dt_s=5e-3)
        schedule, *_ = _schedules(solver)
        solo = transient.run(schedule, DURATION)
        want = transient.run_reference(schedule, DURATION)
        assert solo.peak_k == want.peak_k
        assert all(
            np.array_equal(a, b)
            for a, b in zip(solo.final_layer_temps, want.final_layer_temps)
        )

    def test_vectorized_time_to_reach(self, solvers):
        solver = solvers["planar"]
        transient = TransientThermalSolver(solver, dt_s=5e-3)
        result = transient.run(_schedules(solver)[0], DURATION)
        threshold = (result.peak_k[0] + result.peak_k[-1]) / 2
        want = None
        for t, peak in zip(result.times_s, result.peak_k):
            if peak >= threshold:
                want = t
                break
        assert result.time_to_reach(threshold) == want
        assert result.time_to_reach(1e9) is None


class TestStepCache:
    def test_one_factorization_per_key(self, solvers):
        clear_factorization_cache()
        solver = solvers["planar"]
        keys = set()
        for dt_s in DTS:
            for _ in range(3):
                TransientThermalSolver(solver, dt_s=dt_s)
            keys.add(step_matrix_key(solver, dt_s))
        assert STEP_FACTORIZATION_STATS.factorizations == len(keys)
        assert STEP_FACTORIZATION_STATS.cache_hits == 2 * len(keys)

    def test_cap_overflow_evicts_oldest(self, solvers):
        clear_step_cache()
        solver = solvers["planar"]
        dts = [1e-3 * (i + 1) for i in range(tr._STEP_CACHE_CAP + 2)]
        for dt_s in dts:
            TransientThermalSolver(solver, dt_s=dt_s)
        assert STEP_FACTORIZATION_STATS.factorizations == len(dts)
        assert len(tr._STEP_CACHE) == tr._STEP_CACHE_CAP
        # The newest key is still cached; the oldest was evicted and
        # must refactorize.
        TransientThermalSolver(solver, dt_s=dts[-1])
        assert STEP_FACTORIZATION_STATS.factorizations == len(dts)
        TransientThermalSolver(solver, dt_s=dts[0])
        assert STEP_FACTORIZATION_STATS.factorizations == len(dts) + 1

    def test_clear_factorization_cache_cascades(self, solvers):
        TransientThermalSolver(solvers["planar"], dt_s=3e-3)
        assert len(tr._STEP_CACHE) > 0
        clear_factorization_cache()
        assert len(tr._STEP_CACHE) == 0
        assert STEP_FACTORIZATION_STATS.factorizations == 0
        assert STEP_FACTORIZATION_STATS.cache_hits == 0
