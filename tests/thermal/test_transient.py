"""Tests for the transient thermal solver."""

import numpy as np
import pytest

from repro.floorplan.planar import planar_floorplan
from repro.thermal.solver import ThermalSolver
from repro.thermal.stack import planar_stack
from repro.thermal.transient import TransientThermalSolver


@pytest.fixture(scope="module")
def steady():
    return ThermalSolver(planar_stack(0.25), planar_floorplan(), nx=24, ny=24)


@pytest.fixture(scope="module")
def transient(steady):
    return TransientThermalSolver(steady, dt_s=5e-3)


def constant_power(steady, watts):
    ny, nx = steady.chip_grid_shape()
    grid = np.full((ny, nx), watts / (nx * ny))
    return lambda t: [grid]


class TestTransient:
    def test_rejects_bad_dt(self, steady):
        with pytest.raises(ValueError):
            TransientThermalSolver(steady, dt_s=0.0)

    def test_rejects_bad_duration(self, transient, steady):
        with pytest.raises(ValueError):
            transient.run(constant_power(steady, 10.0), duration_s=0.0)

    def test_starts_at_ambient(self, transient, steady):
        result = transient.run(constant_power(steady, 60.0), duration_s=0.01)
        # After one or two steps the rise is still well below steady state.
        steady_peak = steady.solve(
            [np.full(steady.chip_grid_shape(),
                     60.0 / np.prod(steady.chip_grid_shape()))]
        ).peak_temperature
        assert result.peak_k[0] < steady_peak

    def test_monotone_heating_under_constant_power(self, transient, steady):
        result = transient.run(constant_power(steady, 60.0), duration_s=0.1)
        diffs = np.diff(result.peak_k)
        assert (diffs >= -1e-9).all()

    def test_converges_to_steady_state(self, steady, transient):
        ny, nx = steady.chip_grid_shape()
        grid = np.full((ny, nx), 60.0 / (nx * ny))
        steady_result = steady.solve([grid])
        # Long integration: seconds of wall-clock time in model units.
        result = transient.run(lambda t: [grid], duration_s=8.0)
        assert result.final_peak == pytest.approx(
            steady_result.peak_temperature, abs=1.5
        )

    def test_zero_power_stays_ambient(self, transient, steady):
        result = transient.run(constant_power(steady, 0.0), duration_s=0.05)
        assert result.final_peak == pytest.approx(steady.stack.ambient_k, abs=1e-6)

    def test_cooling_after_power_drop(self, steady, transient):
        ny, nx = steady.chip_grid_shape()
        hot = np.full((ny, nx), 80.0 / (nx * ny))
        cold = np.zeros((ny, nx))

        def power(t):
            return [hot] if t < 0.5 else [cold]

        result = transient.run(power, duration_s=1.0)
        peak_during = max(p for t, p in zip(result.times_s, result.peak_k) if t <= 0.5)
        assert result.final_peak < peak_during

    def test_time_to_reach(self, transient, steady):
        result = transient.run(constant_power(steady, 80.0), duration_s=0.5)
        threshold = (result.peak_k[0] + result.peak_k[-1]) / 2
        crossing = result.time_to_reach(threshold)
        assert crossing is not None
        assert 0 < crossing <= 0.5
        assert result.time_to_reach(1e6) is None

    def test_final_layer_grids_shape(self, transient, steady):
        result = transient.run(constant_power(steady, 10.0), duration_s=0.02)
        assert len(result.final_layer_temps) == len(steady.stack.layers)
        assert result.final_layer_temps[0].shape == (steady.ny, steady.nx)
