"""Tests for power-map construction and rasterization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.floorplan.geometry import Block, Floorplan, Rect
from repro.floorplan.planar import planar_floorplan
from repro.floorplan.stacked import stacked_floorplan
from repro.power.model import ModulePower, PowerBreakdown, StackKind
from repro.thermal.power_map import build_power_map, rasterize


def fake_breakdown(stack=StackKind.PLANAR_2D, module_watts=None, clock=2.0, leak=1.0):
    dies = 4 if stack is StackKind.STACKED_3D else 1
    modules = {}
    if module_watts is None:
        module_watts = {"scheduler": 3.0}
    for name, watts in module_watts.items():
        modules[name] = ModulePower(
            name=name, watts=watts, per_die=[watts / dies] * dies
        )
    return PowerBreakdown(
        benchmark="fake", config_name="fake", stack=stack, clock_ghz=2.66,
        modules=modules, clock_watts=clock, leakage_watts=leak,
    )


class TestBuildPowerMap:
    def test_total_power_conserved_planar(self):
        plan = planar_floorplan()
        breakdowns = [fake_breakdown(), fake_breakdown()]
        watts = build_power_map(plan, breakdowns)
        expected = sum(b.total_watts for b in breakdowns)
        assert sum(watts.values()) == pytest.approx(expected)

    def test_total_power_conserved_stacked(self):
        plan = stacked_floorplan()
        breakdowns = [fake_breakdown(StackKind.STACKED_3D)] * 2
        watts = build_power_map(plan, breakdowns)
        expected = sum(b.total_watts for b in breakdowns)
        assert sum(watts.values()) == pytest.approx(expected)

    def test_module_power_lands_on_its_block(self):
        plan = planar_floorplan()
        watts = build_power_map(plan, [fake_breakdown(module_watts={"scheduler": 5.0},
                                                      clock=0.0, leak=0.0),
                                       fake_breakdown(module_watts={},
                                                      clock=0.0, leak=0.0)])
        assert watts[("core0.scheduler", 0)] == pytest.approx(5.0)
        assert watts[("core1.scheduler", 0)] == pytest.approx(0.0)

    def test_l2_power_shared(self):
        plan = planar_floorplan()
        watts = build_power_map(plan, [
            fake_breakdown(module_watts={"l2_cache": 2.0}, clock=0.0, leak=0.0),
            fake_breakdown(module_watts={"l2_cache": 3.0}, clock=0.0, leak=0.0),
        ])
        assert watts[("l2_cache", 0)] == pytest.approx(5.0)

    def test_clock_and_leak_spread_by_area(self):
        plan = planar_floorplan()
        watts = build_power_map(plan, [
            fake_breakdown(module_watts={}, clock=4.0, leak=2.0),
            fake_breakdown(module_watts={}, clock=0.0, leak=0.0),
        ])
        total_area = plan.total_block_area()
        l2 = plan.find("l2_cache")
        assert watts[("l2_cache", 0)] == pytest.approx(6.0 * l2.area_mm2 / total_area)

    def test_unknown_modules_spread(self):
        plan = planar_floorplan()
        watts = build_power_map(plan, [
            fake_breakdown(module_watts={"mystery": 7.0}, clock=0.0, leak=0.0),
            fake_breakdown(module_watts={}, clock=0.0, leak=0.0),
        ])
        assert sum(watts.values()) == pytest.approx(7.0)


class TestRasterize:
    def _single_block_plan(self, rect):
        plan = Floorplan(name="t", width_mm=8.0, height_mm=8.0, dies=1)
        plan.add(Block("b", rect))
        return plan

    def test_power_conserved(self):
        plan = self._single_block_plan(Rect(1.0, 1.0, 3.0, 2.0))
        grids = rasterize(plan, {("b", 0): 5.0}, nx=16, ny=16)
        assert grids[0].sum() == pytest.approx(5.0, rel=1e-6)

    def test_power_in_right_cells(self):
        plan = self._single_block_plan(Rect(0.0, 0.0, 4.0, 4.0))
        grids = rasterize(plan, {("b", 0): 8.0}, nx=8, ny=8)
        # Power only in the first quadrant (cells 0..3, 0..3).
        assert grids[0][:4, :4].sum() == pytest.approx(8.0)
        assert grids[0][4:, :].sum() == 0.0

    def test_partial_cell_overlap(self):
        plan = self._single_block_plan(Rect(0.0, 0.0, 0.5, 0.5))
        grids = rasterize(plan, {("b", 0): 1.0}, nx=8, ny=8)  # 1mm cells
        assert grids[0][0, 0] == pytest.approx(1.0)
        assert grids[0].sum() == pytest.approx(1.0)

    def test_zero_power_blocks_skipped(self):
        plan = self._single_block_plan(Rect(0.0, 0.0, 1.0, 1.0))
        grids = rasterize(plan, {("b", 0): 0.0}, nx=4, ny=4)
        assert grids[0].sum() == 0.0

    def test_rejects_tiny_grid(self):
        plan = self._single_block_plan(Rect(0.0, 0.0, 1.0, 1.0))
        with pytest.raises(ValueError):
            rasterize(plan, {("b", 0): 1.0}, nx=1, ny=1)

    def test_multi_die(self):
        plan = Floorplan(name="t", width_mm=4.0, height_mm=4.0, dies=2)
        plan.add(Block("a", Rect(0, 0, 2, 2), die=0))
        plan.add(Block("b", Rect(2, 2, 2, 2), die=1))
        grids = rasterize(plan, {("a", 0): 1.0, ("b", 1): 2.0}, nx=8, ny=8)
        assert grids[0].sum() == pytest.approx(1.0)
        assert grids[1].sum() == pytest.approx(2.0)

    @settings(max_examples=25, deadline=None)
    @given(
        x=st.floats(0.0, 5.0), y=st.floats(0.0, 5.0),
        w=st.floats(0.1, 3.0), h=st.floats(0.1, 3.0),
        power=st.floats(0.01, 50.0),
    )
    def test_conservation_property(self, x, y, w, h, power):
        """Rasterization conserves power for any in-bounds block."""
        plan = self._single_block_plan(Rect(x, y, w, h))
        grids = rasterize(plan, {("b", 0): power}, nx=16, ny=16)
        assert grids[0].sum() == pytest.approx(power, rel=1e-6)
