"""Tests for the steady-state thermal solver (physics invariants)."""

import numpy as np
import pytest

from repro.floorplan.planar import planar_floorplan
from repro.floorplan.stacked import stacked_floorplan
from repro.thermal.solver import ThermalSolver
from repro.thermal.stack import planar_stack, stacked_3d_stack


@pytest.fixture(scope="module")
def planar_solver():
    return ThermalSolver(planar_stack(0.25), planar_floorplan(), nx=32, ny=32)


@pytest.fixture(scope="module")
def stacked_solver():
    return ThermalSolver(stacked_3d_stack(0.25), stacked_floorplan(), nx=32, ny=32)


def uniform_grids(solver, total_watts, dies=1):
    ny, nx = solver.chip_grid_shape()
    per_die = total_watts / dies
    return [np.full((ny, nx), per_die / (nx * ny)) for _ in range(dies)]


class TestPhysicsInvariants:
    def test_zero_power_gives_ambient(self, planar_solver):
        result = planar_solver.solve(uniform_grids(planar_solver, 0.0))
        for grid in result.layer_temps:
            assert np.allclose(grid, planar_solver.stack.ambient_k, atol=1e-6)

    def test_energy_balance(self, planar_solver):
        """Spreader mean rise ~= P x R_conv (all heat exits the sink)."""
        watts = 50.0
        result = planar_solver.solve(uniform_grids(planar_solver, watts))
        spreader_mean = float(result.layer_temps[0].mean())
        expected = planar_solver.stack.ambient_k + watts * planar_solver.stack.convection_k_per_w
        assert spreader_mean == pytest.approx(expected, abs=0.5)

    def test_linearity(self, planar_solver):
        """Doubling power doubles the temperature rise (pure conduction)."""
        ambient = planar_solver.stack.ambient_k
        r1 = planar_solver.solve(uniform_grids(planar_solver, 30.0))
        r2 = planar_solver.solve(uniform_grids(planar_solver, 60.0))
        rise1 = r1.peak_temperature - ambient
        rise2 = r2.peak_temperature - ambient
        assert rise2 == pytest.approx(2 * rise1, rel=1e-6)

    def test_monotone_in_power(self, planar_solver):
        r1 = planar_solver.solve(uniform_grids(planar_solver, 30.0))
        r2 = planar_solver.solve(uniform_grids(planar_solver, 40.0))
        assert r2.peak_temperature > r1.peak_temperature

    def test_die_hotter_than_spreader(self, planar_solver):
        result = planar_solver.solve(uniform_grids(planar_solver, 60.0))
        die_layer = result.die_layers[0]
        assert result.layer_temps[die_layer].mean() > result.layer_temps[0].mean()

    def test_hotspot_above_uniform(self, planar_solver):
        """Concentrating the same power raises the peak temperature."""
        ny, nx = planar_solver.chip_grid_shape()
        uniform = planar_solver.solve(uniform_grids(planar_solver, 40.0))
        concentrated = np.zeros((ny, nx))
        concentrated[ny // 2, nx // 2] = 40.0
        spot = planar_solver.solve([concentrated])
        assert spot.peak_temperature > uniform.peak_temperature


class TestStackBehaviour:
    def test_lower_dies_hotter(self, stacked_solver):
        """With uniform per-die power, dies farther from the sink run hotter."""
        result = stacked_solver.solve(uniform_grids(stacked_solver, 60.0, dies=4))
        peaks = [result.die_peak(d) for d in range(4)]
        assert peaks[0] < peaks[3]
        assert sorted(peaks) == peaks

    def test_same_power_hotter_in_3d(self, planar_solver, stacked_solver):
        """The iso-power experiment's core effect: 4x density is hotter."""
        watts = 90.0
        planar = planar_solver.solve(uniform_grids(planar_solver, watts))
        stacked = stacked_solver.solve(uniform_grids(stacked_solver, watts, dies=4))
        assert stacked.peak_temperature > planar.peak_temperature

    def test_herded_power_cooler_than_spread(self, stacked_solver):
        """Power on the top die runs cooler than the same power on die 3."""
        ny, nx = stacked_solver.chip_grid_shape()
        zero = np.zeros((ny, nx))
        top_heavy = stacked_solver.solve(
            [np.full((ny, nx), 40.0 / (nx * ny)), zero, zero, zero]
        )
        bottom_heavy = stacked_solver.solve(
            [zero, zero, zero, np.full((ny, nx), 40.0 / (nx * ny))]
        )
        assert top_heavy.peak_temperature < bottom_heavy.peak_temperature


class TestInterface:
    def test_wrong_grid_count(self, stacked_solver):
        with pytest.raises(ValueError):
            stacked_solver.solve(uniform_grids(stacked_solver, 10.0, dies=2))

    def test_wrong_grid_shape(self, planar_solver):
        with pytest.raises(ValueError):
            planar_solver.solve([np.zeros((3, 3))])

    def test_mismatched_floorplan_and_stack(self):
        with pytest.raises(ValueError):
            ThermalSolver(planar_stack(), stacked_floorplan(), 16, 16)

    def test_block_temps_cover_all_blocks(self, planar_solver):
        result = planar_solver.solve(uniform_grids(planar_solver, 50.0))
        plan = planar_solver.floorplan
        assert len(result.block_peak) == len(plan.blocks)
        for key, peak in result.block_peak.items():
            assert result.block_mean[key] <= peak + 1e-9

    def test_hotspot_report(self, planar_solver):
        result = planar_solver.solve(uniform_grids(planar_solver, 50.0))
        name, die, temp = result.hottest_block()
        assert temp == pytest.approx(result.peak_temperature, abs=1.0)
        assert "peak K" in result.format_hotspots()
