"""Tests for thermal materials and layer stacks."""

import pytest

from repro.thermal.materials import COPPER, D2D_BOND, Material, SILICON, TIM_ALLOY
from repro.thermal.stack import (
    LayerSpec,
    ThermalStack,
    planar_stack,
    stacked_3d_stack,
)


class TestMaterials:
    def test_copper_most_conductive(self):
        assert COPPER.conductivity_w_mk > SILICON.conductivity_w_mk
        assert COPPER.conductivity_w_mk > TIM_ALLOY.conductivity_w_mk

    def test_d2d_bond_is_25pct_copper(self):
        """Paper: fully populated vias, width = half pitch -> 25% Cu."""
        assert D2D_BOND.conductivity_w_mk == pytest.approx(
            0.25 * COPPER.conductivity_w_mk, rel=0.05
        )

    def test_rejects_nonpositive_conductivity(self):
        with pytest.raises(ValueError):
            Material("bad", conductivity_w_mk=0.0)


class TestLayerSpec:
    def test_rejects_zero_thickness(self):
        with pytest.raises(ValueError):
            LayerSpec("l", SILICON, 0.0)


class TestStacks:
    def test_planar_has_one_power_die(self):
        stack = planar_stack()
        assert stack.die_count == 1

    def test_3d_has_four_power_dies(self):
        stack = stacked_3d_stack()
        assert stack.die_count == 4

    def test_3d_die_order_top_down(self):
        """Power dies appear in order 0..3 from the sink downward."""
        stack = stacked_3d_stack()
        dies = [l.power_die for l in stack.layers if l.power_die is not None]
        assert dies == [0, 1, 2, 3]

    def test_3d_interface_thicknesses(self):
        """Paper: 5 um across F2F faces, 20 um across the B2B interface."""
        stack = stacked_3d_stack()
        bonds = {l.name: l.thickness_m for l in stack.layers if "bond" in l.name}
        assert bonds["bond01-f2f"] == pytest.approx(5e-6)
        assert bonds["bond12-b2b"] == pytest.approx(20e-6)
        assert bonds["bond23-f2f"] == pytest.approx(5e-6)

    def test_lower_dies_thinned(self):
        stack = stacked_3d_stack()
        thicknesses = {l.name: l.thickness_m for l in stack.layers}
        assert thicknesses["die1"] < thicknesses["die0"]
        assert thicknesses["die1"] == pytest.approx(12e-6)

    def test_validate_catches_bad_die_numbering(self):
        stack = ThermalStack(
            name="bad",
            layers=[
                LayerSpec("a", SILICON, 1e-4, power_die=0),
                LayerSpec("b", SILICON, 1e-4, power_die=2),
            ],
        )
        with pytest.raises(ValueError):
            stack.validate()

    def test_spreader_first(self):
        for stack in (planar_stack(), stacked_3d_stack()):
            assert stack.layers[0].name == "spreader"
            assert stack.layers[0].material is COPPER
