"""Tests for ASCII thermal map rendering."""

import numpy as np
import pytest

from repro.floorplan.planar import planar_floorplan
from repro.thermal.maps import SHADES, hotspot_table, render_die, render_grid, render_stack
from repro.thermal.solver import ThermalSolver
from repro.thermal.stack import planar_stack, stacked_3d_stack
from repro.floorplan.stacked import stacked_floorplan


@pytest.fixture(scope="module")
def planar_result():
    solver = ThermalSolver(planar_stack(0.25), planar_floorplan(), nx=20, ny=20)
    ny, nx = solver.chip_grid_shape()
    return solver.solve([np.full((ny, nx), 60.0 / (nx * ny))])


@pytest.fixture(scope="module")
def stacked_result():
    solver = ThermalSolver(stacked_3d_stack(0.25), stacked_floorplan(), nx=20, ny=20)
    ny, nx = solver.chip_grid_shape()
    grids = [np.full((ny, nx), 15.0 / (nx * ny)) for _ in range(4)]
    return solver.solve(grids)


class TestRenderGrid:
    def test_dimensions(self):
        grid = np.linspace(300, 400, 100).reshape(10, 10)
        text = render_grid(grid, row_stride=1)
        lines = text.splitlines()
        assert len(lines) == 10
        assert all(len(line) == 10 for line in lines)

    def test_row_stride(self):
        grid = np.zeros((10, 10))
        assert len(render_grid(grid, row_stride=2).splitlines()) == 5

    def test_extremes_use_extreme_shades(self):
        grid = np.array([[0.0, 1.0]])
        text = render_grid(grid, row_stride=1)
        assert text[0] == SHADES[0]
        assert text[1] == SHADES[-1]

    def test_flat_grid_no_crash(self):
        text = render_grid(np.full((4, 4), 350.0), row_stride=1)
        assert len(text.splitlines()) == 4

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            render_grid(np.zeros(5))
        with pytest.raises(ValueError):
            render_grid(np.zeros((4, 4)), row_stride=0)


class TestRenderResults:
    def test_render_die(self, planar_result):
        text = render_die(planar_result, 0)
        assert "die 0" in text
        assert "K" in text

    def test_render_stack_all_dies(self, stacked_result):
        text = render_stack(stacked_result)
        for die in range(4):
            assert f"die {die}" in text

    def test_hotspot_table(self, planar_result):
        text = hotspot_table(planar_result, top=5)
        assert "block" in text
        assert len(text.splitlines()) == 7  # header + rule + 5 rows

    def test_hotspot_table_with_reference(self, planar_result):
        text = hotspot_table(planar_result, top=3, reference_k=300.0)
        assert "delta" in text
        assert "+" in text
