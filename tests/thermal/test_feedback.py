"""Tests for the leakage-temperature feedback loop."""

import numpy as np
import pytest

from repro.floorplan.planar import planar_floorplan
from repro.floorplan.stacked import stacked_floorplan
from repro.thermal.feedback import (
    FeedbackResult,
    solve_with_leakage_feedback,
    uniform_leakage_grids,
)
from repro.thermal.solver import ThermalSolver
from repro.thermal.stack import planar_stack, stacked_3d_stack


@pytest.fixture(scope="module")
def solver():
    return ThermalSolver(planar_stack(0.2), planar_floorplan(), 24, 24)


def grids(solver, watts, dies=1):
    ny, nx = solver.chip_grid_shape()
    return [np.full((ny, nx), watts / dies / (nx * ny)) for _ in range(dies)]


class TestFeedback:
    def test_converges_at_moderate_power(self, solver):
        fb = solve_with_leakage_feedback(
            solver, grids(solver, 50.0), uniform_leakage_grids(solver, 15.0),
            reference_k=350.0,
        )
        assert fb.converged
        assert not fb.runaway
        assert fb.iterations < 20

    def test_zero_leakage_is_single_iteration_fixed_point(self, solver):
        fb = solve_with_leakage_feedback(
            solver, grids(solver, 50.0), uniform_leakage_grids(solver, 0.0),
            reference_k=350.0,
        )
        assert fb.converged
        assert fb.leakage_final_watts < 1e-50
        assert fb.leakage_amplification == 1.0

    def test_hotter_than_reference_amplifies(self, solver):
        """If the chip runs above the leakage budget temperature, the
        converged leakage exceeds the reference."""
        fb = solve_with_leakage_feedback(
            solver, grids(solver, 80.0), uniform_leakage_grids(solver, 15.0),
            reference_k=318.15,
        )
        assert fb.leakage_amplification > 1.0

    def test_cooler_than_reference_attenuates(self, solver):
        fb = solve_with_leakage_feedback(
            solver, grids(solver, 20.0), uniform_leakage_grids(solver, 10.0),
            reference_k=400.0,
        )
        assert fb.leakage_amplification < 1.0

    def test_feedback_peak_above_fixed_peak_when_amplifying(self, solver):
        dynamic = grids(solver, 80.0)
        leak = uniform_leakage_grids(solver, 15.0)
        fixed = solver.solve([d + l for d, l in zip(dynamic, leak)])
        fb = solve_with_leakage_feedback(solver, dynamic, leak, reference_k=318.15)
        assert fb.result.peak_temperature > fixed.peak_temperature

    def test_runaway_detected_not_crashed(self, solver):
        """Extreme leakage with a cold reference must flag runaway."""
        fb = solve_with_leakage_feedback(
            solver, grids(solver, 150.0), uniform_leakage_grids(solver, 120.0),
            reference_k=300.0, efold_k=10.0,
        )
        assert fb.runaway or fb.leakage_amplification > 5.0
        assert np.isfinite(fb.leakage_final_watts)

    def test_validation(self, solver):
        with pytest.raises(ValueError):
            solve_with_leakage_feedback(
                solver, grids(solver, 10.0), [], reference_k=350.0
            )
        with pytest.raises(ValueError):
            solve_with_leakage_feedback(
                solver, grids(solver, 10.0), uniform_leakage_grids(solver, 5.0),
                reference_k=350.0, efold_k=0.0,
            )

    def test_3d_stack_supported(self):
        solver = ThermalSolver(stacked_3d_stack(0.2), stacked_floorplan(), 24, 24)
        fb = solve_with_leakage_feedback(
            solver, grids(solver, 40.0, dies=4),
            uniform_leakage_grids(solver, 15.0), reference_k=360.0,
        )
        assert fb.converged
        assert isinstance(fb, FeedbackResult)
