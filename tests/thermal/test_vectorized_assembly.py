"""Vectorized thermal assembly vs the reference loop implementation.

The solver assembles its conductance matrix with whole-layer numpy
arrays; ``_build_reference`` keeps the original per-cell Python loops.
These tests pin the vectorized path to the reference: identical sparse
matrices, temperatures within 1e-9 K, conserved rasterized power, and
the process-wide factorization cache actually being hit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.floorplan.planar import planar_floorplan
from repro.floorplan.stacked import stacked_floorplan
from repro.thermal import power_map as power_map_module
from repro.thermal.power_map import build_power_map, clear_mask_cache, rasterize
from repro.thermal.solver import (
    FACTORIZATION_STATS,
    ThermalSolver,
    clear_factorization_cache,
)
from repro.thermal.stack import planar_stack, stacked_3d_stack


def _solver_pairs():
    return [
        ThermalSolver(planar_stack(0.25), planar_floorplan(), nx=24, ny=24),
        ThermalSolver(stacked_3d_stack(0.25), stacked_floorplan(), nx=24, ny=24),
        # Non-square grid exercises the x/y index arithmetic separately.
        ThermalSolver(stacked_3d_stack(0.30), stacked_floorplan(), nx=20, ny=28),
    ]


class TestAssemblyEquivalence:
    @pytest.mark.parametrize("index", range(3))
    def test_matrices_identical(self, index):
        solver = _solver_pairs()[index]
        fast, fast_conv = solver._assemble()
        slow, slow_conv = solver._build_reference()
        assert fast.shape == slow.shape
        assert fast_conv == pytest.approx(slow_conv, rel=0, abs=0.0)
        diff = (fast - slow).tocoo()
        max_abs = np.abs(diff.data).max() if diff.nnz else 0.0
        assert max_abs == 0.0, f"assembly differs by {max_abs}"

    @pytest.mark.parametrize("index", range(3))
    def test_temperatures_match_reference(self, index):
        solver = _solver_pairs()[index]
        ny, nx = solver.chip_grid_shape()
        dies = solver.floorplan.dies
        rng = np.random.default_rng(17 + index)
        grids = [rng.random((ny, nx)) * 2.0 for _ in range(dies)]

        result = solver.solve(grids)

        # Solve the same right-hand side against the loop-assembled matrix.
        from scipy.sparse.linalg import spsolve

        reference, _ = solver._build_reference()
        temps = spsolve(reference.tocsc(), solver._rhs_for(grids))
        n_cells = solver.nx * solver.ny
        for layer_index, layer in enumerate(result.layer_temps):
            expected = temps[layer_index * n_cells:(layer_index + 1) * n_cells]
            got = layer.ravel()
            assert np.abs(got - expected).max() < 1e-9


class TestRasterizePowerConservation:
    def setup_method(self):
        clear_mask_cache()

    def test_total_power_conserved(self):
        plan = stacked_floorplan()
        watts = build_power_map(plan, [])
        # Synthetic non-uniform powers, including fractional-overlap blocks.
        for index, key in enumerate(sorted(watts)):
            watts[key] = 0.37 * (index + 1)
        grids = rasterize(plan, watts, nx=31, ny=29)
        per_die_expected = [0.0] * plan.dies
        for block in plan.blocks:
            per_die_expected[block.die] += watts[(block.name, block.die)]
        for die, grid in enumerate(grids):
            assert float(grid.sum()) == pytest.approx(per_die_expected[die], rel=1e-12)
            assert (grid >= 0.0).all()

    def test_mask_cache_reused_across_calls(self):
        plan = planar_floorplan()
        watts = build_power_map(plan, [])
        rasterize(plan, watts, nx=16, ny=16)
        assert len(power_map_module._MASK_CACHE) == 1
        first = next(iter(power_map_module._MASK_CACHE.values()))
        rasterize(plan, watts, nx=16, ny=16)
        assert next(iter(power_map_module._MASK_CACHE.values())) is first
        rasterize(plan, watts, nx=18, ny=16)
        assert len(power_map_module._MASK_CACHE) == 2


class TestFactorizationCache:
    def test_same_geometry_hits_cache(self):
        clear_factorization_cache()
        before_factor = FACTORIZATION_STATS.factorizations
        before_hits = FACTORIZATION_STATS.cache_hits

        first = ThermalSolver(stacked_3d_stack(0.25), stacked_floorplan(), nx=16, ny=16)
        first._build()
        second = ThermalSolver(stacked_3d_stack(0.25), stacked_floorplan(), nx=16, ny=16)
        second._build()

        assert FACTORIZATION_STATS.factorizations == before_factor + 1
        assert FACTORIZATION_STATS.cache_hits == before_hits + 1
        assert first.matrix_key() == second.matrix_key()

    def test_distinct_geometry_misses_cache(self):
        clear_factorization_cache()
        before_factor = FACTORIZATION_STATS.factorizations

        ThermalSolver(stacked_3d_stack(0.25), stacked_floorplan(), nx=16, ny=16)._build()
        ThermalSolver(stacked_3d_stack(0.50), stacked_floorplan(), nx=16, ny=16)._build()

        assert FACTORIZATION_STATS.factorizations == before_factor + 2

    def test_result_key_includes_ambient_but_matrix_key_does_not(self):
        import dataclasses

        base = stacked_3d_stack(0.25)
        warmer = dataclasses.replace(base, ambient_k=base.ambient_k + 10.0)
        plan = stacked_floorplan()
        a = ThermalSolver(base, plan, nx=16, ny=16)
        b = ThermalSolver(warmer, plan, nx=16, ny=16)
        assert a.matrix_key() == b.matrix_key()
        assert a.result_key() != b.result_key()
