"""Tests for the power audit tooling."""

import pytest

from repro.power.audit import audit, composition, die_shares, format_audit, top_consumers
from repro.power.model import (
    ModulePower,
    PowerBreakdown,
    PowerModel,
    StackKind,
    calibrate_activity_scale,
)


@pytest.fixture(scope="module")
def breakdowns(base_run, full_3d_run):
    model = PowerModel(activity_scale=calibrate_activity_scale(base_run))
    return (
        model.evaluate(base_run, StackKind.PLANAR_2D),
        model.evaluate(full_3d_run, StackKind.STACKED_3D),
    )


class TestAudit:
    def test_real_breakdowns_balance(self, breakdowns):
        for breakdown in breakdowns:
            assert audit(breakdown) == []

    def test_detects_per_die_mismatch(self, breakdowns):
        planar, _ = breakdowns
        broken = PowerBreakdown(
            benchmark="x", config_name="x", stack=StackKind.STACKED_3D,
            clock_ghz=2.0,
            modules={"alu": ModulePower("alu", watts=4.0, per_die=[1.0, 1.0, 1.0, 0.5])},
            clock_watts=1.0, leakage_watts=1.0,
        )
        findings = audit(broken)
        assert any("per-die sum" in f.message for f in findings)

    def test_detects_wrong_die_count(self):
        broken = PowerBreakdown(
            benchmark="x", config_name="x", stack=StackKind.STACKED_3D,
            clock_ghz=2.0,
            modules={"alu": ModulePower("alu", watts=1.0, per_die=[1.0])},
            clock_watts=0.0, leakage_watts=0.0,
        )
        assert any("die entries" in f.message for f in audit(broken))

    def test_detects_negative_power(self):
        broken = PowerBreakdown(
            benchmark="x", config_name="x", stack=StackKind.PLANAR_2D,
            clock_ghz=2.0,
            modules={"alu": ModulePower("alu", watts=-1.0, per_die=[-1.0])},
            clock_watts=0.0, leakage_watts=0.0,
        )
        assert any("negative" in f.message for f in audit(broken))


class TestSummaries:
    def test_composition_sums_to_one(self, breakdowns):
        for breakdown in breakdowns:
            assert sum(composition(breakdown).values()) == pytest.approx(1.0)

    def test_baseline_composition_matches_paper(self, breakdowns):
        planar, _ = breakdowns
        comp = composition(planar)
        assert comp["clock"] == pytest.approx(0.35, abs=0.01)
        assert comp["leakage"] == pytest.approx(0.20, abs=0.01)

    def test_top_consumers_sorted(self, breakdowns):
        planar, _ = breakdowns
        top = top_consumers(planar, count=6)
        watts = [w for _, w in top]
        assert watts == sorted(watts, reverse=True)

    def test_die_shares_sum_to_one(self, breakdowns):
        _, stacked = breakdowns
        assert sum(die_shares(stacked)) == pytest.approx(1.0)

    def test_herded_die0_share_largest_among_lower(self, breakdowns):
        _, stacked = breakdowns
        shares = die_shares(stacked)
        # Herding plus the even shared split keeps die 0 at or above the rest.
        assert shares[0] >= max(shares[1:]) - 0.02

    def test_format(self, breakdowns):
        planar, stacked = breakdowns
        assert "books: OK" in format_audit(planar)
        assert "die shares" in format_audit(stacked)
