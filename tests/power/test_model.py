"""Tests for the power model and its paper calibration."""

import pytest

from repro.core.activity import NUM_DIES
from repro.power.model import (
    BASELINE_CLOCK_FRACTION,
    BASELINE_CORE_WATTS,
    BASELINE_LEAKAGE_FRACTION,
    CLOCK_3D_POWER_FACTOR,
    PowerModel,
    StackKind,
    calibrate_activity_scale,
)


@pytest.fixture(scope="module")
def calibrated(base_run):
    scale = calibrate_activity_scale(base_run)
    return PowerModel(activity_scale=scale)


class TestCalibration:
    def test_reference_run_hits_45w(self, calibrated, base_run):
        breakdown = calibrated.evaluate(base_run, StackKind.PLANAR_2D)
        assert breakdown.total_watts == pytest.approx(BASELINE_CORE_WATTS, rel=1e-6)

    def test_clock_fraction(self, calibrated, base_run):
        breakdown = calibrated.evaluate(base_run, StackKind.PLANAR_2D)
        assert breakdown.clock_watts == pytest.approx(
            BASELINE_CLOCK_FRACTION * BASELINE_CORE_WATTS
        )

    def test_leakage_fraction(self, calibrated, base_run):
        breakdown = calibrated.evaluate(base_run, StackKind.PLANAR_2D)
        assert breakdown.leakage_watts == pytest.approx(
            BASELINE_LEAKAGE_FRACTION * BASELINE_CORE_WATTS
        )

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            PowerModel(activity_scale=0.0)


class TestEvaluation:
    def test_per_die_sums_to_module_watts(self, calibrated, full_3d_run):
        breakdown = calibrated.evaluate(full_3d_run, StackKind.STACKED_3D)
        for module in breakdown.modules.values():
            assert sum(module.per_die) == pytest.approx(module.watts)
            assert len(module.per_die) == NUM_DIES

    def test_planar_has_single_die(self, calibrated, base_run):
        breakdown = calibrated.evaluate(base_run, StackKind.PLANAR_2D)
        for module in breakdown.modules.values():
            assert len(module.per_die) == 1

    def test_dram_excluded(self, calibrated, base_run):
        breakdown = calibrated.evaluate(base_run, StackKind.PLANAR_2D)
        assert "dram" not in breakdown.modules

    def test_clock_power_scales_with_frequency(self, calibrated, base_run, full_3d_run):
        planar = calibrated.evaluate(base_run, StackKind.PLANAR_2D)
        stacked = calibrated.evaluate(full_3d_run, StackKind.STACKED_3D)
        expected = (
            planar.clock_watts
            * (full_3d_run.clock_ghz / base_run.clock_ghz)
            * CLOCK_3D_POWER_FACTOR
        )
        assert stacked.clock_watts == pytest.approx(expected)

    def test_leakage_unchanged_by_3d(self, calibrated, base_run, full_3d_run):
        """Paper assumption: 3D and herding do not reduce leakage."""
        planar = calibrated.evaluate(base_run, StackKind.PLANAR_2D)
        stacked = calibrated.evaluate(full_3d_run, StackKind.STACKED_3D)
        assert stacked.leakage_watts == planar.leakage_watts

    def test_per_die_totals_include_shared(self, calibrated, full_3d_run):
        breakdown = calibrated.evaluate(full_3d_run, StackKind.STACKED_3D)
        totals = breakdown.per_die_totals()
        assert len(totals) == NUM_DIES
        assert sum(totals) == pytest.approx(breakdown.total_watts)

    def test_format_contains_total(self, calibrated, base_run):
        text = calibrated.evaluate(base_run, StackKind.PLANAR_2D).format()
        assert "TOTAL" in text


class TestPaperShape:
    def test_3d_th_saves_20_to_35_percent(self, calibrated, base_run, full_3d_run):
        """Paper: 15-30% total power saving; mpeg2 sits near 29%."""
        planar = calibrated.evaluate(base_run, StackKind.PLANAR_2D)
        stacked = calibrated.evaluate(full_3d_run, StackKind.STACKED_3D)
        saving = 1.0 - stacked.total_watts / planar.total_watts
        assert 0.15 <= saving <= 0.40

    def test_herding_reduces_die0_less_than_lower_dies(self, calibrated, full_3d_run):
        """Herded activity concentrates power on the top die."""
        breakdown = calibrated.evaluate(full_3d_run, StackKind.STACKED_3D)
        rf = breakdown.modules["register_file"]
        assert rf.per_die[0] > rf.per_die[3]
