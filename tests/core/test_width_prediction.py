"""Tests for the PC-indexed saturating-counter width predictor."""

import pytest
from hypothesis import given, strategies as st

from repro.core.width_prediction import WidthPredictor


class TestConstruction:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            WidthPredictor(table_size=1000)

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            WidthPredictor(counter_bits=0)

    def test_initial_prediction_is_full_width(self):
        """Initializing toward full width makes initial errors safe."""
        predictor = WidthPredictor()
        assert not predictor.predict_low_width(0x1000)


class TestTraining:
    def test_learns_low_width(self):
        predictor = WidthPredictor()
        for _ in range(3):
            predictor.record_and_train(0x1000, predictor.predict_low_width(0x1000), True)
        assert predictor.predict_low_width(0x1000)

    def test_learns_full_width(self):
        predictor = WidthPredictor()
        for _ in range(4):
            predictor.record_and_train(0x1000, True, False)
        assert not predictor.predict_low_width(0x1000)

    def test_hysteresis(self):
        """A single contrary outcome must not flip a saturated counter."""
        predictor = WidthPredictor()
        for _ in range(4):
            predictor.record_and_train(0x1000, False, True)  # saturate low
        predictor.record_and_train(0x1000, True, False)      # one full-width
        assert predictor.predict_low_width(0x1000)

    def test_distinct_pcs_independent(self):
        predictor = WidthPredictor(table_size=1024)
        for _ in range(4):
            predictor.record_and_train(0x1000, False, True)
        assert predictor.predict_low_width(0x1000)
        assert not predictor.predict_low_width(0x1004)

    def test_aliasing_wraps_table(self):
        predictor = WidthPredictor(table_size=16)
        for _ in range(4):
            predictor.record_and_train(0x0, False, True)
        # PC 16 instructions later aliases to the same entry (pc >> 2 & 15).
        assert predictor.predict_low_width(64)


class TestCorrection:
    def test_correction_forces_full_width(self):
        predictor = WidthPredictor()
        for _ in range(4):
            predictor.record_and_train(0x1000, False, True)
        assert predictor.predict_low_width(0x1000)
        predictor.correct_prediction(0x1000)
        assert not predictor.predict_low_width(0x1000)


class TestStats:
    def test_accuracy_accounting(self):
        predictor = WidthPredictor()
        predictor.record_and_train(0, True, True)    # correct
        predictor.record_and_train(4, True, False)   # unsafe
        predictor.record_and_train(8, False, True)   # safe
        predictor.record_and_train(12, False, False) # correct
        stats = predictor.stats
        assert stats.predictions == 4
        assert stats.correct == 2
        assert stats.unsafe_mispredictions == 1
        assert stats.safe_mispredictions == 1
        assert stats.accuracy == 0.5
        assert stats.unsafe_rate == 0.25

    def test_empty_stats(self):
        stats = WidthPredictor().stats
        assert stats.accuracy == 0.0
        assert stats.unsafe_rate == 0.0

    def test_observe_returns_unsafe(self):
        predictor = WidthPredictor()
        for _ in range(4):
            predictor.record_and_train(0x40, False, True)
        # Two-bit hysteresis: the saturated-low counter needs two contrary
        # outcomes before the prediction flips to full width.
        assert predictor.observe(0x40, actual_low=False) is True
        assert predictor.observe(0x40, actual_low=False) is True
        assert predictor.observe(0x40, actual_low=False) is False

    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    def test_stable_behaviour_converges(self, outcomes):
        """On a constant-width instruction the predictor converges."""
        predictor = WidthPredictor()
        constant = outcomes[0]
        for _ in range(8):
            predictor.observe(0x100, constant)
        assert predictor.predict_low_width(0x100) == constant

    @given(st.lists(st.booleans(), min_size=10, max_size=100))
    def test_counts_always_consistent(self, history):
        predictor = WidthPredictor()
        for actual in history:
            predictor.observe(0x80, actual)
        stats = predictor.stats
        assert stats.predictions == len(history)
        assert (stats.correct + stats.unsafe_mispredictions
                + stats.safe_mispredictions) == stats.predictions
