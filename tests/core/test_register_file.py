"""Tests for the word-partitioned register file (Section 3.1)."""

from repro.core.activity import ActivityCounters, NUM_DIES
from repro.core.register_file import PartitionedRegisterFile
from repro.isa.values import to_unsigned


def make_rf():
    counters = ActivityCounters()
    return PartitionedRegisterFile(counters), counters


class TestWrites:
    def test_low_width_write_top_die_only(self):
        rf, counters = make_rf()
        rf.write(3, 42)
        assert counters.module("register_file").top_only == 1

    def test_full_width_write_all_dies(self):
        rf, counters = make_rf()
        rf.write(3, 1 << 40)
        activity = counters.module("register_file")
        assert activity.top_only == 0
        assert activity.per_die == [1] * NUM_DIES

    def test_memoization_follows_writes(self):
        rf, _ = make_rf()
        rf.write(3, 42)
        assert rf.value_is_low(3, 42)
        rf.write(3, 1 << 40)
        assert not rf.value_is_low(3, 1 << 40)

    def test_negative_low_width(self):
        rf, _ = make_rf()
        rf.write(3, to_unsigned(-7))
        assert rf.value_is_low(3, to_unsigned(-7))


class TestReads:
    def test_correct_low_prediction_stays_on_top(self):
        rf, counters = make_rf()
        rf.write(1, 5)
        access = rf.read_group([(1, 5, True)])
        assert not access.stall
        assert access.top_only_reads == 1

    def test_unsafe_misprediction_stalls(self):
        rf, _ = make_rf()
        rf.write(1, 1 << 40)
        access = rf.read_group([(1, 1 << 40, True)])
        assert access.stall
        assert access.top_only_reads == 0

    def test_full_prediction_never_stalls(self):
        rf, _ = make_rf()
        rf.write(1, 1 << 40)
        access = rf.read_group([(1, 1 << 40, False)])
        assert not access.stall

    def test_group_shares_single_stall(self):
        """Multiple unsafe reads in one group -> one stall flag."""
        rf, _ = make_rf()
        rf.write(1, 1 << 40)
        rf.write(2, 1 << 41)
        access = rf.read_group([
            (1, 1 << 40, True),
            (2, 1 << 41, True),
            (3, 7, True),
        ])
        assert access.stall
        assert access.reads == 3

    def test_lazy_memoization_from_value(self):
        """Registers never written derive their memo bit from the value."""
        rf, _ = make_rf()
        access = rf.read_group([(9, 1 << 33, True)])
        assert access.stall

    def test_activity_counts(self):
        rf, counters = make_rf()
        rf.write(1, 5)
        rf.write(2, 1 << 40)
        rf.read_group([(1, 5, True), (2, 1 << 40, False)])
        activity = counters.module("register_file")
        # 2 writes + 2 reads.
        assert activity.total == 4
        # low write + herded read.
        assert activity.top_only == 2
