"""Tests for the partitioned ALU and bypass network (Sections 3.2-3.3)."""

from repro.core.activity import ActivityCounters, NUM_DIES
from repro.core.alu import PartitionedALU
from repro.core.bypass import BypassNetwork


def make_alu():
    counters = ActivityCounters()
    return PartitionedALU(counters), counters


class TestALU:
    def test_full_prediction_uses_all_dies(self):
        alu, _ = make_alu()
        execution = alu.execute(predicted_low=False, operands_low=True, result_low=True)
        assert execution.dies_active == NUM_DIES
        assert not execution.reexecute
        assert execution.input_stall_cycles == 0

    def test_correct_low_prediction_gates(self):
        alu, counters = make_alu()
        execution = alu.execute(predicted_low=True, operands_low=True, result_low=True)
        assert execution.dies_active == 1
        assert counters.module("alu").top_only == 1

    def test_input_misprediction_stalls_one_cycle(self):
        alu, _ = make_alu()
        execution = alu.execute(predicted_low=True, operands_low=False, result_low=False)
        assert execution.input_stall_cycles == 1
        assert not execution.reexecute
        assert alu.input_stalls == 1

    def test_output_misprediction_reexecutes(self):
        """16+16 bits can make 17: low operands, full result."""
        alu, counters = make_alu()
        execution = alu.execute(predicted_low=True, operands_low=True, result_low=False)
        assert execution.reexecute
        assert alu.reexecutions == 1
        # The wasted gated pass plus the full re-execution are both charged.
        assert counters.module("alu").total == 2

    def test_full_prediction_is_always_safe(self):
        """Full-width prediction enables everything: no stall possible."""
        alu, _ = make_alu()
        for operands_low in (True, False):
            for result_low in (True, False):
                execution = alu.execute(False, operands_low, result_low)
                assert execution.input_stall_cycles == 0
                assert not execution.reexecute


class TestBypass:
    def test_low_width_drives_top_die(self):
        counters = ActivityCounters()
        bypass = BypassNetwork(counters)
        assert bypass.broadcast(result_low=True) == 1
        assert counters.module("bypass").top_only == 1

    def test_full_width_drives_all(self):
        counters = ActivityCounters()
        bypass = BypassNetwork(counters)
        assert bypass.broadcast(result_low=False) == NUM_DIES

    def test_mixed_stream_accounting(self):
        counters = ActivityCounters()
        bypass = BypassNetwork(counters)
        for low in (True, True, False, True):
            bypass.broadcast(low)
        activity = counters.module("bypass")
        assert activity.total == 4
        assert activity.top_only == 3
        assert activity.per_die[3] == 1
