"""Tests for per-module, per-die activity accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.core.activity import ActivityCounters, ModuleActivity, NUM_DIES


class TestModuleActivity:
    def test_record_full_stack(self):
        activity = ModuleActivity()
        activity.record(dies_active=NUM_DIES)
        assert activity.total == 1
        assert activity.top_only == 0
        assert activity.per_die == [1, 1, 1, 1]

    def test_record_top_only(self):
        activity = ModuleActivity()
        activity.record(dies_active=1)
        assert activity.top_only == 1
        assert activity.per_die == [1, 0, 0, 0]

    def test_record_partial(self):
        activity = ModuleActivity()
        activity.record(dies_active=2)
        assert activity.per_die == [1, 1, 0, 0]
        assert activity.top_only == 0

    def test_record_count(self):
        activity = ModuleActivity()
        activity.record(dies_active=1, count=5)
        assert activity.total == 5
        assert activity.top_only == 5

    def test_record_die_specific(self):
        activity = ModuleActivity()
        activity.record_die(2)
        assert activity.per_die == [0, 0, 1, 0]
        assert activity.top_only == 0
        activity.record_die(0)
        assert activity.top_only == 1

    def test_bounds(self):
        activity = ModuleActivity()
        with pytest.raises(ValueError):
            activity.record(dies_active=0)
        with pytest.raises(ValueError):
            activity.record(dies_active=NUM_DIES + 1)
        with pytest.raises(ValueError):
            activity.record_die(NUM_DIES)

    def test_herded_fraction(self):
        activity = ModuleActivity()
        activity.record(dies_active=1)
        activity.record(dies_active=4)
        assert activity.herded_fraction == 0.5

    def test_die_activity_fraction(self):
        activity = ModuleActivity()
        activity.record(dies_active=1)
        activity.record(dies_active=4)
        fractions = activity.die_activity_fraction
        assert fractions[0] == 1.0
        assert fractions[3] == 0.5

    @given(st.lists(st.integers(min_value=1, max_value=NUM_DIES), max_size=50))
    def test_invariants(self, events):
        activity = ModuleActivity()
        for dies in events:
            activity.record(dies_active=dies)
        assert activity.total == len(events)
        assert activity.top_only <= activity.total
        assert activity.per_die[0] == activity.total
        # Monotone non-increasing die activity for top-k recording.
        for a, b in zip(activity.per_die, activity.per_die[1:]):
            assert a >= b


class TestActivityCounters:
    def test_module_created_on_demand(self):
        counters = ActivityCounters()
        counters.record("alu", dies_active=1)
        assert counters.module("alu").total == 1

    def test_total_accesses(self):
        counters = ActivityCounters()
        counters.record("a", count=3)
        counters.record("b", count=2)
        assert counters.total_accesses() == 5

    def test_clear(self):
        counters = ActivityCounters()
        counters.record("a")
        counters.clear()
        assert counters.total_accesses() == 0

    def test_merged_with(self):
        a = ActivityCounters()
        a.record("alu", dies_active=1, count=2)
        b = ActivityCounters()
        b.record("alu", dies_active=4, count=3)
        b.record("rob", dies_active=1)
        merged = a.merged_with(b)
        assert merged.module("alu").total == 5
        assert merged.module("alu").top_only == 2
        assert merged.module("rob").total == 1
        # Sources unchanged.
        assert a.module("alu").total == 2
