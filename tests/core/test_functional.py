"""Bit-accuracy tests for the functional partitioned-datapath models."""

import pytest
from hypothesis import given, strategies as st

from repro.core.functional import (
    EncodedCacheLine,
    FunctionalRegisterFile,
    PartitionedAdderFunctional,
)
from repro.isa.values import UpperBitsEncoding, to_unsigned, upper_bits

u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
low16 = st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1)

LINE_BASE = 0x2AAA_0000_1000


class TestPartitionedAdder:
    @given(u64, u64)
    def test_full_width_add_exact(self, a, b):
        adder = PartitionedAdderFunctional()
        trace = adder.add(a, b)
        assert trace.result == (a + b) & ((1 << 64) - 1)
        assert trace.dies_active == 4

    @given(low16, low16)
    def test_gated_add_correct_when_sum_fits(self, a, b):
        adder = PartitionedAdderFunctional()
        ua, ub = to_unsigned(a), to_unsigned(b)
        trace = adder.add(ua, ub, gate_upper=True)
        true_sum = (ua + ub) & ((1 << 64) - 1)
        # Truncation flagged exactly when the gated result is wrong.
        assert trace.truncated == (trace.result != true_sum)
        assert trace.dies_active == 1

    def test_16_plus_16_makes_17(self):
        """The paper's example: adding two low-width values can need 17
        bits — 0x7FFF + 0x7FFF = 0xFFFE is not a 16-bit signed value, so
        the gated add must flag a re-execution."""
        adder = PartitionedAdderFunctional()
        trace = adder.add(0x7FFF, 0x7FFF, gate_upper=True)
        assert trace.truncated
        full = adder.add(0x7FFF, 0x7FFF)
        assert full.result == 0xFFFE
        assert not full.truncated

    def test_carry_crosses_dies(self):
        adder = PartitionedAdderFunctional()
        trace = adder.add(0xFFFF, 1)
        assert trace.result == 0x1_0000
        assert trace.carries[0] == 1  # the d2d via carried

    def test_gated_carry_lost(self):
        adder = PartitionedAdderFunctional()
        trace = adder.add(0xFFFF, 1, gate_upper=True)
        assert trace.truncated
        assert trace.result == 0  # low word wrapped, uppers gated

    @given(u64, u64, st.booleans())
    def test_add_checked_always_correct(self, a, b, predicted_low):
        """Re-execution makes the architectural result always exact."""
        adder = PartitionedAdderFunctional()
        result, _reexecuted = adder.add_checked(a, b, predicted_low)
        assert result == (a + b) & ((1 << 64) - 1)

    @given(u64, u64)
    def test_reexecution_only_on_truncation(self, a, b):
        adder = PartitionedAdderFunctional()
        _, reexecuted = adder.add_checked(a, b, predicted_low=True)
        assert reexecuted == adder.add(a, b, gate_upper=True).truncated

    def test_rejects_wrong_die_count(self):
        with pytest.raises(ValueError):
            PartitionedAdderFunctional(dies=2)


class TestFunctionalRegisterFile:
    @given(u64)
    def test_write_read_roundtrip(self, value):
        rf = FunctionalRegisterFile()
        rf.write(3, value)
        assert rf.read_full(3) == value

    @given(low16)
    def test_low_width_read_from_top_die_exact(self, signed):
        rf = FunctionalRegisterFile()
        value = to_unsigned(signed)
        rf.write(5, value)
        outcome = rf.read_predicted(5, predicted_low=True)
        assert outcome.value == value
        assert outcome.dies_read == 1
        assert not outcome.unsafe

    def test_unsafe_read_detected_and_correct(self):
        rf = FunctionalRegisterFile()
        rf.write(2, 1 << 40)
        outcome = rf.read_predicted(2, predicted_low=True)
        assert outcome.unsafe
        assert outcome.value == 1 << 40
        assert outcome.dies_read == 4

    def test_memoization_bit_tracks_width(self):
        rf = FunctionalRegisterFile()
        rf.write(1, 7)
        assert not rf.memoization_bit(1)
        rf.write(1, 1 << 30)
        assert rf.memoization_bit(1)

    def test_stale_uppers_cleared(self):
        """Low write after a full write must not leak stale upper words."""
        rf = FunctionalRegisterFile()
        rf.write(4, 0xDEAD_BEEF_0000_1234)
        rf.write(4, 5)
        assert rf.read_full(4) == 5
        outcome = rf.read_predicted(4, predicted_low=True)
        assert outcome.value == 5

    @given(st.lists(st.tuples(st.integers(0, 31), u64), min_size=1, max_size=40))
    def test_predicted_full_reads_always_exact(self, writes):
        rf = FunctionalRegisterFile()
        model = {}
        for reg, value in writes:
            rf.write(reg, value)
            model[reg] = value
        for reg, value in model.items():
            assert rf.read_predicted(reg, predicted_low=False).value == value

    def test_bounds(self):
        rf = FunctionalRegisterFile(registers=8)
        with pytest.raises(ValueError):
            rf.write(8, 1)
        with pytest.raises(ValueError):
            rf.read_full(-1)


class TestEncodedCacheLine:
    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            EncodedCacheLine(0x1001)
        line = EncodedCacheLine(LINE_BASE)
        with pytest.raises(ValueError):
            line.store(LINE_BASE + 3, 1)
        with pytest.raises(ValueError):
            line.store(LINE_BASE + 64, 1)

    def test_never_stored_raises(self):
        line = EncodedCacheLine(LINE_BASE)
        with pytest.raises(KeyError):
            line.load(LINE_BASE)

    @given(u64, st.integers(0, 7))
    def test_roundtrip_exact(self, value, slot):
        line = EncodedCacheLine(LINE_BASE)
        addr = LINE_BASE + slot * 8
        line.store(addr, value)
        loaded, _dies = line.load(addr)
        assert loaded == value

    def test_zero_compresses(self):
        line = EncodedCacheLine(LINE_BASE)
        assert line.store(LINE_BASE, 0x42) == 1
        assert line.encoding_of(LINE_BASE) is UpperBitsEncoding.ALL_ZEROS
        _, dies = line.load(LINE_BASE)
        assert dies == 1

    def test_negative_compresses(self):
        line = EncodedCacheLine(LINE_BASE)
        line.store(LINE_BASE + 8, to_unsigned(-9))
        value, dies = line.load(LINE_BASE + 8)
        assert value == to_unsigned(-9)
        assert dies == 1

    def test_near_pointer_compresses(self):
        line = EncodedCacheLine(LINE_BASE)
        addr = LINE_BASE + 16
        pointer = (upper_bits(addr) << 16) | 0xBEE8
        line.store(addr, pointer)
        assert line.encoding_of(addr) is UpperBitsEncoding.SAME_AS_ADDRESS
        value, dies = line.load(addr)
        assert value == pointer
        assert dies == 1

    def test_wide_literal_needs_lower_dies(self):
        line = EncodedCacheLine(LINE_BASE)
        wide = 0x0123_4567_89AB_CDEF
        assert line.store(LINE_BASE + 24, wide) == 4
        value, dies = line.load(LINE_BASE + 24)
        assert value == wide
        assert dies == 4

    def test_compressed_fraction(self):
        line = EncodedCacheLine(LINE_BASE)
        line.store(LINE_BASE, 1)                        # compressed
        line.store(LINE_BASE + 8, 0xDEAD_BEEF_0001_0002)  # literal
        assert line.compressed_fraction() == 0.5

    def test_empty_fraction(self):
        assert EncodedCacheLine(LINE_BASE).compressed_fraction() == 0.0
