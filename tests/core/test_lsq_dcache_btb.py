"""Tests for PAM (3.5), the partial-value cache (3.6), and BTB memoization (3.7)."""

from repro.core.activity import ActivityCounters, NUM_DIES
from repro.core.btb_memoization import MemoizedBTB
from repro.core.dcache_encoding import EncodingScheme, PartialValueCache
from repro.core.direction_split import SplitDirectionPredictorActivity
from repro.core.lsq_pam import PartialAddressMemoization
from repro.isa.values import to_unsigned, upper_bits

STACK_ADDR = 0x7FFF_FFFF_0100
HEAP_ADDR = 0x2AAA_0000_1000


class TestPAM:
    def make(self):
        counters = ActivityCounters()
        return PartialAddressMemoization(counters), counters

    def test_first_broadcast_is_full(self):
        pam, _ = self.make()
        assert not pam.store_broadcast(STACK_ADDR)

    def test_matching_uppers_herd(self):
        pam, counters = self.make()
        pam.store_broadcast(STACK_ADDR)
        assert pam.load_broadcast(STACK_ADDR + 8)
        assert counters.module("store_queue").top_only == 1

    def test_loads_do_not_update_memo(self):
        pam, _ = self.make()
        pam.store_broadcast(STACK_ADDR)
        pam.load_broadcast(HEAP_ADDR)          # mismatch, no update
        assert pam.load_broadcast(STACK_ADDR)  # still matches the store

    def test_stores_update_memo(self):
        pam, _ = self.make()
        pam.store_broadcast(STACK_ADDR)
        pam.store_broadcast(HEAP_ADDR)
        assert not pam.load_broadcast(STACK_ADDR)
        assert pam.load_broadcast(HEAP_ADDR + 16)

    def test_herded_fraction(self):
        pam, _ = self.make()
        pam.store_broadcast(STACK_ADDR)
        pam.load_broadcast(STACK_ADDR + 8)
        pam.load_broadcast(HEAP_ADDR)
        assert abs(pam.herded_fraction - 1 / 3) < 1e-9

    def test_queue_modules_charged(self):
        pam, counters = self.make()
        pam.store_broadcast(STACK_ADDR)   # store searches the load queue
        pam.load_broadcast(STACK_ADDR)    # load searches the store queue
        assert counters.module("load_queue").total == 1
        assert counters.module("store_queue").total == 1


class TestPartialValueCache:
    def make(self, scheme=EncodingScheme.TWO_BIT):
        counters = ActivityCounters()
        return PartialValueCache(counters, scheme=scheme), counters

    def test_store_of_narrow_value_herds(self):
        cache, counters = self.make()
        outcome = cache.record_store(HEAP_ADDR, 42)
        assert outcome.herded
        assert outcome.stall_cycles == 0

    def test_store_of_wide_value_full(self):
        cache, _ = self.make()
        outcome = cache.record_store(HEAP_ADDR, 0xDEAD_BEEF_0001_0002)
        assert not outcome.herded
        assert outcome.dies_active == NUM_DIES

    def test_predicted_low_load_of_compressed_value(self):
        cache, _ = self.make()
        cache.record_store(HEAP_ADDR, 42)
        outcome = cache.record_load(HEAP_ADDR, 42, predicted_low=True)
        assert outcome.herded
        assert outcome.stall_cycles == 0

    def test_unsafe_load_stalls_one_cycle(self):
        cache, _ = self.make()
        wide = 0xDEAD_BEEF_0001_0002
        cache.record_store(HEAP_ADDR, wide)
        outcome = cache.record_load(HEAP_ADDR, wide, predicted_low=True)
        assert outcome.stall_cycles == 1
        assert cache.unsafe_stalls == 1

    def test_full_prediction_never_stalls(self):
        cache, _ = self.make()
        wide = 0xDEAD_BEEF_0001_0002
        cache.record_store(HEAP_ADDR, wide)
        outcome = cache.record_load(HEAP_ADDR, wide, predicted_low=False)
        assert outcome.stall_cycles == 0

    def test_negative_values_compress(self):
        cache, _ = self.make()
        value = to_unsigned(-100)
        cache.record_store(HEAP_ADDR, value)
        outcome = cache.record_load(HEAP_ADDR, value, predicted_low=True)
        assert outcome.herded

    def test_near_pointer_compresses_in_two_bit(self):
        cache, _ = self.make()
        pointer = (upper_bits(HEAP_ADDR) << 16) | 0x42
        cache.record_store(HEAP_ADDR, pointer)
        outcome = cache.record_load(HEAP_ADDR, pointer, predicted_low=True)
        assert outcome.herded

    def test_near_pointer_misses_in_one_bit(self):
        """The ablation scheme only compresses all-zero uppers."""
        cache, _ = self.make(EncodingScheme.ONE_BIT)
        pointer = (upper_bits(HEAP_ADDR) << 16) | 0x42
        cache.record_store(HEAP_ADDR, pointer)
        outcome = cache.record_load(HEAP_ADDR, pointer, predicted_low=True)
        assert outcome.stall_cycles == 1

    def test_one_bit_negative_misses(self):
        cache, _ = self.make(EncodingScheme.ONE_BIT)
        value = to_unsigned(-100)
        cache.record_store(HEAP_ADDR, value)
        outcome = cache.record_load(HEAP_ADDR, value, predicted_low=True)
        assert outcome.stall_cycles == 1

    def test_fill_touches_all_dies(self):
        cache, counters = self.make()
        cache.record_fill()
        assert counters.module("l1_dcache").per_die == [1] * NUM_DIES

    def test_herded_fraction_metric(self):
        cache, _ = self.make()
        cache.record_store(HEAP_ADDR, 1)
        cache.record_load(HEAP_ADDR, 1, predicted_low=True)
        cache.record_load(HEAP_ADDR + 8, 1 << 40, predicted_low=True)
        assert cache.herded_load_fraction == 0.5


class TestBTBMemoization:
    def test_near_target_herds(self):
        counters = ActivityCounters()
        btb = MemoizedBTB(counters)
        lookup = btb.read_target(0x40_0000, 0x40_0100)
        assert lookup.herded
        assert lookup.stall_cycles == 0

    def test_far_target_stalls(self):
        counters = ActivityCounters()
        btb = MemoizedBTB(counters)
        lookup = btb.read_target(0x40_0000, 0x7F00_0000_0000)
        assert not lookup.herded
        assert lookup.stall_cycles == 1
        assert btb.far_target_stalls == 1

    def test_herded_fraction(self):
        counters = ActivityCounters()
        btb = MemoizedBTB(counters)
        btb.read_target(0x40_0000, 0x40_0100)
        btb.read_target(0x40_0004, 0x7F00_0000_0000)
        assert btb.herded_fraction == 0.5


class TestDirectionSplit:
    def test_prediction_touches_top_half(self):
        counters = ActivityCounters()
        split = SplitDirectionPredictorActivity(counters)
        split.record_prediction()
        activity = counters.module("dir_predictor")
        assert activity.per_die == [1, 1, 0, 0]

    def test_update_touches_everything(self):
        counters = ActivityCounters()
        split = SplitDirectionPredictorActivity(counters)
        split.record_update()
        assert counters.module("dir_predictor").per_die == [1, 1, 1, 1]

    def test_top_half_fraction(self):
        counters = ActivityCounters()
        split = SplitDirectionPredictorActivity(counters)
        split.record_prediction()
        split.record_update()
        # top touches 4 of 6 total.
        assert abs(split.top_half_fraction - 4 / 6) < 1e-9
