"""Tests for the entry-stacked scheduler (Section 3.4)."""

import pytest

from repro.core.activity import ActivityCounters, NUM_DIES
from repro.core.scheduler_allocation import AllocationPolicy, EntryStackedScheduler


def make(policy=AllocationPolicy.TOP_FIRST, entries=32):
    counters = ActivityCounters()
    return EntryStackedScheduler(counters, entries=entries, policy=policy), counters


class TestConstruction:
    def test_rejects_non_multiple(self):
        with pytest.raises(ValueError):
            make(entries=30)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            make(entries=0)


class TestAllocateRelease:
    def test_top_first_fills_top_die(self):
        scheduler, _ = make()
        dies = [scheduler.allocate() for _ in range(8)]
        assert dies == [0] * 8

    def test_top_first_overflows_downward(self):
        scheduler, _ = make()
        dies = [scheduler.allocate() for _ in range(10)]
        assert dies[:8] == [0] * 8
        assert dies[8:] == [1, 1]

    def test_full_scheduler_returns_none(self):
        scheduler, _ = make()
        for _ in range(32):
            assert scheduler.allocate() is not None
        assert scheduler.allocate() is None

    def test_round_robin_spreads(self):
        scheduler, _ = make(AllocationPolicy.ROUND_ROBIN)
        dies = [scheduler.allocate() for _ in range(8)]
        assert dies == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_release_frees_entry(self):
        scheduler, _ = make()
        die = scheduler.allocate()
        scheduler.release(die)
        assert scheduler.occupancy == [0, 0, 0, 0]

    def test_release_empty_rejected(self):
        scheduler, _ = make()
        with pytest.raises(ValueError):
            scheduler.release(0)

    def test_release_bad_die_rejected(self):
        scheduler, _ = make()
        with pytest.raises(ValueError):
            scheduler.release(7)


class TestOccupancyGeometry:
    def test_die_for_occupancy_top_first(self):
        scheduler, _ = make()
        assert scheduler.die_for_occupancy(1) == 0
        assert scheduler.die_for_occupancy(8) == 0
        assert scheduler.die_for_occupancy(9) == 1
        assert scheduler.die_for_occupancy(32) == 3

    def test_die_for_occupancy_round_robin(self):
        scheduler, _ = make(AllocationPolicy.ROUND_ROBIN)
        assert scheduler.die_for_occupancy(1) == 0
        assert scheduler.die_for_occupancy(2) == 1
        assert scheduler.die_for_occupancy(5) == 0

    def test_occupancy_clamps(self):
        scheduler, _ = make()
        assert scheduler.die_for_occupancy(1000) == 3

    def test_rejects_zero_occupancy(self):
        scheduler, _ = make()
        with pytest.raises(ValueError):
            scheduler.die_for_occupancy(0)

    def test_occupied_dies_top_first(self):
        scheduler, _ = make()
        assert scheduler.occupied_dies(0) == 1   # bus stub
        assert scheduler.occupied_dies(1) == 1
        assert scheduler.occupied_dies(8) == 1
        assert scheduler.occupied_dies(9) == 2
        assert scheduler.occupied_dies(32) == 4

    def test_occupied_dies_round_robin(self):
        scheduler, _ = make(AllocationPolicy.ROUND_ROBIN)
        assert scheduler.occupied_dies(1) == 1
        assert scheduler.occupied_dies(3) == 3
        assert scheduler.occupied_dies(20) == 4


class TestBroadcastGating:
    def test_low_occupancy_broadcast_is_herded(self):
        scheduler, counters = make()
        assert scheduler.broadcast_with_occupancy(4) == 1
        assert counters.module("scheduler").top_only == 1

    def test_high_occupancy_hits_all_dies(self):
        scheduler, counters = make()
        assert scheduler.broadcast_with_occupancy(32) == NUM_DIES

    def test_round_robin_rotates_dies(self):
        scheduler, counters = make(AllocationPolicy.ROUND_ROBIN)
        for _ in range(4):
            scheduler.broadcast_with_occupancy(1)
        # The single occupied entry rotates, spreading power evenly.
        assert counters.module("scheduler").per_die == [1, 1, 1, 1]

    def test_mean_dies_metric(self):
        scheduler, _ = make()
        scheduler.broadcast_with_occupancy(4)    # 1 die
        scheduler.broadcast_with_occupancy(20)   # 3 dies
        assert scheduler.mean_dies_per_broadcast == 2.0

    def test_herding_beats_round_robin(self):
        """The ablation claim: TOP_FIRST keeps broadcasts high in the stack."""
        top, top_counters = make(AllocationPolicy.TOP_FIRST)
        rr, rr_counters = make(AllocationPolicy.ROUND_ROBIN)
        for occupancy in (1, 2, 3, 4, 5, 6):
            top.broadcast_with_occupancy(occupancy)
            rr.broadcast_with_occupancy(occupancy)
        assert (top_counters.module("scheduler").herded_fraction
                > rr_counters.module("scheduler").herded_fraction)
