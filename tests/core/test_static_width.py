"""Tests for profile-based static and oracle width prediction."""

import pytest

from repro.core.static_width import (
    OracleWidthPredictor,
    StaticWidthPredictor,
    actual_width_class,
    build_width_profile,
)
from repro.isa.instruction import TraceInstruction
from repro.isa.opcodes import OpClass
from repro.workloads.suite import generate


def alu(pc, result, src_values=(1,)):
    return TraceInstruction(pc=pc, op=OpClass.IALU, srcs=(1,) * len(src_values),
                            dst=2, result=result, src_values=src_values)


def load(pc, value):
    return TraceInstruction(pc=pc, op=OpClass.LOAD, srcs=(1,), dst=2,
                            result=value, src_values=(1 << 40,),
                            mem_addr=0x1000, mem_value=value)


class TestActualWidthClass:
    def test_load_classifies_data_not_address(self):
        """Wide address operand, narrow data: loads classify the data."""
        assert actual_width_class(load(0, 5))

    def test_store_classifies_data(self):
        store = TraceInstruction(pc=0, op=OpClass.STORE, srcs=(1, 2),
                                 src_values=(1 << 40, 7),
                                 mem_addr=0x1000, mem_value=7)
        assert actual_width_class(store)

    def test_alu_includes_operands(self):
        assert not actual_width_class(alu(0, 5, src_values=(1 << 40,)))
        assert actual_width_class(alu(0, 5, src_values=(3,)))


class TestProfile:
    def test_majority_wins(self):
        insts = [alu(0x40, 1)] * 3 + [alu(0x40, 1 << 40)] * 2
        profile = build_width_profile(insts)
        assert profile[0x40] is True

    def test_tie_resolves_full_width(self):
        insts = [alu(0x40, 1), alu(0x40, 1 << 40)]
        profile = build_width_profile(insts)
        assert profile[0x40] is False

    def test_non_datapath_excluded(self):
        branch = TraceInstruction(pc=0x80, op=OpClass.BRANCH, taken=False)
        profile = build_width_profile([branch])
        assert 0x80 not in profile


class TestStaticPredictor:
    def test_uses_profile(self):
        predictor = StaticWidthPredictor({0x40: True, 0x44: False})
        assert predictor.predict_low_width(0x40)
        assert not predictor.predict_low_width(0x44)

    def test_unprofiled_defaults_full(self):
        assert not StaticWidthPredictor({}).predict_low_width(0x999)

    def test_correction_is_sticky(self):
        predictor = StaticWidthPredictor({0x40: True})
        predictor.correct_prediction(0x40)
        assert not predictor.predict_low_width(0x40)

    def test_stats_accounting(self):
        predictor = StaticWidthPredictor({0x40: True})
        assert predictor.observe(0x40, actual_low=False)  # unsafe
        predictor.correct_prediction(0x40)                # hardware override
        assert not predictor.observe(0x40, actual_low=False)
        stats = predictor.stats
        assert stats.predictions == 2
        assert stats.unsafe_mispredictions == 1


class TestOracle:
    def test_never_wrong(self):
        oracle = OracleWidthPredictor()
        for actual in (True, False, True, True):
            assert oracle.observe(0x40, actual) is False
        assert oracle.stats.accuracy == 1.0

    def test_prime_controls_prediction(self):
        oracle = OracleWidthPredictor()
        oracle.prime(True)
        assert oracle.predict_low_width(0)
        oracle.prime(False)
        assert not oracle.predict_low_width(0)


class TestEndToEnd:
    def test_variants_in_simulator(self):
        from dataclasses import replace
        from repro.cpu.config import WidthPredictorKind, thermal_herding_config
        from repro.cpu.pipeline import simulate

        trace = generate("adpcm", length=4000)
        results = {}
        for kind in WidthPredictorKind:
            config = replace(thermal_herding_config(), width_predictor_kind=kind)
            results[kind] = simulate(trace, config, warmup=1000)

        oracle = results[WidthPredictorKind.ORACLE]
        assert oracle.width_stats.accuracy == 1.0
        assert oracle.stalls.total == 0
        dynamic = results[WidthPredictorKind.DYNAMIC]
        static = results[WidthPredictorKind.STATIC]
        # The oracle bounds both practical schemes.
        assert dynamic.width_stats.accuracy <= 1.0
        assert static.width_stats.accuracy <= 1.0
        # All variants produce the same committed work.
        assert dynamic.instructions == static.instructions == oracle.instructions
