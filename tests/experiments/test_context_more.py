"""Deeper tests for the experiment context's caching and wiring."""

import pytest

from repro.experiments.context import (
    CONFIG_STACKS,
    CORE_COUNT,
    ExperimentContext,
    ExperimentSettings,
    REFERENCE_BENCHMARK,
)
from repro.power.model import StackKind

TINY = ExperimentSettings(
    trace_length=3_000,
    warmup=900,
    benchmarks=("mpeg2", "adpcm"),
    thermal_grid=32,
)


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(TINY)


class TestSettings:
    def test_benchmark_list_explicit(self, context):
        assert context.settings.benchmark_list() == ["mpeg2", "adpcm"]

    def test_benchmark_list_default_is_suite(self):
        from repro.workloads.suite import benchmark_names
        assert ExperimentSettings().benchmark_list() == benchmark_names()

    def test_reference_benchmark_is_peak_power_app(self):
        assert REFERENCE_BENCHMARK == "mpeg2"

    def test_two_cores(self):
        assert CORE_COUNT == 2


class TestCaching:
    def test_solver_cached_per_stack(self, context):
        assert context.solver(StackKind.PLANAR_2D) is context.solver(StackKind.PLANAR_2D)
        assert context.solver(StackKind.PLANAR_2D) is not context.solver(StackKind.STACKED_3D)

    def test_floorplans_match_stack(self, context):
        assert context.floorplan(StackKind.PLANAR_2D).dies == 1
        assert context.floorplan(StackKind.STACKED_3D).dies == 4

    def test_runs_keyed_by_config(self, context):
        base = context.run("adpcm", "Base")
        full = context.run("adpcm", "3D")
        assert base is not full
        assert base.config_name != full.config_name


class TestPowerWiring:
    def test_power_uses_correct_stack(self, context):
        planar = context.power("adpcm", "Base")
        stacked = context.power("adpcm", "3D")
        assert planar.stack is StackKind.PLANAR_2D
        assert stacked.stack is StackKind.STACKED_3D

    def test_chip_power_is_two_cores(self, context):
        per_core = context.power("adpcm", "Base").total_watts
        assert context.chip_power_watts("adpcm", "Base") == pytest.approx(2 * per_core)

    def test_all_config_labels_have_stacks(self, context):
        assert set(context.configs) == set(CONFIG_STACKS)


class TestThermalWiring:
    def test_thermal_runs_both_stacks(self, context):
        planar = context.thermal("adpcm", "Base")
        stacked = context.thermal("adpcm", "3D")
        assert len(planar.die_layers) == 1
        assert len(stacked.die_layers) == 4

    def test_power_scale_scales_temperature(self, context):
        breakdown = context.power("adpcm", "Base")
        cool = context.thermal_for_breakdowns([breakdown] * 2, StackKind.PLANAR_2D,
                                              power_scale=0.5)
        hot = context.thermal_for_breakdowns([breakdown] * 2, StackKind.PLANAR_2D,
                                             power_scale=1.5)
        assert hot.peak_temperature > cool.peak_temperature
