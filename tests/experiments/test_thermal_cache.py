"""On-disk caching of thermal results (geometry + power-grid keyed)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.cache import ResultCache, thermal_key
from repro.experiments.context import ExperimentContext, ExperimentSettings
from repro.floorplan.stacked import stacked_floorplan
from repro.thermal.solver import ThermalSolver
from repro.thermal.stack import stacked_3d_stack

TINY = ExperimentSettings(
    trace_length=2_000,
    warmup=500,
    benchmarks=("adpcm",),
    thermal_grid=16,
)


def _solver():
    return ThermalSolver(stacked_3d_stack(0.25), stacked_floorplan(), nx=16, ny=16)


def _grids(solver, seed=3):
    ny, nx = solver.chip_grid_shape()
    rng = np.random.default_rng(seed)
    return [rng.random((ny, nx)) for _ in range(solver.floorplan.dies)]


class TestThermalDiskCache:
    def test_warm_context_serves_from_disk(self, tmp_path):
        solver = _solver()
        grids = _grids(solver)

        cold = ExperimentContext(TINY, jobs=1, cache=ResultCache(tmp_path))
        first = cold.solve_thermal(solver, [grids])[0]
        assert cold.stats.thermal_solved == 1
        assert cold.stats.thermal_disk_hits == 0

        warm = ExperimentContext(TINY, jobs=1, cache=ResultCache(tmp_path))
        second = warm.solve_thermal(_solver(), [grids])[0]
        assert warm.stats.thermal_solved == 0
        assert warm.stats.thermal_disk_hits == 1
        assert second.peak_temperature == pytest.approx(
            first.peak_temperature, abs=0.0
        )
        for a, b in zip(first.layer_temps, second.layer_temps):
            assert np.array_equal(a, b)
        assert second.block_peak == first.block_peak

    def test_key_sensitive_to_power_and_geometry(self, tmp_path):
        solver = _solver()
        grids = _grids(solver)
        base = thermal_key(solver, grids)

        assert thermal_key(_solver(), [g.copy() for g in grids]) == base

        hotter = [g * 1.01 for g in grids]
        assert thermal_key(solver, hotter) != base

        other = ThermalSolver(stacked_3d_stack(0.50), stacked_floorplan(), nx=16, ny=16)
        assert thermal_key(other, grids) != base

    def test_mixed_batch_solves_only_misses(self, tmp_path):
        solver = _solver()
        a, b = _grids(solver, seed=1), _grids(solver, seed=2)

        context = ExperimentContext(TINY, jobs=1, cache=ResultCache(tmp_path))
        context.solve_thermal(solver, [a])
        assert context.stats.thermal_solved == 1

        results = context.solve_thermal(solver, [a, b])
        assert context.stats.thermal_disk_hits == 1
        assert context.stats.thermal_solved == 2
        assert results[0].peak_temperature != results[1].peak_temperature

    def test_uncached_context_still_solves(self):
        context = ExperimentContext(TINY, jobs=1, cache=None)
        solver = _solver()
        results = context.solve_thermal(solver, [_grids(solver)])
        assert len(results) == 1
        assert context.stats.thermal_solved == 1
        assert context.stats.thermal_disk_hits == 0
