"""Cross-process cache coordination and the size high-water mark.

Claim files must guarantee "N concurrent cold starts, one simulation"
without ever blocking progress: a dead or wedged claim holder is taken
over, a slow one is waited for (bounded), and losing a claim race only
ever means *waiting* for the winner's bytes, never recomputing them.
The ``REPRO_CACHE_MAX_MB`` cap must hold after every store while never
evicting the entry a concurrent reader just touched.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.experiments import cache as cache_module
from repro.experiments.cache import (
    CLAIM_SUFFIX,
    ENV_CACHE_DIR,
    ENV_CACHE_MAX_MB,
    ResultCache,
    SizeLedger,
    trace_store_key,
)
from repro.experiments.context import ExperimentContext, ExperimentSettings

TINY = ExperimentSettings(
    trace_length=2_000,
    warmup=500,
    benchmarks=("adpcm", "susan"),
    thermal_grid=32,
)

KEY = hashlib.sha256(b"coordination-test").hexdigest()


def _reap() -> int:
    """A pid that was real a moment ago and is certainly dead now."""
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


def _plant_claim(cache: ResultCache, key: str, pid: int, ts: float) -> None:
    path = cache._claim_path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({"pid": pid, "ts": ts}), encoding="utf-8")


class TestClaimProtocol:
    def test_exactly_one_winner(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.try_claim(KEY) is True
        assert cache.try_claim(KEY) is False  # already held
        cache.release_claim(KEY)
        assert cache.try_claim(KEY) is True  # reclaimable after release

    def test_claim_carries_pid_and_timestamp(self, tmp_path):
        cache = ResultCache(tmp_path)
        before = time.time()
        cache.try_claim(KEY)
        holder = cache.claim_holder(KEY)
        assert holder["pid"] == os.getpid()
        assert before - 1 <= holder["ts"] <= time.time() + 1

    def test_release_never_deletes_a_peers_claim(self, tmp_path):
        cache = ResultCache(tmp_path)
        _plant_claim(cache, KEY, pid=1, ts=time.time())  # init: alive, not ours
        cache.release_claim(KEY)
        assert cache.claim_holder(KEY) is not None

    def test_staleness(self, tmp_path):
        cache = ResultCache(tmp_path)
        _plant_claim(cache, KEY, pid=_reap(), ts=time.time())
        assert cache.claim_stale(KEY)  # dead holder: stale regardless of age
        _plant_claim(cache, KEY, pid=os.getpid(), ts=time.time())
        assert not cache.claim_stale(KEY)  # alive and fresh
        _plant_claim(cache, KEY, pid=os.getpid(), ts=time.time() - 10_000)
        assert cache.claim_stale(KEY, max_age_s=3600)  # alive but wedged
        assert not cache.claim_stale("0" * 64)  # unclaimed is not stale

    def test_garbled_claim_is_reclaimable(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache._claim_path(KEY)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("not json", encoding="utf-8")
        assert cache.claim_holder(KEY) == {}
        cache.release_claim(KEY)  # garbled claims may be cleaned by anyone
        assert cache.claim_holder(KEY) is None

    def test_sweep_claims(self, tmp_path):
        cache = ResultCache(tmp_path)
        _plant_claim(cache, KEY, pid=_reap(), ts=time.time())
        live = hashlib.sha256(b"live").hexdigest()
        _plant_claim(cache, live, pid=os.getpid(), ts=time.time())
        assert cache.sweep_claims() == 1
        assert cache.claim_holder(KEY) is None
        assert cache.claim_holder(live) is not None


class TestClaimCoordination:
    def test_waiter_adopts_peer_result(self, tmp_path):
        """The claim loser waits and simulates nothing — one simulation total."""
        produced = ExperimentContext(TINY, jobs=1, cache=None).run("adpcm", "Base")
        shared = ResultCache(tmp_path)
        context = ExperimentContext(TINY, jobs=1, cache=ResultCache(tmp_path))
        context.claim_poll_s = 0.01
        key = context._cache_key("adpcm", context._config_for("Base"))
        assert shared.try_claim(key)  # a "peer process" wins the claim

        def peer_finishes():
            time.sleep(0.4)
            shared.store(key, produced)
            shared.release_claim(key)

        thread = threading.Thread(target=peer_finishes)
        thread.start()
        try:
            result = context.run("adpcm", "Base")
        finally:
            thread.join()
        assert context.stats.simulated == 0
        assert context.stats.claim_waits == 1
        assert context.stats.claim_dedup == 1
        assert result.cycles == produced.cycles

    def test_dead_holder_is_taken_over(self, tmp_path):
        context = ExperimentContext(TINY, jobs=1, cache=ResultCache(tmp_path))
        context.claim_poll_s = 0.01
        key = context._cache_key("adpcm", context._config_for("Base"))
        _plant_claim(context.cache, key, pid=_reap(), ts=time.time())
        context.run("adpcm", "Base")
        assert context.stats.simulated == 1
        assert context.stats.claim_takeovers == 1
        assert context.cache.claim_holder(key) is None  # released after store
        takeovers = [e for e in context.stats.events
                     if e["event"] == "claim_takeover"]
        assert takeovers[0]["reason"] == "stale"

    def test_expired_wait_simulates_anyway(self, tmp_path):
        """A live-but-slow holder delays the loser, never starves it."""
        context = ExperimentContext(TINY, jobs=1, cache=ResultCache(tmp_path))
        context.claim_poll_s = 0.01
        context.claim_wait_s = 0.2
        context.claim_stale_s = 10_000.0
        key = context._cache_key("adpcm", context._config_for("Base"))
        _plant_claim(context.cache, key, pid=1, ts=time.time())  # init: alive
        start = time.monotonic()
        context.run("adpcm", "Base")
        assert time.monotonic() - start >= 0.2
        assert context.stats.simulated == 1
        takeovers = [e for e in context.stats.events
                     if e["event"] == "claim_takeover"]
        assert takeovers[0]["reason"] == "wait_expired"
        # The live peer's claim is not ours to delete.
        assert context.cache.claim_holder(key) is not None

    def test_two_processes_one_simulation(self, tmp_path):
        """The acceptance scenario: concurrent cold starts, one simulation."""
        script = tmp_path / "cold_start.py"
        script.write_text(
            "import json, sys\n"
            "from repro.experiments.cache import ResultCache\n"
            "from repro.experiments.context import (\n"
            "    ExperimentContext, ExperimentSettings)\n"
            "settings = ExperimentSettings(trace_length=2_000, warmup=500,\n"
            "                              benchmarks=('adpcm',),\n"
            "                              thermal_grid=32)\n"
            "context = ExperimentContext(settings, jobs=1,\n"
            "                            cache=ResultCache(sys.argv[1]))\n"
            "context.claim_poll_s = 0.01\n"
            "context.run('adpcm', 'Base')\n"
            "with open(sys.argv[2], 'w') as stream:\n"
            "    json.dump(context.stats.as_dict(), stream)\n",
            encoding="utf-8",
        )
        env = dict(os.environ)
        repo_src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
        cache_dir = tmp_path / "shared-cache"
        procs = []
        for index in range(2):
            stats_file = tmp_path / f"stats-{index}.json"
            procs.append((stats_file, subprocess.Popen(
                [sys.executable, str(script), str(cache_dir), str(stats_file)],
                env=env,
            )))
        stats = []
        for stats_file, proc in procs:
            assert proc.wait(timeout=180) == 0
            stats.append(json.loads(stats_file.read_text()))
        assert sum(s["simulated"] for s in stats) == 1
        served_from_peer = sum(
            s["claim_dedup"] + s["sim_disk_hits"] for s in stats
        )
        assert served_from_peer >= 1
        assert ResultCache(cache_dir).claims() == []  # nothing left behind


def _filler(cache: ResultCache, name: str, size: int = 4096) -> str:
    """Store an incompressible payload and return its key."""
    key = hashlib.sha256(name.encode("utf-8")).hexdigest()
    cache.store(key, os.urandom(size))
    return key


class TestSizeCap:
    def test_cap_holds_after_every_store(self, tmp_path):
        cache = ResultCache(tmp_path, max_mb=16 / 1024)  # 16 KiB
        for index in range(12):
            _filler(cache, f"entry-{index}")
            assert cache.size_bytes() <= cache.max_bytes
        assert cache.evictions_size > 0
        assert len(cache.entries()) >= 1

    def test_oldest_mtime_goes_first(self, tmp_path):
        cache = ResultCache(tmp_path, max_mb=10 / 1024)
        old = _filler(cache, "old")
        new = _filler(cache, "new")
        os.utime(cache._path(old), (time.time() - 100, time.time() - 100))
        _filler(cache, "trigger")  # pushes the cache over 10 KiB
        assert not cache._path(old).exists()
        assert cache._path(new).exists()

    def test_load_touch_protects_the_entry_being_read(self, tmp_path):
        """An entry a reader just touched is the freshest, never the victim."""
        cache = ResultCache(tmp_path, max_mb=10 / 1024)
        hot = _filler(cache, "hot")
        cold = _filler(cache, "cold")
        past = time.time() - 100
        os.utime(cache._path(hot), (past, past))
        os.utime(cache._path(cold), (past + 1, past + 1))
        assert cache.load(hot, expected_type=bytes) is not None  # touches it
        _filler(cache, "trigger")
        assert cache._path(hot).exists()  # read-touch saved it...
        assert not cache._path(cold).exists()  # ...so its neighbour went

    def test_just_stored_entry_is_protected(self, tmp_path):
        cache = ResultCache(tmp_path, max_mb=2 / 1024)  # smaller than one entry
        key = _filler(cache, "solo", size=4096)
        assert cache._path(key).exists()

    def test_unbounded_without_cap(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.max_bytes is None
        for index in range(8):
            _filler(cache, f"entry-{index}")
        assert len(cache.entries()) == 8
        assert cache.evictions_size == 0

    def test_cap_from_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_CACHE_MAX_MB, "1.5")
        assert ResultCache(tmp_path).max_bytes == int(1.5 * 1024 * 1024)
        monkeypatch.delenv(ENV_CACHE_MAX_MB)
        assert ResultCache(tmp_path).max_bytes is None

    def test_invalid_cap_env_warns(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_CACHE_MAX_MB, "lots")
        with pytest.warns(RuntimeWarning, match="lots"):
            cache = ResultCache(tmp_path)
        assert cache.max_bytes is None

    @pytest.mark.parametrize("raw", ["0", "-4", "-0.5"])
    def test_nonpositive_cap_env_warns_and_disables(
        self, tmp_path, monkeypatch, raw
    ):
        """A zero or negative cap can never admit a store: warn, run
        unbounded — instead of silently evicting everything."""
        monkeypatch.setenv(ENV_CACHE_MAX_MB, raw)
        with pytest.warns(RuntimeWarning, match="positive"):
            cache = ResultCache(tmp_path)
        assert cache.max_bytes is None
        _filler(cache, "survives")
        assert len(cache.entries()) == 1

    def test_explicit_cap_beats_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_CACHE_MAX_MB, "100")
        assert ResultCache(tmp_path, max_mb=1).max_bytes == 1024 * 1024


class TestPrune:
    def test_prune_sweeps_everything(self, tmp_path):
        cache = ResultCache(tmp_path, max_mb=8 / 1024)
        cache.max_bytes = None  # fill past the cap without store-time eviction
        for index in range(4):
            _filler(cache, f"entry-{index}")
        cache.max_bytes = 8 * 1024
        _plant_claim(cache, KEY, pid=_reap(), ts=time.time())
        (cache.version_dir / "ab").mkdir(parents=True, exist_ok=True)
        tmp_file = cache.version_dir / "ab" / "x.pkl.gz.99999.tmp"
        tmp_file.write_bytes(b"scratch")
        os.utime(tmp_file, (time.time() - 7200, time.time() - 7200))
        report = cache.prune()
        assert report["evicted"] >= 1
        assert report["claims"] == 1
        assert report["tmp_files"] == 1
        assert report["size_bytes"] <= cache.max_bytes

    def test_cache_prune_cli(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path))
        cache = ResultCache(tmp_path)
        _filler(cache, "entry")
        _plant_claim(cache, KEY, pid=_reap(), ts=time.time())
        assert main(["cache", "prune"]) == 0
        out = capsys.readouterr().out
        assert "1 abandoned claim(s)" in out
        assert "cache size now" in out
        assert ResultCache(tmp_path).claims() == []


def _du(cache: ResultCache) -> int:
    """Ground-truth disk usage of every accounted entry (results + traces)."""
    return cache.size_bytes() + cache.trace_store().size_bytes()


class TestSizeLedger:
    """The sharded ledger must agree with ``du`` exactly, at all times."""

    def test_total_matches_disk_exactly(self, tmp_path):
        cache = ResultCache(tmp_path)
        for index in range(6):
            _filler(cache, f"entry-{index}", size=1000 + index)
        assert cache.ledger.total_bytes() == _du(cache)
        assert cache.ledger.entry_count() == 6

    def test_replacement_store_is_not_double_counted(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = hashlib.sha256(b"replace-me").hexdigest()
        cache.store(key, os.urandom(2048))
        cache.store(key, os.urandom(8192))  # same key, new size
        assert cache.ledger.entry_count() == 1
        assert cache.ledger.total_bytes() == _du(cache)

    def test_load_eviction_updates_ledger(self, tmp_path):
        cache = ResultCache(tmp_path)
        bad = _filler(cache, "bad")
        good = _filler(cache, "good")
        cache._path(bad).write_bytes(b"garbage")
        assert cache.load(bad, expected_type=bytes) is None  # evicts it
        assert cache.evictions == 1
        state = cache.ledger.state()
        assert f"result:{bad}" not in state
        assert f"result:{good}" in state
        assert cache.ledger.total_bytes() == _du(cache)

    def test_compaction_is_exact_and_clears_shards(self, tmp_path):
        cache = ResultCache(tmp_path)
        for index in range(5):
            _filler(cache, f"entry-{index}")
        ledger = cache.ledger
        before = ledger.total_bytes()
        gen = ledger._read_checkpoint().get("gen", 0)
        assert ledger.shard_record_count() > 0
        assert ledger.compact()
        assert ledger.shard_record_count() == 0
        assert ledger._read_checkpoint()["gen"] == gen + 1
        assert ledger.total_bytes() == before == _du(cache)

    def test_appends_trigger_automatic_compaction(self, tmp_path, monkeypatch):
        monkeypatch.setattr(cache_module, "LEDGER_COMPACT_BYTES", 512)
        cache = ResultCache(tmp_path)
        for index in range(12):
            _filler(cache, f"entry-{index}")
        assert cache.ledger.compactions > 0
        assert cache.ledger.total_bytes() == _du(cache)

    def test_torn_trailing_append_is_skipped(self, tmp_path):
        """A writer killed mid-append leaves half a line; readers must
        ignore it and repair must restore exactness."""
        cache = ResultCache(tmp_path)
        for index in range(3):
            _filler(cache, f"entry-{index}")
        ledger = cache.ledger
        before = ledger.total_bytes()
        gen = ledger._read_checkpoint().get("gen", 0)
        with open(ledger._shard_path(0, gen), "ab") as stream:
            stream.write(b'{"op": "store", "kind": "result", "key": "dead')
        assert ledger.total_bytes() == before
        assert cache.repair_ledger() == _du(cache)
        assert ledger.total_bytes() == _du(cache)

    def test_stale_generation_shards_never_double_count(self, tmp_path):
        """Crash between checkpoint rotation and shard deletion: the
        leftover old-generation shards must be ignored, then cleaned."""
        cache = ResultCache(tmp_path)
        for index in range(4):
            _filler(cache, f"entry-{index}")
        ledger = cache.ledger
        before = ledger.total_bytes()
        folded = {p.name: p.read_bytes() for p in ledger._shard_files()}
        assert folded
        assert ledger.compact()
        # Resurrect the folded shards, as if the compactor died after the
        # os.replace of the checkpoint but before deleting them.
        for name, blob in folded.items():
            (ledger.dir / name).write_bytes(blob)
        assert ledger.total_bytes() == before  # not before * 2
        assert ledger.compact()  # the next pass sweeps the orphans
        assert all(ledger._shard_gen(p) is None or ledger._shard_gen(p) > 0
                   for p in ledger._shard_files())

    def test_repair_after_out_of_band_deletion(self, tmp_path):
        cache = ResultCache(tmp_path)
        gone = _filler(cache, "gone")
        _filler(cache, "kept")
        cache._path(gone).unlink()  # deleted behind the ledger's back
        assert cache.ledger.total_bytes() > _du(cache)  # stale, by design
        assert cache.repair_ledger() == _du(cache)
        assert cache.ledger.entry_count() == 1

    def test_bootstrap_of_pre_ledger_directory(self, tmp_path):
        """A cache populated before the ledger existed (or whose ledger
        was deleted) is brought exact by one scan on first touch."""
        seed = ResultCache(tmp_path)
        for index in range(3):
            _filler(seed, f"entry-{index}")
        shutil.rmtree(seed.version_dir / "ledger")
        cache = ResultCache(tmp_path)
        assert cache.ledger.total_bytes() == _du(cache)
        assert cache.ledger.rebuilds == 1

    def test_stale_ledger_locks_are_broken(self, tmp_path):
        ledger = SizeLedger(tmp_path / "ledger", shards=1)
        ledger.dir.mkdir(parents=True, exist_ok=True)
        dead = ledger._lock_path("shard-00")
        dead.write_text(json.dumps({"pid": _reap(), "ts": time.time()}),
                        encoding="utf-8")
        assert ledger.record_store("result", KEY, 123)
        assert ledger.total_bytes() == 123
        garbled = ledger._lock_path("shard-00")
        garbled.write_text("not json", encoding="utf-8")
        assert ledger.record_unlink("result", KEY)
        assert ledger.total_bytes() == 0

    def test_store_hot_path_never_scans_the_directory(self, tmp_path):
        """The acceptance criterion: zero directory-wide stat scans per
        store — the ledger answers the size question."""
        cache = ResultCache(tmp_path, max_mb=16 / 1024)
        _filler(cache, "warmup")  # ledger initialized here

        def scan(*args, **kwargs):
            raise AssertionError("directory scan on the store hot path")

        cache.entries = scan
        cache._scan_entries = scan
        cache.trace_store().entries = scan
        for index in range(10):  # crosses the cap: eviction path included
            _filler(cache, f"entry-{index}")
        assert cache.evictions_size > 0


class TestLedgerEviction:
    def test_live_claim_is_never_a_victim(self, tmp_path):
        cache = ResultCache(tmp_path)
        claimed = _filler(cache, "claimed")
        doomed = _filler(cache, "doomed")
        past = time.time() - 100
        os.utime(cache._path(claimed), (past, past))  # oldest: first victim
        assert cache.try_claim(claimed)  # ...but a live process holds it
        cache.max_bytes = 10 * 1024
        _filler(cache, "trigger")
        assert cache._path(claimed).exists()
        assert not cache._path(doomed).exists()
        assert cache.ledger.total_bytes() == _du(cache)

    def test_trace_entries_evicted_before_results(self, tmp_path):
        from repro.isa.compiled import compile_trace
        from repro.workloads.suite import fingerprint, generate

        cache = ResultCache(tmp_path)
        results = [_filler(cache, f"result-{i}") for i in range(2)]
        store = cache.trace_store()
        key = trace_store_key(fingerprint("adpcm", 300))
        npy = store.store(key, compile_trace(generate("adpcm", length=300)))
        assert npy is not None
        # Results are made *older* than the trace; the trace must still
        # be the first victim — kind outranks age.
        past = time.time() - 100
        for result_key in results:
            os.utime(cache._path(result_key), (past, past))
        cache.max_bytes = cache.ledger.total_bytes() - 1
        assert cache.enforce_size_cap() == 1
        assert not npy.exists()
        assert not store._meta_path(key).exists()
        assert all(cache._path(k).exists() for k in results)
        assert cache.ledger.total_bytes() == _du(cache)

    def test_vanished_entry_heals_the_ledger(self, tmp_path):
        """An evictor that died between unlink and record leaves a ghost
        ledger entry; enforcement heals it instead of evicting live data."""
        cache = ResultCache(tmp_path)
        ghost = _filler(cache, "ghost")
        kept = _filler(cache, "kept")
        cache._path(ghost).unlink()
        cache.max_bytes = 6 * 1024  # ledger thinks ~8 KiB; disk holds ~4
        assert cache.enforce_size_cap() == 0  # healing alone makes room
        assert cache._path(kept).exists()
        assert cache.ledger.entry_count() == 1
        assert cache.ledger.total_bytes() == _du(cache)


class TestMetricsSnapshot:
    def test_snapshot_reflects_live_context(self, tmp_path):
        from repro.experiments.report import stats_payload

        context = ExperimentContext(TINY, jobs=1, cache=ResultCache(tmp_path))
        context.run("adpcm", "Base")
        snapshot = context.metrics()
        section = snapshot["cache"]
        assert section["enabled"] is True
        assert section["size_bytes"] == _du(context.cache)
        assert section["counters"]["stores"] == context.cache.stores >= 1
        assert section["trace_entries"] == 1
        assert snapshot["run"]["simulated"] == 1
        payload = stats_payload(context, wall_s=1.25, fast=True)
        assert payload["wall_s"] == 1.25
        assert payload["fast"] is True
        assert payload["simulated"] == 1
        assert payload["metrics"]["size_bytes"] == section["size_bytes"]
        json.dumps(payload)  # the --log-json path needs it serializable

    def test_snapshot_without_context_uses_env_cache(self, tmp_path, monkeypatch):
        from repro.experiments.metrics import metrics_snapshot

        monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path))
        _filler(ResultCache(tmp_path), "entry", size=2000)
        snapshot = metrics_snapshot()
        assert snapshot["cache"]["entries"] == 1
        assert snapshot["cache"]["result_entries"] == 1
        assert snapshot["cache"]["trace_entries"] == 0
        assert snapshot["cache"]["ledger"]["shards"] >= 1


class TestLedgerStress:
    def test_multiprocess_stores_stay_exact_and_capped(self, tmp_path):
        """N concurrent writers under a tight cap: the ledger total must
        equal du exactly at quiescence, the watermark must hold, and a
        claimed entry must survive every eviction pass."""
        script = tmp_path / "writer.py"
        script.write_text(
            "import hashlib, os, sys\n"
            "from repro.experiments.cache import ResultCache\n"
            "cache = ResultCache(sys.argv[1], max_mb=32 / 1024)\n"
            "for i in range(10):\n"
            "    key = hashlib.sha256(\n"
            "        f'{sys.argv[2]}-{i}'.encode()).hexdigest()\n"
            "    cache.store(key, os.urandom(3000))\n",
            encoding="utf-8",
        )
        env = dict(os.environ)
        repo_src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
        cache_dir = tmp_path / "shared-cache"
        parent = ResultCache(cache_dir, max_mb=32 / 1024)
        pinned = _filler(parent, "pinned", size=3000)
        assert parent.try_claim(pinned)  # held by this live process
        procs = [
            subprocess.Popen(
                [sys.executable, str(script), str(cache_dir), f"writer-{i}"],
                env=env,
            )
            for i in range(3)
        ]
        for proc in procs:
            assert proc.wait(timeout=120) == 0
        cache = ResultCache(cache_dir, max_mb=32 / 1024)
        assert cache._path(pinned).exists()
        assert cache.ledger.total_bytes() == _du(cache)
        assert cache.ledger.total_bytes() <= cache.max_bytes
        assert cache.ledger.compact()
        assert cache.ledger.total_bytes() == _du(cache)

    def test_kill_mid_run_recovers(self, tmp_path):
        """SIGKILL a writer mid-store: whatever half-state it leaves
        (torn appends, stale locks), repair restores exactness and
        subsequent appends are not blocked."""
        script = tmp_path / "loop.py"
        script.write_text(
            "import hashlib, itertools, os, sys\n"
            "from repro.experiments.cache import ResultCache\n"
            "cache = ResultCache(sys.argv[1])\n"
            "for i in itertools.count():\n"
            "    key = hashlib.sha256(f'victim-{i}'.encode()).hexdigest()\n"
            "    cache.store(key, os.urandom(2048))\n",
            encoding="utf-8",
        )
        env = dict(os.environ)
        repo_src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
        cache_dir = tmp_path / "cache"
        proc = subprocess.Popen(
            [sys.executable, str(script), str(cache_dir)], env=env)
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if len(ResultCache(cache_dir).entries()) >= 3:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("writer made no progress before the kill")
        finally:
            proc.kill()
            proc.wait(timeout=30)
        cache = ResultCache(cache_dir)
        assert cache.repair_ledger() == _du(cache)
        _filler(cache, "after-the-crash")  # appends still work
        assert cache.ledger.total_bytes() == _du(cache)
