"""Cross-process cache coordination and the size high-water mark.

Claim files must guarantee "N concurrent cold starts, one simulation"
without ever blocking progress: a dead or wedged claim holder is taken
over, a slow one is waited for (bounded), and losing a claim race only
ever means *waiting* for the winner's bytes, never recomputing them.
The ``REPRO_CACHE_MAX_MB`` cap must hold after every store while never
evicting the entry a concurrent reader just touched.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.experiments.cache import (
    CLAIM_SUFFIX,
    ENV_CACHE_DIR,
    ENV_CACHE_MAX_MB,
    ResultCache,
)
from repro.experiments.context import ExperimentContext, ExperimentSettings

TINY = ExperimentSettings(
    trace_length=2_000,
    warmup=500,
    benchmarks=("adpcm", "susan"),
    thermal_grid=32,
)

KEY = hashlib.sha256(b"coordination-test").hexdigest()


def _reap() -> int:
    """A pid that was real a moment ago and is certainly dead now."""
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


def _plant_claim(cache: ResultCache, key: str, pid: int, ts: float) -> None:
    path = cache._claim_path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({"pid": pid, "ts": ts}), encoding="utf-8")


class TestClaimProtocol:
    def test_exactly_one_winner(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.try_claim(KEY) is True
        assert cache.try_claim(KEY) is False  # already held
        cache.release_claim(KEY)
        assert cache.try_claim(KEY) is True  # reclaimable after release

    def test_claim_carries_pid_and_timestamp(self, tmp_path):
        cache = ResultCache(tmp_path)
        before = time.time()
        cache.try_claim(KEY)
        holder = cache.claim_holder(KEY)
        assert holder["pid"] == os.getpid()
        assert before - 1 <= holder["ts"] <= time.time() + 1

    def test_release_never_deletes_a_peers_claim(self, tmp_path):
        cache = ResultCache(tmp_path)
        _plant_claim(cache, KEY, pid=1, ts=time.time())  # init: alive, not ours
        cache.release_claim(KEY)
        assert cache.claim_holder(KEY) is not None

    def test_staleness(self, tmp_path):
        cache = ResultCache(tmp_path)
        _plant_claim(cache, KEY, pid=_reap(), ts=time.time())
        assert cache.claim_stale(KEY)  # dead holder: stale regardless of age
        _plant_claim(cache, KEY, pid=os.getpid(), ts=time.time())
        assert not cache.claim_stale(KEY)  # alive and fresh
        _plant_claim(cache, KEY, pid=os.getpid(), ts=time.time() - 10_000)
        assert cache.claim_stale(KEY, max_age_s=3600)  # alive but wedged
        assert not cache.claim_stale("0" * 64)  # unclaimed is not stale

    def test_garbled_claim_is_reclaimable(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache._claim_path(KEY)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("not json", encoding="utf-8")
        assert cache.claim_holder(KEY) == {}
        cache.release_claim(KEY)  # garbled claims may be cleaned by anyone
        assert cache.claim_holder(KEY) is None

    def test_sweep_claims(self, tmp_path):
        cache = ResultCache(tmp_path)
        _plant_claim(cache, KEY, pid=_reap(), ts=time.time())
        live = hashlib.sha256(b"live").hexdigest()
        _plant_claim(cache, live, pid=os.getpid(), ts=time.time())
        assert cache.sweep_claims() == 1
        assert cache.claim_holder(KEY) is None
        assert cache.claim_holder(live) is not None


class TestClaimCoordination:
    def test_waiter_adopts_peer_result(self, tmp_path):
        """The claim loser waits and simulates nothing — one simulation total."""
        produced = ExperimentContext(TINY, jobs=1, cache=None).run("adpcm", "Base")
        shared = ResultCache(tmp_path)
        context = ExperimentContext(TINY, jobs=1, cache=ResultCache(tmp_path))
        context.claim_poll_s = 0.01
        key = context._cache_key("adpcm", context._config_for("Base"))
        assert shared.try_claim(key)  # a "peer process" wins the claim

        def peer_finishes():
            time.sleep(0.4)
            shared.store(key, produced)
            shared.release_claim(key)

        thread = threading.Thread(target=peer_finishes)
        thread.start()
        try:
            result = context.run("adpcm", "Base")
        finally:
            thread.join()
        assert context.stats.simulated == 0
        assert context.stats.claim_waits == 1
        assert context.stats.claim_dedup == 1
        assert result.cycles == produced.cycles

    def test_dead_holder_is_taken_over(self, tmp_path):
        context = ExperimentContext(TINY, jobs=1, cache=ResultCache(tmp_path))
        context.claim_poll_s = 0.01
        key = context._cache_key("adpcm", context._config_for("Base"))
        _plant_claim(context.cache, key, pid=_reap(), ts=time.time())
        context.run("adpcm", "Base")
        assert context.stats.simulated == 1
        assert context.stats.claim_takeovers == 1
        assert context.cache.claim_holder(key) is None  # released after store
        takeovers = [e for e in context.stats.events
                     if e["event"] == "claim_takeover"]
        assert takeovers[0]["reason"] == "stale"

    def test_expired_wait_simulates_anyway(self, tmp_path):
        """A live-but-slow holder delays the loser, never starves it."""
        context = ExperimentContext(TINY, jobs=1, cache=ResultCache(tmp_path))
        context.claim_poll_s = 0.01
        context.claim_wait_s = 0.2
        context.claim_stale_s = 10_000.0
        key = context._cache_key("adpcm", context._config_for("Base"))
        _plant_claim(context.cache, key, pid=1, ts=time.time())  # init: alive
        start = time.monotonic()
        context.run("adpcm", "Base")
        assert time.monotonic() - start >= 0.2
        assert context.stats.simulated == 1
        takeovers = [e for e in context.stats.events
                     if e["event"] == "claim_takeover"]
        assert takeovers[0]["reason"] == "wait_expired"
        # The live peer's claim is not ours to delete.
        assert context.cache.claim_holder(key) is not None

    def test_two_processes_one_simulation(self, tmp_path):
        """The acceptance scenario: concurrent cold starts, one simulation."""
        script = tmp_path / "cold_start.py"
        script.write_text(
            "import json, sys\n"
            "from repro.experiments.cache import ResultCache\n"
            "from repro.experiments.context import (\n"
            "    ExperimentContext, ExperimentSettings)\n"
            "settings = ExperimentSettings(trace_length=2_000, warmup=500,\n"
            "                              benchmarks=('adpcm',),\n"
            "                              thermal_grid=32)\n"
            "context = ExperimentContext(settings, jobs=1,\n"
            "                            cache=ResultCache(sys.argv[1]))\n"
            "context.claim_poll_s = 0.01\n"
            "context.run('adpcm', 'Base')\n"
            "with open(sys.argv[2], 'w') as stream:\n"
            "    json.dump(context.stats.as_dict(), stream)\n",
            encoding="utf-8",
        )
        env = dict(os.environ)
        repo_src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
        cache_dir = tmp_path / "shared-cache"
        procs = []
        for index in range(2):
            stats_file = tmp_path / f"stats-{index}.json"
            procs.append((stats_file, subprocess.Popen(
                [sys.executable, str(script), str(cache_dir), str(stats_file)],
                env=env,
            )))
        stats = []
        for stats_file, proc in procs:
            assert proc.wait(timeout=180) == 0
            stats.append(json.loads(stats_file.read_text()))
        assert sum(s["simulated"] for s in stats) == 1
        served_from_peer = sum(
            s["claim_dedup"] + s["sim_disk_hits"] for s in stats
        )
        assert served_from_peer >= 1
        assert ResultCache(cache_dir).claims() == []  # nothing left behind


def _filler(cache: ResultCache, name: str, size: int = 4096) -> str:
    """Store an incompressible payload and return its key."""
    key = hashlib.sha256(name.encode("utf-8")).hexdigest()
    cache.store(key, os.urandom(size))
    return key


class TestSizeCap:
    def test_cap_holds_after_every_store(self, tmp_path):
        cache = ResultCache(tmp_path, max_mb=16 / 1024)  # 16 KiB
        for index in range(12):
            _filler(cache, f"entry-{index}")
            assert cache.size_bytes() <= cache.max_bytes
        assert cache.evictions_size > 0
        assert len(cache.entries()) >= 1

    def test_oldest_mtime_goes_first(self, tmp_path):
        cache = ResultCache(tmp_path, max_mb=10 / 1024)
        old = _filler(cache, "old")
        new = _filler(cache, "new")
        os.utime(cache._path(old), (time.time() - 100, time.time() - 100))
        _filler(cache, "trigger")  # pushes the cache over 10 KiB
        assert not cache._path(old).exists()
        assert cache._path(new).exists()

    def test_load_touch_protects_the_entry_being_read(self, tmp_path):
        """An entry a reader just touched is the freshest, never the victim."""
        cache = ResultCache(tmp_path, max_mb=10 / 1024)
        hot = _filler(cache, "hot")
        cold = _filler(cache, "cold")
        past = time.time() - 100
        os.utime(cache._path(hot), (past, past))
        os.utime(cache._path(cold), (past + 1, past + 1))
        assert cache.load(hot, expected_type=bytes) is not None  # touches it
        _filler(cache, "trigger")
        assert cache._path(hot).exists()  # read-touch saved it...
        assert not cache._path(cold).exists()  # ...so its neighbour went

    def test_just_stored_entry_is_protected(self, tmp_path):
        cache = ResultCache(tmp_path, max_mb=2 / 1024)  # smaller than one entry
        key = _filler(cache, "solo", size=4096)
        assert cache._path(key).exists()

    def test_unbounded_without_cap(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.max_bytes is None
        for index in range(8):
            _filler(cache, f"entry-{index}")
        assert len(cache.entries()) == 8
        assert cache.evictions_size == 0

    def test_cap_from_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_CACHE_MAX_MB, "1.5")
        assert ResultCache(tmp_path).max_bytes == int(1.5 * 1024 * 1024)
        monkeypatch.setenv(ENV_CACHE_MAX_MB, "0")
        assert ResultCache(tmp_path).max_bytes is None
        monkeypatch.delenv(ENV_CACHE_MAX_MB)
        assert ResultCache(tmp_path).max_bytes is None

    def test_invalid_cap_env_warns(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_CACHE_MAX_MB, "lots")
        with pytest.warns(RuntimeWarning, match="lots"):
            cache = ResultCache(tmp_path)
        assert cache.max_bytes is None

    def test_explicit_cap_beats_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_CACHE_MAX_MB, "100")
        assert ResultCache(tmp_path, max_mb=1).max_bytes == 1024 * 1024


class TestPrune:
    def test_prune_sweeps_everything(self, tmp_path):
        cache = ResultCache(tmp_path, max_mb=8 / 1024)
        cache.max_bytes = None  # fill past the cap without store-time eviction
        for index in range(4):
            _filler(cache, f"entry-{index}")
        cache.max_bytes = 8 * 1024
        _plant_claim(cache, KEY, pid=_reap(), ts=time.time())
        (cache.version_dir / "ab").mkdir(parents=True, exist_ok=True)
        tmp_file = cache.version_dir / "ab" / "x.pkl.gz.99999.tmp"
        tmp_file.write_bytes(b"scratch")
        os.utime(tmp_file, (time.time() - 7200, time.time() - 7200))
        report = cache.prune()
        assert report["evicted"] >= 1
        assert report["claims"] == 1
        assert report["tmp_files"] == 1
        assert report["size_bytes"] <= cache.max_bytes

    def test_cache_prune_cli(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path))
        cache = ResultCache(tmp_path)
        _filler(cache, "entry")
        _plant_claim(cache, KEY, pid=_reap(), ts=time.time())
        assert main(["cache", "prune"]) == 0
        out = capsys.readouterr().out
        assert "1 abandoned claim(s)" in out
        assert "cache size now" in out
        assert ResultCache(tmp_path).claims() == []
