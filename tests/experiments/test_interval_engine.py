"""The interval co-simulation engine: grouping, caching, pool identity."""

import numpy as np
import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.context import (
    CONFIG_STACKS,
    ExperimentContext,
    ExperimentSettings,
    TransientRequest,
)
from repro.experiments.interval import (
    IntervalPowerSchedule,
    IntervalPowerTrace,
    extract_interval_trace,
    run_interval,
)
from repro.power.model import StackKind
from repro.thermal.solver import clear_factorization_cache
from repro.thermal.transient import STEP_FACTORIZATION_STATS, step_matrix_key

SETTINGS = ExperimentSettings(
    trace_length=3_000,
    warmup=800,
    benchmarks=("mpeg2",),
    thermal_grid=16,
)
INTERVAL = 700
DT = 20e-3
DURATION = 0.4


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(SETTINGS, jobs=1, cache=None)


@pytest.fixture(scope="module")
def sweep(context):
    clear_factorization_cache()
    return run_interval(
        context,
        interval_insts=INTERVAL,
        dt_s=DT,
        duration_s=DURATION,
    )


class TestSweep:
    def test_one_step_factorization_per_key(self, context, sweep):
        # 6 configs x 2 scenarios collapse onto exactly the distinct
        # (geometry, capacities, dt) step-matrix keys — one per stack.
        keys = {
            step_matrix_key(context.solver(stack), DT)
            for stack in (StackKind.PLANAR_2D, StackKind.STACKED_3D)
        }
        assert len(keys) == 2
        assert STEP_FACTORIZATION_STATS.factorizations == len(keys)
        assert context.stats.transient_groups == len(keys)
        assert context.stats.transient_runs == 2 * len(context.configs)

    def test_rows_cover_all_configs(self, context, sweep):
        assert [row.config for row in sweep.rows] == list(context.configs)
        for row in sweep.rows:
            assert row.throttled_peak_k <= row.free_peak_k
            assert 0.0 <= row.throttle_duty <= 1.0

    def test_throttling_caps_the_peak(self, sweep):
        for row in sweep.rows:
            if row.free_peak_k > row.ceiling_k:
                assert row.throttled_peak_k < row.free_peak_k
                assert row.throttle_duty > 0.0

    def test_format_is_deterministic(self, context, sweep):
        text = sweep.format()
        assert text == sweep.format()
        for label in context.configs:
            assert label in text


class TestExtraction:
    def test_disk_cache_round_trip(self, tmp_path):
        ctx = ExperimentContext(SETTINGS, jobs=1, cache=ResultCache(tmp_path))
        cold = extract_interval_trace(ctx, "mpeg2", "3D", INTERVAL)
        assert ctx.stats.interval_disk_hits == 0
        assert ctx.stats.intervals_extracted == len(cold)
        warm = extract_interval_trace(ctx, "mpeg2", "3D", INTERVAL)
        assert ctx.stats.interval_disk_hits == 1
        assert ctx.stats.intervals_extracted == len(cold)  # unchanged
        assert isinstance(warm, IntervalPowerTrace)
        assert np.array_equal(warm.time_ns, cold.time_ns)
        assert np.array_equal(warm.chip_watts, cold.chip_watts)
        for a, b in zip(warm.die_grids, cold.die_grids):
            assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_trace_matches_aggregate_power(self, context):
        # Interval chip power weighted by interval runtime must average
        # to the aggregate steady-state chip power of the same run.
        trace = extract_interval_trace(context, "mpeg2", "Base", INTERVAL)
        mean_watts = float(
            (trace.chip_watts * trace.time_ns).sum() / trace.time_ns.sum()
        )
        assert mean_watts == pytest.approx(
            context.chip_power_watts("mpeg2", "Base"), rel=1e-9
        )


class TestPoolIdentity:
    def test_pool_matches_inline(self, context):
        traces = {
            label: extract_interval_trace(context, "mpeg2", label, INTERVAL)
            for label in ("Base", "3D")
        }

        def requests():
            out = []
            for label, trace in traces.items():
                ceiling = (
                    context.solver(CONFIG_STACKS[label]).stack.ambient_k + 10.0
                )
                for dt_s in (DT, DT / 2):
                    out.append(TransientRequest(
                        stack=CONFIG_STACKS[label],
                        schedule=IntervalPowerSchedule(
                            trace, pass_s=0.2, ceiling_k=ceiling
                        ),
                        dt_s=dt_s,
                        duration_s=DURATION,
                    ))
            return out

        inline = context.transient_many(requests())

        pooled_ctx = ExperimentContext(SETTINGS, jobs=2, cache=None)
        pooled_ctx.thermal_parallel_min_groups = 1
        pooled_ctx._solvers = context._solvers  # same geometry objects
        pooled = pooled_ctx.transient_many(requests())
        assert pooled_ctx.stats.transient_worker_groups == 4

        for (res_a, stats_a), (res_b, stats_b) in zip(inline, pooled):
            assert res_a.peak_k == res_b.peak_k
            assert stats_a == stats_b
            assert all(
                np.array_equal(a, b)
                for a, b in zip(
                    res_a.final_layer_temps, res_b.final_layer_temps
                )
            )

    def test_plain_callables_stay_inline(self, context):
        solver = context.solver(StackKind.PLANAR_2D)
        ny, nx = solver.chip_grid_shape()
        grids = [np.full((ny, nx), 1.0)]
        ctx = ExperimentContext(SETTINGS, jobs=2, cache=None)
        ctx.thermal_parallel_min_groups = 1
        ctx.transient_many([
            TransientRequest(
                stack=StackKind.PLANAR_2D,
                schedule=lambda t: grids,  # unpicklable: must not pool
                dt_s=DT * (1 + i),
                duration_s=DURATION,
            )
            for i in range(2)
        ])
        assert ctx.stats.transient_worker_groups == 0
        assert ctx.stats.transient_groups == 2
