"""Tests for the transient step-response experiment."""

import pytest

from repro.experiments import ExperimentContext, ExperimentSettings
from repro.experiments.transient_response import run_transient_response

TINY = ExperimentSettings(
    trace_length=4_000,
    warmup=1_200,
    benchmarks=("mpeg2",),
    thermal_grid=32,
)


@pytest.fixture(scope="module")
def result():
    context = ExperimentContext(TINY)
    return run_transient_response(context, dt_s=50e-3, duration_s=12.0)


class TestTransientResponse:
    def test_both_reach_90pct(self, result):
        assert result.planar.time_to_90pct_s is not None
        assert result.stacked.time_to_90pct_s is not None

    def test_3d_heats_faster(self, result):
        """Thinned dies carry less heat capacity per watt."""
        assert result.stacked.time_to_90pct_s < result.planar.time_to_90pct_s

    def test_steady_peaks_sane(self, result):
        assert 330.0 < result.planar.steady_peak_k < 420.0
        assert result.stacked.steady_peak_k > result.planar.steady_peak_k - 5.0

    def test_format(self, result):
        text = result.format()
        assert "step response" in text
        assert "ms" in text
