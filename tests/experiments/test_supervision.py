"""Deadline supervision and adversarial injection: hangs must cost one
timeout, mid-simulation faults must never leak partial state.

PR 3 proved the engine survives *crashes*; these tests prove it survives
the nastier failure modes — a worker that never returns (deadlock /
livelock), a worker that dies halfway through the simulation loop with
activity state partially written, and a SuperLU thermal solve that hangs
or dies in its supervised subprocess.  Every recovery path must produce
results identical to a clean serial run.
"""

from __future__ import annotations

import time
from datetime import datetime

import numpy as np
import pytest

from repro.experiments import faults
from repro.experiments.context import (
    ENV_TASK_TIMEOUT,
    ENV_THERMAL_SUBPROC,
    ExperimentContext,
    ExperimentSettings,
)

TINY = ExperimentSettings(
    trace_length=2_000,
    warmup=500,
    benchmarks=("adpcm", "susan"),
    thermal_grid=32,
)

PAIRS = [("adpcm", "Base"), ("adpcm", "TH"), ("susan", "Base"), ("susan", "TH")]

#: Hard wall-clock budget for every supervised-recovery test: far above
#: the configured deadlines, far below "blocked forever".
RECOVERY_BUDGET_S = 60.0


def _fields(result):
    return {
        "benchmark": result.benchmark,
        "config": result.config_name,
        "instructions": result.instructions,
        "cycles": result.cycles,
        "cpi_stack": result.cpi_stack,
        "herding": result.herding,
        "caches": {
            name: (stats.accesses, stats.misses)
            for name, stats in result.cache_stats.items()
        },
    }


def _supervised_context(tmp_path, monkeypatch, *, timeout_s=3.0, jobs=2):
    token_dir = tmp_path / "fault-tokens"
    monkeypatch.setenv(faults.ENV_FAULT_DIR, str(token_dir))
    context = ExperimentContext(TINY, jobs=jobs, cache=None)
    context.task_timeout_s = timeout_s
    context.thermal_timeout_s = timeout_s
    context.retry_backoff_s = 0.01
    return context, token_dir


class TestHangSupervision:
    def test_hung_worker_recovers_within_deadline(self, tmp_path, monkeypatch):
        """A sleep-forever worker costs one timeout, not the whole batch."""
        context, token_dir = _supervised_context(tmp_path, monkeypatch)
        faults.arm_worker_hangs(token_dir, 1)
        start = time.monotonic()
        context.prefetch(PAIRS)
        elapsed = time.monotonic() - start
        assert elapsed < RECOVERY_BUDGET_S
        assert faults.pending_tokens(token_dir) == []  # the hang happened
        assert context.stats.task_timeouts >= 1
        assert context.stats.pool_restarts >= 1
        assert context.stats.simulated == len(PAIRS)

        serial = ExperimentContext(TINY, jobs=1, cache=None)
        for pair in PAIRS:
            assert _fields(context.run(*pair)) == _fields(serial.run(*pair)), pair

    def test_timeout_event_recorded_with_detail(self, tmp_path, monkeypatch):
        context, token_dir = _supervised_context(tmp_path, monkeypatch)
        faults.arm_worker_hangs(token_dir, 1)
        context.prefetch(PAIRS)
        timeouts = [e for e in context.stats.events if e["event"] == "task_timeout"]
        assert timeouts and timeouts[0]["timeout_s"] == 3.0
        assert timeouts[0]["running"] is True  # a hang, not a queue stall
        restarts = [e for e in context.stats.events if e["event"] == "pool_restart"]
        assert any(e["reason"] == "hung" for e in restarts)

    def test_repeated_hangs_exhaust_attempts_and_go_serial(
        self, tmp_path, monkeypatch
    ):
        """More hang tokens than the attempt budget: serial fallback wins."""
        context, token_dir = _supervised_context(tmp_path, monkeypatch,
                                                 timeout_s=1.5)
        context.max_task_attempts = 2
        faults.arm_worker_hangs(token_dir, 8)
        context.prefetch(PAIRS)
        assert context.stats.simulated == len(PAIRS)
        assert context.stats.task_timeouts >= 2
        serial = ExperimentContext(TINY, jobs=1, cache=None)
        for pair in PAIRS:
            assert _fields(context.run(*pair)) == _fields(serial.run(*pair)), pair

    def test_no_deadline_by_default(self):
        assert ExperimentContext(TINY, cache=None).task_timeout_s is None

    def test_deadline_from_environment(self, monkeypatch):
        monkeypatch.setenv(ENV_TASK_TIMEOUT, "7.5")
        assert ExperimentContext(TINY, cache=None).task_timeout_s == 7.5

    def test_invalid_deadline_env_warns(self, monkeypatch):
        monkeypatch.setenv(ENV_TASK_TIMEOUT, "soon")
        with pytest.warns(RuntimeWarning, match="soon"):
            context = ExperimentContext(TINY, cache=None)
        assert context.task_timeout_s is None


class TestMidSimulationFaults:
    def test_midsim_kill_recovers_byte_identical(self, tmp_path, monkeypatch):
        """Death at instruction 500 — partial activity state — still recovers."""
        context, token_dir = _supervised_context(tmp_path, monkeypatch)
        faults.arm_midsim_faults(token_dir, 1, "kill", at_instruction=500)
        context.prefetch(PAIRS)
        assert faults.pending_tokens(token_dir) == []
        assert context.stats.pool_restarts >= 1
        assert context.stats.simulated == len(PAIRS)
        serial = ExperimentContext(TINY, jobs=1, cache=None)
        for pair in PAIRS:
            assert _fields(context.run(*pair)) == _fields(serial.run(*pair)), pair

    def test_midsim_hang_recovers_via_deadline(self, tmp_path, monkeypatch):
        """A worker that wedges *inside* the loop is reaped by the deadline."""
        context, token_dir = _supervised_context(tmp_path, monkeypatch)
        faults.arm_midsim_faults(token_dir, 1, "hang", at_instruction=500)
        start = time.monotonic()
        context.prefetch(PAIRS)
        assert time.monotonic() - start < RECOVERY_BUDGET_S
        assert faults.pending_tokens(token_dir) == []
        assert context.stats.task_timeouts >= 1
        assert context.stats.simulated == len(PAIRS)
        serial = ExperimentContext(TINY, jobs=1, cache=None)
        for pair in PAIRS:
            assert _fields(context.run(*pair)) == _fields(serial.run(*pair)), pair

    def test_midsim_rejects_unknown_action(self, tmp_path):
        with pytest.raises(ValueError, match="explode"):
            faults.arm_midsim_faults(tmp_path, 1, "explode")

    def test_fault_hook_is_clean_in_this_process(self):
        """Arming tokens never touches the parent's pipeline hook."""
        from repro.cpu import pipeline

        assert pipeline.FAULT_HOOK is None


class TestThermalSupervision:
    def test_subprocess_solve_bit_identical(self):
        """Routed-through-subprocess thermal maps match in-process ones."""
        supervised = ExperimentContext(TINY, jobs=1, cache=None)
        supervised.thermal_subproc_cells = 1  # route everything
        inprocess = ExperimentContext(TINY, jobs=1, cache=None)
        a = supervised.thermal("adpcm", "Base")
        b = inprocess.thermal("adpcm", "Base")
        assert supervised.stats.thermal_subproc_solves >= 1
        assert supervised.stats.thermal_subproc_fallbacks == 0
        assert a.block_peak == b.block_peak
        assert a.block_mean == b.block_mean
        assert all(
            np.array_equal(x, y) for x, y in zip(a.layer_temps, b.layer_temps)
        )

    def test_hung_thermal_subprocess_falls_back_in_process(
        self, tmp_path, monkeypatch
    ):
        """A wedged solver subprocess costs one timeout, then solves locally."""
        context, token_dir = _supervised_context(tmp_path, monkeypatch,
                                                 timeout_s=1.5, jobs=1)
        context.thermal_subproc_cells = 1
        faults.arm_worker_hangs(token_dir, 1)
        with pytest.warns(RuntimeWarning, match="thermal"):
            result = context.thermal("adpcm", "Base")
        assert context.stats.thermal_subproc_fallbacks >= 1
        clean = ExperimentContext(TINY, jobs=1, cache=None)
        assert result.block_peak == clean.thermal("adpcm", "Base").block_peak

    def test_threshold_from_environment(self, monkeypatch):
        from repro.experiments.supervised import (
            MIN_SUBPROC_CELLS,
            default_subproc_cells,
        )

        monkeypatch.setenv(ENV_THERMAL_SUBPROC, "500000")
        assert ExperimentContext(TINY, cache=None).thermal_subproc_cells == 500_000
        # Unset: the RAM-calibrated default, never below the floor (which
        # keeps every fast-test grid in-process).
        monkeypatch.delenv(ENV_THERMAL_SUBPROC)
        calibrated = ExperimentContext(TINY, cache=None).thermal_subproc_cells
        assert calibrated == default_subproc_cells()
        assert calibrated >= MIN_SUBPROC_CELLS
        # Explicit opt-out values disable supervision entirely.
        for value in ("0", "off", "no", "false", "none"):
            monkeypatch.setenv(ENV_THERMAL_SUBPROC, value)
            assert ExperimentContext(TINY, cache=None).thermal_subproc_cells is None

    def test_small_grids_stay_in_process(self):
        context = ExperimentContext(TINY, jobs=1, cache=None)
        context.thermal_subproc_cells = 10**9  # far above any test grid
        context.thermal("adpcm", "Base")
        assert context.stats.thermal_subproc_solves == 0
        assert context.stats.thermal_subproc_fallbacks == 0


class TestEventCorrelation:
    def test_events_carry_ts_run_id_batch_id(self, tmp_path, monkeypatch):
        """Every --log-json event lines up with external job-runner logs."""
        context, token_dir = _supervised_context(tmp_path, monkeypatch)
        faults.arm_worker_raises(token_dir, 1)
        context.prefetch(PAIRS)
        assert context.stats.events
        for event in context.stats.events:
            assert event["run_id"] == context.stats.run_id
            assert event["batch_id"].startswith("b")
            datetime.fromisoformat(event["ts"])  # parses as ISO-8601

    def test_run_ids_are_unique_per_context(self):
        a = ExperimentContext(TINY, cache=None)
        b = ExperimentContext(TINY, cache=None)
        assert a.stats.run_id and a.stats.run_id != b.stats.run_id

    def test_batch_id_cleared_between_batches(self, tmp_path, monkeypatch):
        context, token_dir = _supervised_context(tmp_path, monkeypatch)
        context.prefetch(PAIRS)
        assert context.stats.batch_id is None

    def test_stats_payload_has_new_counters(self):
        payload = ExperimentContext(TINY, cache=None).stats.as_dict()
        for counter in ("run_id", "task_timeouts", "claim_waits", "claim_dedup",
                        "claim_takeovers", "thermal_subproc_solves",
                        "thermal_subproc_fallbacks"):
            assert counter in payload, counter
