"""Tests for the heterogeneous core-pairing experiment."""

import pytest

from repro.experiments import ExperimentContext, ExperimentSettings
from repro.experiments.pairing import run_pairing

TINY = ExperimentSettings(
    trace_length=5_000,
    warmup=1_500,
    benchmarks=("mpeg2", "mcf"),
    thermal_grid=36,
)


@pytest.fixture(scope="module")
def result():
    return run_pairing(ExperimentContext(TINY))


class TestPairing:
    def test_three_pairings(self, result):
        assert len(result.points) == 3

    def test_hot_hot_is_hottest(self, result):
        pairs = result.by_pair()
        assert pairs[("mpeg2", "mpeg2")].peak_k >= pairs[("mpeg2", "mcf")].peak_k
        assert pairs[("mpeg2", "mcf")].peak_k >= pairs[("mcf", "mcf")].peak_k

    def test_mixing_preserves_some_throughput(self, result):
        pairs = result.by_pair()
        mixed = pairs[("mpeg2", "mcf")].throughput_ipns
        assert (pairs[("mcf", "mcf")].throughput_ipns
                < mixed
                < pairs[("mpeg2", "mpeg2")].throughput_ipns)

    def test_power_ordering_follows_activity(self, result):
        pairs = result.by_pair()
        assert (pairs[("mpeg2", "mpeg2")].chip_watts
                > pairs[("mpeg2", "mcf")].chip_watts
                > pairs[("mcf", "mcf")].chip_watts)

    def test_format(self, result):
        assert "core pairing" in result.format()
